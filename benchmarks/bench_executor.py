"""Serial vs parallel executor benchmark, plus crash-resume overhead.

Part one runs the same cold-cache experiment grid twice —
``workers=1`` and ``workers=N`` — and records both wall clocks into
``BENCH_executor.json``.

The grid mixes quick fit-once jobs (pca) with slow trainable-adapter
jobs (lcomb) under a per-job timeout calibrated from a probe job.
Both modes classify the slow jobs as the paper's TO cells, but they
pay very differently for it: serial execution cannot pre-empt, so it
runs each slow job to completion before classifying it after the
fact, while the pool terminates the offending worker at the deadline.
That pre-emption is where the parallel wall-clock win comes from —
it holds even on a single-CPU container, where parallelism buys no
raw compute.

Part two measures the durability layer: a scripted grid run against a
grid directory is SIGKILLed at 50% (via the ``repro.exec.chaos``
driver), resumed to completion, and resumed once more over a fully
terminal journal.  Recorded: the recomputed-done-job count (**must be
0** — that is the whole point of the journal), the resume wall clock,
and the pure journal-replay overhead of the final no-op resume.

Usage::

    PYTHONPATH=src python benchmarks/bench_executor.py [--workers N]
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

from repro.exec import ChaosPlan, GridJournal, JobSpec, grid, plans_to_env, run_jobs
from repro.experiments import FAST, ExperimentRunner

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Small surrogates keep the probe and quick (pca) jobs snappy; the
#: high joint-epoch count stretches only the trainable-adapter (lcomb)
#: jobs, which train the encoder in the loop — they are the ones the
#: per-job timeout is meant to cut off, and the pre-emption saving
#: must dominate the pool's worker-spawn overhead for the comparison
#: to be meaningful.
BENCH_CONFIG = FAST.with_(
    datasets=("JapaneseVowels", "Heartbeat"),
    seeds=(0, 1),
    pretrain_steps=5,
    joint_epochs=100,
)


def bench_grid() -> tuple[JobSpec, ...]:
    """Quick pca jobs plus slow lcomb jobs, over two datasets/seeds."""
    quick = grid(
        ["JapaneseVowels", "Heartbeat"], "MOMENT", adapters=["pca"], seeds=(0, 1)
    )
    slow = grid(["JapaneseVowels", "Heartbeat"], "MOMENT", adapters=["lcomb"], seeds=(0,))
    return quick + slow


def calibrate() -> float:
    """Cold wall-clock of one quick (pca) job, used to set the timeout."""
    with tempfile.TemporaryDirectory() as cache:
        runner = ExperimentRunner(BENCH_CONFIG, cache_dir=cache)
        start = time.perf_counter()
        runner.run_spec(JobSpec(dataset="JapaneseVowels", model="MOMENT", adapter="pca"))
        return time.perf_counter() - start


def run_mode(specs, *, workers: int, job_timeout: float) -> dict:
    with tempfile.TemporaryDirectory() as cache:
        runner = ExperimentRunner(BENCH_CONFIG, cache_dir=cache)
        start = time.perf_counter()
        results = run_jobs(runner, specs, workers=workers, job_timeout=job_timeout)
        wall = time.perf_counter() - start
    return {
        "workers": workers,
        "wall_s": round(wall, 3),
        "statuses": [str(r.status) for r in results],
        "cells": [r.cell for r in results],
    }


#: Resume-benchmark grid size (scripted jobs; see repro.exec.chaos).
RESUME_JOBS = 40

#: Per-job sleep for the scripted grid, so execution time dominates
#: journal bookkeeping and "half the grid survived" is visible in the
#: resume wall clock.
RESUME_SECONDS_PER_JOB = 0.02


def _drive_chaos(grid_dir, cache_dir, exec_log, *, plans=(), expect_kill=False) -> dict | None:
    """One chaos-driver subprocess run; returns its JSON summary + wall."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
    if plans:
        env["REPRO_CHAOS"] = plans_to_env(plans)
    else:
        env.pop("REPRO_CHAOS", None)
    start = time.perf_counter()
    proc = subprocess.run(
        [
            sys.executable, "-m", "repro.exec.chaos",
            "--grid-dir", str(grid_dir), "--cache-dir", str(cache_dir),
            "--exec-log", str(exec_log), "--jobs", str(RESUME_JOBS),
            "--seconds-per-job", str(RESUME_SECONDS_PER_JOB),
            "--stale-after", "2.0",
        ],
        env=env, capture_output=True, text=True, timeout=300,
    )
    wall = time.perf_counter() - start
    if expect_kill:
        if proc.returncode != -9:
            raise RuntimeError(f"expected SIGKILL, got {proc.returncode}: {proc.stderr}")
        return {"wall_s": round(wall, 3)}
    if proc.returncode != 0:
        raise RuntimeError(f"chaos driver failed: {proc.stderr}")
    summary = json.loads(proc.stdout)
    summary["wall_s"] = round(wall, 3)
    return summary


def bench_resume() -> dict:
    """Kill a scripted grid at 50%, resume, and price the journal replay."""
    with tempfile.TemporaryDirectory() as tmp:
        tmp = Path(tmp)
        grid_dir, cache_dir, exec_log = tmp / "grid", tmp / "cache", tmp / "exec.log"
        # journal.committed fires once per lease claim (visits 1..N)
        # and once per terminal verdict (N+1..2N): N + N/2 is the
        # commit of the N/2-th result — the 50% point.
        kill_at = RESUME_JOBS + RESUME_JOBS // 2
        _drive_chaos(
            grid_dir, cache_dir, exec_log,
            plans=[ChaosPlan("kill", "journal.committed", after=kill_at)],
            expect_kill=True,
        )
        executed_before = len(exec_log.read_text().splitlines())

        resume = _drive_chaos(grid_dir, cache_dir, exec_log)
        labels = exec_log.read_text().splitlines()
        journal = GridJournal.open(grid_dir)
        recomputed = journal.progress()["re_executed"]

        replay = _drive_chaos(grid_dir, cache_dir, exec_log)
        assert len(exec_log.read_text().splitlines()) == len(labels)

    return {
        "jobs": RESUME_JOBS,
        "seconds_per_job": RESUME_SECONDS_PER_JOB,
        "killed_after_jobs": executed_before,
        "resume": {
            "wall_s": resume["wall_s"],
            "executed": len(labels) - executed_before,
            "resumed": resume["progress"]["resumed"],
            "stolen_leases": resume["progress"]["stolen"],
        },
        "recomputed_done_jobs": recomputed,
        "total_executions": len(labels),
        "journal_replay": {
            "wall_s": replay["wall_s"],
            "resumed": replay["progress"]["resumed"],
            "executed": 0,
            "per_job_overhead_ms": round(1000.0 * replay["wall_s"] / RESUME_JOBS, 3),
        },
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workers", type=int, default=2, help="parallel worker count")
    parser.add_argument(
        "--output", default=str(REPO_ROOT / "BENCH_executor.json"),
        help="where to write the JSON record",
    )
    parser.add_argument(
        "--resume-only", action="store_true",
        help="run only the kill-at-50%% resume benchmark (merged into the record)",
    )
    args = parser.parse_args(argv)

    output = Path(args.output)
    if args.resume_only:
        resume = bench_resume()
        print(f"resume   : killed after {resume['killed_after_jobs']}/{resume['jobs']} "
              f"jobs, recomputed {resume['recomputed_done_jobs']}, "
              f"resume {resume['resume']['wall_s']:.2f}s, "
              f"replay {resume['journal_replay']['wall_s']:.2f}s", flush=True)
        if resume["recomputed_done_jobs"] != 0:
            print("FAIL: resume recomputed finished jobs", file=sys.stderr)
            return 1
        record = json.loads(output.read_text()) if output.exists() else {
            "benchmark": "executor_serial_vs_parallel"
        }
        record["resume"] = resume
        output.write_text(json.dumps(record, indent=2) + "\n")
        print(f"-> {output}")
        return 0

    specs = bench_grid()
    calibration = calibrate()
    # Quick jobs must clear the budget even under worker contention;
    # slow lcomb jobs cost an order of magnitude more and must not.
    job_timeout = max(1.0, 3.0 * calibration)
    print(f"grid: {len(specs)} jobs, calibration {calibration:.2f}s, "
          f"timeout {job_timeout:.2f}s", flush=True)

    serial = run_mode(specs, workers=1, job_timeout=job_timeout)
    print(f"serial   : {serial['wall_s']:.2f}s  {serial['cells']}", flush=True)
    parallel = run_mode(specs, workers=args.workers, job_timeout=job_timeout)
    print(f"parallel : {parallel['wall_s']:.2f}s  {parallel['cells']}", flush=True)

    resume = bench_resume()
    print(f"resume   : killed after {resume['killed_after_jobs']}/{resume['jobs']} "
          f"jobs, recomputed {resume['recomputed_done_jobs']}, "
          f"resume {resume['resume']['wall_s']:.2f}s, "
          f"replay {resume['journal_replay']['wall_s']:.2f}s", flush=True)
    if resume["recomputed_done_jobs"] != 0:
        print("FAIL: resume recomputed finished jobs", file=sys.stderr)
        return 1

    speedup = serial["wall_s"] / parallel["wall_s"] if parallel["wall_s"] else float("inf")
    record = {
        "benchmark": "executor_serial_vs_parallel",
        "cpu_count": os.cpu_count(),
        "calibration_s": round(calibration, 3),
        "job_timeout_s": round(job_timeout, 3),
        "jobs": [s.label for s in specs],
        "serial": serial,
        "parallel": parallel,
        "speedup": round(speedup, 3),
        "resume": resume,
    }
    output.write_text(json.dumps(record, indent=2) + "\n")
    print(f"speedup  : {speedup:.2f}x  -> {output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
