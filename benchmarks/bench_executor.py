"""Serial vs parallel executor benchmark.

Runs the same cold-cache experiment grid twice — ``workers=1`` and
``workers=N`` — and records both wall clocks into
``BENCH_executor.json``.

The grid mixes quick fit-once jobs (pca) with slow trainable-adapter
jobs (lcomb) under a per-job timeout calibrated from a probe job.
Both modes classify the slow jobs as the paper's TO cells, but they
pay very differently for it: serial execution cannot pre-empt, so it
runs each slow job to completion before classifying it after the
fact, while the pool terminates the offending worker at the deadline.
That pre-emption is where the parallel wall-clock win comes from —
it holds even on a single-CPU container, where parallelism buys no
raw compute.

Usage::

    PYTHONPATH=src python benchmarks/bench_executor.py [--workers N]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time
from pathlib import Path

from repro.exec import JobSpec, grid, run_jobs
from repro.experiments import FAST, ExperimentRunner

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Small surrogates keep the probe and quick (pca) jobs snappy; the
#: high joint-epoch count stretches only the trainable-adapter (lcomb)
#: jobs, which train the encoder in the loop — they are the ones the
#: per-job timeout is meant to cut off, and the pre-emption saving
#: must dominate the pool's worker-spawn overhead for the comparison
#: to be meaningful.
BENCH_CONFIG = FAST.with_(
    datasets=("JapaneseVowels", "Heartbeat"),
    seeds=(0, 1),
    pretrain_steps=5,
    joint_epochs=100,
)


def bench_grid() -> tuple[JobSpec, ...]:
    """Quick pca jobs plus slow lcomb jobs, over two datasets/seeds."""
    quick = grid(
        ["JapaneseVowels", "Heartbeat"], "MOMENT", adapters=["pca"], seeds=(0, 1)
    )
    slow = grid(["JapaneseVowels", "Heartbeat"], "MOMENT", adapters=["lcomb"], seeds=(0,))
    return quick + slow


def calibrate() -> float:
    """Cold wall-clock of one quick (pca) job, used to set the timeout."""
    with tempfile.TemporaryDirectory() as cache:
        runner = ExperimentRunner(BENCH_CONFIG, cache_dir=cache)
        start = time.perf_counter()
        runner.run_spec(JobSpec(dataset="JapaneseVowels", model="MOMENT", adapter="pca"))
        return time.perf_counter() - start


def run_mode(specs, *, workers: int, job_timeout: float) -> dict:
    with tempfile.TemporaryDirectory() as cache:
        runner = ExperimentRunner(BENCH_CONFIG, cache_dir=cache)
        start = time.perf_counter()
        results = run_jobs(runner, specs, workers=workers, job_timeout=job_timeout)
        wall = time.perf_counter() - start
    return {
        "workers": workers,
        "wall_s": round(wall, 3),
        "statuses": [str(r.status) for r in results],
        "cells": [r.cell for r in results],
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workers", type=int, default=2, help="parallel worker count")
    parser.add_argument(
        "--output", default=str(REPO_ROOT / "BENCH_executor.json"),
        help="where to write the JSON record",
    )
    args = parser.parse_args(argv)

    specs = bench_grid()
    calibration = calibrate()
    # Quick jobs must clear the budget even under worker contention;
    # slow lcomb jobs cost an order of magnitude more and must not.
    job_timeout = max(1.0, 3.0 * calibration)
    print(f"grid: {len(specs)} jobs, calibration {calibration:.2f}s, "
          f"timeout {job_timeout:.2f}s", flush=True)

    serial = run_mode(specs, workers=1, job_timeout=job_timeout)
    print(f"serial   : {serial['wall_s']:.2f}s  {serial['cells']}", flush=True)
    parallel = run_mode(specs, workers=args.workers, job_timeout=job_timeout)
    print(f"parallel : {parallel['wall_s']:.2f}s  {parallel['cells']}", flush=True)

    speedup = serial["wall_s"] / parallel["wall_s"] if parallel["wall_s"] else float("inf")
    record = {
        "benchmark": "executor_serial_vs_parallel",
        "cpu_count": os.cpu_count(),
        "calibration_s": round(calibration, 3),
        "job_timeout_s": round(job_timeout, 3),
        "jobs": [s.label for s in specs],
        "serial": serial,
        "parallel": parallel,
        "speedup": round(speedup, 3),
    }
    Path(args.output).write_text(json.dumps(record, indent=2) + "\n")
    print(f"speedup  : {speedup:.2f}x  -> {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
