"""Float32 fast-numerics + compiled-replay benchmark for ``repro.nn``.

Two sections, both recorded into ``BENCH_nn.json``:

**Training** — identical encoder-in-the-loop trainer steps (forward,
loss, backward, grad clip, AdamW) under the pre-PR float64 policy and
the float32 default, on calibrated MOMENT-small and ViT-small
geometries: trainer-step throughput plus peak allocation of one step
(``tracemalloc``).

**Inference** — frozen-encoder embedding passes, eager tensor path vs
the compiled replay engine (:mod:`repro.nn.graph`), on the tiny
models at streaming batch sizes.  That is the dispatch-bound regime
graph replay targets: per-op python overhead (wrappers, Tensor
construction, autograd bookkeeping) is a large fraction of each pass,
and replay strips all of it while the arena removes per-op output
allocations.  Outputs are required to be **bit-identical** between
the two paths; peak memory for the compiled side counts the resident
arena on top of the traced per-pass allocations.

Usage::

    PYTHONPATH=src python benchmarks/bench_nn.py            # full run
    PYTHONPATH=src python benchmarks/bench_nn.py --smoke    # CI gate
"""

from __future__ import annotations

import argparse
import json
import os
import time
import tracemalloc
from pathlib import Path

import numpy as np

from repro import nn
from repro.models import MomentModel, ViTModel
from repro.models.config import ModelConfig
from repro.nn import functional as F

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Calibrated bench geometries: large enough that BLAS kernels (not
#: python dispatch) dominate a trainer step — that is the regime the
#: float32 claim is about — while one full run stays under a minute.
BENCH_CONFIGS = {
    "moment-small": ModelConfig(
        name="moment-small-bench",
        family="moment",
        d_model=128,
        num_layers=3,
        num_heads=8,
        d_ff=512,
        patch_length=8,
        patch_stride=8,
        max_sequence_length=512,
        dropout=0.0,
    ),
    "vit-small": ModelConfig(
        name="vit-small-bench",
        family="vit",
        d_model=128,
        num_layers=3,
        num_heads=8,
        d_ff=512,
        patch_length=16,
        patch_stride=8,
        max_sequence_length=512,
        dropout=0.0,
    ),
}

SMOKE_CONFIGS = {
    "moment-smoke": ModelConfig(
        name="moment-smoke-bench",
        family="moment",
        d_model=32,
        num_layers=1,
        num_heads=4,
        d_ff=64,
        patch_length=8,
        patch_stride=8,
        max_sequence_length=128,
        dropout=0.0,
    ),
}


#: Frozen-encoder inference geometries: the tiny models the pipeline
#: actually runs, at streaming batch sizes where dispatch overhead —
#: not BLAS — dominates an eager pass.  (At large batches both paths
#: are BLAS-bound and replay is throughput-neutral by construction.)
INFER_CONFIGS = {
    "moment-tiny": {"batch_size": 1, "seq_len": 32, "channels": 3, "samples": 32},
    "vit-tiny": {"batch_size": 1, "seq_len": 32, "channels": 3, "samples": 32},
}

INFER_SMOKE_CONFIGS = {
    "moment-tiny": {"batch_size": 1, "seq_len": 32, "channels": 2, "samples": 6},
}


def build(config: ModelConfig) -> nn.Module:
    """Instantiate the family model for a bench config."""
    cls = MomentModel if config.family == "moment" else ViTModel
    return cls(config, seed=0)


def run_trainer_steps(
    config: ModelConfig,
    dtype: str,
    steps: int,
    batch_size: int,
    seq_len: int,
    channels: int,
    num_classes: int = 4,
) -> dict:
    """Time encoder-in-the-loop trainer steps under one dtype policy."""
    with nn.default_dtype(dtype):
        model = build(config)
        model.train()
        head = nn.Linear(config.d_model, num_classes, rng=np.random.default_rng(1))
        params = model.trainable_parameters() + head.trainable_parameters()
        optimizer = nn.AdamW(params, lr=1e-3)
        rng = np.random.default_rng(0)
        x = rng.normal(size=(batch_size, seq_len, channels))
        y = rng.integers(0, num_classes, size=batch_size)

        def one_step() -> float:
            logits = head(model.encode(nn.Tensor(x)))
            loss = F.cross_entropy(logits, y)
            optimizer.zero_grad()
            loss.backward()
            nn.clip_grad_norm(params, 1.0)
            optimizer.step()
            return float(loss.data)

        one_step()  # warmup: page in buffers, settle BLAS threads
        start = time.perf_counter()
        last_loss = 0.0
        for _ in range(steps):
            last_loss = one_step()
        wall = time.perf_counter() - start

        # Peak allocation of a single step, traced separately so the
        # tracemalloc overhead never contaminates the throughput number.
        tracemalloc.start()
        one_step()
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()

    return {
        "dtype": dtype,
        "steps": steps,
        "wall_s": round(wall, 4),
        "steps_per_s": round(steps / wall, 3) if wall else float("inf"),
        "peak_alloc_bytes": int(peak),
        "final_loss": round(last_loss, 6),
    }


def bench_config(name: str, config: ModelConfig, steps: int, batch_size: int,
                 seq_len: int, channels: int) -> dict:
    """float64 baseline vs float32 fast path on one geometry."""
    baseline = run_trainer_steps(config, "float64", steps, batch_size, seq_len, channels)
    fast = run_trainer_steps(config, "float32", steps, batch_size, seq_len, channels)
    speedup = fast["steps_per_s"] / baseline["steps_per_s"]
    alloc_reduction = 1.0 - fast["peak_alloc_bytes"] / baseline["peak_alloc_bytes"]
    return {
        "model": name,
        "geometry": {
            "d_model": config.d_model,
            "num_layers": config.num_layers,
            "d_ff": config.d_ff,
            "batch_size": batch_size,
            "seq_len": seq_len,
            "channels": channels,
        },
        "float64": baseline,
        "float32": fast,
        "throughput_speedup": round(speedup, 3),
        "peak_alloc_reduction": round(alloc_reduction, 3),
    }


def run_inference(
    model_name: str,
    geometry: dict,
    compiled: bool,
    passes: int,
) -> tuple[dict, np.ndarray]:
    """Time frozen-encoder embedding passes under one execution mode."""
    from repro.models import build_model
    from repro.training import compute_embeddings

    model = build_model(model_name, seed=0)
    model.eval()
    model.freeze()
    rng = np.random.default_rng(0)
    x = rng.normal(size=(geometry["samples"], geometry["seq_len"], geometry["channels"]))
    batch_size = geometry["batch_size"]

    # Warmup: pages buffers in; in compiled mode this also captures and
    # compiles the graph, so capture cost is excluded from throughput
    # (it is paid once per shape bucket, not per pass).
    embeddings = compute_embeddings(model, x, batch_size=batch_size, compiled=compiled)
    start = time.perf_counter()
    for _ in range(passes):
        compute_embeddings(model, x, batch_size=batch_size, compiled=compiled)
    wall = time.perf_counter() - start

    tracemalloc.start()
    compute_embeddings(model, x, batch_size=batch_size, compiled=compiled)
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    # Steady-state memory: traced per-pass allocations, plus (compiled
    # only) the resident arena blocks tracemalloc did not see because
    # they were allocated during warmup and reused ever since.
    arena = sum(g.arena_bytes for g in model._graph_cache.graphs()) if compiled else 0
    stats = model._graph_cache.stats()

    record = {
        "mode": "compiled" if compiled else "eager",
        "passes": passes,
        "wall_s": round(wall, 4),
        "samples_per_s": round(passes * len(x) / wall, 2) if wall else float("inf"),
        "peak_alloc_bytes": int(peak) + int(arena),
        "arena_bytes": int(arena),
        "graphs_compiled": stats["compiled"],
        "replay_fallbacks": stats["fallbacks"],
    }
    return record, embeddings


def bench_inference(model_name: str, geometry: dict, passes: int) -> dict:
    """Eager vs compiled frozen-encoder inference on one geometry."""
    eager, eager_emb = run_inference(model_name, geometry, compiled=False, passes=passes)
    compiled, compiled_emb = run_inference(model_name, geometry, compiled=True, passes=passes)
    return {
        "model": model_name,
        "geometry": geometry,
        "eager": eager,
        "compiled": compiled,
        "throughput_speedup": round(
            compiled["samples_per_s"] / eager["samples_per_s"], 3
        ),
        "peak_alloc_reduction": round(
            1.0 - compiled["peak_alloc_bytes"] / eager["peak_alloc_bytes"], 3
        ),
        "bit_identical": bool(np.array_equal(compiled_emb, eager_emb)),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="tiny geometry sanity run for CI; prints but does not write JSON",
    )
    parser.add_argument("--steps", type=int, default=None, help="timed steps per dtype")
    parser.add_argument(
        "--output", default=str(REPO_ROOT / "BENCH_nn.json"),
        help="where to write the JSON record (full mode only)",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        configs, steps, batch, seq_len, channels = SMOKE_CONFIGS, args.steps or 2, 4, 64, 2
        infer_configs, passes = INFER_SMOKE_CONFIGS, 2
    else:
        configs, steps, batch, seq_len, channels = BENCH_CONFIGS, args.steps or 15, 8, 256, 3
        infer_configs, passes = INFER_CONFIGS, 10

    results = []
    for name, config in configs.items():
        entry = bench_config(name, config, steps, batch, seq_len, channels)
        results.append(entry)
        print(
            f"{name:<14} {entry['float64']['steps_per_s']:>7.2f} -> "
            f"{entry['float32']['steps_per_s']:>7.2f} steps/s "
            f"({entry['throughput_speedup']:.2f}x), peak alloc "
            f"{entry['float64']['peak_alloc_bytes'] / 1024**2:.1f} -> "
            f"{entry['float32']['peak_alloc_bytes'] / 1024**2:.1f} MiB "
            f"(-{entry['peak_alloc_reduction'] * 100:.0f}%)",
            flush=True,
        )

    inference = []
    for name, geometry in infer_configs.items():
        entry = bench_inference(name, geometry, passes)
        inference.append(entry)
        print(
            f"{name + ' (infer)':<22} {entry['eager']['samples_per_s']:>8.1f} -> "
            f"{entry['compiled']['samples_per_s']:>8.1f} samples/s "
            f"({entry['throughput_speedup']:.2f}x), peak alloc "
            f"{entry['eager']['peak_alloc_bytes'] / 1024**2:.2f} -> "
            f"{entry['compiled']['peak_alloc_bytes'] / 1024**2:.2f} MiB "
            f"(-{entry['peak_alloc_reduction'] * 100:.0f}%), "
            f"bit-identical: {entry['bit_identical']}",
            flush=True,
        )

    if args.smoke:
        # The gate checks machinery, not hardware: both dtype runs
        # finished without allocation blowup, and the compiled engine
        # actually compiled, never fell back, and reproduced eager bits.
        # Throughput ratios are NOT gated here — CI boxes are noisy.
        ok = all(e["float32"]["peak_alloc_bytes"] < e["float64"]["peak_alloc_bytes"]
                 for e in results)
        replay_ok = all(
            e["bit_identical"]
            and e["compiled"]["graphs_compiled"] >= 1
            and e["compiled"]["replay_fallbacks"] == 0
            and e["peak_alloc_reduction"] > 0
            for e in inference
        )
        print(f"smoke   : {'ok' if ok and replay_ok else 'FAIL'}")
        return 0 if ok and replay_ok else 1

    record = {
        "benchmark": "nn_float32_fast_numerics",
        "cpu_count": os.cpu_count(),
        "results": results,
        "min_throughput_speedup": min(e["throughput_speedup"] for e in results),
        "min_peak_alloc_reduction": min(e["peak_alloc_reduction"] for e in results),
        "inference": inference,
        "min_inference_speedup": min(e["throughput_speedup"] for e in inference),
        "min_inference_alloc_reduction": min(
            e["peak_alloc_reduction"] for e in inference
        ),
        "inference_bit_identical": all(e["bit_identical"] for e in inference),
    }
    Path(args.output).write_text(json.dumps(record, indent=2) + "\n")
    print(f"wrote   : {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
