"""Float32 fast-numerics benchmark for the ``repro.nn`` stack.

Runs identical encoder-in-the-loop trainer steps (forward, loss,
backward, grad clip, AdamW) under the pre-PR float64 policy and the
new float32 default, on calibrated MOMENT-small and ViT-small
geometries, and records into ``BENCH_nn.json``:

* **trainer-step throughput** (steps/s, timed without tracing), and
* **peak allocation** of one trainer step (``tracemalloc``).

The float32 core combines the dtype policy with the fused layer_norm,
the in-place optimizers and the broadcasting attention bias, so the
comparison measures the whole fast-numerics package the way training
actually exercises it.

Usage::

    PYTHONPATH=src python benchmarks/bench_nn.py            # full run
    PYTHONPATH=src python benchmarks/bench_nn.py --smoke    # CI gate
"""

from __future__ import annotations

import argparse
import json
import os
import time
import tracemalloc
from pathlib import Path

import numpy as np

from repro import nn
from repro.models import MomentModel, ViTModel
from repro.models.config import ModelConfig
from repro.nn import functional as F

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Calibrated bench geometries: large enough that BLAS kernels (not
#: python dispatch) dominate a trainer step — that is the regime the
#: float32 claim is about — while one full run stays under a minute.
BENCH_CONFIGS = {
    "moment-small": ModelConfig(
        name="moment-small-bench",
        family="moment",
        d_model=128,
        num_layers=3,
        num_heads=8,
        d_ff=512,
        patch_length=8,
        patch_stride=8,
        max_sequence_length=512,
        dropout=0.0,
    ),
    "vit-small": ModelConfig(
        name="vit-small-bench",
        family="vit",
        d_model=128,
        num_layers=3,
        num_heads=8,
        d_ff=512,
        patch_length=16,
        patch_stride=8,
        max_sequence_length=512,
        dropout=0.0,
    ),
}

SMOKE_CONFIGS = {
    "moment-smoke": ModelConfig(
        name="moment-smoke-bench",
        family="moment",
        d_model=32,
        num_layers=1,
        num_heads=4,
        d_ff=64,
        patch_length=8,
        patch_stride=8,
        max_sequence_length=128,
        dropout=0.0,
    ),
}


def build(config: ModelConfig) -> nn.Module:
    """Instantiate the family model for a bench config."""
    cls = MomentModel if config.family == "moment" else ViTModel
    return cls(config, seed=0)


def run_trainer_steps(
    config: ModelConfig,
    dtype: str,
    steps: int,
    batch_size: int,
    seq_len: int,
    channels: int,
    num_classes: int = 4,
) -> dict:
    """Time encoder-in-the-loop trainer steps under one dtype policy."""
    with nn.default_dtype(dtype):
        model = build(config)
        model.train()
        head = nn.Linear(config.d_model, num_classes, rng=np.random.default_rng(1))
        params = model.trainable_parameters() + head.trainable_parameters()
        optimizer = nn.AdamW(params, lr=1e-3)
        rng = np.random.default_rng(0)
        x = rng.normal(size=(batch_size, seq_len, channels))
        y = rng.integers(0, num_classes, size=batch_size)

        def one_step() -> float:
            logits = head(model.encode(nn.Tensor(x)))
            loss = F.cross_entropy(logits, y)
            optimizer.zero_grad()
            loss.backward()
            nn.clip_grad_norm(params, 1.0)
            optimizer.step()
            return float(loss.data)

        one_step()  # warmup: page in buffers, settle BLAS threads
        start = time.perf_counter()
        last_loss = 0.0
        for _ in range(steps):
            last_loss = one_step()
        wall = time.perf_counter() - start

        # Peak allocation of a single step, traced separately so the
        # tracemalloc overhead never contaminates the throughput number.
        tracemalloc.start()
        one_step()
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()

    return {
        "dtype": dtype,
        "steps": steps,
        "wall_s": round(wall, 4),
        "steps_per_s": round(steps / wall, 3) if wall else float("inf"),
        "peak_alloc_bytes": int(peak),
        "final_loss": round(last_loss, 6),
    }


def bench_config(name: str, config: ModelConfig, steps: int, batch_size: int,
                 seq_len: int, channels: int) -> dict:
    """float64 baseline vs float32 fast path on one geometry."""
    baseline = run_trainer_steps(config, "float64", steps, batch_size, seq_len, channels)
    fast = run_trainer_steps(config, "float32", steps, batch_size, seq_len, channels)
    speedup = fast["steps_per_s"] / baseline["steps_per_s"]
    alloc_reduction = 1.0 - fast["peak_alloc_bytes"] / baseline["peak_alloc_bytes"]
    return {
        "model": name,
        "geometry": {
            "d_model": config.d_model,
            "num_layers": config.num_layers,
            "d_ff": config.d_ff,
            "batch_size": batch_size,
            "seq_len": seq_len,
            "channels": channels,
        },
        "float64": baseline,
        "float32": fast,
        "throughput_speedup": round(speedup, 3),
        "peak_alloc_reduction": round(alloc_reduction, 3),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="tiny geometry sanity run for CI; prints but does not write JSON",
    )
    parser.add_argument("--steps", type=int, default=None, help="timed steps per dtype")
    parser.add_argument(
        "--output", default=str(REPO_ROOT / "BENCH_nn.json"),
        help="where to write the JSON record (full mode only)",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        configs, steps, batch, seq_len, channels = SMOKE_CONFIGS, args.steps or 2, 4, 64, 2
    else:
        configs, steps, batch, seq_len, channels = BENCH_CONFIGS, args.steps or 15, 8, 256, 3

    results = []
    for name, config in configs.items():
        entry = bench_config(name, config, steps, batch, seq_len, channels)
        results.append(entry)
        print(
            f"{name:<14} {entry['float64']['steps_per_s']:>7.2f} -> "
            f"{entry['float32']['steps_per_s']:>7.2f} steps/s "
            f"({entry['throughput_speedup']:.2f}x), peak alloc "
            f"{entry['float64']['peak_alloc_bytes'] / 1024**2:.1f} -> "
            f"{entry['float32']['peak_alloc_bytes'] / 1024**2:.1f} MiB "
            f"(-{entry['peak_alloc_reduction'] * 100:.0f}%)",
            flush=True,
        )

    if args.smoke:
        # The gate checks machinery, not hardware: both runs finished
        # and float32 did not blow up allocation.
        ok = all(e["float32"]["peak_alloc_bytes"] < e["float64"]["peak_alloc_bytes"]
                 for e in results)
        print(f"smoke   : {'ok' if ok else 'FAIL'}")
        return 0 if ok else 1

    record = {
        "benchmark": "nn_float32_fast_numerics",
        "cpu_count": os.cpu_count(),
        "results": results,
        "min_throughput_speedup": min(e["throughput_speedup"] for e in results),
        "min_peak_alloc_reduction": min(e["peak_alloc_reduction"] for e in results),
    }
    Path(args.output).write_text(json.dumps(record, indent=2) + "\n")
    print(f"wrote   : {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
