"""Online-serving benchmark for ``repro.serve``: micro-batching vs batch-1.

Fits one tiny adapter pipeline, publishes it into a throwaway
registry, then drives a seeded closed-loop load (K client threads,
each sending one request at a time) against two deployments of the
same pipeline at equal worker count:

* **batch1** — ``max_batch=1``: every request runs its own encoder
  pass, the no-batching baseline;
* **micro**  — ``max_batch=16`` with a 2 ms batching window: requests
  arriving together share one fixed-width pass.

Recorded into ``BENCH_serve.json``: sustained QPS, latency p50/p99,
mean/max micro-batch width, and the QPS speedup (the headline claim is
``>= 2x``).  Every served logits row is also checked **bit-identical**
to the offline ``pipeline.predict_logits(x, batch_size=max_batch)``
recipe — micro-batching is a pure scheduling optimisation, it never
changes the bits.

A ``streaming`` section benchmarks :mod:`repro.stream` on a generated
long-context stream: sustained windows/sec and push latency p50/p99
through :class:`~repro.stream.StreamingClassifier`, the re-encode
economy (replaying identical history must cost **zero** encoder
passes; a fresh tail costs exactly its own windows — O(changed
windows), never O(history)), and the measured-vs-predicted peak memory
of a cold ``encode_long`` pass against
:func:`repro.resources.streaming_inference_memory_bytes`.

Usage::

    PYTHONPATH=src python benchmarks/bench_serve.py            # full run
    PYTHONPATH=src python benchmarks/bench_serve.py --smoke    # CI gate
"""

from __future__ import annotations

import argparse
import json
import os
import tempfile
import threading
import time
import tracemalloc
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent

#: One geometry: the tiny MOMENT pipeline the repo's quickstart fits.
FIT = {
    "dataset": "Heartbeat",
    "model": "moment-tiny",
    "adapter": "pca",
    "channels": 3,
    "scale": 0.05,
    "max_length": 16,
    "seed": 0,
}

FULL_LOAD = {"requests": 512, "clients": 16}
SMOKE_LOAD = {"requests": 64, "clients": 4}

#: Streaming section: windows driven through the incremental
#: classifier, and the series length of the cold-capture memory probe.
FULL_STREAM = {"windows": 160, "memory_steps": 100_000}
SMOKE_STREAM = {"windows": 24, "memory_steps": 20_000}


def fit_tiny_pipeline():
    from repro import fit_pipeline
    from repro.training import TrainConfig

    fitted = fit_pipeline(
        FIT["dataset"],
        model=FIT["model"],
        adapter=FIT["adapter"],
        channels=FIT["channels"],
        seed=FIT["seed"],
        scale=FIT["scale"],
        max_length=FIT["max_length"],
        train_config=TrainConfig(epochs=1, seed=FIT["seed"]),
    )
    return fitted


def drive_load(server, requests: np.ndarray, clients: int) -> dict:
    """Closed-loop load: each client thread sends one request at a time."""
    results: list[np.ndarray | None] = [None] * len(requests)
    cursor = iter(range(len(requests)))
    cursor_lock = threading.Lock()

    def client_loop() -> None:
        while True:
            with cursor_lock:
                index = next(cursor, None)
            if index is None:
                return
            results[index] = server.predict_logits(requests[index])

    threads = [
        threading.Thread(target=client_loop, name=f"bench-client-{i}", daemon=True)
        for i in range(clients)
    ]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - start
    return {"wall_s": wall, "logits": np.stack(results, axis=0)}


def bench_condition(
    registry, name: str, config, requests: np.ndarray, clients: int
) -> dict:
    from repro.serve import PipelineServer

    server = PipelineServer(registry, name, config=config)
    try:
        server.warmup(requests.shape[1])
        load = drive_load(server, requests, clients)
        snapshot = server.stats()["batcher"]
    finally:
        server.close(drain=True)
    latency = snapshot.get("latency_s") or {}
    width = snapshot.get("batch_width") or {}
    qps = len(requests) / load["wall_s"] if load["wall_s"] else float("inf")
    return {
        "max_batch": config.max_batch,
        "max_delay_s": config.max_delay_s,
        "clients": clients,
        "requests": len(requests),
        "wall_s": round(load["wall_s"], 4),
        "qps": round(qps, 2),
        "latency_p50_ms": round(latency.get("p50", 0.0) * 1000, 3),
        "latency_p99_ms": round(latency.get("p99", 0.0) * 1000, 3),
        "mean_batch_width": round(width.get("mean", 0.0), 3),
        "max_batch_width": width.get("max", 0),
        "batches": snapshot.get("batches", 0),
        "logits": load["logits"],
    }


def bench_streaming(fitted, *, windows: int, memory_steps: int) -> dict:
    """The ``repro.stream`` section: throughput, economy, memory."""
    from repro.data import dataset_info, generate_stream
    from repro.models import load_pretrained
    from repro.resources import streaming_inference_memory_bytes
    from repro.stream import encode_long

    window, stride, width = 16, 8, 16
    total = window + (windows - 1) * stride
    x, _labels = generate_stream(
        dataset_info(FIT["dataset"]), seed=7, total_length=total
    )
    stream = fitted.stream(window=window, stride=stride, batch_size=width)

    # Sustained throughput: one stride-sized chunk per push, so each
    # push completes exactly one window once the buffer is primed.
    push_s = []
    start = time.perf_counter()
    for lo in range(0, total, stride):
        t0 = time.perf_counter()
        stream.push(x[lo : lo + stride])
        push_s.append(time.perf_counter() - t0)
    wall = time.perf_counter() - start
    emitted = stream.windows_emitted
    encoded_initial = stream.cache.encoded_windows

    # Re-encode economy, claim 1: replaying identical history through
    # the rolling content-addressed cache costs zero encoder passes.
    stream.reset()
    stream.push(x)
    encoded_replay = stream.cache.encoded_windows - encoded_initial

    # Claim 2: a fresh tail costs exactly its own windows — the work
    # per push is O(changed windows), never O(history).
    tail = np.random.default_rng(13).normal(size=(4 * stride, x.shape[1]))
    before_encoded = stream.cache.encoded_windows
    before_windows = stream.windows_emitted
    stream.push(tail)
    tail_windows = stream.windows_emitted - before_windows
    encoded_tail = stream.cache.encoded_windows - before_encoded

    # Peak memory of a cold chunked encode (fresh model: the dominant
    # term is the first pass's compiled-graph capture tape) vs the
    # cost-model prediction the grid planner admits jobs with.
    mem_channels, mem_window, batch_windows = 8, 128, 16
    series = np.random.default_rng(11).normal(size=(memory_steps, mem_channels))
    tracemalloc.start()
    try:
        model = load_pretrained("moment-tiny", seed=0)
        tracemalloc.reset_peak()
        baseline = tracemalloc.get_traced_memory()[0]
        encode_long(
            model, series, mem_window, mem_window, batch_windows=batch_windows
        )
        measured = tracemalloc.get_traced_memory()[1] - baseline
    finally:
        tracemalloc.stop()
    predicted = streaming_inference_memory_bytes(
        model.config,
        window=mem_window,
        channels=mem_channels,
        batch_windows=batch_windows,
    )

    push_ms = np.asarray(push_s) * 1000.0
    return {
        "window": window,
        "stride": stride,
        "batch_size": width,
        "windows": emitted,
        "wall_s": round(wall, 4),
        "windows_per_s": round(emitted / wall, 2) if wall else float("inf"),
        "push_p50_ms": round(float(np.percentile(push_ms, 50)), 3),
        "push_p99_ms": round(float(np.percentile(push_ms, 99)), 3),
        "encoded_initial": encoded_initial,
        "encoded_replay": encoded_replay,
        "tail_windows": tail_windows,
        "encoded_tail": encoded_tail,
        "memory": {
            "steps": memory_steps,
            "measured_bytes": int(measured),
            "predicted_bytes": int(predicted),
            "ratio": round(measured / predicted, 3),
        },
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="small load sanity run for CI; prints but does not write JSON",
    )
    parser.add_argument("--requests", type=int, default=None)
    parser.add_argument("--clients", type=int, default=None)
    parser.add_argument(
        "--output", default=str(REPO_ROOT / "BENCH_serve.json"),
        help="where to write the JSON record (full mode only)",
    )
    args = parser.parse_args(argv)

    from repro.serve import PipelineRegistry, ServeConfig

    load = SMOKE_LOAD if args.smoke else FULL_LOAD
    n_requests = args.requests or load["requests"]
    clients = args.clients or load["clients"]

    fitted = fit_tiny_pipeline()
    pipeline = fitted.pipeline
    channels = fitted.dataset.x_train.shape[2]
    length = fitted.dataset.x_train.shape[1]
    rng = np.random.default_rng(7)
    requests = rng.standard_normal((n_requests, length, channels)).astype(np.float32)

    micro_width = 16
    conditions = {
        "batch1": ServeConfig(max_batch=1, max_delay_s=0.0),
        "micro": ServeConfig(max_batch=micro_width, max_delay_s=0.002),
    }

    results = {}
    with tempfile.TemporaryDirectory(prefix="bench-serve-") as tmp:
        registry = PipelineRegistry(tmp)
        registry.publish(pipeline, "bench")
        for label, config in conditions.items():
            entry = bench_condition(registry, "bench", config, requests, clients)
            results[label] = entry
            print(
                f"{label:<7} qps={entry['qps']:>8.1f}  "
                f"p50={entry['latency_p50_ms']:.2f}ms "
                f"p99={entry['latency_p99_ms']:.2f}ms  "
                f"width mean={entry['mean_batch_width']:.2f} "
                f"max={entry['max_batch_width']}",
                flush=True,
            )

    # Bit-identity: a served row must equal the offline fixed-width
    # recipe at that deployment's max_batch, for every condition.
    identical = {}
    for label, entry in results.items():
        offline = pipeline.predict_logits(requests, batch_size=entry["max_batch"])
        identical[label] = bool(np.array_equal(entry.pop("logits"), offline))
    speedup = results["micro"]["qps"] / results["batch1"]["qps"]
    print(
        f"speedup : {speedup:.2f}x (micro vs batch1), "
        f"bit-identical to offline: {identical}",
        flush=True,
    )

    stream_load = SMOKE_STREAM if args.smoke else FULL_STREAM
    streaming = bench_streaming(fitted, **stream_load)
    print(
        f"stream  : {streaming['windows_per_s']:>8.1f} windows/s  "
        f"p50={streaming['push_p50_ms']:.2f}ms "
        f"p99={streaming['push_p99_ms']:.2f}ms  "
        f"encoded initial={streaming['encoded_initial']} "
        f"replay={streaming['encoded_replay']} "
        f"tail={streaming['encoded_tail']}/{streaming['tail_windows']}  "
        f"mem ratio={streaming['memory']['ratio']:.3f}",
        flush=True,
    )

    stream_ok = (
        streaming["encoded_replay"] == 0
        and streaming["encoded_tail"] == streaming["tail_windows"]
        and 0.5 <= streaming["memory"]["ratio"] <= 1.5
    )

    if args.smoke:
        # The gate checks machinery, not hardware: served bits match the
        # offline recipe, co-arriving requests actually shared batches,
        # the streaming cache does O(changed windows) encoder work and
        # peak memory tracks the cost model.  Throughput claims are NOT
        # gated — CI is noisy.
        ok = (
            all(identical.values())
            and results["micro"]["mean_batch_width"] > 1.0
            and results["batch1"]["max_batch_width"] == 1
            and stream_ok
        )
        print(f"smoke   : {'ok' if ok else 'FAIL'}")
        return 0 if ok else 1

    record = {
        "benchmark": "serve_micro_batching",
        "cpu_count": os.cpu_count(),
        "fit": FIT,
        "load": {"requests": n_requests, "clients": clients, "seed": 7},
        "batch1": results["batch1"],
        "micro": results["micro"],
        "qps_speedup": round(speedup, 3),
        "bit_identical_to_offline": identical,
        "streaming": streaming,
    }
    Path(args.output).write_text(json.dumps(record, indent=2) + "\n")
    print(f"wrote   : {args.output}")
    return 0 if speedup >= 2.0 and all(identical.values()) and stream_ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
