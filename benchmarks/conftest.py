"""Shared infrastructure for the paper-regeneration benchmarks.

Each benchmark regenerates one table or figure of the paper and writes
its rendering to ``benchmarks/results/``.  All benchmarks share one
:class:`ExperimentRunner` (session scope) so runs are computed once
and reused — e.g. Figure 4's ranks come from the same sweep as
Table 2, exactly as in the paper.

The grid size is controlled by ``REPRO_BENCH_PRESET``:

* ``micro``   — 3 datasets, 2 seeds (~2 min): smoke-check the harness.
* ``fast``    — all 12 datasets, 3 seeds (~20 min): the default; the
  numbers recorded in EXPERIMENTS.md come from this preset.
* ``standard``— larger surrogates and budgets (hours).
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.experiments import FAST, STANDARD, ExperimentConfig, ExperimentRunner

RESULTS_DIR = Path(__file__).parent / "results"

_MICRO = FAST.with_(
    seeds=(0, 1),
    datasets=("JapaneseVowels", "NATOPS", "Heartbeat"),
    pretrain_steps=5,
    head_epochs=15,
    joint_epochs=4,
    full_epochs=4,
)

_PRESETS: dict[str, ExperimentConfig] = {
    "micro": _MICRO,
    "fast": FAST,
    "standard": STANDARD,
}


@pytest.fixture(scope="session")
def bench_config() -> ExperimentConfig:
    name = os.environ.get("REPRO_BENCH_PRESET", "fast")
    try:
        return _PRESETS[name]
    except KeyError:
        raise KeyError(
            f"REPRO_BENCH_PRESET={name!r} unknown; choose from {sorted(_PRESETS)}"
        ) from None


@pytest.fixture(scope="session")
def runner(bench_config) -> ExperimentRunner:
    return ExperimentRunner(bench_config)


def record(name: str, rendering: str) -> None:
    """Persist a table/figure rendering under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.md").write_text(rendering + "\n")
