"""Ablation: is the speedup the channel reduction or the embedding cache?

DESIGN.md's key claim: with a fit-once adapter + frozen encoder, the
speedup comes from running the encoder *once* (embedding cache), not
merely from having fewer channels.  This ablation fits the identical
(PCA, head) configuration with and without the cache and compares real
wall-clock time — same accuracy, very different cost.
"""

from __future__ import annotations

import numpy as np

from repro.adapters import make_adapter
from repro.data import load_dataset
from repro.evaluation import render_table
from repro.models import build_model
from repro.training import AdapterPipeline, FineTuneStrategy, TrainConfig


from .conftest import record


def run_ablation() -> dict[str, dict[str, float]]:
    dataset = load_dataset("NATOPS", seed=0, scale=0.3, max_length=64, normalize=False)
    config = TrainConfig(epochs=15, batch_size=32, learning_rate=3e-3, seed=0)
    results = {}
    for label, cached in (("cached", True), ("encoder-in-loop", False)):
        model = build_model("moment-tiny", seed=0)
        model.eval()
        pipeline = AdapterPipeline(model, make_adapter("pca", 5), dataset.num_classes, seed=0)
        report = pipeline.fit(
            dataset.x_train,
            dataset.y_train,
            strategy=FineTuneStrategy.ADAPTER_HEAD,
            config=config,
            use_embedding_cache=cached,
        )
        results[label] = {
            "seconds": report.total_s,
            "accuracy": pipeline.score(dataset.x_test, dataset.y_test),
            "used_cache": float(report.used_embedding_cache),
        }
    return results


def test_ablation_embedding_cache(benchmark):
    results = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    rows = [
        [label, f"{r['seconds']:.2f}s", f"{r['accuracy']:.3f}"]
        for label, r in results.items()
    ]
    table = render_table(["configuration", "wall time", "accuracy"], rows)
    record("ablation_cache", f"# Ablation: embedding cache on/off\n{table}")
    print("\n" + table)

    cached = results["cached"]
    uncached = results["encoder-in-loop"]
    assert cached["used_cache"] == 1.0
    assert uncached["used_cache"] == 0.0
    # Caching must be decisively faster for the same configuration.
    assert uncached["seconds"] > 2.0 * cached["seconds"], results
    # And it is exactly the same computation, so accuracy is comparable.
    assert abs(cached["accuracy"] - uncached["accuracy"]) < 0.25
