"""Ablation: sensitivity to the reduced channel count D'.

The paper fixes D' = 5 throughout; this ablation sweeps D' for the PCA
adapter and reports (a) surrogate accuracy and (b) simulated paper-
scale fine-tuning time, which must grow linearly in D' (the
channel-linearity the whole paper rests on).
"""

from __future__ import annotations

import numpy as np

from repro.adapters import make_adapter
from repro.data import dataset_info, load_dataset
from repro.evaluation import render_table
from repro.models import build_model
from repro.resources import simulate_finetuning
from repro.training import AdapterPipeline, FineTuneStrategy, TrainConfig

from .conftest import record

CHANNEL_SWEEP = (2, 5, 8, 12)
DATASET = "Heartbeat"  # 61 channels


def run_sweep() -> list[list[str]]:
    dataset = load_dataset(DATASET, seed=0, scale=0.15, max_length=64, normalize=False)
    rows = []
    for channels in CHANNEL_SWEEP:
        model = build_model("moment-tiny", seed=0)
        model.eval()
        pipeline = AdapterPipeline(model, make_adapter("pca", channels), dataset.num_classes, seed=0)
        pipeline.fit(
            dataset.x_train,
            dataset.y_train,
            strategy=FineTuneStrategy.ADAPTER_HEAD,
            config=TrainConfig(epochs=40, batch_size=32, learning_rate=3e-3, seed=0),
        )
        accuracy = pipeline.score(dataset.x_test, dataset.y_test)
        simulated = simulate_finetuning(
            "moment-large", dataset_info(DATASET), adapter="lcomb", reduced_channels=channels
        )
        rows.append([str(channels), f"{accuracy:.3f}", f"{simulated.seconds:.0f}s"])
    return rows


def test_ablation_reduced_channels(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    table = render_table(["D'", "accuracy (surrogate)", "simulated lcomb time"], rows)
    record("ablation_channels", f"# Ablation: reduced channel count D'\n{table}")
    print("\n" + table)

    times = [float(row[2].rstrip("s")) for row in rows]
    assert all(a < b for a, b in zip(times, times[1:])), "time must grow with D'"
    accuracies = [float(row[1]) for row in rows]
    assert max(accuracies) > 0.5, "sweep should contain a working configuration"
