"""Ablation: the paper's future-work direction — richer adapters.

Compares the two extension adapters this library contributes (Fisher
LDA and correlation-cluster averaging) against the paper's PCA on
several datasets, under the identical adapter+head protocol.
"""

from __future__ import annotations

import numpy as np

from repro.adapters import make_adapter
from repro.data import load_dataset
from repro.evaluation import render_table
from repro.models import build_model
from repro.training import AdapterPipeline, FineTuneStrategy, TrainConfig

from .conftest import record

DATASETS = ("Heartbeat", "NATOPS", "FingerMovements")
ADAPTERS = ("pca", "lda", "cluster_avg")


def run_comparison() -> dict[str, list[float]]:
    accuracies: dict[str, list[float]] = {name: [] for name in ADAPTERS}
    for dataset_name in DATASETS:
        dataset = load_dataset(dataset_name, seed=0, scale=0.15, max_length=64, normalize=False)
        for adapter_name in ADAPTERS:
            model = build_model("moment-tiny", seed=0)
            model.eval()
            pipeline = AdapterPipeline(
                model, make_adapter(adapter_name, 5), dataset.num_classes, seed=0
            )
            pipeline.fit(
                dataset.x_train,
                dataset.y_train,
                strategy=FineTuneStrategy.ADAPTER_HEAD,
                config=TrainConfig(epochs=40, batch_size=32, learning_rate=3e-3, seed=0),
            )
            accuracies[adapter_name].append(pipeline.score(dataset.x_test, dataset.y_test))
    return accuracies


def test_ablation_extension_adapters(benchmark):
    accuracies = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    rows = [
        [name] + [f"{a:.3f}" for a in accs] + [f"{np.mean(accs):.3f}"]
        for name, accs in accuracies.items()
    ]
    table = render_table(["adapter"] + list(DATASETS) + ["mean"], rows)
    record("ablation_extensions", f"# Ablation: extension adapters vs PCA\n{table}")
    print("\n" + table)

    # All three are fit-once adapters feeding the same cached-head
    # training; each must clear chance level on average.
    for name, accs in accuracies.items():
        assert np.mean(accs) > 0.35, (name, accs)
