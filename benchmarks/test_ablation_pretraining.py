"""Ablation: does foundation-model pretraining matter downstream?

Sweeps the synthetic-corpus pretraining budget of the MOMENT-style
model and measures (a) the masked-reconstruction loss it reaches and
(b) downstream adapter+head accuracy with frozen encoder.
"""

from __future__ import annotations

import numpy as np

from repro.adapters import make_adapter
from repro.data import load_dataset
from repro.evaluation import render_table
from repro.models import MomentModel, pretrain_moment, synthetic_pretraining_corpus
from repro.training import AdapterPipeline, FineTuneStrategy, TrainConfig

from .conftest import record

STEP_SWEEP = (0, 20, 80)


def run_sweep() -> list[tuple[int, float, float]]:
    rng = np.random.default_rng(0)
    corpus = synthetic_pretraining_corpus(128, 96, rng)
    dataset = load_dataset("NATOPS", seed=0, scale=0.3, max_length=64, normalize=False)
    results = []
    for steps in STEP_SWEEP:
        model = MomentModel("moment-tiny", seed=0)
        final_loss = float("nan")
        if steps:
            losses = pretrain_moment(model, corpus, steps=steps, batch_size=32, seed=0)
            final_loss = losses[-1]
        model.eval()
        pipeline = AdapterPipeline(model, make_adapter("pca", 5), dataset.num_classes, seed=0)
        pipeline.fit(
            dataset.x_train,
            dataset.y_train,
            strategy=FineTuneStrategy.ADAPTER_HEAD,
            config=TrainConfig(epochs=40, batch_size=32, learning_rate=3e-3, seed=0),
        )
        accuracy = pipeline.score(dataset.x_test, dataset.y_test)
        results.append((steps, final_loss, accuracy))
    return results


def test_ablation_pretraining_budget(benchmark):
    results = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    rows = [
        [str(steps), "-" if np.isnan(loss) else f"{loss:.3f}", f"{acc:.3f}"]
        for steps, loss, acc in results
    ]
    table = render_table(["pretrain steps", "final recon loss", "downstream accuracy"], rows)
    record("ablation_pretraining", f"# Ablation: pretraining budget\n{table}")
    print("\n" + table)

    losses = [loss for _, loss, _ in results if np.isfinite(loss)]
    assert losses == sorted(losses, reverse=True), "longer pretraining -> lower loss"
    accuracies = [acc for _, _, acc in results]
    assert all(a > 0.2 for a in accuracies)
