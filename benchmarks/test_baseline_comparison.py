"""Benchmark: classical baselines vs adapter+TSFM (paper §2 context).

Puts the paper's approach next to the classical methods its Related
Work discusses: 1-NN DTW and ROCKET.  The comparison is run on the
surrogate datasets; the point is the *pipeline* comparison (all
methods consume the identical data), not absolute numbers.
"""

from __future__ import annotations

import time

import numpy as np

from repro.adapters import make_adapter
from repro.baselines import DTW1NNClassifier, RocketClassifier
from repro.data import load_dataset
from repro.evaluation import render_table
from repro.models import build_model
from repro.training import AdapterPipeline, FineTuneStrategy, TrainConfig

from .conftest import record

DATASETS = ("JapaneseVowels", "NATOPS")


def run_comparison() -> list[list[str]]:
    rows = []
    for dataset_name in DATASETS:
        dataset = load_dataset(dataset_name, seed=0, scale=0.15, max_length=48, normalize=False)

        # adapter + TSFM (the paper's approach)
        start = time.perf_counter()
        model = build_model("moment-tiny", seed=0)
        model.eval()
        pipeline = AdapterPipeline(model, make_adapter("pca", 5), dataset.num_classes, seed=0)
        pipeline.fit(
            dataset.x_train,
            dataset.y_train,
            strategy=FineTuneStrategy.ADAPTER_HEAD,
            config=TrainConfig(epochs=40, batch_size=32, learning_rate=3e-3, seed=0),
        )
        rows.append(
            [dataset_name, "PCA + MOMENT head", f"{pipeline.score(dataset.x_test, dataset.y_test):.3f}",
             f"{time.perf_counter() - start:.2f}s"]
        )

        # ROCKET
        start = time.perf_counter()
        rocket = RocketClassifier(num_kernels=300, seed=0).fit(dataset.x_train, dataset.y_train)
        rows.append(
            [dataset_name, "ROCKET (300 kernels)", f"{rocket.score(dataset.x_test, dataset.y_test):.3f}",
             f"{time.perf_counter() - start:.2f}s"]
        )

        # 1-NN DTW (subsampled: it is quadratic)
        start = time.perf_counter()
        limit = min(40, len(dataset.x_train))
        dtw = DTW1NNClassifier(band=5).fit(dataset.x_train[:limit], dataset.y_train[:limit])
        test_limit = min(40, len(dataset.x_test))
        dtw_accuracy = dtw.score(dataset.x_test[:test_limit], dataset.y_test[:test_limit])
        rows.append(
            [dataset_name, "1-NN DTW (band 5)", f"{dtw_accuracy:.3f}",
             f"{time.perf_counter() - start:.2f}s"]
        )
    return rows


def test_baselines_vs_adapter_tsfm(benchmark):
    rows = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    table = render_table(["Dataset", "Method", "Accuracy", "Wall time"], rows)
    record("baseline_comparison", f"# Classical baselines vs adapter+TSFM\n{table}")
    print("\n" + table)

    accuracies = [float(row[2]) for row in rows]
    assert all(np.isfinite(a) for a in accuracies)
    # Every method must beat random guessing on at least one dataset.
    chance = {"JapaneseVowels": 1 / 9, "NATOPS": 1 / 6}
    by_method: dict[str, list[float]] = {}
    for dataset_name, method, accuracy, _ in rows:
        by_method.setdefault(method, []).append(float(accuracy) - chance[dataset_name])
    for method, margins in by_method.items():
        assert max(margins) > 0.1, (method, margins)
