"""Benchmark: regenerate Figure 1 (mean fine-tuning time per adapter).

The headline efficiency figure: simulated V100 seconds at paper scale
(primary, matches the paper's bars) plus the actually measured
tiny-scale wall-clock seconds (secondary evidence that the embedding
cache is what produces the gap).
"""

from __future__ import annotations

import numpy as np

from repro.experiments import figure1

from .conftest import record


def test_figure1_running_times(benchmark, runner):
    result = benchmark.pedantic(figure1, args=(runner,), rounds=1, iterations=1)
    record("figure1", result.render())
    print("\n" + result.render())

    moment = result.series["MOMENT/simulated_s"]
    vit = result.series["ViT/simulated_s"]

    fit_once = ("pca", "svd", "rand_proj", "var")
    moment_speedup = moment["no_adapter"] / np.mean([moment[a] for a in fit_once])
    vit_speedup = vit["no_adapter"] / np.mean([vit[a] for a in fit_once])

    # Paper: "over ten times faster" for MOMENT, "two-fold" for ViT.
    # The quantitative ratios need the full 12-dataset grid (narrow
    # micro grids understate the channel savings); the ordering holds
    # on any grid.
    if len(runner.config.datasets) == 12:
        assert moment_speedup > 5.0, f"MOMENT speedup {moment_speedup:.1f}x"
        assert vit_speedup > 1.3, f"ViT speedup {vit_speedup:.1f}x"
    else:
        assert moment_speedup > 1.0
        assert vit_speedup > 1.0
    # lcomb is the slowest configuration for both models.
    assert moment["lcomb"] > max(moment[a] for a in fit_once)
    assert vit["lcomb"] > max(vit[a] for a in fit_once)

    # Measured tiny-scale wall times show the same ordering where defined.
    measured = result.series["MOMENT/measured_s"]
    if np.isfinite(measured["no_adapter"]) and np.isfinite(measured["pca"]):
        assert measured["no_adapter"] > measured["pca"]
