"""Benchmark: regenerate Figure 2 (PCA vs Patch-PCA, pws = 1/8/16).

The paper finds no clear winner across patch window sizes — pws is a
dataset-dependent hyperparameter.  We check the series exist and that
no variant catastrophically dominates or collapses.
"""

from __future__ import annotations

import numpy as np

from repro.experiments import figure2

from .conftest import record


def test_figure2_pca_vs_patch_pca(benchmark, runner):
    result = benchmark.pedantic(figure2, args=(runner,), rounds=1, iterations=1)
    record("figure2", result.render())
    print("\n" + result.render())

    for model in runner.config.models:
        means = {
            label: np.nanmean(list(result.series[f"{model}/{label}"].values()))
            for label in ("pws=1 (PCA)", "pws=8", "pws=16")
        }
        values = list(means.values())
        assert all(np.isfinite(v) for v in values)
        # "No clear pattern": mean accuracies stay within a broad band
        # of each other rather than one variant collapsing to chance.
        assert max(values) - min(values) < 0.30, means
