"""Benchmark: regenerate Figure 3 (lcomb vs lcomb_top_k, k=7)."""

from __future__ import annotations

import numpy as np

from repro.experiments import figure3

from .conftest import record


def test_figure3_lcomb_vs_topk(benchmark, runner):
    result = benchmark.pedantic(figure3, args=(runner,), rounds=1, iterations=1)
    record("figure3", result.render())
    print("\n" + result.render())

    for model in runner.config.models:
        plain = result.series[f"{model}/lcomb"]
        top_k = result.series[f"{model}/lcomb_top_k"]
        assert set(plain) == set(top_k) == set(runner.config.datasets)
        # Both variants should track each other (same adapter family):
        # mean absolute gap stays moderate, as in the paper's figure.
        gaps = [
            abs(plain[d] - top_k[d])
            for d in plain
            if np.isfinite(plain[d]) and np.isfinite(top_k[d])
        ]
        assert gaps, "no dataset ran for both lcomb variants"
        assert float(np.mean(gaps)) < 0.35
