"""Benchmark: regenerate Figure 4 (average adapter ranks).

Paper finding: PCA attains the best (lowest) average rank for both
models; Rand_Proj and lcomb sit at the worse end.
"""

from __future__ import annotations

from repro.experiments import figure4

from .conftest import record


def test_figure4_average_ranks(benchmark, runner):
    result = benchmark.pedantic(figure4, args=(runner,), rounds=1, iterations=1)
    record("figure4", result.render())
    print("\n" + result.render())

    for model in runner.config.models:
        ranks = result.series[model]
        assert len(ranks) == 5
        # PCA must rank in the better half, ahead of random projection —
        # the consistent ordering the paper reports for both models.
        assert ranks["pca"] < ranks["rand_proj"], ranks
        sorted_methods = sorted(ranks, key=ranks.get)
        assert "pca" in sorted_methods[:3], ranks
