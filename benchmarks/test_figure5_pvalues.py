"""Benchmark: regenerate Figure 5 (pairwise Welch p-value heatmaps).

Paper finding: no statistically significant difference between
fine-tuning methods — the minimum pairwise p-value is 0.46 for MOMENT
and 0.25 for ViT.  We assert the same qualitative conclusion: no pair
of methods differs at the 5% level.
"""

from __future__ import annotations

from repro.experiments import figure5

from .conftest import record


def test_figure5_pairwise_pvalues(benchmark, runner):
    result = benchmark.pedantic(figure5, args=(runner,), rounds=1, iterations=1)
    record("figure5", result.render())
    print("\n" + result.render())

    for model in runner.config.models:
        min_p = result.series[f"{model}/min_p"]["min_p"]
        assert 0.0 <= min_p <= 1.0
        # The paper's conclusion: methods are statistically
        # indistinguishable when pooling accuracies across datasets.
        assert min_p > 0.05, f"{model}: min pairwise p = {min_p:.3f}"
