"""Benchmark: regenerate Figure 6 (lcomb: full FT vs adapter+head)."""

from __future__ import annotations

import numpy as np

from repro.experiments import figure6

from .conftest import record


def test_figure6_full_vs_adapter_head(benchmark, runner):
    result = benchmark.pedantic(figure6, args=(runner,), rounds=1, iterations=1)
    record("figure6", result.render())
    print("\n" + result.render())

    for model in runner.config.models:
        adapter_head = result.series[f"{model}/adapter+head"]
        full = result.series[f"{model}/full"]
        assert set(adapter_head) == set(full) == set(runner.config.datasets)
        # Both regimes produce finite accuracies on at least the
        # datasets that fit the budget.
        assert any(np.isfinite(v) for v in adapter_head.values())
        assert any(np.isfinite(v) for v in full.values())
