"""Benchmark: the paper's headline claims (abstract / §4 / §5).

* "up to a 10x speedup compared to the baseline model" (MOMENT),
  "two-fold speed increase" (ViT);
* "up to 4.5x more datasets to fit on a single GPU" (MOMENT: 9 vs 2),
  "2.4x more" (ViT: 12 vs 5).
"""

from __future__ import annotations

import pytest

from repro.experiments import headline_claims

from .conftest import record


def test_headline_claims(benchmark, runner):
    result = benchmark.pedantic(headline_claims, args=(runner,), rounds=1, iterations=1)
    record("headline_claims", result.render())
    print("\n" + result.render())

    moment = result.series["MOMENT"]
    vit = result.series["ViT"]

    # Dataset-fit claims are exact at paper scale (simulator-driven) as
    # long as the full 12-dataset grid is configured.
    if len(runner.config.datasets) == 12:
        assert moment["full_ft_ok"] == 2
        assert moment["lcomb_full_ft_ok"] == 9
        assert moment["fit_ratio"] == pytest.approx(4.5)
        assert vit["full_ft_ok"] == 5
        assert vit["lcomb_full_ft_ok"] == 12
        assert vit["fit_ratio"] == pytest.approx(2.4)
        assert moment["speedup"] > 8.0
        assert 1.5 < vit["speedup"] < 2.6
    else:
        # Reduced (micro) grids: direction must still hold.
        assert moment["lcomb_full_ft_ok"] >= moment["full_ft_ok"]
        assert moment["speedup"] > 1.0
