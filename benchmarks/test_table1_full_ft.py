"""Benchmark: regenerate Table 1 (full fine-tuning without adapter).

The COM/TO pattern comes from the V100 simulator at paper scale; the
accuracies of the jobs that fit come from actually fine-tuning the
runnable models on the surrogate datasets.
"""

from __future__ import annotations

from repro.experiments import table1
from repro.resources import RunStatus

from .conftest import record


def test_table1_full_finetuning(benchmark, runner):
    result = benchmark.pedantic(table1, args=(runner,), rounds=1, iterations=1)
    record("table1", result.render())
    print("\n" + result.render())

    # Sanity: at least one resource failure and one accuracy per model
    # column, as in the paper (most cells are COM/TO, a few are values).
    flat = [cell for row in result.rows for cell in row[1:]]
    assert any(cell in ("COM", "TO") for cell in flat)
    assert any("±" in cell for cell in flat)
