"""Benchmark: regenerate Table 2 (adapter comparison at D'=5).

This is the paper's main table: head-only vs every adapter, for both
foundation models, averaged over seeds.
"""

from __future__ import annotations

import numpy as np

from repro.experiments import table2

from .conftest import record


def test_table2_adapter_comparison(benchmark, runner):
    result = benchmark.pedantic(table2, args=(runner,), rounds=1, iterations=1)
    record("table2", result.render())
    print("\n" + result.render())

    # Shape check mirroring the paper's conclusion: averaged over all
    # datasets, fit-once adapters stay close to the no-adapter head
    # baseline (no catastrophic accuracy loss from D -> 5).
    def column_mean(column: str) -> float:
        values = [
            np.mean(v)
            for (_, _, col), v in result.values.items()
            if col == column and v is not None
        ]
        return float(np.mean(values))

    head = column_mean("head")
    pca = column_mean("pca")
    rand = column_mean("rand_proj")
    assert pca > head - 0.10, f"PCA mean {pca:.3f} collapsed vs head {head:.3f}"
    assert pca > rand, "PCA should beat random projection on average"
