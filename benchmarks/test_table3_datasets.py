"""Benchmark: regenerate Table 3 (dataset characteristics)."""

from __future__ import annotations

from repro.data import DATASETS
from repro.experiments import table3

from .conftest import record


def test_table3_dataset_characteristics(benchmark):
    result = benchmark.pedantic(table3, rounds=1, iterations=1)
    record("table3", result.render())
    print("\n" + result.render())

    assert len(result.rows) == len(DATASETS) == 12
    # Spot-check the extremes the paper highlights.
    duck = next(row for row in result.rows if "Duck" in row[0])
    assert duck[3] == "1345"  # widest dataset
    motor = next(row for row in result.rows if "Motor" in row[0])
    assert motor[4] == "3000"  # longest dataset
