"""Benchmark: regenerate Table 4 (PCA hyperparameter variants, MOMENT)."""

from __future__ import annotations

from repro.experiments import table4

from .conftest import record


def test_table4_pca_variants_moment(benchmark, runner):
    result = benchmark.pedantic(table4, args=(runner,), rounds=1, iterations=1)
    record("table4", result.render())
    print("\n" + result.render())

    assert result.headers == ["Dataset", "PCA", "Scaled PCA", "Patch_8", "Patch_16"]
    assert len(result.rows) == len(runner.config.datasets)
    # Every variant produced a value (these regimes always fit the GPU).
    for (_, _, col), values in result.values.items():
        assert values is not None, col
