"""Benchmark: regenerate Table 5 (PCA hyperparameter variants, ViT)."""

from __future__ import annotations

from repro.experiments import table5

from .conftest import record


def test_table5_pca_variants_vit(benchmark, runner):
    result = benchmark.pedantic(table5, args=(runner,), rounds=1, iterations=1)
    record("table5", result.render())
    print("\n" + result.render())

    assert result.headers == ["Dataset", "PCA", "Scaled PCA", "Patch_8", "Patch_16"]
    assert len(result.rows) == len(runner.config.datasets)
    for (_, model, _), values in result.values.items():
        assert model == "ViT"
        assert values is not None
