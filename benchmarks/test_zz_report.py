"""Final benchmark: assemble the paper-vs-measured report.

Named ``zz`` so pytest collects it last: by then the session-shared
runner has every table/figure run cached and the report costs almost
nothing extra.  Writes both ``benchmarks/results/experiments_report.md``
and the repository-root ``EXPERIMENTS.md`` when the full (12-dataset,
3-seed) grid was used.
"""

from __future__ import annotations

from pathlib import Path

from repro.experiments import build_report

from .conftest import record


def test_zz_experiments_report(benchmark, runner):
    report = benchmark.pedantic(build_report, args=(runner,), rounds=1, iterations=1)
    record("experiments_report", report)

    full_grid = len(runner.config.datasets) == 12 and len(runner.config.seeds) == 3
    if full_grid:
        Path(__file__).parent.parent.joinpath("EXPERIMENTS.md").write_text(report)

    assert report.startswith("# EXPERIMENTS")
    assert "Table 1" in report
    if full_grid:
        assert "Status agreement: 24/24 cells." in report
