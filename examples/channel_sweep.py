"""How many channels does a dataset really need?

Sweeps the reduced channel count D' for the PCA adapter on a
61-channel dataset and reports, for every D': surrogate accuracy, the
actual wall-clock cost of fine-tuning, and the *simulated* paper-scale
cost of the lcomb regime (which scales linearly in D').  The paper
fixes D' = 5; this is the experiment you would run to choose D' for
your own data.

Run with:  python examples/channel_sweep.py
"""

from __future__ import annotations

from repro.data import load_dataset
from repro.evaluation import render_table
from repro.experiments import sweep_reduced_channels
from repro.training import TrainConfig


def main() -> None:
    dataset = load_dataset("Heartbeat", seed=0, scale=0.2, max_length=96, normalize=False)
    print(f"Loaded {dataset.describe()}\n")

    points = sweep_reduced_channels(
        dataset,
        channel_grid=(2, 3, 5, 8, 12, 20),
        config=TrainConfig(epochs=50, batch_size=32, learning_rate=3e-3, seed=0),
    )

    rows = [
        [
            point.label,
            f"{point.accuracy:.3f}",
            f"{point.wall_seconds:.2f}s",
            f"{point.simulated.seconds / 60:.0f} min",
        ]
        for point in points
    ]
    print(
        render_table(
            ["D'", "accuracy (surrogate)", "wall time (tiny)", "simulated lcomb @ paper scale"],
            rows,
        )
    )

    best = max(points, key=lambda p: p.accuracy)
    print(
        f"\nBest accuracy at {best.label} on this surrogate — the intrinsic "
        "dimension is dataset-dependent (the paper's §4 observation), while "
        "paper-scale cost grows linearly in D' no matter what."
    )


if __name__ == "__main__":
    main()
