"""Classical methods vs adapter+foundation-model on one dataset.

The paper's Related Work (§2) situates TSFMs against classical time-
series classification: DTW nearest neighbour and random-convolution
methods (ROCKET).  This example runs all three families on the same
data and prints accuracy and wall-clock time — the trade-off the
paper's approach navigates (foundation-model quality at classical
cost, thanks to the adapter + embedding cache).

Run with:  python examples/classical_vs_foundation.py
"""

from __future__ import annotations

import time

from repro.adapters import make_adapter
from repro.baselines import DTW1NNClassifier, RocketClassifier
from repro.data import load_dataset
from repro.evaluation import render_table
from repro.models import load_pretrained
from repro.training import AdapterPipeline, FineTuneStrategy, TrainConfig


def main() -> None:
    dataset = load_dataset("NATOPS", seed=0, scale=0.4, max_length=51, normalize=False)
    print(f"Loaded {dataset.describe()}\n")
    rows = []

    # --- the paper's approach ------------------------------------------
    start = time.perf_counter()
    model = load_pretrained("moment-tiny", seed=0, pretrain_steps=30)
    pipeline = AdapterPipeline(model, make_adapter("pca", 5), dataset.num_classes, seed=0)
    pipeline.fit(
        dataset.x_train,
        dataset.y_train,
        strategy=FineTuneStrategy.ADAPTER_HEAD,
        config=TrainConfig(epochs=60, batch_size=32, learning_rate=3e-3, seed=0),
    )
    rows.append(
        ["PCA adapter + MOMENT", f"{pipeline.score(dataset.x_test, dataset.y_test):.3f}",
         f"{time.perf_counter() - start:.2f}s"]
    )

    # --- ROCKET ---------------------------------------------------------
    start = time.perf_counter()
    rocket = RocketClassifier(num_kernels=500, seed=0).fit(dataset.x_train, dataset.y_train)
    rows.append(
        ["ROCKET (500 kernels)", f"{rocket.score(dataset.x_test, dataset.y_test):.3f}",
         f"{time.perf_counter() - start:.2f}s"]
    )

    # --- 1-NN DTW --------------------------------------------------------
    start = time.perf_counter()
    dtw = DTW1NNClassifier(band=5).fit(dataset.x_train, dataset.y_train)
    rows.append(
        ["1-NN DTW (band 5)", f"{dtw.score(dataset.x_test, dataset.y_test):.3f}",
         f"{time.perf_counter() - start:.2f}s"]
    )

    print(render_table(["method", "accuracy", "wall time"], rows))
    print(
        "\nDTW pays per test sample; ROCKET pays per kernel; the adapter+TSFM"
        "\npipeline pays one encoder pass and then trains a linear head."
    )


if __name__ == "__main__":
    main()
