"""Extending the library: write your own adapter.

The paper's framework is deliberately pluggable — any channel
reduction that implements the :class:`repro.adapters.Adapter` API
slots into the same fine-tuning pipeline.  This example implements a
*correlation-clustering* adapter (group correlated channels, average
each group) and benchmarks it against PCA on a wide sensor dataset.

Run with:  python examples/custom_adapter.py
"""

from __future__ import annotations

import numpy as np

from repro.adapters import FittedAdapter, make_adapter
from repro.data import load_dataset
from repro.models import load_pretrained
from repro.training import AdapterPipeline, FineTuneStrategy, TrainConfig


class CorrelationClusterAdapter(FittedAdapter):
    """Average groups of correlated channels into D' virtual channels.

    A greedy clustering on the channel-correlation matrix: each of the
    D' clusters is seeded with the channel least correlated to the
    existing seeds; remaining channels join the seed they correlate
    with most.  The projection row of a cluster averages its members,
    preserving interpretability (each output is a named group of
    sensors) while denoising like PCA.
    """

    @property
    def name(self) -> str:
        return "corr_cluster"

    def _fit_projection(self, flat: np.ndarray, y: np.ndarray | None) -> np.ndarray:
        d = flat.shape[1]
        with np.errstate(invalid="ignore"):
            corr = np.corrcoef(flat, rowvar=False)
        corr = np.nan_to_num(np.abs(corr), nan=0.0)

        # Greedy seed selection: maximally decorrelated channels.
        seeds = [int(corr.sum(axis=1).argmax())]
        while len(seeds) < self.output_channels:
            affinity = corr[:, seeds].max(axis=1)
            affinity[seeds] = np.inf
            seeds.append(int(affinity.argmin()))

        assignment = corr[:, seeds].argmax(axis=1)
        projection = np.zeros((self.output_channels, d))
        for cluster in range(self.output_channels):
            members = np.flatnonzero(assignment == cluster)
            if len(members) == 0:
                members = np.array([seeds[cluster]])
            projection[cluster, members] = 1.0 / len(members)
        return projection


def evaluate(adapter, dataset) -> float:
    model = load_pretrained("moment-tiny", seed=0, pretrain_steps=30)
    pipeline = AdapterPipeline(model, adapter, dataset.num_classes, seed=0)
    pipeline.fit(
        dataset.x_train,
        dataset.y_train,
        strategy=FineTuneStrategy.ADAPTER_HEAD,
        config=TrainConfig(epochs=60, batch_size=32, learning_rate=3e-3, seed=0),
    )
    return pipeline.score(dataset.x_test, dataset.y_test)


def main() -> None:
    # PEMS-SF: 963 traffic sensors — plenty of correlated channels.
    dataset = load_dataset("PEMS-SF", seed=0, scale=0.2, max_length=96, normalize=False)
    print(f"Loaded {dataset.describe()}\n")

    custom = CorrelationClusterAdapter(output_channels=5)
    print(f"corr_cluster accuracy: {evaluate(custom, dataset):.3f}")
    print(f"PCA          accuracy: {evaluate(make_adapter('pca', 5), dataset):.3f}")
    print(f"VAR          accuracy: {evaluate(make_adapter('var', 5), dataset):.3f}")

    sizes = (custom.projection_ > 0).sum(axis=1)
    print(f"\ncorr_cluster grouped {dataset.num_channels} sensors into clusters of sizes {sizes.tolist()}")


if __name__ == "__main__":
    main()
