"""EEG scenario: compare every adapter on a high-channel-count dataset.

MotorImagery is a 64-channel EEG brain-computer-interface dataset —
the kind of workload the paper's intro motivates: far too many
channels to full-fine-tune a foundation model on a single GPU, yet
most channels are heavily correlated.  This example sweeps all the
paper's adapters at D' = 5 and reports accuracy plus wall-clock time,
mirroring Table 2 for one dataset.

Run with:  python examples/eeg_channel_reduction.py
"""

from __future__ import annotations

import time

from repro.adapters import ADAPTER_NAMES, make_adapter
from repro.data import load_dataset
from repro.evaluation import render_table
from repro.models import load_pretrained
from repro.training import AdapterPipeline, FineTuneStrategy, TrainConfig


def main() -> None:
    dataset = load_dataset("MotorImagery", seed=0, scale=0.2, max_length=128, normalize=False)
    print(f"Loaded {dataset.describe()}\n")

    rows = []
    for adapter_name in ("none",) + ADAPTER_NAMES:
        model = load_pretrained("moment-tiny", seed=0, pretrain_steps=30)
        adapter = make_adapter(adapter_name, output_channels=5, seed=0)
        trainable = adapter.trainable
        strategy = (
            FineTuneStrategy.HEAD if adapter_name == "none" else FineTuneStrategy.ADAPTER_HEAD
        )
        config = TrainConfig(
            epochs=10 if trainable else 60,
            batch_size=32,
            learning_rate=3e-3,
            seed=0,
        )
        start = time.perf_counter()
        pipeline = AdapterPipeline(model, adapter, dataset.num_classes, seed=0)
        report = pipeline.fit(dataset.x_train, dataset.y_train, strategy=strategy, config=config)
        accuracy = pipeline.score(dataset.x_test, dataset.y_test)
        elapsed = time.perf_counter() - start
        rows.append(
            [
                adapter.name,
                f"{accuracy:.3f}",
                f"{elapsed:.2f}s",
                "cached" if report.used_embedding_cache else "in loop",
            ]
        )

    print(render_table(["adapter", "accuracy", "wall time", "encoder"], rows))
    print(
        "\nFit-once adapters run the 64-channel encoder exactly once (embeddings"
        "\ncached); lcomb re-runs it every step — the paper's Figure-1 contrast."
    )


if __name__ == "__main__":
    main()
