"""Resource planning: will this fine-tuning job fit on your GPU?

The paper's Table 1 shows most multivariate datasets cannot be
full-fine-tuned on a V100-32GB within 2 hours.  This example uses the
library's analytic cost model to *predict* OK / TO (timeout) / COM
(CUDA out of memory) for every dataset and configuration before
launching anything — the same model that gates the experiment harness.

Run with:  python examples/gpu_budget_planning.py
"""

from __future__ import annotations

from repro.data import dataset_info, dataset_names
from repro.evaluation import render_table
from repro.resources import simulate_finetuning


def outcome(run) -> str:
    if run.ok:
        return f"OK {run.seconds / 60:.0f}min {run.peak_memory_gib:.0f}GiB"
    return f"{run.status} ({run.peak_memory_gib:.0f}GiB, {run.seconds / 3600:.1f}h)"


def main() -> None:
    print("Simulated NVIDIA V100-32GB, 2-hour budget (the paper's setup)\n")

    rows = []
    for name in dataset_names():
        info = dataset_info(name)
        full = simulate_finetuning("moment-large", info, adapter=None, full_finetune=True)
        head = simulate_finetuning("moment-large", info, adapter=None)
        pca = simulate_finetuning("moment-large", info, adapter="pca")
        lcomb = simulate_finetuning("moment-large", info, adapter="lcomb")
        rows.append(
            [f"{info.name} (D={info.num_channels})", outcome(full), outcome(head), outcome(pca), outcome(lcomb)]
        )
    print("MOMENT (341M-class encoder):")
    print(
        render_table(
            ["dataset", "full FT", "head only", "PCA+head", "lcomb+head"], rows
        )
    )

    fits_full = sum(
        simulate_finetuning("moment-large", dataset_info(d), full_finetune=True).ok
        for d in dataset_names()
    )
    fits_lcomb = sum(
        simulate_finetuning(
            "moment-large", dataset_info(d), adapter="lcomb", full_finetune=True
        ).ok
        for d in dataset_names()
    )
    print(
        f"\nDatasets that fit the budget: {fits_full}/12 under full fine-tuning, "
        f"{fits_lcomb}/12 with the lcomb adapter — {fits_lcomb / fits_full:.1f}x more "
        "(the paper's 4.5x claim)."
    )


if __name__ == "__main__":
    main()
