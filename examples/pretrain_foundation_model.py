"""Pretraining walkthrough: build both TSFMs from scratch.

The paper consumes ready-made checkpoints; this library also ships the
pretraining stage itself.  This example pretrains

* a MOMENT-style model with masked-patch reconstruction, and
* a ViT-style model with MoCo-flavoured InfoNCE,

on a synthetic heterogeneous corpus, then shows that pretraining
actually helps a downstream classification head.

Run with:  python examples/pretrain_foundation_model.py
"""

from __future__ import annotations

import numpy as np

from repro.adapters import make_adapter
from repro.data import load_dataset
from repro.models import (
    MomentModel,
    ViTModel,
    pretrain_moment,
    pretrain_vit,
    synthetic_pretraining_corpus,
)
from repro.training import AdapterPipeline, FineTuneStrategy, TrainConfig


def downstream_accuracy(model, dataset) -> float:
    pipeline = AdapterPipeline(model, make_adapter("pca", 5), dataset.num_classes, seed=0)
    pipeline.fit(
        dataset.x_train,
        dataset.y_train,
        strategy=FineTuneStrategy.ADAPTER_HEAD,
        config=TrainConfig(epochs=50, batch_size=32, learning_rate=3e-3, seed=0),
    )
    return pipeline.score(dataset.x_test, dataset.y_test)


def main() -> None:
    rng = np.random.default_rng(0)
    corpus = synthetic_pretraining_corpus(num_series=192, length=128, rng=rng)
    print(f"Pretraining corpus: {corpus.shape[0]} series of length {corpus.shape[1]}\n")

    # --- MOMENT: masked-patch reconstruction ---------------------------
    moment = MomentModel("moment-tiny", seed=0)
    losses = pretrain_moment(moment, corpus, steps=120, batch_size=32, mask_ratio=0.3, seed=0)
    print(
        "MOMENT masked reconstruction: "
        f"loss {losses[0]:.3f} -> {losses[-1]:.3f} over {len(losses)} steps"
    )

    # --- ViT: InfoNCE with momentum key encoder ------------------------
    vit = ViTModel("vit-tiny", seed=0)
    losses = pretrain_vit(vit, corpus, steps=120, batch_size=32, seed=0)
    print(
        "ViT InfoNCE contrastive:      "
        f"loss {losses[0]:.3f} -> {losses[-1]:.3f} over {len(losses)} steps\n"
    )

    # --- does pretraining help downstream? -----------------------------
    dataset = load_dataset("NATOPS", seed=0, scale=0.25, max_length=64, normalize=False)
    print(f"Downstream task: {dataset.describe()}")
    random_init = MomentModel("moment-tiny", seed=0)
    print(f"  MOMENT random init : accuracy={downstream_accuracy(random_init, dataset):.3f}")
    print(f"  MOMENT pretrained  : accuracy={downstream_accuracy(moment, dataset):.3f}")


if __name__ == "__main__":
    main()
