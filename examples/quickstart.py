"""Quickstart: fine-tune a foundation model with a PCA adapter.

Reproduces the paper's core recipe on one dataset:

1. load a multivariate time-series dataset (a UEA surrogate),
2. load a pretrained foundation model (MOMENT-style),
3. put a PCA adapter in front of it to reduce 61 channels to 5,
4. fine-tune only the classification head (the encoder runs once,
   its embeddings are cached), and
5. compare against the no-adapter baseline.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.adapters import make_adapter
from repro.data import load_dataset
from repro.models import load_pretrained
from repro.training import AdapterPipeline, FineTuneStrategy, TrainConfig


def main() -> None:
    # Heartbeat: 61-channel physiological recordings, 2 classes.
    # scale/max_length shrink the surrogate so this runs in seconds on CPU.
    dataset = load_dataset("Heartbeat", seed=0, scale=0.2, max_length=96, normalize=False)
    print(f"Loaded {dataset.describe()}")

    model = load_pretrained("moment-tiny", seed=0, pretrain_steps=30)
    print(f"Foundation model: {model!r}")

    config = TrainConfig(epochs=60, batch_size=32, learning_rate=3e-3, seed=0)

    # --- adapter + head: 61 channels -> 5 principal components --------
    adapter = make_adapter("pca", output_channels=5)
    pipeline = AdapterPipeline(model, adapter, dataset.num_classes, seed=0)
    report = pipeline.fit(
        dataset.x_train,
        dataset.y_train,
        strategy=FineTuneStrategy.ADAPTER_HEAD,
        config=config,
    )
    pca_accuracy = pipeline.score(dataset.x_test, dataset.y_test)
    print(
        f"PCA adapter + head : accuracy={pca_accuracy:.3f} "
        f"(fit {report.total_s:.2f}s, embeddings cached: {report.used_embedding_cache})"
    )

    # --- no adapter: head-only on all 61 channels ---------------------
    baseline_model = load_pretrained("moment-tiny", seed=0, pretrain_steps=30)
    baseline = AdapterPipeline(
        baseline_model, make_adapter("none"), dataset.num_classes, seed=0
    )
    base_report = baseline.fit(
        dataset.x_train, dataset.y_train, strategy=FineTuneStrategy.HEAD, config=config
    )
    base_accuracy = baseline.score(dataset.x_test, dataset.y_test)
    print(
        f"no adapter (head)  : accuracy={base_accuracy:.3f} "
        f"(fit {base_report.total_s:.2f}s)"
    )

    ratio = base_report.embedding_s / max(report.embedding_s, 1e-9)
    print(
        f"\nThe encoder processed {dataset.num_channels} channels without the "
        f"adapter vs 5 with it — embedding pass was {ratio:.1f}x slower."
    )


if __name__ == "__main__":
    main()
