"""Train, publish, and serve a fine-tuned classifier.

A fitted pipeline bundles three stateful pieces — adapter projection,
foundation-model weights, classification head — and the pipeline
registry persists all of them as one named, versioned, digest-checked
artifact (numpy archives + a JSON manifest, no pickle).  This example
fine-tunes on 61-channel Heartbeat data, publishes the result into a
registry, reloads it as a "deployed" copy and verifies bit-identical
predictions, then serves it online through ``deploy`` / ``client``
with micro-batching — and checks the served logits are bit-identical
to the offline fixed-width recipe too.

Run with:  python examples/train_save_deploy.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

from repro import ServeConfig, client, deploy, fit_pipeline, undeploy
from repro.training import AdapterPipeline, TrainConfig


def main() -> None:
    fitted = fit_pipeline(
        "Heartbeat",
        adapter="pca",
        channels=5,
        seed=0,
        scale=0.2,
        max_length=96,
        train_config=TrainConfig(epochs=60, batch_size=32, learning_rate=3e-3, seed=0),
    )
    dataset = fitted.dataset
    print(f"Loaded {dataset.describe()}")
    print(f"Trained: test accuracy {fitted.score(dataset.x_test, dataset.y_test):.3f}")

    with tempfile.TemporaryDirectory() as workdir:
        registry_dir = Path(workdir) / "registry"
        record = fitted.save(registry_dir, "heartbeat-pca")
        print(f"Published {record.ref} (digest {record.digest[:12]})")

        # --- cold restore: fresh objects, no retraining -----------------
        restored = AdapterPipeline.load(registry_dir, "heartbeat-pca")
        identical = np.array_equal(
            fitted.predict(dataset.x_test), restored.predict(dataset.x_test)
        )
        print(f"Restored copy reproduces predictions exactly: {identical}")

        # --- online serving: micro-batched, still the same bits ---------
        config = ServeConfig(max_batch=8, max_delay_s=0.002)
        deploy(fitted.pipeline, "heartbeat", store=registry_dir, config=config)
        handle = client("heartbeat")
        # The array form submits every series as its own request, so
        # they co-batch exactly like concurrent clients would.
        served = handle.predict_logits(dataset.x_test[:16])
        offline = fitted.predict_logits(dataset.x_test[:16], batch_size=config.max_batch)
        print(f"Served logits match the offline recipe: {np.array_equal(served, offline)}")
        print(f"One series -> label {handle.predict(dataset.x_test[0])}")
        stats = handle.stats()["batcher"]
        print(
            f"Served {stats['requests']} requests in {stats['batches']} micro-batches "
            f"(mean width {stats['batch_width']['mean']:.2f})"
        )
        undeploy("heartbeat")


if __name__ == "__main__":
    main()
