"""Train, save, and re-deploy a fine-tuned classifier.

A fitted pipeline bundles three stateful pieces — adapter projection,
foundation-model weights, classification head — and the library
persists all of them to one directory (numpy archives + a JSON
manifest, no pickle).  This example fine-tunes on 61-channel
Heartbeat data, saves the result, reloads it as a "deployed" copy and
verifies the two produce bit-identical predictions; it also exports
the dataset itself so the deployment can be smoke-tested elsewhere.

Run with:  python examples/train_save_deploy.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

from repro.adapters import make_adapter
from repro.data import load_dataset, load_dataset_file, save_dataset
from repro.models import load_pretrained
from repro.training import (
    AdapterPipeline,
    FineTuneStrategy,
    TrainConfig,
    load_pipeline,
    save_pipeline,
)


def main() -> None:
    dataset = load_dataset("Heartbeat", seed=0, scale=0.2, max_length=96, normalize=False)
    print(f"Loaded {dataset.describe()}")

    model = load_pretrained("moment-tiny", seed=0, pretrain_steps=30)
    pipeline = AdapterPipeline(model, make_adapter("pca", 5), dataset.num_classes, seed=0)
    pipeline.fit(
        dataset.x_train,
        dataset.y_train,
        strategy=FineTuneStrategy.ADAPTER_HEAD,
        config=TrainConfig(epochs=60, batch_size=32, learning_rate=3e-3, seed=0),
    )
    accuracy = pipeline.score(dataset.x_test, dataset.y_test)
    print(f"Trained: test accuracy {accuracy:.3f}")

    with tempfile.TemporaryDirectory() as workdir:
        checkpoint = Path(workdir) / "heartbeat-pca"
        save_pipeline(pipeline, checkpoint)
        data_file = save_dataset(dataset, Path(workdir) / "heartbeat-data")
        size_kb = sum(f.stat().st_size for f in checkpoint.iterdir()) / 1024
        print(f"Saved pipeline to {checkpoint.name}/ ({size_kb:.0f} KiB on disk)")

        # --- "deployment": fresh objects, no retraining -----------------
        deployed = load_pipeline(checkpoint)
        shipped_data = load_dataset_file(data_file)
        identical = np.array_equal(
            pipeline.predict(shipped_data.x_test), deployed.predict(shipped_data.x_test)
        )
        print(f"Deployed copy reproduces predictions exactly: {identical}")
        print(f"Deployed accuracy: {deployed.score(shipped_data.x_test, shipped_data.y_test):.3f}")


if __name__ == "__main__":
    main()
