#!/usr/bin/env bash
# The single pre-merge gate, in escalating tiers:
#
#   1. ruff         static lint over src (incl. repro.testing), tests,
#                   benchmarks, examples, scripts; degrades when absent
#   2. fast tests   tier-1 suite minus @pytest.mark.slow
#   3. slow tests   the @slow end-to-end checks on their own
#   4. selfcheck    repro selfcheck --smoke: invariants, the float32
#                   op-coverage gradcheck sweep, and the smoke golden
#                   scenario against ./goldens
#   5. nn smoke     fused-op gradchecks, the replay-parity sweep
#                   (eager vs compiled bit-identity for every
#                   registered op), and the tiny dtype/replay bench
#   6. chaos smoke  seeded SIGKILL-at-a-point + resume over a scripted
#                   grid: the journal/lease layer must converge to the
#                   reference results with zero re-executed done jobs
#                   (deterministic, well under a minute)
#   7. serve smoke  registry round-trip + a seeded in-process request
#                   burst (bit-identity + saturation errors), then the
#                   micro-batching bench in --smoke mode (whose
#                   streaming section also gates the O(changed
#                   windows) re-encode economy)
#   8. stream smoke the streaming equivalence contract (sample-at-a-
#                   time == offline bits, push-granularity invariance)
#                   plus the measured-vs-predicted peak-memory bound
#                   for chunked long-series encoding (< 20 s)
#
# Usage: scripts/check.sh [extra pytest args...]
#
# With arguments, tiers 2-3 collapse into one pytest run forwarding the
# arguments (e.g. `scripts/check.sh tests/exec -q` for one subtree);
# lint, selfcheck and the nn smoke always run.
set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH}

if command -v ruff >/dev/null 2>&1; then
    echo "== ruff =="
    ruff check src tests benchmarks examples scripts
elif python -c "import ruff" >/dev/null 2>&1; then
    echo "== ruff (module) =="
    python -m ruff check src tests benchmarks examples scripts
else
    echo "!! ruff not installed; skipping lint (pip install ruff)" >&2
fi

if [ "$#" -eq 0 ]; then
    echo "== fast tests (-m 'not slow') =="
    python -m pytest -m "not slow" -q

    # Exit code 5 means "no tests collected": an empty slow tier is
    # not a gate failure, just an empty marker set.
    echo "== slow tests (-m slow) =="
    python -m pytest -m "slow" -q || { status=$?; [ "$status" -eq 5 ] || exit "$status"; }
else
    echo "== tier-1 tests =="
    python -m pytest "$@"
fi

echo "== repro selfcheck (smoke) =="
python -m repro.cli selfcheck --smoke

# The numerics kernels back everything else, so they get an explicit
# gate even when the pytest args above selected an unrelated subtree:
# finite-difference gradchecks for the fused ops, the replay-parity
# sweep (every registered op must replay bit-identically through the
# compiled graph engine or be declared eager-only by name), then a tiny
# float64-vs-float32 trainer-step + eager-vs-compiled inference bench
# that must run end to end.
echo "== nn fast-numerics smoke =="
python -m pytest tests/nn/test_fused_ops.py tests/properties/test_replay_parity.py -q
python benchmarks/bench_nn.py --smoke

# Crash-safety gate: one seeded kill/resume scenario plus the shard
# double-claim race, end to end through real SIGKILLed subprocesses.
# The full kill-point sweep lives in tests/exec/test_chaos.py (tier 2);
# this tier pins the deepest scenario even when pytest args above
# selected an unrelated subtree.
echo "== chaos smoke (kill/resume) =="
python -m pytest "tests/exec/test_chaos.py::TestKillResumeConvergence::test_kill_anywhere_resume_converges[journal.committed-15]" \
                 "tests/exec/test_chaos.py::TestConcurrentShards::test_two_shards_share_a_grid_without_duplicate_execution" -q

# Serving gate: the registry publish/load round-trip and a seeded
# in-process request burst (concurrent submitters, micro-batch width,
# served-bits == offline-bits, queue-full / deadline typed errors),
# then the micro-batching bench's machinery tier.  All in-process and
# seeded — well under 15 s.
echo "== serve smoke (registry + request burst) =="
python -m pytest tests/serve/test_registry.py::TestPublishLoad \
                 tests/serve/test_serving.py -q
python benchmarks/bench_serve.py --smoke

# Streaming gate: the equivalence contract property (streamed bits ==
# offline fixed-width bits, push granularity invisible) and the
# cost-model peak-memory bound on a 100k-step chunked encode.
echo "== stream smoke (parity + memory bound) =="
python -m pytest "tests/properties/test_stream_parity.py::TestStreamOfflineParity::test_sample_at_a_time_matches_offline_compiled" \
                 "tests/properties/test_stream_parity.py::TestChunkingInvariance::test_push_granularity_is_invisible" \
                 "tests/stream/test_memory_bound.py::test_peak_memory_within_cost_model_bound" -q
