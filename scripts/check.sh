#!/usr/bin/env bash
# The single pre-merge gate: ruff + the tier-1 pytest suite.
#
# Usage: scripts/check.sh [extra pytest args...]
#
# Delegates to scripts/lint.sh (which degrades gracefully when ruff is
# not installed) so there is exactly one definition of the gate; extra
# arguments are forwarded to pytest, e.g.:
#
#     scripts/check.sh                 # full gate
#     scripts/check.sh tests/exec -q   # one subtree
set -euo pipefail
cd "$(dirname "$0")/.."

if [ "$#" -eq 0 ]; then
    exec scripts/lint.sh
fi

if command -v ruff >/dev/null 2>&1; then
    echo "== ruff =="
    ruff check src tests benchmarks examples scripts
elif python -c "import ruff" >/dev/null 2>&1; then
    echo "== ruff (module) =="
    python -m ruff check src tests benchmarks examples scripts
else
    echo "!! ruff not installed; skipping lint (pip install ruff)" >&2
fi

echo "== tier-1 tests =="
PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} python -m pytest "$@"
