#!/usr/bin/env bash
# The single pre-merge gate: ruff + the tier-1 pytest suite + the
# nn fast-numerics smoke (fused-op gradchecks and a tiny dtype bench).
#
# Usage: scripts/check.sh [extra pytest args...]
#
# Delegates to scripts/lint.sh (which degrades gracefully when ruff is
# not installed) so there is exactly one definition of the gate; extra
# arguments are forwarded to pytest, e.g.:
#
#     scripts/check.sh                 # full gate
#     scripts/check.sh tests/exec -q   # one subtree
set -euo pipefail
cd "$(dirname "$0")/.."

if [ "$#" -eq 0 ]; then
    scripts/lint.sh
else
    if command -v ruff >/dev/null 2>&1; then
        echo "== ruff =="
        ruff check src tests benchmarks examples scripts
    elif python -c "import ruff" >/dev/null 2>&1; then
        echo "== ruff (module) =="
        python -m ruff check src tests benchmarks examples scripts
    else
        echo "!! ruff not installed; skipping lint (pip install ruff)" >&2
    fi

    echo "== tier-1 tests =="
    PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} python -m pytest "$@"
fi

# The numerics kernels back everything else, so they get an explicit
# gate even when the pytest args above selected an unrelated subtree:
# finite-difference gradchecks for the fused ops, then a tiny
# float64-vs-float32 trainer-step bench that must run end to end.
echo "== nn fast-numerics smoke =="
PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} python -m pytest tests/nn/test_fused_ops.py -q
PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} python benchmarks/bench_nn.py --smoke
