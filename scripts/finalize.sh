#!/usr/bin/env bash
# Final deliverable assembly: run after `pytest benchmarks/ --benchmark-only`
# has produced benchmarks/results/ and EXPERIMENTS.md (via test_zz_report).
#
#   bash scripts/finalize.sh
#
# 1. runs the full test suite into test_output.txt;
# 2. appends the qualitative commentary to the generated EXPERIMENTS.md.
set -euo pipefail
cd "$(dirname "$0")/.."

python -m pytest tests/ 2>&1 | tee test_output.txt

if [ -f EXPERIMENTS.md ] && ! grep -q "Known deviations" EXPERIMENTS.md; then
    cat docs/experiments_commentary.md >> EXPERIMENTS.md
    echo "appended commentary to EXPERIMENTS.md"
fi
