#!/usr/bin/env bash
# One-command quality gate: ruff (when available) + the tier-1 suite.
# The lint sweep spans every python tree — src (including the
# repro.testing harness), tests, benchmarks, examples and scripts.
#
# Usage: scripts/lint.sh
#
# The container this repo is developed in does not always ship ruff;
# the lint step degrades to a warning instead of failing so the test
# gate still runs everywhere.  CI images with ruff get the full gate.
set -euo pipefail
cd "$(dirname "$0")/.."

if command -v ruff >/dev/null 2>&1; then
    echo "== ruff =="
    ruff check src tests benchmarks examples scripts
elif python -c "import ruff" >/dev/null 2>&1; then
    echo "== ruff (module) =="
    python -m ruff check src tests benchmarks examples scripts
else
    echo "!! ruff not installed; skipping lint (pip install ruff)" >&2
fi

echo "== tier-1 tests =="
PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} python -m pytest -x -q
