"""repro — reproduction of "User-Friendly Foundation Model Adapters for
Multivariate Time Series Classification" (ICDE 2025).

The package bundles everything the paper's experiments need, built
from scratch on numpy:

* :mod:`repro.nn` — a minimal deep-learning framework (autodiff,
  transformer encoder, optimizers);
* :mod:`repro.runtime` — content-addressed artifact store (embedding /
  weight / result reuse, in-memory + on-disk) and span instrumentation;
* :mod:`repro.models` — MOMENT-style and ViT-style time-series
  foundation models with their pretraining objectives;
* :mod:`repro.adapters` — the dimensionality-reduction adapters (PCA,
  Scaled/Patch-PCA, SVD, random projection, variance selection, and
  the learnable linear combiner);
* :mod:`repro.data` — the UEA Table-3 registry and synthetic
  surrogate datasets;
* :mod:`repro.resources` — the V100-32GB cost model deciding OK/TO/COM;
* :mod:`repro.training` — head / adapter+head / full fine-tuning with
  embedding caching;
* :mod:`repro.evaluation` — accuracy, Welch t-tests, ranks, rendering;
* :mod:`repro.exec` — spec-driven experiment API (:class:`JobSpec`,
  ``grid``) and the fault-tolerant parallel job executor;
* :mod:`repro.experiments` — one entry point per paper table/figure;
* :mod:`repro.serve` — pipeline registry + micro-batched online
  inference (``deploy`` / ``client``);
* :mod:`repro.stream` — streaming & long-context inference: chunked
  ``encode_long`` over arbitrarily long series and the incremental
  ``StreamingClassifier`` (bit-identical to offline prediction).

Quickstart (see ``docs/api.md`` for the full tour)::

    from repro import JobSpec, run_experiment, fit_pipeline, client

    # One cached, simulation-gated experiment job:
    result = run_experiment(JobSpec(dataset="Heartbeat", model="MOMENT", adapter="pca"))
    print(result.cell)          # accuracy, or "TO"/"COM"

    # Or hands-on, without the runner:
    fitted = fit_pipeline("Heartbeat", adapter="pca")
    print(fitted.score(fitted.dataset.x_test, fitted.dataset.y_test))

    # Serve it:
    fitted.deploy("heartbeat")
    label = client("heartbeat").predict(fitted.dataset.x_test[0])
"""

from . import nn  # noqa: F401  (import order: nn first, it has no siblings)
from . import runtime  # noqa: F401  (second: only depends on nn)
from . import adapters, baselines, data, evaluation, models, resources, training
from . import exec  # noqa: A004  (shadows no builtin at module scope)
from . import stream  # before serve: serve's sessions build on repro.stream
from . import experiments, serve
from .api import (
    FittedPipeline,
    JobSpec,
    ServeConfig,
    client,
    deploy,
    fit_pipeline,
    run_experiment,
    run_sweep,
    undeploy,
)
from .stream import StreamingClassifier, encode_long

__version__ = "1.0.0"

__all__ = [
    "nn",
    "runtime",
    "baselines",
    "models",
    "adapters",
    "data",
    "resources",
    "training",
    "evaluation",
    "exec",
    "experiments",
    "serve",
    "stream",
    "StreamingClassifier",
    "encode_long",
    "JobSpec",
    "run_experiment",
    "run_sweep",
    "fit_pipeline",
    "FittedPipeline",
    "deploy",
    "client",
    "undeploy",
    "ServeConfig",
    "__version__",
]
