"""repro — reproduction of "User-Friendly Foundation Model Adapters for
Multivariate Time Series Classification" (ICDE 2025).

The package bundles everything the paper's experiments need, built
from scratch on numpy:

* :mod:`repro.nn` — a minimal deep-learning framework (autodiff,
  transformer encoder, optimizers);
* :mod:`repro.runtime` — content-addressed artifact store (embedding /
  weight / result reuse, in-memory + on-disk) and span instrumentation;
* :mod:`repro.models` — MOMENT-style and ViT-style time-series
  foundation models with their pretraining objectives;
* :mod:`repro.adapters` — the dimensionality-reduction adapters (PCA,
  Scaled/Patch-PCA, SVD, random projection, variance selection, and
  the learnable linear combiner);
* :mod:`repro.data` — the UEA Table-3 registry and synthetic
  surrogate datasets;
* :mod:`repro.resources` — the V100-32GB cost model deciding OK/TO/COM;
* :mod:`repro.training` — head / adapter+head / full fine-tuning with
  embedding caching;
* :mod:`repro.evaluation` — accuracy, Welch t-tests, ranks, rendering;
* :mod:`repro.experiments` — one entry point per paper table/figure.

Quickstart::

    from repro.data import load_dataset
    from repro.models import load_pretrained
    from repro.adapters import make_adapter
    from repro.training import AdapterPipeline, FineTuneStrategy

    ds = load_dataset("Heartbeat", seed=0, scale=0.1)
    model = load_pretrained("moment-tiny", seed=0)
    pipeline = AdapterPipeline(model, make_adapter("pca", 5), ds.num_classes)
    pipeline.fit(ds.x_train, ds.y_train, strategy=FineTuneStrategy.ADAPTER_HEAD)
    print("accuracy:", pipeline.score(ds.x_test, ds.y_test))
"""

from . import nn  # noqa: F401  (import order: nn first, it has no siblings)
from . import runtime  # noqa: F401  (second: only depends on nn)
from . import adapters, baselines, data, evaluation, experiments, models, resources, training

__version__ = "1.0.0"

__all__ = [
    "nn",
    "runtime",
    "baselines",
    "models",
    "adapters",
    "data",
    "resources",
    "training",
    "evaluation",
    "experiments",
    "__version__",
]
