"""Dimensionality-reduction adapters (the paper's §3.3 methods)."""

from .base import Adapter, FittedAdapter, IdentityAdapter
from .linear_combiner import LinearCombinerAdapter, LinearCombinerModule
from .pca import PatchPCAAdapter, PCAAdapter, ScaledPCAAdapter, pca_reconstruction_error
from .random_projection import RandomProjectionAdapter
from .registry import ADAPTER_NAMES, make_adapter
from .supervised import ClusterAverageAdapter, LDAAdapter
from .svd import TruncatedSVDAdapter
from .variance import VarianceSelectorAdapter

__all__ = [
    "Adapter",
    "FittedAdapter",
    "IdentityAdapter",
    "PCAAdapter",
    "ScaledPCAAdapter",
    "PatchPCAAdapter",
    "pca_reconstruction_error",
    "TruncatedSVDAdapter",
    "RandomProjectionAdapter",
    "VarianceSelectorAdapter",
    "LinearCombinerAdapter",
    "LinearCombinerModule",
    "ADAPTER_NAMES",
    "make_adapter",
    "LDAAdapter",
    "ClusterAverageAdapter",
]
