"""Adapter interface.

An *adapter* maps multivariate series ``(N, T, D)`` to a reduced
channel space ``(N, T', D')`` before the (channel-independent)
foundation model consumes them.  Two families exist:

* **fit-once adapters** (PCA, SVD, random projection, variance
  selection): fitted on the training split once, then frozen.  Because
  they never change during fine-tuning, the frozen encoder's
  embeddings can be precomputed and cached — the source of the paper's
  ~10x speedup.
* **trainable adapters** (the linear combiner / lcomb family): an
  ``repro.nn`` module optimised jointly with the classification head,
  requiring a full encoder forward (and possibly backward) every step.
"""

from __future__ import annotations

import abc

import numpy as np

from ..data.preprocessing import validate_series

__all__ = ["Adapter", "FittedAdapter", "IdentityAdapter"]


class Adapter(abc.ABC):
    """Common adapter API.

    Attributes
    ----------
    output_channels:
        The reduced channel count ``D'`` this adapter produces.
    trainable:
        Whether the adapter carries parameters updated during
        fine-tuning (controls embedding-cache eligibility).
    """

    trainable: bool = False

    def __init__(self, output_channels: int) -> None:
        if output_channels <= 0:
            raise ValueError(f"output_channels must be positive, got {output_channels}")
        self.output_channels = output_channels
        self.input_channels: int | None = None

    @property
    def name(self) -> str:
        return type(self).__name__

    @abc.abstractmethod
    def fit(self, x: np.ndarray, y: np.ndarray | None = None) -> "Adapter":
        """Fit the adapter on training data ``x`` of shape (N, T, D)."""

    @abc.abstractmethod
    def transform(self, x: np.ndarray) -> np.ndarray:
        """Reduce ``x`` from (N, T, D) to (N, T', D')."""

    def fit_transform(self, x: np.ndarray, y: np.ndarray | None = None) -> np.ndarray:
        """Fit on ``x`` and return its reduced form in one call."""
        return self.fit(x, y).transform(x)

    # ------------------------------------------------------------------
    def _check_fit_input(self, x: np.ndarray) -> np.ndarray:
        x = validate_series(x)
        d = x.shape[-1]
        if self.output_channels > d:
            raise ValueError(
                f"{self.name}: output_channels={self.output_channels} exceeds "
                f"input channels D={d}"
            )
        self.input_channels = d
        return x

    def _check_transform_input(self, x: np.ndarray) -> np.ndarray:
        x = validate_series(x)
        if self.input_channels is None:
            raise RuntimeError(f"{self.name} used before fit()")
        if x.shape[-1] != self.input_channels:
            raise ValueError(
                f"{self.name}: expected {self.input_channels} channels, "
                f"got {x.shape[-1]}"
            )
        return x


class FittedAdapter(Adapter):
    """Base for fit-once (non-trainable) adapters holding a linear map.

    Subclasses implement :meth:`_fit_projection` returning a
    ``(D', D)`` projection applied uniformly across time steps (plus an
    optional per-channel preprocessing handled by the subclass).
    """

    def __init__(self, output_channels: int) -> None:
        super().__init__(output_channels)
        self.projection_: np.ndarray | None = None

    @abc.abstractmethod
    def _fit_projection(self, flat: np.ndarray, y: np.ndarray | None) -> np.ndarray:
        """Compute the (D', D) projection from (N*T, D) training rows."""

    def _preprocess(self, flat: np.ndarray) -> np.ndarray:
        """Hook for centering/scaling applied at both fit and transform."""
        return flat

    def fit(self, x: np.ndarray, y: np.ndarray | None = None) -> "FittedAdapter":
        x = self._check_fit_input(x)
        flat = x.reshape(-1, x.shape[-1])
        projection = self._fit_projection(self._preprocess_fit(flat), y)
        expected = (self.output_channels, x.shape[-1])
        if projection.shape != expected:
            raise AssertionError(
                f"{self.name}._fit_projection returned shape {projection.shape}, "
                f"expected {expected}"
            )
        self.projection_ = projection
        return self

    def _preprocess_fit(self, flat: np.ndarray) -> np.ndarray:
        """Fit-time preprocessing; default delegates to :meth:`_preprocess`."""
        return self._preprocess(flat)

    def transform(self, x: np.ndarray) -> np.ndarray:
        x = self._check_transform_input(x)
        if self.projection_ is None:
            raise RuntimeError(f"{self.name} used before fit()")
        n, t, d = x.shape
        flat = self._preprocess(x.reshape(-1, d))
        reduced = flat @ self.projection_.T
        return reduced.reshape(n, t, self.output_channels)


class IdentityAdapter(Adapter):
    """No-op adapter (the paper's "no adapter" configuration)."""

    def __init__(self) -> None:
        # output_channels is resolved at fit time to the input D.
        super().__init__(output_channels=1)

    @property
    def name(self) -> str:
        return "no_adapter"

    def fit(self, x: np.ndarray, y: np.ndarray | None = None) -> "IdentityAdapter":
        x = validate_series(x)
        self.input_channels = x.shape[-1]
        self.output_channels = x.shape[-1]
        return self

    def transform(self, x: np.ndarray) -> np.ndarray:
        return self._check_transform_input(x)
