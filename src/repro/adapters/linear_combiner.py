"""Linear Combiner (lcomb) — the paper's learnable adapter.

``lcomb`` learns the channel-mixing matrix ``W in R^{D' x D}``
*supervisedly*, jointly with the classification head (and optionally
the whole network).  Because its parameters change every optimisation
step, the foundation model must be re-run on every batch — the reason
it is the slowest adapter in Figure 1.

``lcomb_top_k`` (Appendix C.2) regularises the mixing: each row of the
(softmax-normalised) attention matrix keeps only its top-``k`` weights,
renormalised to sum to one, focusing each virtual channel on the
``k`` most relevant input channels.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..nn import functional as F
from .base import Adapter

__all__ = ["LinearCombinerAdapter", "LinearCombinerModule"]


class LinearCombinerModule(nn.Module):
    """The trainable mixing network: ``y = x @ A.T`` over channels.

    Parameters
    ----------
    in_channels, out_channels:
        D and D'.
    top_k:
        If given, apply the paper's top-k rule: rows of the softmax
        attention keep only their ``k`` largest entries, renormalised
        by the sum of the kept weights.  The selection mask is treated
        as a constant for gradients (straight-through on the kept
        entries), matching the "select then rescale" description.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        top_k: int | None = None,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        if out_channels > in_channels:
            raise ValueError(
                f"out_channels={out_channels} exceeds in_channels={in_channels}"
            )
        if top_k is not None and not 1 <= top_k <= in_channels:
            raise ValueError(f"top_k must be in [1, {in_channels}], got {top_k}")
        rng = rng if rng is not None else np.random.default_rng()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.top_k = top_k
        self.weight = nn.Parameter(nn.init.xavier_uniform((out_channels, in_channels), rng))

    def mixing_matrix(self) -> nn.Tensor:
        """Return the effective (D', D) mixing matrix as a graph node."""
        if self.top_k is None:
            return self.weight
        attention = F.softmax(self.weight, axis=-1)
        # Top-k mask per row, computed outside the graph.
        kept = np.argsort(attention.data, axis=-1)[:, -self.top_k :]
        mask = np.zeros_like(attention.data)
        np.put_along_axis(mask, kept, 1.0, axis=-1)
        masked = attention * nn.Tensor(mask)
        row_sums = masked.sum(axis=-1, keepdims=True)
        return masked / (row_sums + 1e-12)

    def forward(self, x: nn.Tensor) -> nn.Tensor:
        """Mix channels: (..., D) -> (..., D') via the current matrix."""
        x = nn.as_tensor(x)
        if x.shape[-1] != self.in_channels:
            raise ValueError(
                f"expected {self.in_channels} channels, got {x.shape[-1]}"
            )
        return x @ self.mixing_matrix().transpose()

    def __repr__(self) -> str:
        variant = f", top_k={self.top_k}" if self.top_k is not None else ""
        return f"LinearCombinerModule({self.in_channels}->{self.out_channels}{variant})"


class LinearCombinerAdapter(Adapter):
    """Adapter wrapper exposing :class:`LinearCombinerModule` via the
    common adapter API.

    ``fit`` only instantiates the module (lazily, once the input width
    is known); the actual training happens inside the fine-tuning
    pipeline, which discovers the module through :attr:`module` and
    adds its parameters to the optimiser.
    """

    trainable = True

    def __init__(
        self,
        output_channels: int,
        top_k: int | None = None,
        seed: int = 0,
    ) -> None:
        super().__init__(output_channels)
        self.top_k = top_k
        self.seed = seed
        self.module: LinearCombinerModule | None = None

    @property
    def name(self) -> str:
        return "lcomb" if self.top_k is None else "lcomb_top_k"

    def fit(self, x: np.ndarray, y: np.ndarray | None = None) -> "LinearCombinerAdapter":
        x = self._check_fit_input(x)
        if self.module is None or self.module.in_channels != x.shape[-1]:
            self.module = LinearCombinerModule(
                in_channels=x.shape[-1],
                out_channels=self.output_channels,
                top_k=self.top_k,
                rng=np.random.default_rng(self.seed),
            )
        return self

    def transform(self, x: np.ndarray) -> np.ndarray:
        """Apply the *current* mixing weights outside the autodiff graph."""
        x = self._check_transform_input(x)
        if self.module is None:
            raise RuntimeError("lcomb used before fit()")
        with nn.no_grad():
            return self.module(nn.Tensor(x)).data

    def transform_tensor(self, x: nn.Tensor) -> nn.Tensor:
        """Differentiable transform used inside the training pipeline."""
        if self.module is None:
            raise RuntimeError("lcomb used before fit()")
        return self.module(x)
