"""PCA-family adapters: PCA, Scaled PCA, and Patch-PCA.

Following §3.3 of the paper, PCA is applied to the ``(N*T, D)``
reshape of the data — capturing cross-channel (spatial) correlations
over all time steps while leaving the temporal axis intact — rather
than the ``(N, T*D)`` reshape, which destroys temporal structure and
is unstable when ``N << T*D``.
"""

from __future__ import annotations

import numpy as np

from ..data.preprocessing import validate_series
from .base import FittedAdapter

__all__ = ["PCAAdapter", "ScaledPCAAdapter", "PatchPCAAdapter", "pca_reconstruction_error"]


def _principal_directions(flat: np.ndarray, k: int, center: bool) -> tuple[np.ndarray, np.ndarray]:
    """Top-``k`` principal directions of (M, D) rows.

    Decomposes whichever Gram matrix is smaller: the D x D covariance
    when rows are plentiful (the usual (N*T, D) reshape), or the dual
    M x M matrix when the feature dimension dominates — the Patch-PCA
    regime, where ``pws * D`` can reach tens of thousands while only a
    few hundred patch rows exist.

    Returns ``(components, explained_variance)`` with components of
    shape (k, D), rows ordered by decreasing variance.
    """
    rows, dims = flat.shape
    if k > dims:
        raise ValueError(f"cannot extract {k} components from D={dims}")
    if center:
        flat = flat - flat.mean(axis=0, keepdims=True)
    denominator = max(rows - 1, 1)

    if dims <= rows:
        gram = (flat.T @ flat) / denominator
        eigenvalues, eigenvectors = np.linalg.eigh(gram)
        order = np.argsort(eigenvalues)[::-1][:k]
        components = eigenvectors[:, order].T
        variances = np.maximum(eigenvalues[order], 0.0)
    else:
        # Dual path: eigenvectors u of (X X^T)/den give right singular
        # directions v = X^T u / ||X^T u||, with the same eigenvalues.
        if k > rows:
            raise ValueError(
                f"cannot extract {k} components from {rows} rows of "
                f"{dims}-dimensional data (rank is at most {rows})"
            )
        dual = (flat @ flat.T) / denominator
        eigenvalues, eigenvectors = np.linalg.eigh(dual)
        order = np.argsort(eigenvalues)[::-1][:k]
        variances = np.maximum(eigenvalues[order], 0.0)
        projected = flat.T @ eigenvectors[:, order]  # (D, k)
        norms = np.linalg.norm(projected, axis=0)
        norms[norms < 1e-12] = 1.0
        components = (projected / norms).T

    # Fix sign convention (largest-|.| coordinate positive) so results
    # are deterministic across LAPACK implementations.
    signs = np.sign(components[np.arange(k), np.abs(components).argmax(axis=1)])
    signs[signs == 0] = 1.0
    return components * signs[:, None], variances


class PCAAdapter(FittedAdapter):
    """Standard PCA over channels: (N*T, D) -> top D' components."""

    def __init__(self, output_channels: int) -> None:
        super().__init__(output_channels)
        self.mean_: np.ndarray | None = None
        self.explained_variance_: np.ndarray | None = None

    @property
    def name(self) -> str:
        return "PCA"

    def _fit_projection(self, flat: np.ndarray, y: np.ndarray | None) -> np.ndarray:
        self.mean_ = flat.mean(axis=0)
        components, variance = _principal_directions(
            flat, self.output_channels, center=True
        )
        self.explained_variance_ = variance
        return components

    def _preprocess(self, flat: np.ndarray) -> np.ndarray:
        if self.mean_ is None:
            # fit-time call: mean not known yet; handled in _preprocess_fit.
            return flat
        return flat - self.mean_

    def _preprocess_fit(self, flat: np.ndarray) -> np.ndarray:
        return flat

    def explained_variance_ratio(self) -> np.ndarray:
        """Fraction of total channel variance captured per component."""
        if self.explained_variance_ is None:
            raise RuntimeError("PCA used before fit()")
        total = self.explained_variance_.sum()
        if total <= 0:
            return np.zeros_like(self.explained_variance_)
        return self.explained_variance_ / total


class ScaledPCAAdapter(PCAAdapter):
    """PCA on channel-standardised data (the paper's 'Scaled PCA').

    Each channel is divided by its training-set standard deviation
    before the eigendecomposition, i.e. PCA on the correlation rather
    than covariance matrix.
    """

    def __init__(self, output_channels: int, eps: float = 1e-8) -> None:
        super().__init__(output_channels)
        self.eps = eps
        self.scale_: np.ndarray | None = None

    @property
    def name(self) -> str:
        return "Scaled_PCA"

    def _fit_projection(self, flat: np.ndarray, y: np.ndarray | None) -> np.ndarray:
        self.scale_ = flat.std(axis=0) + self.eps
        return super()._fit_projection(flat / self.scale_, y)

    def _preprocess(self, flat: np.ndarray) -> np.ndarray:
        if self.scale_ is not None:
            flat = flat / self.scale_
        return super()._preprocess(flat)

    def _preprocess_fit(self, flat: np.ndarray) -> np.ndarray:
        return flat


class PatchPCAAdapter(FittedAdapter):
    """Patch-PCA (Appendix C.1): PCA over (patch window x channels) blocks.

    The series is cut into ``n_p`` non-overlapping windows of
    ``patch_window_size`` (pws) steps; PCA runs on the
    ``(N*n_p, pws*D)`` reshape with ``pws * D'`` components, and the
    reduced patches are unfolded back to ``(N, n_p*pws, D')``.  With
    ``pws=1`` this is exactly :class:`PCAAdapter`.  Trailing steps not
    filling a whole window are dropped (documented behaviour).
    """

    def __init__(self, output_channels: int, patch_window_size: int = 8) -> None:
        super().__init__(output_channels)
        if patch_window_size <= 0:
            raise ValueError(
                f"patch_window_size must be positive, got {patch_window_size}"
            )
        self.patch_window_size = patch_window_size
        self.mean_: np.ndarray | None = None

    @property
    def name(self) -> str:
        return f"Patch_PCA(pws={self.patch_window_size})"

    def _patchify(self, x: np.ndarray) -> np.ndarray:
        """(N, T, D) -> (N * n_p, pws * D); drops the ragged tail."""
        n, t, d = x.shape
        pws = self.patch_window_size
        n_patches = t // pws
        if n_patches == 0:
            raise ValueError(
                f"sequence length {t} shorter than patch window {pws}"
            )
        trimmed = x[:, : n_patches * pws, :]
        return trimmed.reshape(n * n_patches, pws * d)

    def fit(self, x: np.ndarray, y: np.ndarray | None = None) -> "PatchPCAAdapter":
        x = self._check_fit_input(x)
        patches = self._patchify(x)
        self.mean_ = patches.mean(axis=0)
        k = self.patch_window_size * self.output_channels
        if k > patches.shape[1]:
            raise ValueError(
                f"pws*D'={k} components exceed patch dimension {patches.shape[1]}"
            )
        # The sample rank bounds the extractable components; when the
        # training split has fewer patch rows than pws*D' (tiny
        # surrogates of short series), keep the rank's worth of
        # components and pad with zero directions so the output
        # geometry stays (N, n_p*pws, D').
        effective_k = min(k, patches.shape[0])
        components, _ = _principal_directions(patches, effective_k, center=True)
        if effective_k < k:
            padding = np.zeros((k - effective_k, patches.shape[1]))
            components = np.vstack([components, padding])
        self.projection_ = components  # (pws*D', pws*D)
        return self

    def transform(self, x: np.ndarray) -> np.ndarray:
        x = self._check_transform_input(x)
        if self.projection_ is None or self.mean_ is None:
            raise RuntimeError(f"{self.name} used before fit()")
        n, t, _ = x.shape
        pws = self.patch_window_size
        n_patches = t // pws
        patches = self._patchify(x) - self.mean_
        reduced = patches @ self.projection_.T  # (N*n_p, pws*D')
        return reduced.reshape(n, n_patches * pws, self.output_channels)

    def _fit_projection(self, flat: np.ndarray, y: np.ndarray | None) -> np.ndarray:
        raise NotImplementedError("PatchPCAAdapter overrides fit() directly")


def pca_reconstruction_error(adapter: PCAAdapter, x: np.ndarray) -> float:
    """Mean squared reconstruction error of PCA on (N, T, D) data.

    Diagnostic used in tests: projecting to D' components and back
    should lose only the variance outside the retained subspace.
    """
    x = validate_series(x)
    flat = x.reshape(-1, x.shape[-1])
    if adapter.projection_ is None or adapter.mean_ is None:
        raise RuntimeError("PCA used before fit()")
    centered = flat - adapter.mean_
    reduced = centered @ adapter.projection_.T
    restored = reduced @ adapter.projection_ + adapter.mean_
    return float(((flat - restored) ** 2).mean())
