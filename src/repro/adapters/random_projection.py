"""Random projection adapter (Gaussian and sparse variants)."""

from __future__ import annotations

import numpy as np

from .base import FittedAdapter

__all__ = ["RandomProjectionAdapter"]


class RandomProjectionAdapter(FittedAdapter):
    """Project channels through a random matrix (§3.3, 'Rand Proj').

    Johnson–Lindenstrauss style: entries drawn i.i.d. and scaled by
    ``1/sqrt(D')`` so squared norms are preserved in expectation.  The
    ``sparse`` variant uses Achlioptas' +-sqrt(3)/0 entries (density
    1/3), which is cheaper to apply for very wide inputs.

    'Fitting' only records the input width and draws the matrix — no
    statistics of the data are used, which is exactly why this adapter
    is the cheapest and (per the paper's Figure 4) ranks below PCA.
    """

    def __init__(
        self,
        output_channels: int,
        seed: int = 0,
        sparse: bool = False,
    ) -> None:
        super().__init__(output_channels)
        self.seed = seed
        self.sparse = sparse

    @property
    def name(self) -> str:
        return "Rand_Proj"

    def _fit_projection(self, flat: np.ndarray, y: np.ndarray | None) -> np.ndarray:
        rng = np.random.default_rng(self.seed)
        d = flat.shape[1]
        k = self.output_channels
        if self.sparse:
            # Achlioptas (2003): entries sqrt(3)*{+1 w.p. 1/6, 0 w.p. 2/3, -1 w.p. 1/6}.
            choices = rng.choice([-1.0, 0.0, 1.0], size=(k, d), p=[1 / 6, 2 / 3, 1 / 6])
            matrix = np.sqrt(3.0) * choices
        else:
            matrix = rng.normal(size=(k, d))
        return matrix / np.sqrt(k)
