"""Adapter factory keyed by the names used in the paper's tables."""

from __future__ import annotations

from typing import Callable

from .base import Adapter, IdentityAdapter
from .linear_combiner import LinearCombinerAdapter
from .pca import PatchPCAAdapter, PCAAdapter, ScaledPCAAdapter
from .random_projection import RandomProjectionAdapter
from .supervised import ClusterAverageAdapter, LDAAdapter
from .svd import TruncatedSVDAdapter
from .variance import VarianceSelectorAdapter

__all__ = ["ADAPTER_NAMES", "make_adapter"]

#: Default top-k used by lcomb_top_k in the paper (Appendix C.2).
DEFAULT_TOP_K = 7


#: Adapter-specific options each factory actually consumes; anything
#: else in **kwargs is a caller mistake and must not be dropped silently.
_ACCEPTED_KWARGS: dict[str, frozenset[str]] = {
    "patch_pca": frozenset({"patch_window_size"}),
    "rand_proj": frozenset({"sparse"}),
    "lcomb_top_k": frozenset({"top_k"}),
}


def _build(name: str, output_channels: int, seed: int, **kwargs) -> Adapter:
    allowed = _ACCEPTED_KWARGS.get(name, frozenset())
    unknown = set(kwargs) - allowed
    if unknown:
        raise TypeError(
            f"adapter {name!r} got unexpected options {sorted(unknown)}; "
            f"accepts {sorted(allowed) if allowed else 'no options'}"
        )
    factories: dict[str, Callable[[], Adapter]] = {
        "none": lambda: IdentityAdapter(),
        "pca": lambda: PCAAdapter(output_channels),
        "scaled_pca": lambda: ScaledPCAAdapter(output_channels),
        "patch_pca": lambda: PatchPCAAdapter(
            output_channels, patch_window_size=kwargs.get("patch_window_size", 8)
        ),
        "svd": lambda: TruncatedSVDAdapter(output_channels),
        "rand_proj": lambda: RandomProjectionAdapter(
            output_channels, seed=seed, sparse=kwargs.get("sparse", False)
        ),
        "var": lambda: VarianceSelectorAdapter(output_channels),
        "lda": lambda: LDAAdapter(output_channels),
        "cluster_avg": lambda: ClusterAverageAdapter(output_channels),
        "lcomb": lambda: LinearCombinerAdapter(output_channels, seed=seed),
        "lcomb_top_k": lambda: LinearCombinerAdapter(
            output_channels, top_k=kwargs.get("top_k", DEFAULT_TOP_K), seed=seed
        ),
    }
    try:
        return factories[name]()
    except KeyError:
        raise KeyError(f"unknown adapter {name!r}; known: {sorted(factories)}") from None


#: Canonical adapter names, in the order of the paper's Table 2 columns.
ADAPTER_NAMES: tuple[str, ...] = (
    "pca",
    "svd",
    "rand_proj",
    "var",
    "lcomb",
    "lcomb_top_k",
)


def make_adapter(
    name: str,
    output_channels: int = 5,
    seed: int = 0,
    **kwargs,
) -> Adapter:
    """Construct an adapter by table name.

    Parameters
    ----------
    name:
        One of ``none``, ``pca``, ``scaled_pca``, ``patch_pca``,
        ``svd``, ``rand_proj``, ``var``, ``lcomb``, ``lcomb_top_k``
        (case-insensitive).
    output_channels:
        Reduced channel count D' (paper default: 5).
    seed:
        Seed for stochastic adapters (random projection, lcomb init).
    kwargs:
        Adapter-specific options: ``patch_window_size`` (patch_pca),
        ``sparse`` (rand_proj), ``top_k`` (lcomb_top_k).  Options the
        named adapter does not accept raise :class:`TypeError` rather
        than being silently dropped.
    """
    return _build(name.lower(), output_channels, seed, **kwargs)
