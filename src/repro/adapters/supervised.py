"""Extension adapters beyond the paper's §3.3 set.

The paper's conclusion calls for "more complex adapter configurations"
as future work.  This module contributes two fit-once extensions that
slot into the same pipeline:

* :class:`LDAAdapter` — a *supervised* fit-once adapter: Fisher linear
  discriminant directions over channels.  Unlike lcomb it needs no
  gradient steps (one generalized eigenproblem), so it keeps the
  embedding-cache fast path while still using label information.
* :class:`ClusterAverageAdapter` — average groups of correlated
  channels (complete-linkage hierarchical clustering on correlation
  distance).  Each virtual channel is an interpretable set of input
  channels.
"""

from __future__ import annotations

import numpy as np
from scipy.cluster.hierarchy import fcluster, linkage
from scipy.spatial.distance import squareform

from .base import FittedAdapter
from .pca import _principal_directions

__all__ = ["LDAAdapter", "ClusterAverageAdapter"]


class LDAAdapter(FittedAdapter):
    """Fisher discriminant channel mixing (supervised, fit-once).

    Treats every time step of every training series as one labelled
    observation of the D channels, then solves the generalized
    eigenproblem ``S_b v = lambda (S_w + shrinkage I) v`` for the
    between-/within-class scatter matrices.  LDA yields at most
    ``C - 1`` discriminant directions; if ``D' > C - 1`` the remaining
    rows are filled with the leading PCA directions of the within-class
    residual, so the adapter always produces exactly D' channels.
    """

    def __init__(self, output_channels: int, shrinkage: float = 1e-3) -> None:
        super().__init__(output_channels)
        if shrinkage <= 0:
            raise ValueError(f"shrinkage must be positive, got {shrinkage}")
        self.shrinkage = shrinkage
        self.discriminant_dims_: int | None = None

    @property
    def name(self) -> str:
        return "LDA"

    def fit(self, x: np.ndarray, y: np.ndarray | None = None) -> "LDAAdapter":
        if y is None:
            raise ValueError("LDAAdapter requires labels; got y=None")
        x = self._check_fit_input(x)
        n, t, d = x.shape
        y = np.asarray(y)
        if y.shape != (n,):
            raise ValueError(f"labels shape {y.shape} does not match {n} samples")
        flat = x.reshape(n * t, d)
        labels = np.repeat(y, t)

        grand_mean = flat.mean(axis=0)
        classes = np.unique(labels)
        if len(classes) < 2:
            raise ValueError("LDA needs at least two classes")
        within = np.zeros((d, d))
        between = np.zeros((d, d))
        for cls in classes:
            members = flat[labels == cls]
            mean = members.mean(axis=0)
            centered = members - mean
            within += centered.T @ centered
            offset = (mean - grand_mean)[:, None]
            between += len(members) * (offset @ offset.T)
        within /= len(flat)
        between /= len(flat)
        within += self.shrinkage * np.trace(within) / d * np.eye(d)

        # Generalized symmetric eigenproblem via whitening.
        eigvals_w, eigvecs_w = np.linalg.eigh(within)
        eigvals_w = np.maximum(eigvals_w, 1e-12)
        whitener = eigvecs_w @ np.diag(eigvals_w**-0.5) @ eigvecs_w.T
        projected_between = whitener @ between @ whitener
        eigvals_b, eigvecs_b = np.linalg.eigh(projected_between)
        order = np.argsort(eigvals_b)[::-1]
        max_dims = min(self.output_channels, len(classes) - 1)
        directions = (whitener @ eigvecs_b[:, order[:max_dims]]).T  # (k, D)
        directions /= np.linalg.norm(directions, axis=1, keepdims=True)
        self.discriminant_dims_ = max_dims

        if max_dims < self.output_channels:
            # Fill with leading PCA directions of the data, orthogonalised
            # against the discriminants for non-degenerate extra channels.
            extra_needed = self.output_channels - max_dims
            pca_dirs, _ = _principal_directions(flat, min(d, max_dims + extra_needed), center=True)
            rows = [directions]
            basis = directions.copy()
            for candidate in pca_dirs:
                residual = candidate - basis.T @ (basis @ candidate)
                norm = np.linalg.norm(residual)
                if norm < 1e-8:
                    continue
                residual /= norm
                rows.append(residual[None, :])
                basis = np.vstack([basis, residual[None, :]])
                if basis.shape[0] == self.output_channels:
                    break
            directions = np.vstack(rows)
            if directions.shape[0] < self.output_channels:
                raise RuntimeError(
                    "could not construct enough independent directions; "
                    f"got {directions.shape[0]}, need {self.output_channels}"
                )
        self.projection_ = directions[: self.output_channels]
        return self

    def _fit_projection(self, flat: np.ndarray, y: np.ndarray | None) -> np.ndarray:
        raise NotImplementedError("LDAAdapter overrides fit() directly")


class ClusterAverageAdapter(FittedAdapter):
    """Average D' groups of correlated channels (fit-once, unsupervised).

    Channels are clustered by complete-linkage hierarchical clustering
    on the distance ``1 - |corr|``; each output channel is the mean of
    one cluster, so the reduction is directly interpretable ("virtual
    channel 3 = sensors {12, 40, 41}").
    """

    @property
    def name(self) -> str:
        return "Cluster_Avg"

    def _fit_projection(self, flat: np.ndarray, y: np.ndarray | None) -> np.ndarray:
        d = flat.shape[1]
        if self.output_channels == d:
            return np.eye(d)
        with np.errstate(invalid="ignore"):
            corr = np.corrcoef(flat, rowvar=False)
        corr = np.nan_to_num(corr, nan=0.0)
        distance = 1.0 - np.abs(corr)
        np.fill_diagonal(distance, 0.0)
        condensed = squareform(distance, checks=False)
        tree = linkage(condensed, method="complete")
        assignment = fcluster(tree, t=self.output_channels, criterion="maxclust")

        projection = np.zeros((self.output_channels, d))
        # fcluster may return fewer clusters than requested on
        # degenerate data; split the largest clusters until we have D'.
        cluster_ids = list(np.unique(assignment))
        members = {cid: np.flatnonzero(assignment == cid) for cid in cluster_ids}
        while len(members) < self.output_channels:
            largest = max(members, key=lambda cid: len(members[cid]))
            group = members[largest]
            if len(group) < 2:
                raise RuntimeError("cannot split singleton cluster further")
            half = len(group) // 2
            new_id = max(members) + 1
            members[largest] = group[:half]
            members[new_id] = group[half:]
        for row, cid in enumerate(sorted(members)):
            group = members[cid]
            projection[row, group] = 1.0 / len(group)
        self.cluster_members_ = [members[cid] for cid in sorted(members)]
        return projection
