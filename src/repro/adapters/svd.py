"""Truncated SVD adapter.

Unlike PCA, truncated SVD operates directly on the (uncentered) data
matrix, keeping the top-``k`` right singular vectors as the channel
projection (§3.3 of the paper).
"""

from __future__ import annotations

import numpy as np

from .base import FittedAdapter
from .pca import _principal_directions

__all__ = ["TruncatedSVDAdapter"]


class TruncatedSVDAdapter(FittedAdapter):
    """Project channels onto the top-D' right singular directions."""

    def __init__(self, output_channels: int) -> None:
        super().__init__(output_channels)
        self.singular_values_: np.ndarray | None = None

    @property
    def name(self) -> str:
        return "SVD"

    def _fit_projection(self, flat: np.ndarray, y: np.ndarray | None) -> np.ndarray:
        # Right singular vectors of X equal eigenvectors of X^T X; the
        # shared helper computes them without centering.
        components, second_moments = _principal_directions(
            flat, self.output_channels, center=False
        )
        # second_moments are eigenvalues of X^T X / (M-1); singular
        # values of X are sqrt(eigenvalue * (M-1)).
        scale = max(len(flat) - 1, 1)
        self.singular_values_ = np.sqrt(second_moments * scale)
        return components
