"""Variance-based feature (channel) selection adapter."""

from __future__ import annotations

import numpy as np

from .base import FittedAdapter

__all__ = ["VarianceSelectorAdapter"]


class VarianceSelectorAdapter(FittedAdapter):
    """Keep the D' channels with the highest training variance (§3.3, 'VAR').

    Low-variance channels are treated as uninformative and dropped.
    The projection is a 0/1 selection matrix, so the reduced series
    are literal sub-channels of the input (no mixing) — useful when
    interpretability of the retained channels matters.
    """

    def __init__(self, output_channels: int) -> None:
        super().__init__(output_channels)
        self.selected_channels_: np.ndarray | None = None
        self.channel_variances_: np.ndarray | None = None

    @property
    def name(self) -> str:
        return "VAR"

    def _fit_projection(self, flat: np.ndarray, y: np.ndarray | None) -> np.ndarray:
        variances = flat.var(axis=0)
        self.channel_variances_ = variances
        # Stable ordering: by descending variance, ties broken by index.
        order = np.lexsort((np.arange(len(variances)), -variances))
        selected = np.sort(order[: self.output_channels])
        self.selected_channels_ = selected
        projection = np.zeros((self.output_channels, flat.shape[1]))
        projection[np.arange(self.output_channels), selected] = 1.0
        return projection

    def transform(self, x: np.ndarray) -> np.ndarray:
        # Direct indexing is much cheaper than the matmul for wide D.
        x = self._check_transform_input(x)
        if self.selected_channels_ is None:
            raise RuntimeError(f"{self.name} used before fit()")
        return x[:, :, self.selected_channels_]
