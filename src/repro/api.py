"""Top-level facade: the 90% use case in three calls.

* :func:`run_experiment` — run one :class:`~repro.exec.JobSpec` (or a
  grid of them) through an :class:`~repro.experiments.ExperimentRunner`
  with caching, parallelism and fault handling included;
* :func:`run_sweep` — grid-driven ablation sweeps (re-exported from
  :mod:`repro.experiments.sweeps`);
* :func:`fit_pipeline` — load data, load a pretrained model, build an
  adapter and fit the :class:`~repro.training.AdapterPipeline` in one
  call.

All three are re-exported from the package root::

    from repro import JobSpec, run_experiment, run_sweep, fit_pipeline
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping

from .adapters import make_adapter
from .data import load_dataset
from .data.uea import MultivariateDataset
from .exec import JobSpec
from .experiments.sweeps import run_sweep
from .models import load_pretrained
from .training import AdapterPipeline, FineTuneStrategy, TrainConfig

__all__ = ["JobSpec", "run_experiment", "run_sweep", "fit_pipeline"]


def run_experiment(
    spec: JobSpec | Iterable[JobSpec],
    *,
    preset: str = "fast",
    config: Any = None,
    cache_dir: str | None = None,
    workers: int = 1,
    job_timeout: float | None = None,
    runner: Any = None,
):
    """Run one spec (or a grid) and return the ExperimentResult(s).

    Parameters
    ----------
    spec:
        A single :class:`JobSpec` (returns one result) or an iterable
        of specs (returns a list in input order, executed through the
        parallel executor with deduplication).
    preset / config:
        Experiment preset name, or an explicit
        :class:`~repro.experiments.ExperimentConfig` overriding it.
    cache_dir:
        Persistent artifact cache directory (default:
        ``$REPRO_CACHE_DIR``; unset means memory-only caching).
    workers / job_timeout:
        Executor settings — worker process count and the per-job
        wall-clock budget (jobs over it surface as ``TO`` cells).
    runner:
        Reuse an existing :class:`~repro.experiments.ExperimentRunner`
        (overrides every other construction parameter).
    """
    from .experiments import ExperimentRunner, get_preset

    if runner is None:
        runner = ExperimentRunner(
            config if config is not None else get_preset(preset),
            cache_dir=cache_dir,
            workers=workers,
            job_timeout=job_timeout,
        )
    if isinstance(spec, JobSpec):
        return runner.run_specs([spec])[0]
    return runner.run_specs(list(spec))


def fit_pipeline(
    dataset: str | MultivariateDataset,
    model: str = "moment-tiny",
    adapter: str = "pca",
    channels: int = 5,
    *,
    strategy: FineTuneStrategy | str = FineTuneStrategy.ADAPTER_HEAD,
    seed: int = 0,
    train_config: TrainConfig | None = None,
    adapter_kwargs: Mapping[str, Any] | None = None,
    scale: float = 0.1,
    max_length: int | None = 96,
) -> tuple[AdapterPipeline, MultivariateDataset]:
    """Load, build and fit an adapter pipeline in one call.

    Returns ``(pipeline, dataset)`` so scoring is one more line::

        pipeline, ds = fit_pipeline("Heartbeat", adapter="pca")
        print(pipeline.score(ds.x_test, ds.y_test))

    Parameters
    ----------
    dataset:
        Dataset name (loaded as a surrogate at ``scale`` /
        ``max_length``) or an already-loaded
        :class:`MultivariateDataset`.
    model:
        Runnable model name (``moment-tiny`` or ``vit-tiny``).
    adapter / channels / adapter_kwargs:
        Adapter registry name (``"none"`` trains the head on raw
        channels), its reduced channel count D', and extra options.
    strategy / seed / train_config:
        Fine-tuning strategy, random seed and training
        hyperparameters (library defaults when ``None``).
    """
    if isinstance(dataset, MultivariateDataset):
        ds = dataset
    else:
        ds = load_dataset(dataset, seed=seed, scale=scale, max_length=max_length)
    runnable = load_pretrained(model, seed=seed)
    if adapter == "none":
        built = make_adapter("none")
    else:
        built = make_adapter(adapter, channels, seed=seed, **dict(adapter_kwargs or {}))
    pipeline = AdapterPipeline(runnable, built, ds.num_classes, seed=seed)
    if not isinstance(strategy, FineTuneStrategy):
        strategy = FineTuneStrategy(strategy)
    pipeline.fit(ds.x_train, ds.y_train, strategy=strategy, config=train_config)
    return pipeline, ds
