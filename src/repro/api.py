"""Top-level facade: the 90% use case in a handful of calls.

* :func:`fit_pipeline` — load data, load a pretrained model, build an
  adapter and fit the :class:`~repro.training.AdapterPipeline`; returns
  a :class:`FittedPipeline` handle exposing ``.predict`` / ``.save`` /
  ``.deploy`` directly (and still unpacking as ``(pipeline, dataset)``);
* :func:`deploy` / :func:`client` — publish a fitted pipeline under a
  name and serve micro-batched predictions against it (re-exported
  from :mod:`repro.serve`);
* :func:`run_experiment` — run one :class:`~repro.exec.JobSpec` (or a
  grid of them) through an :class:`~repro.experiments.ExperimentRunner`
  with caching, parallelism and fault handling included;
* :func:`run_sweep` — grid-driven ablation sweeps (re-exported from
  :mod:`repro.experiments.sweeps`).

All are re-exported from the package root::

    from repro import fit_pipeline, deploy, client

    fitted = fit_pipeline("Heartbeat", adapter="pca")
    print(fitted.score(fitted.dataset.x_test, fitted.dataset.y_test))
    fitted.deploy("heartbeat")
    label = client("heartbeat").predict(fitted.dataset.x_test[0])
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterable, Mapping, NamedTuple

import numpy as np

from .adapters import make_adapter
from .data import load_dataset
from .data.uea import MultivariateDataset
from .exec import JobSpec
from .experiments.sweeps import run_sweep
from .models import load_pretrained
from .serve import ServeConfig, client, deploy, undeploy
from .training import AdapterPipeline, FineTuneStrategy, TrainConfig

if TYPE_CHECKING:
    from .experiments import ExperimentConfig, ExperimentRunner
    from .serve import PipelineRecord
    from .training import FitReport

__all__ = [
    "JobSpec",
    "run_experiment",
    "run_sweep",
    "fit_pipeline",
    "FittedPipeline",
    "deploy",
    "client",
    "undeploy",
    "ServeConfig",
]


def run_experiment(
    spec: JobSpec | Iterable[JobSpec],
    *,
    preset: str = "fast",
    config: "ExperimentConfig | None" = None,
    cache_dir: str | None = None,
    workers: int = 1,
    job_timeout: float | None = None,
    runner: "ExperimentRunner | None" = None,
    **unknown: Any,
):
    """Run one spec (or a grid) and return the ExperimentResult(s).

    Parameters
    ----------
    spec:
        A single :class:`JobSpec` (returns one result) or an iterable
        of specs (returns a list in input order, executed through the
        parallel executor with deduplication).
    preset / config:
        Experiment preset name, or an explicit
        :class:`~repro.experiments.ExperimentConfig` overriding it.
    cache_dir:
        Persistent artifact cache directory (default:
        ``$REPRO_CACHE_DIR``; unset means memory-only caching).
    workers / job_timeout:
        Executor settings — worker process count and the per-job
        wall-clock budget (jobs over it surface as ``TO`` cells).
    runner:
        Reuse an existing :class:`~repro.experiments.ExperimentRunner`
        (overrides every other construction parameter).
    """
    from .experiments import ExperimentConfig, ExperimentRunner, get_preset

    if unknown:
        valid = "preset, config, cache_dir, workers, job_timeout, runner"
        raise TypeError(
            f"run_experiment() got unexpected keyword argument(s) "
            f"{sorted(unknown)}; valid keywords are: {valid}"
        )
    if config is not None and not isinstance(config, ExperimentConfig):
        raise TypeError(
            f"config must be an ExperimentConfig (e.g. get_preset({preset!r})), "
            f"got {type(config).__name__}"
        )
    if runner is not None and not isinstance(runner, ExperimentRunner):
        raise TypeError(
            f"runner must be an ExperimentRunner, got {type(runner).__name__}"
        )
    if runner is None:
        runner = ExperimentRunner(
            config if config is not None else get_preset(preset),
            cache_dir=cache_dir,
            workers=workers,
            job_timeout=job_timeout,
        )
    if isinstance(spec, JobSpec):
        return runner.run_specs([spec])[0]
    return runner.run_specs(list(spec))


class FittedPipeline(NamedTuple):
    """Handle returned by :func:`fit_pipeline`.

    A named tuple, so the historical ``pipeline, ds = fit_pipeline(...)``
    unpacking keeps working — while the handle itself exposes the
    predict / persist / deploy surface directly.
    """

    pipeline: AdapterPipeline
    dataset: MultivariateDataset

    @property
    def report(self) -> "FitReport | None":
        """The :class:`FitReport` of the fit that produced this handle."""
        return getattr(self.pipeline, "last_fit_report_", None)

    def predict(
        self, x: np.ndarray, batch_size: int = 64, compiled: bool = True
    ) -> np.ndarray:
        """Predicted class labels for ``(N, T, D)`` input."""
        return self.pipeline.predict(x, batch_size=batch_size, compiled=compiled)

    def predict_proba(
        self, x: np.ndarray, batch_size: int = 64, compiled: bool = True
    ) -> np.ndarray:
        """Class probabilities (softmax over :meth:`predict_logits`)."""
        return self.pipeline.predict_proba(x, batch_size=batch_size, compiled=compiled)

    def predict_logits(
        self, x: np.ndarray, batch_size: int = 64, compiled: bool = True
    ) -> np.ndarray:
        """Raw classification logits for ``(N, T, D)`` input."""
        return self.pipeline.predict_logits(x, batch_size=batch_size, compiled=compiled)

    def score(self, x: np.ndarray, y: np.ndarray) -> float:
        """Accuracy of :meth:`predict` against labels ``y``."""
        return self.pipeline.score(x, y)

    def save(self, store, name: str) -> "PipelineRecord":
        """Publish into a registry: ``fitted.save(store_or_dir, name)``."""
        return self.pipeline.save(store, name)

    def stream(
        self,
        window: int,
        stride: int,
        *,
        batch_size: int = 16,
        compiled: bool = True,
        **kwargs: Any,
    ):
        """An incremental :class:`~repro.stream.StreamingClassifier`.

        ``push(samples)`` classifies every window that completes, with
        logits bit-identical to
        ``predict_logits(windows, batch_size=batch_size)`` offline::

            stream = fitted.stream(window=64, stride=16)
            for chunk in live_feed:
                prediction = stream.push(chunk)
        """
        from .stream import StreamingClassifier

        return StreamingClassifier(
            self.pipeline,
            window,
            stride,
            batch_size=batch_size,
            compiled=compiled,
            **kwargs,
        )

    def encode_long(
        self,
        x: np.ndarray,
        window: int,
        stride: int,
        *,
        agg: str = "mean",
        batch_windows: int = 16,
        compiled: bool = True,
        return_windows: bool = False,
    ):
        """Bounded-memory chunked encoding of one very long series.

        Cuts the ``(T, D)`` series into sliding windows, routes them
        through this pipeline's adapter + frozen encoder in
        ``batch_windows``-sized chunks and returns an aggregated
        :class:`~repro.stream.LongSeriesEncoding` (see
        :func:`repro.stream.encode_long`).
        """
        from .stream import encode_long as _encode_long

        pipeline = self.pipeline
        return _encode_long(
            pipeline.model,
            x,
            window,
            stride,
            agg=agg,
            batch_windows=batch_windows,
            compiled=compiled,
            transform=lambda wins: pipeline._normalize_array(
                pipeline.adapter.transform(wins)
            ),
            return_windows=return_windows,
        )

    def deploy(
        self, name: str, *, store=None, config: ServeConfig | None = None
    ) -> "PipelineRecord":
        """Publish and start serving under ``name`` (see :func:`deploy`)."""
        return deploy(self.pipeline, name, store=store, config=config)


def fit_pipeline(
    dataset: str | MultivariateDataset,
    model: str = "moment-tiny",
    adapter: str = "pca",
    channels: int = 5,
    *,
    strategy: FineTuneStrategy | str = FineTuneStrategy.ADAPTER_HEAD,
    seed: int = 0,
    train_config: TrainConfig | None = None,
    adapter_kwargs: Mapping[str, Any] | None = None,
    scale: float = 0.1,
    max_length: int | None = 96,
) -> FittedPipeline:
    """Load, build and fit an adapter pipeline in one call.

    Returns a :class:`FittedPipeline` — usable directly
    (``fitted.predict(x)``, ``fitted.deploy("name")``) or unpacked as
    the historical ``(pipeline, dataset)`` pair::

        fitted = fit_pipeline("Heartbeat", adapter="pca")
        print(fitted.score(fitted.dataset.x_test, fitted.dataset.y_test))

    Parameters
    ----------
    dataset:
        Dataset name (loaded as a surrogate at ``scale`` /
        ``max_length``) or an already-loaded
        :class:`MultivariateDataset`.
    model:
        Runnable model name (``moment-tiny`` or ``vit-tiny``).
    adapter / channels / adapter_kwargs:
        Adapter registry name (``"none"`` trains the head on raw
        channels), its reduced channel count D', and extra options.
    strategy / seed / train_config:
        Fine-tuning strategy, random seed and training
        hyperparameters (library defaults when ``None``).
    """
    if isinstance(dataset, MultivariateDataset):
        ds = dataset
    else:
        ds = load_dataset(dataset, seed=seed, scale=scale, max_length=max_length)
    runnable = load_pretrained(model, seed=seed)
    if adapter == "none":
        built = make_adapter("none")
    else:
        built = make_adapter(adapter, channels, seed=seed, **dict(adapter_kwargs or {}))
    pipeline = AdapterPipeline(runnable, built, ds.num_classes, seed=seed)
    if not isinstance(strategy, FineTuneStrategy):
        strategy = FineTuneStrategy(strategy)
    pipeline.fit(ds.x_train, ds.y_train, strategy=strategy, config=train_config)
    return FittedPipeline(pipeline=pipeline, dataset=ds)
