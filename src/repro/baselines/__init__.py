"""Classical baselines from the paper's Related Work (§2).

ROCKET (random convolution kernels + ridge) and 1-NN DTW — the
methods TSFM-based classification is measured against.
"""

from .dtw import DTW1NNClassifier, dtw_distance
from .ridge import RidgeClassifier
from .rocket import RocketClassifier, RocketTransform

__all__ = [
    "RidgeClassifier",
    "RocketTransform",
    "RocketClassifier",
    "dtw_distance",
    "DTW1NNClassifier",
]
