"""Dynamic Time Warping and the 1-NN DTW classifier.

The canonical classical time-series baseline (Salvador & Chan, 2007,
cited in §2).  Implements dependent multivariate DTW (one warping path
shared by all channels, Euclidean local cost) with an optional
Sakoe–Chiba band, and a 1-nearest-neighbour classifier on top.

DTW is O(T^2) per pair and the classifier O(N_train x N_test) pairs —
the scalability wall that motivates both ROCKET and TSFMs; keep it to
small surrogates.
"""

from __future__ import annotations

import numpy as np

from ..data.preprocessing import validate_series

__all__ = ["dtw_distance", "DTW1NNClassifier"]


def dtw_distance(
    a: np.ndarray,
    b: np.ndarray,
    band: int | None = None,
) -> float:
    """Dependent multivariate DTW distance between (T, D) series.

    Parameters
    ----------
    a, b:
        Series of shape (T_a, D) and (T_b, D) (same D).
    band:
        Sakoe–Chiba band half-width; ``None`` means unconstrained.
        The band is widened automatically to at least ``|T_a - T_b|``
        so a valid path always exists.
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.ndim == 1:
        a = a[:, None]
    if b.ndim == 1:
        b = b[:, None]
    if a.shape[1] != b.shape[1]:
        raise ValueError(f"channel mismatch: {a.shape[1]} vs {b.shape[1]}")
    n, m = len(a), len(b)
    if n == 0 or m == 0:
        raise ValueError("empty series")

    if band is None:
        band = max(n, m)
    band = max(band, abs(n - m))

    # Squared Euclidean local cost, computed lazily per row for memory.
    previous = np.full(m + 1, np.inf)
    previous[0] = 0.0
    current = np.empty(m + 1)
    for i in range(1, n + 1):
        current[:] = np.inf
        lo = max(1, i - band)
        hi = min(m, i + band)
        costs = ((b[lo - 1 : hi] - a[i - 1]) ** 2).sum(axis=1)
        for offset, j in enumerate(range(lo, hi + 1)):
            best = min(previous[j], previous[j - 1], current[j - 1])
            current[j] = costs[offset] + best
        previous, current = current.copy(), current
    return float(np.sqrt(previous[m]))


class DTW1NNClassifier:
    """1-nearest-neighbour classification under DTW distance."""

    def __init__(self, band: int | None = None) -> None:
        self.band = band
        self._x_train: np.ndarray | None = None
        self._y_train: np.ndarray | None = None

    def fit(self, x: np.ndarray, y: np.ndarray) -> "DTW1NNClassifier":
        """Store the training series and labels (lazy learner)."""
        x = validate_series(x)
        y = np.asarray(y)
        if len(x) != len(y):
            raise ValueError("x and y lengths differ")
        self._x_train = x
        self._y_train = y.astype(np.int64)
        return self

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Label each series with its DTW-nearest training neighbour."""
        if self._x_train is None:
            raise RuntimeError("DTW1NNClassifier used before fit()")
        x = validate_series(x)
        predictions = np.empty(len(x), dtype=np.int64)
        for row, sample in enumerate(x):
            distances = [
                dtw_distance(sample, train, band=self.band) for train in self._x_train
            ]
            predictions[row] = self._y_train[int(np.argmin(distances))]
        return predictions

    def score(self, x: np.ndarray, y: np.ndarray) -> float:
        """Classification accuracy on ``(x, y)``."""
        return float((self.predict(x) == np.asarray(y)).mean())
