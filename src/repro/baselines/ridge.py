"""Ridge classifier (closed form), the standard ROCKET head.

One-vs-rest ridge regression on +-1 targets, solved in closed form —
no iterative optimisation, which is exactly why ROCKET pairs with it:
feature extraction is the only expensive part.
"""

from __future__ import annotations

import numpy as np

__all__ = ["RidgeClassifier"]


class RidgeClassifier:
    """Multi-class one-vs-rest ridge regression classifier.

    Parameters
    ----------
    alpha:
        L2 regularisation strength.  The ROCKET paper cross-validates
        this; :meth:`fit` accepts a list of candidates and picks the
        best by leave-out validation on a split of the training data.
    """

    def __init__(self, alpha: float | list[float] = 1.0) -> None:
        self.alphas = [alpha] if np.isscalar(alpha) else list(alpha)
        if any(a <= 0 for a in self.alphas):
            raise ValueError("alpha must be positive")
        self.coef_: np.ndarray | None = None
        self.intercept_: np.ndarray | None = None
        self.alpha_: float | None = None
        self.classes_: np.ndarray | None = None
        self._mean: np.ndarray | None = None
        self._std: np.ndarray | None = None

    # ------------------------------------------------------------------
    def _solve(self, x: np.ndarray, targets: np.ndarray, alpha: float) -> np.ndarray:
        """Closed-form ridge: (X^T X + alpha I)^-1 X^T Y.

        Uses the dual form when features outnumber samples (ROCKET's
        10k features vs a few hundred samples), which is much cheaper.
        """
        n, d = x.shape
        if d <= n:
            gram = x.T @ x + alpha * np.eye(d)
            return np.linalg.solve(gram, x.T @ targets)
        # dual: w = X^T (X X^T + alpha I)^-1 Y
        gram = x @ x.T + alpha * np.eye(n)
        return x.T @ np.linalg.solve(gram, targets)

    def fit(self, x: np.ndarray, y: np.ndarray) -> "RidgeClassifier":
        """Fit one-vs-rest ridge weights (selecting alpha if several)."""
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y)
        if x.ndim != 2 or len(x) != len(y):
            raise ValueError(f"bad shapes: x {x.shape}, y {y.shape}")
        self.classes_ = np.unique(y)
        self._mean = x.mean(axis=0)
        self._std = x.std(axis=0) + 1e-8
        x = (x - self._mean) / self._std
        targets = np.where(y[:, None] == self.classes_[None, :], 1.0, -1.0)

        if len(self.alphas) == 1:
            self.alpha_ = self.alphas[0]
        else:
            # pick alpha on a 75/25 split of the training data
            rng = np.random.default_rng(0)
            order = rng.permutation(len(x))
            cut = max(1, int(0.75 * len(x)))
            tr, va = order[:cut], order[cut:]
            best_alpha, best_score = self.alphas[0], -np.inf
            for alpha in self.alphas:
                coef = self._solve(x[tr], targets[tr], alpha)
                score = (x[va] @ coef).argmax(axis=1)
                acc = (self.classes_[score] == y[va]).mean() if len(va) else 0.0
                if acc > best_score:
                    best_alpha, best_score = alpha, acc
            self.alpha_ = best_alpha

        self.coef_ = self._solve(x, targets, self.alpha_)
        self.intercept_ = np.zeros(len(self.classes_))
        return self

    def decision_function(self, x: np.ndarray) -> np.ndarray:
        """Per-class scores (N, C); argmax gives the prediction."""
        if self.coef_ is None:
            raise RuntimeError("RidgeClassifier used before fit()")
        x = (np.asarray(x, dtype=np.float64) - self._mean) / self._std
        return x @ self.coef_ + self.intercept_

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Predicted class labels."""
        return self.classes_[self.decision_function(x).argmax(axis=1)]

    def score(self, x: np.ndarray, y: np.ndarray) -> float:
        """Classification accuracy on ``(x, y)``."""
        return float((self.predict(x) == np.asarray(y)).mean())
