"""ROCKET: RandOm Convolutional KErnel Transform (Dempster et al., 2020).

The classical fast baseline the paper's Related Work contrasts with
TSFMs.  Random 1D convolution kernels (random length/weights/bias/
dilation/padding) are applied to each series; each kernel contributes
two features — the global max and the *proportion of positive values*
(PPV) — and a ridge classifier runs on the feature matrix.

For multivariate input we follow the common channel-independent
variant: each kernel is assigned one random input channel.  Like the
TSFMs it competes with, cost grows with the channel count — ROCKET
needs proportionally more kernels to cover wide inputs, which is the
scalability issue §2 of the paper points out.
"""

from __future__ import annotations

import numpy as np

from ..data.preprocessing import validate_series
from .ridge import RidgeClassifier

__all__ = ["RocketTransform", "RocketClassifier"]


class RocketTransform:
    """Random convolution kernel feature extractor.

    Parameters
    ----------
    num_kernels:
        Number of random kernels (the paper's default is 10,000; a few
        hundred suffice for the small surrogates in this repo).
    seed:
        Controls all kernel randomness.
    """

    def __init__(self, num_kernels: int = 1000, seed: int = 0) -> None:
        if num_kernels <= 0:
            raise ValueError("num_kernels must be positive")
        self.num_kernels = num_kernels
        self.seed = seed
        self._kernels: list[dict] | None = None
        self.num_channels_: int | None = None

    def fit(self, x: np.ndarray) -> "RocketTransform":
        """Draw the random kernels for the given input geometry."""
        x = validate_series(x)
        _, t, d = x.shape
        rng = np.random.default_rng(self.seed)
        kernels = []
        for _ in range(self.num_kernels):
            length = int(rng.choice([7, 9, 11]))
            weights = rng.normal(size=length)
            weights -= weights.mean()
            # dilation sampled on a log scale up to the series length
            max_exponent = max(0.0, np.log2((t - 1) / (length - 1))) if t > length else 0.0
            dilation = int(2 ** rng.uniform(0.0, max_exponent))
            padding = ((length - 1) * dilation) // 2 if rng.random() < 0.5 else 0
            kernels.append(
                {
                    "weights": weights,
                    "bias": float(rng.uniform(-1.0, 1.0)),
                    "dilation": dilation,
                    "padding": padding,
                    "channel": int(rng.integers(0, d)),
                }
            )
        self._kernels = kernels
        self.num_channels_ = d
        return self

    def _apply_kernel(self, series: np.ndarray, kernel: dict) -> tuple[float, float]:
        """Return (PPV, max) of one kernel on one univariate series."""
        weights = kernel["weights"]
        dilation = kernel["dilation"]
        padding = kernel["padding"]
        if padding:
            series = np.pad(series, padding)
        span = (len(weights) - 1) * dilation
        out_len = len(series) - span
        if out_len <= 0:
            value = float(series.sum() * weights.sum() + kernel["bias"])
            return float(value > 0), value
        # Dilated correlation via strided gather.
        index = np.arange(out_len)[:, None] + np.arange(len(weights))[None, :] * dilation
        conv = series[index] @ weights + kernel["bias"]
        return float((conv > 0).mean()), float(conv.max())

    def transform(self, x: np.ndarray) -> np.ndarray:
        """(N, T, D) -> (N, 2 * num_kernels) ROCKET feature matrix."""
        x = validate_series(x)
        if self._kernels is None:
            raise RuntimeError("RocketTransform used before fit()")
        if x.shape[-1] != self.num_channels_:
            raise ValueError(
                f"expected {self.num_channels_} channels, got {x.shape[-1]}"
            )
        features = np.empty((len(x), 2 * self.num_kernels))
        for row, sample in enumerate(x):
            for col, kernel in enumerate(self._kernels):
                ppv, peak = self._apply_kernel(sample[:, kernel["channel"]], kernel)
                features[row, 2 * col] = ppv
                features[row, 2 * col + 1] = peak
        return features

    def fit_transform(self, x: np.ndarray) -> np.ndarray:
        """Draw kernels for ``x`` and return its feature matrix."""
        return self.fit(x).transform(x)


class RocketClassifier:
    """ROCKET features + ridge classifier, the full baseline."""

    def __init__(
        self,
        num_kernels: int = 1000,
        seed: int = 0,
        alphas: list[float] | None = None,
    ) -> None:
        self.transform_ = RocketTransform(num_kernels, seed=seed)
        self.classifier_ = RidgeClassifier(
            alphas if alphas is not None else [0.1, 1.0, 10.0, 100.0]
        )

    def fit(self, x: np.ndarray, y: np.ndarray) -> "RocketClassifier":
        """Extract ROCKET features and fit the ridge classifier."""
        features = self.transform_.fit_transform(x)
        self.classifier_.fit(features, y)
        return self

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Predicted class labels."""
        return self.classifier_.predict(self.transform_.transform(x))

    def score(self, x: np.ndarray, y: np.ndarray) -> float:
        """Classification accuracy on ``(x, y)``."""
        return float((self.predict(x) == np.asarray(y)).mean())
