"""Command-line interface.

Subcommands
-----------
``repro datasets``
    List the 12 UEA datasets (Table 3) with their geometry.
``repro adapters``
    List the available adapters.
``repro simulate``
    Price a fine-tuning job on the simulated V100-32GB: OK / TO / COM,
    simulated seconds and peak memory.
``repro run``
    Fine-tune one (dataset, model, adapter) combination on the
    surrogate data and report test accuracy; optionally save the
    fitted pipeline.
``repro profile``
    Same shape as ``run``, but with the op-level profiler active:
    prints per-op call counts, forward/backward seconds and bytes
    allocated for the training loop, under a chosen compute dtype.
``repro table`` / ``repro figure``
    Regenerate one of the paper's tables (1–5) or figures (1–6,
    ``claims``) and print it.
``repro cache``
    Inspect (``stats``) or empty (``clear``) the content-addressed
    artifact cache that ``table``/``figure``/``report`` reuse across
    processes when ``--cache-dir`` (or ``$REPRO_CACHE_DIR``) is set.
``repro sweep``
    Run an experiment grid against a *grid directory*: every verdict
    is journaled crash-safely, interrupted sweeps resume without
    recomputation, and several ``--shard`` processes can work-steal
    one grid concurrently (see ``docs/exec.md``).
``repro grid``
    Inspect a grid directory: per-state job counts, active shard
    leases and a naive ETA (``status``).
``repro serve``
    Serve a registered pipeline with dynamic micro-batching, drive a
    seeded synthetic closed-loop load against it, and print the
    ``/stats`` snapshot (QPS, p50/p99 latency, batch widths, shed and
    deadline counts).  See ``docs/serve.md``.
``repro predict``
    One-shot offline prediction from a registered pipeline against an
    ``.npz`` input file (labels, logits or probabilities).
``repro stream``
    Incremental streaming classification of one long class-switching
    series (generated, or an ``.npz`` with an ``x`` array) through a
    registered pipeline: per-window labels as the stream advances,
    sustained windows/sec and rolling-cache counters.  See
    ``docs/stream.md``.

Invoke as ``python -m repro.cli ...`` or the installed ``repro``
script.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from .adapters import make_adapter
from .adapters.registry import ADAPTER_NAMES
from .data import dataset_info, dataset_names
from .evaluation import render_table
from .exec import DEFAULT_STALE_AFTER, JobSpec, ProgressTracker
from .experiments import (
    ExperimentRunner,
    figure1,
    figure2,
    figure3,
    figure4,
    figure5,
    figure6,
    get_preset,
    headline_claims,
    table1,
    table2,
    table3,
    table4,
    table5,
)
from .models import load_pretrained
from .resources import simulate_finetuning
from .runtime import NAMESPACES, ArtifactStore, Stopwatch, resolve_cache_dir
from .training import AdapterPipeline, FineTuneStrategy, TrainConfig
from .training.persistence import _save_pipeline_dir

__all__ = ["main", "build_parser"]

_ALL_ADAPTERS = ("none",) + ADAPTER_NAMES + ("scaled_pca", "patch_pca", "lda", "cluster_avg")
_PAPER_MODEL_CHOICES = ("moment-large", "vit-base-ts")
_RUNNABLE_MODEL_CHOICES = ("moment-tiny", "vit-tiny")

_TABLES = {"1": table1, "2": table2, "3": None, "4": table4, "5": table5}
_FIGURES = {
    "1": figure1,
    "2": figure2,
    "3": figure3,
    "4": figure4,
    "5": figure5,
    "6": figure6,
    "claims": headline_claims,
}


def build_parser() -> argparse.ArgumentParser:
    """Build the argparse tree for every subcommand."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Foundation-model adapters for multivariate time series (ICDE 2025 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("datasets", help="list the Table-3 datasets")
    sub.add_parser("adapters", help="list available adapters")

    sim = sub.add_parser("simulate", help="price a job on the simulated V100-32GB")
    sim.add_argument("--model", choices=_PAPER_MODEL_CHOICES, default="moment-large")
    sim.add_argument("--dataset", required=True, help="dataset name (full or short)")
    sim.add_argument("--adapter", choices=_ALL_ADAPTERS, default="none")
    sim.add_argument("--channels", type=int, default=5, help="reduced channel count D'")
    sim.add_argument("--full-finetune", action="store_true", help="full FT instead of (adapter+)head")

    run = sub.add_parser("run", help="fine-tune on the surrogate data and report accuracy")
    run.add_argument("--model", choices=_RUNNABLE_MODEL_CHOICES, default="moment-tiny")
    run.add_argument("--dataset", required=True)
    run.add_argument("--adapter", choices=_ALL_ADAPTERS, default="pca")
    run.add_argument("--channels", type=int, default=5)
    run.add_argument("--strategy", choices=[s.value for s in FineTuneStrategy], default="adapter_head")
    run.add_argument("--epochs", type=int, default=40)
    run.add_argument("--batch-size", type=int, default=32)
    run.add_argument("--learning-rate", type=float, default=3e-3)
    run.add_argument("--scale", type=float, default=0.1, help="surrogate dataset scale")
    run.add_argument("--max-length", type=int, default=96)
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--save", metavar="DIR", help="save the fitted pipeline to DIR")
    run.add_argument(
        "--registry", metavar="DIR",
        help="pipeline registry directory for --deploy",
    )
    run.add_argument(
        "--deploy", metavar="NAME",
        help="publish the fitted pipeline into --registry under NAME",
    )

    prof = sub.add_parser("profile", help="op-level profile of one fine-tuning run")
    prof.add_argument("--model", choices=_RUNNABLE_MODEL_CHOICES, default="moment-tiny")
    prof.add_argument("--dataset", required=True)
    prof.add_argument("--adapter", choices=_ALL_ADAPTERS, default="pca")
    prof.add_argument("--channels", type=int, default=5)
    prof.add_argument(
        "--strategy", choices=[s.value for s in FineTuneStrategy], default="adapter_head"
    )
    prof.add_argument("--epochs", type=int, default=3)
    prof.add_argument("--batch-size", type=int, default=32)
    prof.add_argument("--learning-rate", type=float, default=3e-3)
    prof.add_argument("--scale", type=float, default=0.1, help="surrogate dataset scale")
    prof.add_argument("--max-length", type=int, default=96)
    prof.add_argument("--seed", type=int, default=0)
    prof.add_argument(
        "--dtype", choices=("float32", "float64"), default="float32",
        help="compute dtype the model is built and trained in",
    )
    prof.add_argument(
        "--top", type=int, default=None, metavar="N", help="show only the N hottest ops"
    )
    prof.add_argument(
        "--compiled", action="store_true",
        help="also show the compiled-graph replay table (frozen-encoder "
        "inference replays recorded during the profiled run)",
    )

    for name, choices in (("table", _TABLES), ("figure", _FIGURES)):
        cmd = sub.add_parser(name, help=f"regenerate a paper {name}")
        cmd.add_argument("which", choices=sorted(choices), help=f"{name} id")
        cmd.add_argument("--preset", default="fast", help="experiment preset (fast|standard)")
        cmd.add_argument("--datasets", nargs="*", help="restrict to these datasets")
        cmd.add_argument("--seeds", nargs="*", type=int, help="restrict to these seeds")
        cmd.add_argument(
            "--cache-dir",
            metavar="DIR",
            help="persistent artifact cache (default: $REPRO_CACHE_DIR)",
        )
        cmd.add_argument(
            "--workers", type=int, default=1,
            help="worker processes for the experiment grid (1 = in-process)",
        )
        cmd.add_argument(
            "--job-timeout", type=float, default=None, metavar="SECONDS",
            help="per-job wall-clock budget; jobs over it surface as TO cells",
        )
        if name == "table":
            cmd.add_argument("--latex", action="store_true", help="emit LaTeX instead of markdown")

    cache = sub.add_parser("cache", help="inspect or clear the persistent artifact cache")
    cache.add_argument("action", choices=("stats", "clear"))
    cache.add_argument(
        "--cache-dir",
        metavar="DIR",
        help="cache directory (default: $REPRO_CACHE_DIR)",
    )
    cache.add_argument(
        "--namespace",
        choices=NAMESPACES,
        help="restrict `clear` to one artifact kind",
    )

    sweep = sub.add_parser(
        "sweep", help="run a resumable experiment grid (journal + shard leases)"
    )
    sweep.add_argument(
        "--grid-dir", required=True, metavar="DIR",
        help="grid directory holding the journal, leases and (by default) the cache",
    )
    sweep.add_argument("--preset", default="fast", help="experiment preset (fast|standard)")
    sweep.add_argument("--datasets", nargs="*", help="restrict to these datasets")
    sweep.add_argument(
        "--models", nargs="*", choices=("MOMENT", "ViT"), default=None,
        help="paper models to run (default: both)",
    )
    sweep.add_argument("--adapters", nargs="*", help="adapters to run (default: none pca)")
    sweep.add_argument(
        "--strategies", nargs="*", choices=[s.value for s in FineTuneStrategy],
        help="fine-tuning strategies (default: adapter_head)",
    )
    sweep.add_argument("--seeds", nargs="*", type=int, help="restrict to these seeds")
    sweep.add_argument(
        "--workers", type=int, default=1,
        help="worker processes for the experiment grid (1 = in-process)",
    )
    sweep.add_argument(
        "--job-timeout", type=float, default=None, metavar="SECONDS",
        help="per-job wall-clock budget; jobs over it surface as TO cells",
    )
    sweep.add_argument(
        "--cache-dir", metavar="DIR",
        help="artifact cache (default: <grid-dir>/cache, shared by all shards)",
    )
    sweep.add_argument(
        "--shard", action="store_true",
        help="contribute what this process can claim and exit without "
        "waiting for jobs other shards hold",
    )
    sweep.add_argument(
        "--no-resume", action="store_true",
        help="ignore journaled verdicts and re-execute everything",
    )
    sweep.add_argument(
        "--retry-budget", type=int, default=1,
        help="extra attempts granted to journaled TO/COM verdicts across resumes",
    )
    sweep.add_argument(
        "--stale-after", type=float, default=DEFAULT_STALE_AFTER, metavar="SECONDS",
        help="heartbeat age after which a peer's lease is stolen",
    )
    sweep.add_argument(
        "--owner", default=None,
        help="shard owner id for leases (default: host:pid:nonce)",
    )

    grid_cmd = sub.add_parser("grid", help="inspect a resumable grid directory")
    grid_cmd.add_argument("action", choices=("status",))
    grid_cmd.add_argument("grid_dir", metavar="DIR", help="grid directory to inspect")
    grid_cmd.add_argument(
        "--stale-after", type=float, default=DEFAULT_STALE_AFTER, metavar="SECONDS",
        help="heartbeat age after which a lease counts as stale",
    )

    serve_cmd = sub.add_parser(
        "serve",
        help="serve a registered pipeline (micro-batched) under synthetic load",
    )
    serve_cmd.add_argument("--registry", required=True, metavar="DIR", help="registry directory")
    serve_cmd.add_argument("--name", required=True, help="deployment name")
    serve_cmd.add_argument("--version", type=int, default=None, help="version (default: latest)")
    serve_cmd.add_argument("--max-batch", type=int, default=16, help="micro-batch width cap")
    serve_cmd.add_argument(
        "--max-delay-ms", type=float, default=2.0,
        help="longest a request waits for co-batchees",
    )
    serve_cmd.add_argument("--queue-depth", type=int, default=256, help="bounded queue capacity")
    serve_cmd.add_argument(
        "--deadline-ms", type=float, default=None,
        help="per-request deadline (default: none)",
    )
    serve_cmd.add_argument(
        "--workers", type=int, default=0,
        help="serving worker processes (0 = in-process)",
    )
    serve_cmd.add_argument(
        "--no-compiled", action="store_true", help="disable compiled graph replay"
    )
    serve_cmd.add_argument(
        "--requests", type=int, default=256, help="synthetic requests to drive"
    )
    serve_cmd.add_argument(
        "--clients", type=int, default=4, help="concurrent closed-loop client threads"
    )
    serve_cmd.add_argument(
        "--length", type=int, default=96, help="series length of synthetic requests"
    )
    serve_cmd.add_argument("--seed", type=int, default=0, help="load-generator seed")
    serve_cmd.add_argument(
        "--stats-json", metavar="FILE", help="also write the /stats snapshot to FILE"
    )

    predict_cmd = sub.add_parser(
        "predict", help="one-shot prediction from a registered pipeline"
    )
    predict_cmd.add_argument("--registry", required=True, metavar="DIR")
    predict_cmd.add_argument("--name", required=True, help="deployment name")
    predict_cmd.add_argument("--version", type=int, default=None, help="version (default: latest)")
    predict_cmd.add_argument(
        "--input", required=True, metavar="FILE.npz",
        help="npz with an 'x' array, or a dataset archive (x_test is used)",
    )
    predict_cmd.add_argument(
        "--output", metavar="FILE.npz", help="write labels/logits/proba arrays to FILE"
    )
    predict_cmd.add_argument(
        "--proba", action="store_true", help="print class probabilities instead of labels"
    )
    predict_cmd.add_argument("--batch-size", type=int, default=64)
    predict_cmd.add_argument(
        "--no-compiled", action="store_true", help="disable compiled graph replay"
    )
    predict_cmd.add_argument(
        "--limit", type=int, default=8, metavar="N", help="print at most N rows"
    )

    stream_cmd = sub.add_parser(
        "stream",
        help="incremental streaming classification of one long series",
    )
    stream_cmd.add_argument("--registry", required=True, metavar="DIR")
    stream_cmd.add_argument("--name", required=True, help="deployment name")
    stream_cmd.add_argument("--version", type=int, default=None, help="version (default: latest)")
    stream_cmd.add_argument(
        "--input", metavar="FILE.npz",
        help="npz with an 'x' (T, D) array (default: generate with --dataset)",
    )
    stream_cmd.add_argument(
        "--dataset", default=None,
        help="generate a class-switching stream from this dataset's surrogate",
    )
    stream_cmd.add_argument(
        "--length", type=int, default=4096, help="generated stream length"
    )
    stream_cmd.add_argument("--window", type=int, default=64, help="window size")
    stream_cmd.add_argument("--stride", type=int, default=16, help="window stride")
    stream_cmd.add_argument(
        "--chunk", type=int, default=32, help="samples pushed per chunk"
    )
    stream_cmd.add_argument(
        "--batch-size", type=int, default=16,
        help="fixed execution width (the offline batch_size that reproduces "
        "streamed logits bit-for-bit)",
    )
    stream_cmd.add_argument("--seed", type=int, default=0, help="stream generator seed")
    stream_cmd.add_argument(
        "--no-compiled", action="store_true", help="disable compiled graph replay"
    )
    stream_cmd.add_argument(
        "--limit", type=int, default=8, metavar="N", help="print at most N window rows"
    )

    baseline = sub.add_parser("baseline", help="run a classical baseline (ROCKET / 1-NN DTW)")
    baseline.add_argument("--dataset", required=True)
    baseline.add_argument("--method", choices=("rocket", "dtw"), default="rocket")
    baseline.add_argument("--kernels", type=int, default=500, help="ROCKET kernel count")
    baseline.add_argument("--band", type=int, default=5, help="DTW Sakoe-Chiba band")
    baseline.add_argument("--scale", type=float, default=0.1)
    baseline.add_argument("--max-length", type=int, default=64)
    baseline.add_argument("--seed", type=int, default=0)

    selfcheck = sub.add_parser(
        "selfcheck",
        help="verify numerics: invariants + op gradcheck sweep + golden regressions",
    )
    selfcheck.add_argument(
        "--smoke",
        action="store_true",
        help="fast tier: float32-only gradchecks, one golden scenario",
    )
    selfcheck.add_argument(
        "--update-golden",
        action="store_true",
        help="re-record golden snapshots instead of comparing against them",
    )
    selfcheck.add_argument(
        "--golden-dir",
        metavar="DIR",
        help="golden snapshot directory (default: $REPRO_GOLDEN_DIR or ./goldens)",
    )

    report = sub.add_parser("report", help="full paper-vs-measured report (EXPERIMENTS.md)")
    report.add_argument("--preset", default="fast")
    report.add_argument("--datasets", nargs="*", help="restrict to these datasets")
    report.add_argument("--seeds", nargs="*", type=int)
    report.add_argument("--output", metavar="FILE", help="also write the report to FILE")
    report.add_argument(
        "--cache-dir",
        metavar="DIR",
        help="persistent artifact cache (default: $REPRO_CACHE_DIR)",
    )
    report.add_argument(
        "--workers", type=int, default=1,
        help="worker processes for the experiment grid (1 = in-process)",
    )
    report.add_argument(
        "--job-timeout", type=float, default=None, metavar="SECONDS",
        help="per-job wall-clock budget; jobs over it surface as TO cells",
    )

    return parser


def _cmd_datasets() -> int:
    rows = [
        [
            info.name,
            info.short_name,
            str(info.train_size),
            str(info.test_size),
            str(info.num_channels),
            str(info.sequence_length),
            str(info.num_classes),
            info.domain,
        ]
        for info in (dataset_info(name) for name in dataset_names())
    ]
    print(
        render_table(
            ["dataset", "short", "train", "test", "channels", "length", "classes", "domain"],
            rows,
        )
    )
    return 0


def _cmd_adapters() -> int:
    descriptions = {
        "none": "identity (no reduction)",
        "pca": "principal components over channels",
        "scaled_pca": "PCA on channel-standardised data",
        "patch_pca": "PCA over (patch window x channels) blocks",
        "svd": "top right-singular directions (uncentered)",
        "rand_proj": "Johnson-Lindenstrauss random projection",
        "var": "keep the highest-variance channels",
        "lda": "Fisher discriminant directions (supervised, fit-once)",
        "cluster_avg": "average correlated channel clusters",
        "lcomb": "learnable linear combiner (trained with the head)",
        "lcomb_top_k": "lcomb with top-k row sparsification",
    }
    rows = [[name, desc] for name, desc in descriptions.items()]
    print(render_table(["adapter", "description"], rows))
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    info = dataset_info(args.dataset)
    run = simulate_finetuning(
        args.model,
        info,
        adapter=None if args.adapter == "none" else args.adapter,
        reduced_channels=args.channels,
        full_finetune=args.full_finetune,
    )
    print(f"dataset : {info.name} (D={info.num_channels}, T={info.sequence_length})")
    print(f"model   : {args.model}")
    print(f"adapter : {args.adapter} (D'={args.channels})")
    print(f"regime  : {'full fine-tuning' if args.full_finetune else 'head / adapter+head'}")
    print(f"outcome : {run.status}")
    print(f"time    : {run.seconds:,.0f} s ({run.hours:.2f} h, budget 2 h)")
    print(f"memory  : {run.peak_memory_gib:.1f} GiB (budget 32 GiB)")
    print(f"compute : {run.flops:.3e} FLOPs")
    return 0 if run.ok else 1


def _cmd_run(args: argparse.Namespace) -> int:
    from .data import load_dataset

    dataset = load_dataset(
        args.dataset, seed=args.seed, scale=args.scale, max_length=args.max_length,
        normalize=False,
    )
    spec = spec_from_run_args(args)
    print(f"loaded  : {dataset.describe()}")
    print(f"spec    : {spec.label}")
    model = load_pretrained(args.model, seed=args.seed)
    adapter = make_adapter(
        args.adapter, args.channels if args.adapter != "none" else 1, seed=args.seed
    )
    pipeline = AdapterPipeline(model, adapter, dataset.num_classes, seed=args.seed)
    strategy = FineTuneStrategy(args.strategy)
    config = TrainConfig(
        epochs=args.epochs,
        batch_size=args.batch_size,
        learning_rate=args.learning_rate,
        seed=args.seed,
    )
    report = pipeline.fit(dataset.x_train, dataset.y_train, strategy=strategy, config=config)
    accuracy = pipeline.score(dataset.x_test, dataset.y_test)
    print(f"adapter : {adapter.name} (cached embeddings: {report.used_embedding_cache})")
    print(f"fit     : {report.total_s:.2f} s")
    print(f"accuracy: {accuracy:.3f}")
    if args.save:
        path = _save_pipeline_dir(pipeline, args.save)
        print(f"saved   : {path}")
    if args.deploy:
        if not args.registry:
            print("error   : --deploy requires --registry DIR", file=sys.stderr)
            return 2
        from .serve import PipelineRegistry

        record = PipelineRegistry(args.registry).publish(pipeline, args.deploy)
        print(f"deployed: {record.ref} -> {args.registry}")
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    from .data import load_dataset
    from .nn import default_dtype
    from .nn.profiler import render_ops, render_replay_ops

    dataset = load_dataset(
        args.dataset, seed=args.seed, scale=args.scale, max_length=args.max_length,
        normalize=False,
    )
    print(f"loaded  : {dataset.describe()}")
    with default_dtype(args.dtype):
        model = load_pretrained(args.model, seed=args.seed)
    adapter = make_adapter(
        args.adapter, args.channels if args.adapter != "none" else 1, seed=args.seed
    )
    pipeline = AdapterPipeline(model, adapter, dataset.num_classes, seed=args.seed)
    config = TrainConfig(
        epochs=args.epochs,
        batch_size=args.batch_size,
        learning_rate=args.learning_rate,
        seed=args.seed,
        profile=True,
    )
    report = pipeline.fit(
        dataset.x_train,
        dataset.y_train,
        strategy=FineTuneStrategy(args.strategy),
        config=config,
    )
    summary = report.summary
    print(f"model   : {args.model} ({args.dtype})")
    print(f"adapter : {adapter.name} (cached embeddings: {report.used_embedding_cache})")
    print(
        "phases  : "
        + "  ".join(
            f"{name}={seconds:.2f}s"
            for name, seconds in sorted(summary.phase_seconds.items())
        )
    )
    print()
    print(render_ops(summary.ops, top=args.top))
    if args.compiled:
        print()
        replay = report.train_result.replay_profile if report.train_result else {}
        if replay:
            print(render_replay_ops(replay, top=args.top))
        else:
            print(
                "no graph replays recorded: compiled replay only serves "
                "frozen-encoder inference (the embedding phase); this "
                "run kept the encoder in the training loop or "
                "compilation is disabled (REPRO_NN_COMPILE=0)"
            )
    return 0


#: ``repro run`` takes runnable (tiny) model names; specs use paper labels.
_PAPER_LABEL_BY_RUNNABLE = {"moment-tiny": "MOMENT", "vit-tiny": "ViT"}


def spec_from_run_args(args: argparse.Namespace) -> JobSpec:
    """Map ``repro run`` argv onto the canonical :class:`JobSpec`."""
    return JobSpec(
        dataset=args.dataset,
        model=_PAPER_LABEL_BY_RUNNABLE[args.model],
        adapter=args.adapter,
        strategy=FineTuneStrategy(args.strategy),
        seed=args.seed,
    )


def _make_runner(args: argparse.Namespace) -> ExperimentRunner:
    config = get_preset(args.preset)
    overrides = {}
    if args.datasets:
        overrides["datasets"] = tuple(dataset_info(d).name for d in args.datasets)
    if args.seeds:
        overrides["seeds"] = tuple(args.seeds)
    if overrides:
        config = config.with_(**overrides)
    workers = max(1, int(getattr(args, "workers", 1) or 1))
    return ExperimentRunner(
        config,
        cache_dir=getattr(args, "cache_dir", None),
        workers=workers,
        job_timeout=getattr(args, "job_timeout", None),
        tracker=ProgressTracker(stream=sys.stderr) if workers > 1 else None,
    )


def _cmd_table(args: argparse.Namespace) -> int:
    if args.which == "3":
        result = table3()
    else:
        result = _TABLES[args.which](_make_runner(args))
    print(result.to_latex() if args.latex else result.render())
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    builder = _FIGURES[args.which]
    print(builder(_make_runner(args)).render())
    return 0


def _cmd_baseline(args: argparse.Namespace) -> int:
    from .baselines import DTW1NNClassifier, RocketClassifier
    from .data import load_dataset

    dataset = load_dataset(
        args.dataset, seed=args.seed, scale=args.scale, max_length=args.max_length,
        normalize=False,
    )
    print(f"loaded  : {dataset.describe()}")
    watch = Stopwatch()
    if args.method == "rocket":
        classifier = RocketClassifier(num_kernels=args.kernels, seed=args.seed)
    else:
        classifier = DTW1NNClassifier(band=args.band)
    classifier.fit(dataset.x_train, dataset.y_train)
    accuracy = classifier.score(dataset.x_test, dataset.y_test)
    print(f"method  : {args.method}")
    print(f"fit+eval: {watch.elapsed():.2f} s")
    print(f"accuracy: {accuracy:.3f}")
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    cache_dir = resolve_cache_dir(args.cache_dir)
    if cache_dir is None:
        print("no cache directory configured; pass --cache-dir or set $REPRO_CACHE_DIR")
        return 1
    store = ArtifactStore(cache_dir=cache_dir)
    if args.action == "clear":
        removed = store.clear(namespace=args.namespace)
        scope = args.namespace or "all namespaces"
        print(f"cleared : {removed} entries ({scope}) from {cache_dir}")
        return 0
    summary = store.disk_summary()
    rows = [
        [namespace, str(counts["entries"]), f"{counts['bytes'] / 1024**2:.2f} MiB"]
        for namespace, counts in sorted(summary.items())
    ]
    total_entries = sum(counts["entries"] for counts in summary.values())
    total_bytes = sum(counts["bytes"] for counts in summary.values())
    print(f"cache   : {cache_dir}")
    if rows:
        print(render_table(["namespace", "entries", "size"], rows))
        print(f"total   : {total_entries} entries, {total_bytes / 1024**2:.2f} MiB")
    else:
        print("total   : empty")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from pathlib import Path

    from .exec import grid

    config = get_preset(args.preset)
    if args.seeds:
        config = config.with_(seeds=tuple(args.seeds))
    datasets = tuple(
        dataset_info(d).name for d in (args.datasets or config.datasets)
    )
    specs = grid(
        datasets=datasets,
        models=tuple(args.models) if args.models else ("MOMENT", "ViT"),
        adapters=tuple(args.adapters) if args.adapters else ("none", "pca"),
        strategies=tuple(args.strategies) if args.strategies else ("adapter_head",),
        seeds=config.seeds,
    )
    cache_dir = args.cache_dir or str(Path(args.grid_dir) / "cache")
    runner = ExperimentRunner(
        config,
        cache_dir=cache_dir,
        workers=max(1, int(args.workers)),
        job_timeout=args.job_timeout,
    )
    tracker = ProgressTracker(stream=sys.stderr)
    results = runner.run_specs(
        specs,
        tracker=tracker,
        grid_dir=args.grid_dir,
        resume=not args.no_resume,
        retry_budget=args.retry_budget,
        stale_after=args.stale_after,
        owner=args.owner,
        wait_for_peers=not args.shard,
    )
    finished = [r for r in results if r is not None]
    snapshot = tracker.snapshot()
    print(f"grid    : {args.grid_dir}")
    print(f"jobs    : {len(specs)} total, {len(finished)} finished this process")
    print(
        "resume  : "
        f"{snapshot['resumed']} resumed, {snapshot['cached']} cached, "
        f"{snapshot['stolen']} leases stolen"
    )
    if len(finished) < len(results):
        print(f"pending : {len(results) - len(finished)} jobs held by other shards")
    return 0


def _cmd_grid(args: argparse.Namespace) -> int:
    from pathlib import Path

    from .exec import GridJournal, LeaseBoard

    grid_dir = Path(args.grid_dir)
    journal = GridJournal.open(grid_dir)
    if not journal.manifest_path.exists():
        print(f"no grid journal at {grid_dir} (run `repro sweep --grid-dir {grid_dir}` first)")
        return 1
    progress = journal.progress()
    counts = progress["counts"]
    print(f"grid    : {grid_dir}")
    print(f"jobs    : {progress['total']} total, {progress['remaining']} remaining")
    rows = [[state, str(counts[state])] for state in counts if counts[state]]
    if rows:
        print(render_table(["state", "jobs"], rows))
    if progress["re_executed"]:
        print(f"re-run  : {progress['re_executed']} duplicate executions recorded")
    if progress["mean_job_seconds"] is not None:
        print(f"mean    : {progress['mean_job_seconds']:.2f} s/job")
    if progress["eta_seconds"] is not None:
        print(f"eta     : {progress['eta_seconds']:.0f} s")
    leases = LeaseBoard(grid_dir, stale_after=args.stale_after).active()
    if leases:
        lease_rows = [
            [
                row["digest"][:12],
                row["owner"],
                f"{row['heartbeat_age_s']:.1f}s",
                "stale" if row["stale"] else "live",
            ]
            for row in leases
        ]
        print(render_table(["lease", "owner", "heartbeat", "state"], lease_rows))
    else:
        print("leases  : none active")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from .experiments import build_report

    text = build_report(_make_runner(args))
    print(text)
    if args.output:
        from pathlib import Path

        Path(args.output).write_text(text)
    return 0


def _cmd_selfcheck(args: argparse.Namespace) -> int:
    from .testing import (
        SMOKE_SCENARIOS,
        check_goldens,
        run_invariants,
        run_op_sweep,
    )
    from .testing.gradcheck import GradcheckFailure

    failures = 0

    invariant_results = run_invariants()
    for result in invariant_results:
        status = "ok" if result.passed else f"FAIL  {result.detail}"
        print(f"invariant  {result.name:<42} {status}")
    failures += sum(not r.passed for r in invariant_results)

    dtypes = ("float32",) if args.smoke else ("float32", "float64")
    try:
        sweep = run_op_sweep(dtypes=dtypes)
    except (GradcheckFailure, AssertionError) as failure:
        print(f"gradcheck  op sweep                                   FAIL  {failure}")
        failures += 1
    else:
        ops = len({r.op for r in sweep})
        print(
            f"gradcheck  {ops} ops / {len(sweep)} checks "
            f"[{', '.join(dtypes)}]".ljust(53)
            + " ok"
        )

    names = list(SMOKE_SCENARIOS) if args.smoke else None
    golden_results = check_goldens(
        golden_dir=args.golden_dir, names=names, update=args.update_golden
    )
    for result in golden_results:
        label = f"golden     {result.name} [{result.dtype}]"
        if result.passed:
            print(f"{label:<53} {result.status}")
        else:
            print(f"{label:<53} FAIL  {result.status}: {result.detail}")
    failures += sum(not r.passed for r in golden_results)

    if failures:
        print(f"selfcheck: {failures} failure(s)")
        return 1
    print("selfcheck: all checks passed")
    return 0


def _serve_config_from_args(args: argparse.Namespace):
    from .serve import ServeConfig

    return ServeConfig(
        max_batch=args.max_batch,
        max_delay_s=args.max_delay_ms / 1000.0,
        queue_depth=args.queue_depth,
        default_deadline_s=(
            None if args.deadline_ms is None else args.deadline_ms / 1000.0
        ),
        workers=args.workers,
        compiled=not args.no_compiled,
    )


def _cmd_serve(args: argparse.Namespace) -> int:
    import json
    import threading

    import numpy as np

    from .serve import DeadlineExceededError, PipelineServer, QueueFullError

    config = _serve_config_from_args(args)
    server = PipelineServer(args.registry, args.name, version=args.version, config=config)
    record = server.record
    channels = server.input_channels
    print(f"serving : {record.ref} (digest {record.digest[:12]})")
    print(
        f"config  : max_batch={config.max_batch} "
        f"max_delay={config.max_delay_s * 1000:.1f}ms "
        f"queue_depth={config.queue_depth} workers={config.workers} "
        f"compiled={config.compiled}"
    )
    server.warmup(args.length)

    rng = np.random.default_rng(args.seed)
    requests = rng.standard_normal(
        (args.requests, args.length, channels)
    ).astype(np.float32)
    counters = {"ok": 0, "queue_full": 0, "deadline": 0}
    counter_lock = threading.Lock()
    cursor = iter(range(args.requests))
    cursor_lock = threading.Lock()

    def drive() -> None:
        while True:
            with cursor_lock:
                index = next(cursor, None)
            if index is None:
                return
            try:
                server.predict(requests[index])
            except QueueFullError:
                outcome = "queue_full"
            except DeadlineExceededError:
                outcome = "deadline"
            else:
                outcome = "ok"
            with counter_lock:
                counters[outcome] += 1

    watch = Stopwatch()
    threads = [
        threading.Thread(target=drive, name=f"serve-client-{i}", daemon=True)
        for i in range(max(1, args.clients))
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = watch.elapsed()

    stats = server.stats()
    server.close(drain=True)
    batcher = stats["batcher"]
    latency = batcher.get("latency_s") or {}
    width = batcher.get("batch_width") or {}
    qps = counters["ok"] / elapsed if elapsed > 0 else float("inf")
    print(f"load    : {args.requests} requests x {max(1, args.clients)} clients")
    print(
        f"done    : {counters['ok']} ok, {counters['queue_full']} shed "
        f"(queue full), {counters['deadline']} deadline-exceeded "
        f"in {elapsed:.2f} s"
    )
    print(f"qps     : {qps:.1f}")
    if latency:
        print(
            f"latency : p50={latency['p50'] * 1000:.2f}ms "
            f"p99={latency['p99'] * 1000:.2f}ms "
            f"mean={latency['mean'] * 1000:.2f}ms"
        )
    if width:
        print(f"batch   : mean width {width['mean']:.2f}, max {width['max']}")
    if args.stats_json:
        from pathlib import Path

        stats["load"] = {"elapsed_s": elapsed, "qps": qps, **counters}
        Path(args.stats_json).write_text(json.dumps(stats, indent=2, sort_keys=True))
        print(f"stats   : {args.stats_json}")
    return 0


def _cmd_predict(args: argparse.Namespace) -> int:
    from pathlib import Path

    import numpy as np

    from .serve import PipelineRegistry

    registry = PipelineRegistry(args.registry)
    pipeline = registry.load(args.name, version=args.version)
    record = registry.record(args.name, version=args.version)
    with np.load(args.input, allow_pickle=False) as payload:
        if "x" in payload:
            x = np.asarray(payload["x"])
        elif "x_test" in payload:
            x = np.asarray(payload["x_test"])
        else:
            print(
                f"error   : {args.input} has neither an 'x' array nor a "
                "dataset archive's 'x_test'",
                file=sys.stderr,
            )
            return 2
    if x.ndim == 2:
        x = x[None]
    compiled = not args.no_compiled
    logits = pipeline.predict_logits(x, batch_size=args.batch_size, compiled=compiled)
    labels = np.argmax(logits, axis=1)
    shifted = logits - logits.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    proba = exp / exp.sum(axis=1, keepdims=True)
    print(f"pipeline: {record.ref} (digest {record.digest[:12]})")
    print(f"input   : {x.shape[0]} series of shape ({x.shape[1]}, {x.shape[2]})")
    shown = min(len(labels), max(0, args.limit))
    for i in range(shown):
        if args.proba:
            probs = " ".join(f"{p:.4f}" for p in proba[i])
            print(f"[{i}] label={labels[i]}  proba=[{probs}]")
        else:
            print(f"[{i}] label={labels[i]}")
    if shown < len(labels):
        print(f"... ({len(labels) - shown} more; use --limit to print them)")
    if args.output:
        np.savez(Path(args.output), labels=labels, logits=logits, proba=proba)
        print(f"wrote   : {args.output}")
    return 0


def _cmd_stream(args: argparse.Namespace) -> int:
    import numpy as np

    from .data import dataset_info
    from .data.generators import generate_stream
    from .serve import PipelineRegistry
    from .stream import StreamingClassifier

    registry = PipelineRegistry(args.registry)
    pipeline = registry.load(args.name, version=args.version)
    record = registry.record(args.name, version=args.version)
    labels = None
    if args.input:
        with np.load(args.input, allow_pickle=False) as payload:
            if "x" not in payload:
                print(f"error   : {args.input} has no 'x' array", file=sys.stderr)
                return 2
            x = np.asarray(payload["x"])
            if "labels" in payload:
                labels = np.asarray(payload["labels"])
    else:
        if not args.dataset:
            print("error   : pass --input FILE.npz or --dataset NAME", file=sys.stderr)
            return 2
        info = dataset_info(args.dataset)
        x, labels = generate_stream(info, seed=args.seed, total_length=args.length)
    if x.ndim != 2:
        print(f"error   : expected one (T, D) series, got shape {x.shape}", file=sys.stderr)
        return 2

    classifier = StreamingClassifier(
        pipeline,
        window=args.window,
        stride=args.stride,
        batch_size=args.batch_size,
        compiled=not args.no_compiled,
    )
    print(f"pipeline: {record.ref} (digest {record.digest[:12]})")
    print(f"stream  : {x.shape[0]} samples x {x.shape[1]} channels")
    print(f"windows : window={args.window} stride={args.stride} chunk={args.chunk}")
    watch = Stopwatch()
    for lo in range(0, len(x), max(1, args.chunk)):
        classifier.push(x[lo : lo + max(1, args.chunk)])
    elapsed = watch.elapsed()

    emitted = classifier.emitted
    shown = min(len(emitted), max(0, args.limit))
    for prediction in emitted[:shown]:
        print(
            f"[{prediction.window_index}] samples {prediction.start}:{prediction.end} "
            f"label={prediction.label}"
        )
    if shown < len(emitted):
        print(f"... ({len(emitted) - shown} more; use --limit to print them)")
    stats = classifier.stats()
    rate = len(emitted) / elapsed if elapsed > 0 else float("inf")
    print(f"emitted : {len(emitted)} windows in {elapsed:.2f} s ({rate:.1f} windows/s)")
    print(
        f"cache   : {stats['cache']['hits']} hits, {stats['cache']['misses']} misses, "
        f"{stats['cache']['encoded_windows']} windows encoded"
    )
    if labels is not None and len(emitted):
        # A window's ground truth is the majority per-step label it covers.
        correct = 0
        for prediction in emitted:
            segment = labels[prediction.start : prediction.end]
            majority = int(np.bincount(segment).argmax())
            correct += int(prediction.label == majority)
        print(f"accuracy: {correct / len(emitted):.3f} (vs majority step label)")
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    try:
        return _dispatch(build_parser().parse_args(argv))
    except BrokenPipeError:
        # Output piped into a closed reader (e.g. `repro datasets | head`):
        # exit quietly like standard Unix tools.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


def _dispatch(args: argparse.Namespace) -> int:
    if args.command == "datasets":
        return _cmd_datasets()
    if args.command == "adapters":
        return _cmd_adapters()
    if args.command == "simulate":
        return _cmd_simulate(args)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "profile":
        return _cmd_profile(args)
    if args.command == "table":
        return _cmd_table(args)
    if args.command == "figure":
        return _cmd_figure(args)
    if args.command == "baseline":
        return _cmd_baseline(args)
    if args.command == "cache":
        return _cmd_cache(args)
    if args.command == "sweep":
        return _cmd_sweep(args)
    if args.command == "grid":
        return _cmd_grid(args)
    if args.command == "report":
        return _cmd_report(args)
    if args.command == "selfcheck":
        return _cmd_selfcheck(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "predict":
        return _cmd_predict(args)
    if args.command == "stream":
        return _cmd_stream(args)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    sys.exit(main())
