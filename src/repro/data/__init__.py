"""Data substrate: UEA dataset registry and synthetic surrogates."""

from .generators import (
    GeneratorConfig,
    LatentFactorGenerator,
    generate_split,
    generate_stream,
)
from .io import load_dataset_file, save_dataset
from .metadata import DATASETS, DatasetInfo, dataset_info, dataset_names
from .preprocessing import (
    Standardizer,
    pad_or_truncate,
    subsample,
    validate_series,
    zscore_per_channel,
)
from .uea import MultivariateDataset, load_all_datasets, load_dataset

__all__ = [
    "DATASETS",
    "DatasetInfo",
    "dataset_info",
    "dataset_names",
    "GeneratorConfig",
    "LatentFactorGenerator",
    "generate_split",
    "generate_stream",
    "Standardizer",
    "pad_or_truncate",
    "subsample",
    "validate_series",
    "zscore_per_channel",
    "MultivariateDataset",
    "load_dataset",
    "load_all_datasets",
    "save_dataset",
    "load_dataset_file",
]
