"""Synthetic multivariate time-series generator (UEA surrogate).

The real UEA archive is not available offline, so each dataset is
replaced by a latent-factor surrogate with the *exact* geometry of
Table 3 and a structure chosen to exercise the paper's adapters the
way the real data does:

* Class information lives in a low-dimensional **latent signal
  subspace** of the channel space (a handful of class-specific
  oscillatory latent trajectories mixed *densely* into all channels
  with heterogeneous gains).  PCA / SVD recover this subspace because
  its eigenvalues grow with the channel count.
* A couple of high-variance **decoy channels** carry no class signal,
  keeping variance-based selection (VAR) imperfect, and a few
  **common-mode noise** directions (shared artifacts, as in real
  EEG/sensor data) occupy top principal directions so PCA cannot spend
  all of D' on signal either — method gaps stay moderate, as in the
  paper's Figure 5.
* Random projection preserves the signal only in expectation, diluting
  it across directions — matching its poor rank in the paper.
* Per-sample nuisances (amplitude, phase jitter, AR(1) noise) make the
  task non-trivial so a learnable adapter (lcomb) has something to
  gain from supervision.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .metadata import DatasetInfo

__all__ = [
    "GeneratorConfig",
    "LatentFactorGenerator",
    "generate_split",
    "generate_stream",
]


@dataclass(frozen=True)
class GeneratorConfig:
    """Tunable knobs of the latent-factor surrogate generator.

    The defaults are chosen so the adapters behave qualitatively as on
    the real UEA data (see module docstring): the class signal is
    mixed *densely* into every channel (so its principal-subspace
    eigenvalues grow with D and PCA/SVD recover it), channel gains are
    heterogeneous (so variance selection finds informative channels),
    and a couple of high-variance decoy noise channels keep VAR from
    being perfect.
    """

    latent_dim: int = 4
    num_harmonics: int = 3
    signal_gain: float = 1.8
    gain_spread: float = 0.5
    noise_scale: float = 0.45
    common_noise_dim: int = 3
    common_noise_gain: float = 0.55
    num_decoy_channels: int = 2
    decoy_gain: float = 2.5
    ar_coefficient: float = 0.7
    phase_jitter: float = 0.2
    amplitude_jitter: float = 0.2


class LatentFactorGenerator:
    """Sample class-separable multivariate series for one dataset.

    The generator is deterministic given ``(info, seed)``: class
    prototypes (latent frequencies/phases and the channel mixing
    matrix) are drawn once at construction, and per-sample noise comes
    from the per-call generator, so train and test splits share the
    same class structure.
    """

    def __init__(
        self,
        info: DatasetInfo,
        seed: int,
        config: GeneratorConfig | None = None,
    ) -> None:
        self.info = info
        self.config = config if config is not None else GeneratorConfig()
        structure_rng = np.random.default_rng(seed)

        cfg = self.config
        k, classes = cfg.latent_dim, info.num_classes
        # Class-specific latent dynamics: frequencies, phases, weights.
        self._frequencies = structure_rng.uniform(
            1.0, 6.0, size=(classes, k, cfg.num_harmonics)
        )
        self._phases = structure_rng.uniform(
            0.0, 2 * np.pi, size=(classes, k, cfg.num_harmonics)
        )
        self._harmonic_weights = structure_rng.dirichlet(
            np.ones(cfg.num_harmonics), size=(classes, k)
        )

        # Channel mixing: every channel receives the latent signal with
        # a heterogeneous (lognormal) gain, so the signal subspace
        # accumulates variance across channels (PCA-friendly) while
        # individual channels differ in informativeness (VAR-friendly).
        d = info.num_channels
        mixing = structure_rng.normal(0.0, 1.0 / np.sqrt(k), size=(d, k))
        gains = cfg.signal_gain * structure_rng.lognormal(
            mean=0.0, sigma=cfg.gain_spread, size=d
        )
        # A couple of decoy channels carry no class signal but have the
        # largest variance — they trap variance-based selection without
        # dominating the dense principal subspace.
        num_decoys = min(cfg.num_decoy_channels, max(0, d - k))
        self._decoy_channels = structure_rng.choice(d, size=num_decoys, replace=False)
        gains[self._decoy_channels] = 0.0
        self._mixing = mixing * gains[:, None]
        self._noise_scales = np.full(d, cfg.noise_scale)
        self._noise_scales[self._decoy_channels] = cfg.decoy_gain

        # Common-mode noise: class-independent artifacts shared across
        # channels (EEG eye blinks, sensor drift).  They occupy a few
        # high-variance principal directions, so PCA/VAR cannot devote
        # all of D' to the class signal — random projection, which
        # never chases variance, is unaffected.  This mirrors real
        # multichannel data and keeps the adapters' accuracy gaps
        # moderate, as in the paper's Figure 5.
        m = cfg.common_noise_dim
        self._common_mixing = (
            cfg.common_noise_gain * structure_rng.normal(0.0, 1.0 / np.sqrt(max(m, 1)), size=(d, m))
            if m > 0
            else np.zeros((d, 0))
        )

        self.signal_channels = np.setdiff1d(np.arange(d), self._decoy_channels)

    # ------------------------------------------------------------------
    def _latent_trajectories(
        self, labels: np.ndarray, length: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Return latent signals of shape (N, length, latent_dim)."""
        cfg = self.config
        n = len(labels)
        t = np.linspace(0.0, 1.0, length)[None, None, None, :]  # (1,1,1,T)
        freqs = self._frequencies[labels][..., None]  # (N, k, H, 1)
        phases = self._phases[labels][..., None]
        weights = self._harmonic_weights[labels][..., None]
        jitter = rng.normal(0.0, cfg.phase_jitter, size=(n, 1, 1, 1))
        waves = np.sin(2 * np.pi * freqs * t + phases + jitter)
        latent = (weights * waves).sum(axis=2)  # (N, k, T)
        amplitude = 1.0 + rng.normal(0.0, cfg.amplitude_jitter, size=(n, latent.shape[1], 1))
        return (latent * amplitude).transpose(0, 2, 1)  # (N, T, k)

    def _ar_noise(self, n: int, length: int, rng: np.random.Generator) -> np.ndarray:
        """AR(1) channel noise of shape (N, length, D)."""
        cfg = self.config
        d = self.info.num_channels
        white = rng.normal(size=(n, length, d))
        noise = np.empty_like(white)
        noise[:, 0] = white[:, 0]
        rho = cfg.ar_coefficient
        scale = np.sqrt(1.0 - rho**2)
        for step in range(1, length):
            noise[:, step] = rho * noise[:, step - 1] + scale * white[:, step]
        return noise * self._noise_scales[None, None, :]

    def sample(
        self,
        num_samples: int,
        rng: np.random.Generator,
        length: int | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Draw ``(X, y)`` with X of shape (N, T, D) and integer labels.

        Labels are balanced (round-robin) then shuffled, mirroring the
        roughly balanced UEA class distributions.
        """
        if num_samples <= 0:
            raise ValueError(f"num_samples must be positive, got {num_samples}")
        length = length if length is not None else self.info.sequence_length
        labels = np.arange(num_samples) % self.info.num_classes
        rng.shuffle(labels)
        latent = self._latent_trajectories(labels, length, rng)  # (N, T, k)
        clean = latent @ self._mixing.T  # (N, T, D)
        data = clean + self._ar_noise(num_samples, length, rng)
        m = self._common_mixing.shape[1]
        if m:
            # Smooth shared artifact trajectories (AR(1) in time).
            white = rng.normal(size=(num_samples, length, m))
            rho = self.config.ar_coefficient
            artifacts = np.empty_like(white)
            artifacts[:, 0] = white[:, 0]
            scale = np.sqrt(1.0 - rho**2)
            for step in range(1, length):
                artifacts[:, step] = rho * artifacts[:, step - 1] + scale * white[:, step]
            data = data + artifacts @ self._common_mixing.T
        return data.astype(np.float64), labels.astype(np.int64)


def generate_split(
    info: DatasetInfo,
    seed: int,
    scale: float = 1.0,
    max_length: int | None = None,
    config: GeneratorConfig | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Generate a full ``(X_train, y_train, X_test, y_test)`` split.

    Parameters
    ----------
    info:
        Dataset geometry (Table 3 entry).
    seed:
        Controls both the class structure and the sampled noise; two
        calls with the same seed return identical data.
    scale:
        Fraction of the paper's train/test sizes to generate (CPU
        budget knob for the experiment harness).  Sizes are floored at
        ``max(6 * num_classes, 24)`` so every class keeps enough
        examples for the accuracy comparisons to be meaningful, and
        capped at the paper's true sizes.
    max_length:
        Optional cap on sequence length (again a CPU budget knob; the
        resource cost model always uses the *paper* length).
    """
    if not 0.0 < scale <= 1.0:
        raise ValueError(f"scale must be in (0, 1], got {scale}")
    generator = LatentFactorGenerator(info, seed=seed, config=config)
    sample_rng = np.random.default_rng(seed + 1)

    floor = max(6 * info.num_classes, 24)
    n_train = min(info.train_size, max(floor, int(round(info.train_size * scale))))
    n_test = min(info.test_size, max(floor, int(round(info.test_size * scale))))
    length = info.sequence_length
    if max_length is not None:
        length = min(length, max_length)

    x_train, y_train = generator.sample(n_train, sample_rng, length=length)
    x_test, y_test = generator.sample(n_test, sample_rng, length=length)
    return x_train, y_train, x_test, y_test


def generate_stream(
    info: DatasetInfo,
    seed: int,
    total_length: int,
    *,
    min_segment: int = 64,
    max_segment: int = 256,
    config: GeneratorConfig | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Generate one long class-switching ``(T, D)`` series with labels.

    The long-context scenario family: a single continuous multivariate
    recording whose generating class *switches* at segment boundaries
    — the regime streaming classification and ``encode_long`` exist
    for.  Each segment is drawn from the same
    :class:`LatentFactorGenerator` class structure as the offline
    splits (so a pipeline fitted on ``generate_split`` data transfers),
    with seeded random segment lengths in ``[min_segment,
    max_segment]``.

    Returns ``(x, labels)``: ``x`` of shape ``(total_length, D)``
    float64 and per-*step* ground-truth labels of shape
    ``(total_length,)`` int64.  Deterministic given ``(info, seed)``.
    """
    if total_length <= 0:
        raise ValueError(f"total_length must be positive, got {total_length}")
    if not 0 < min_segment <= max_segment:
        raise ValueError(
            f"need 0 < min_segment <= max_segment, got [{min_segment}, {max_segment}]"
        )
    generator = LatentFactorGenerator(info, seed=seed, config=config)
    rng = np.random.default_rng(seed + 2)
    pieces: list[np.ndarray] = []
    label_pieces: list[np.ndarray] = []
    produced = 0
    label = int(rng.integers(info.num_classes))
    while produced < total_length:
        segment_length = int(rng.integers(min_segment, max_segment + 1))
        segment_length = min(segment_length, total_length - produced)
        # One sample of the requested class: the generator's label
        # round-robin is bypassed by sampling per segment.
        latent = generator._latent_trajectories(
            np.array([label]), segment_length, rng
        )
        clean = latent @ generator._mixing.T
        segment = clean + generator._ar_noise(1, segment_length, rng)
        m = generator._common_mixing.shape[1]
        if m:
            white = rng.normal(size=(1, segment_length, m))
            rho = generator.config.ar_coefficient
            artifacts = np.empty_like(white)
            artifacts[:, 0] = white[:, 0]
            scale = np.sqrt(1.0 - rho**2)
            for step in range(1, segment_length):
                artifacts[:, step] = rho * artifacts[:, step - 1] + scale * white[:, step]
            segment = segment + artifacts @ generator._common_mixing.T
        pieces.append(segment[0])
        label_pieces.append(np.full(segment_length, label, dtype=np.int64))
        produced += segment_length
        # Switch to a different class at each boundary.
        if info.num_classes > 1:
            offset = int(rng.integers(1, info.num_classes))
            label = (label + offset) % info.num_classes
    x = np.concatenate(pieces, axis=0).astype(np.float64)
    labels = np.concatenate(label_pieces, axis=0)
    return x, labels
