"""Dataset import/export (.npz archives).

Lets users materialise a surrogate dataset once and reload it later
(or swap in the *real* UEA arrays, downloaded elsewhere, without
touching the generator): the on-disk format is a plain ``.npz`` with
four arrays plus a JSON metadata blob, so it is portable and
inspectable with numpy alone.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from .metadata import dataset_info
from .preprocessing import validate_series
from .uea import MultivariateDataset

__all__ = ["save_dataset", "load_dataset_file"]

_META_KEY = "__dataset_meta__"


def save_dataset(dataset: MultivariateDataset, path: str | Path) -> Path:
    """Write a dataset split to ``path`` (``.npz`` enforced)."""
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(".npz")
    path.parent.mkdir(parents=True, exist_ok=True)
    metadata = {
        "name": dataset.info.name,
        "seed": dataset.seed,
        "scale": dataset.scale,
    }
    meta_blob = np.frombuffer(json.dumps(metadata).encode("utf-8"), dtype=np.uint8).copy()
    np.savez_compressed(
        path,
        x_train=dataset.x_train,
        y_train=dataset.y_train,
        x_test=dataset.x_test,
        y_test=dataset.y_test,
        **{_META_KEY: meta_blob},
    )
    return path


def load_dataset_file(path: str | Path) -> MultivariateDataset:
    """Reload a dataset written by :func:`save_dataset`.

    The arrays are validated (shape/finiteness) and the Table-3 entry
    is re-attached from the metadata, so the resource simulator keeps
    working on reloaded data.
    """
    path = Path(path)
    if not path.exists() and path.suffix != ".npz":
        path = path.with_suffix(".npz")
    with np.load(path) as archive:
        required = {"x_train", "y_train", "x_test", "y_test", _META_KEY}
        missing = required - set(archive.files)
        if missing:
            raise ValueError(f"{path} is not a dataset archive; missing {sorted(missing)}")
        metadata = json.loads(archive[_META_KEY].tobytes().decode("utf-8"))
        x_train = validate_series(archive["x_train"], "x_train")
        x_test = validate_series(archive["x_test"], "x_test")
        y_train = archive["y_train"].astype(np.int64)
        y_test = archive["y_test"].astype(np.int64)
    if len(x_train) != len(y_train) or len(x_test) != len(y_test):
        raise ValueError("label arrays do not align with the data arrays")
    return MultivariateDataset(
        info=dataset_info(metadata["name"]),
        x_train=x_train,
        y_train=y_train,
        x_test=x_test,
        y_test=y_test,
        seed=int(metadata["seed"]),
        scale=float(metadata["scale"]),
    )
