"""Registry of the 12 UEA datasets used in the paper (Table 3).

The geometry recorded here (train/test sizes, channel counts, sequence
lengths, class counts) drives both the synthetic surrogate generator
and the resource cost model, so it must match the paper's Table 3
exactly.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["DatasetInfo", "DATASETS", "dataset_info", "dataset_names"]


@dataclass(frozen=True)
class DatasetInfo:
    """Static characteristics of one UEA dataset (paper Table 3)."""

    name: str
    short_name: str
    train_size: int
    test_size: int
    num_channels: int
    sequence_length: int
    num_classes: int
    domain: str

    @property
    def total_size(self) -> int:
        return self.train_size + self.test_size

    def tokens_per_sample(self, patch_length: int, patch_stride: int | None = None) -> int:
        """Number of encoder tokens a channel-independent TSFM produces.

        Univariate TSFMs tokenise each channel separately, so the token
        count scales linearly in ``num_channels`` — the bottleneck the
        paper's adapters remove.
        """
        stride = patch_stride if patch_stride is not None else patch_length
        patches = max(1, (self.sequence_length - patch_length) // stride + 1)
        return self.num_channels * patches


# Table 3 of the paper, verbatim.  InsectWingbeat sizes reflect the
# paper's 1000/1000 subsample of the original 30k/20k archive.
DATASETS: dict[str, DatasetInfo] = {
    info.name: info
    for info in [
        DatasetInfo("DuckDuckGeese", "Duck", 60, 40, 1345, 270, 5, "audio"),
        DatasetInfo("FaceDetection", "Face", 5890, 3524, 144, 62, 2, "EEG"),
        DatasetInfo("FingerMovements", "Finger", 316, 100, 28, 50, 2, "EEG"),
        DatasetInfo("HandMovementDirection", "Hand", 320, 147, 10, 400, 4, "MEG"),
        DatasetInfo("Heartbeat", "Heart", 204, 205, 61, 405, 2, "physiological"),
        DatasetInfo("InsectWingbeat", "Insect", 1000, 1000, 200, 78, 10, "audio"),
        DatasetInfo("JapaneseVowels", "Vowels", 270, 370, 12, 29, 9, "speech"),
        DatasetInfo("MotorImagery", "Motor", 278, 100, 64, 3000, 2, "EEG"),
        DatasetInfo("NATOPS", "NATOPS", 180, 180, 24, 51, 6, "motion"),
        DatasetInfo("PEMS-SF", "PEMS", 267, 173, 963, 144, 7, "sensor"),
        DatasetInfo("PhonemeSpectra", "Phoneme", 3315, 3353, 11, 217, 39, "speech"),
        DatasetInfo("SpokenArabicDigits", "SpokeA", 6599, 2199, 13, 93, 10, "speech"),
    ]
}

_SHORT_TO_NAME = {info.short_name: info.name for info in DATASETS.values()}


def dataset_names() -> list[str]:
    """All dataset names in the paper's table order."""
    return list(DATASETS)


def dataset_info(name: str) -> DatasetInfo:
    """Look up a dataset by full or short name (case-insensitive)."""
    if name in DATASETS:
        return DATASETS[name]
    if name in _SHORT_TO_NAME:
        return DATASETS[_SHORT_TO_NAME[name]]
    lowered = {key.lower(): key for key in DATASETS}
    if name.lower() in lowered:
        return DATASETS[lowered[name.lower()]]
    lowered_short = {key.lower(): value for key, value in _SHORT_TO_NAME.items()}
    if name.lower() in lowered_short:
        return DATASETS[lowered_short[name.lower()]]
    raise KeyError(f"unknown dataset {name!r}; known: {sorted(DATASETS)}")
