"""Preprocessing utilities for multivariate time series.

All functions operate on arrays shaped ``(N, T, D)`` — samples, time
steps, channels — the convention used throughout the library.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "validate_series",
    "zscore_per_channel",
    "Standardizer",
    "pad_or_truncate",
    "subsample",
]


def validate_series(x: np.ndarray, name: str = "x") -> np.ndarray:
    """Check that ``x`` is a finite 3D (N, T, D) array; return it as float."""
    x = np.asarray(x)
    if x.ndim != 3:
        raise ValueError(f"{name} must be 3D (N, T, D), got shape {x.shape}")
    if x.size and not np.isfinite(x).all():
        raise ValueError(f"{name} contains NaN or infinite values")
    return x.astype(np.float64, copy=False)


def zscore_per_channel(x: np.ndarray, eps: float = 1e-8) -> np.ndarray:
    """Z-normalise each sample's channels independently over time.

    This is the standard per-instance normalisation used by TSFMs
    (e.g. RevIN-style): for every (sample, channel) pair, subtract the
    temporal mean and divide by the temporal standard deviation.
    """
    x = validate_series(x)
    mean = x.mean(axis=1, keepdims=True)
    std = x.std(axis=1, keepdims=True)
    return (x - mean) / (std + eps)


class Standardizer:
    """Dataset-level channel standardiser fit on train, applied to test.

    Unlike :func:`zscore_per_channel` (per-instance), this learns one
    mean/std per channel from the training split, the statistic the
    unsupervised adapters (PCA et al.) should be fit on.
    """

    def __init__(self, eps: float = 1e-8) -> None:
        self.eps = eps
        self.mean_: np.ndarray | None = None
        self.std_: np.ndarray | None = None

    def fit(self, x: np.ndarray) -> "Standardizer":
        """Learn per-channel mean/std from training data."""
        x = validate_series(x)
        flat = x.reshape(-1, x.shape[-1])
        self.mean_ = flat.mean(axis=0)
        self.std_ = flat.std(axis=0)
        return self

    def transform(self, x: np.ndarray) -> np.ndarray:
        """Standardise ``x`` with the training statistics."""
        if self.mean_ is None or self.std_ is None:
            raise RuntimeError("Standardizer used before fit()")
        x = validate_series(x)
        return (x - self.mean_) / (self.std_ + self.eps)

    def fit_transform(self, x: np.ndarray) -> np.ndarray:
        """Fit on ``x`` and return its standardised form."""
        return self.fit(x).transform(x)


def pad_or_truncate(x: np.ndarray, length: int, pad_value: float = 0.0) -> np.ndarray:
    """Force the time axis of (N, T, D) data to exactly ``length``.

    Shorter series are right-padded with ``pad_value``; longer ones are
    truncated from the right (keeping the series prefix), matching how
    fixed-context TSFMs consume variable-length inputs.
    """
    x = validate_series(x)
    n, t, d = x.shape
    if length <= 0:
        raise ValueError(f"length must be positive, got {length}")
    if t == length:
        return x
    if t > length:
        return x[:, :length, :]
    padded = np.full((n, length, d), pad_value, dtype=x.dtype)
    padded[:, :t, :] = x
    return padded


def subsample(
    x: np.ndarray,
    y: np.ndarray,
    num_samples: int,
    rng: np.random.Generator,
) -> tuple[np.ndarray, np.ndarray]:
    """Class-stratified subsample of ``num_samples`` rows.

    Implements the paper's InsectWingbeat rule (1000 of 30k train /
    1000 of 20k test) in a reusable form.  If a class has fewer
    members than its quota, the remainder is filled from other classes.
    """
    x, y = np.asarray(x), np.asarray(y)
    if len(x) != len(y):
        raise ValueError(f"x and y lengths differ: {len(x)} vs {len(y)}")
    if num_samples >= len(x):
        return x, y
    classes = np.unique(y)
    per_class = num_samples // len(classes)
    chosen: list[np.ndarray] = []
    for cls in classes:
        members = np.flatnonzero(y == cls)
        take = min(per_class, len(members))
        chosen.append(rng.choice(members, size=take, replace=False))
    index = np.concatenate(chosen)
    if len(index) < num_samples:
        remaining = np.setdiff1d(np.arange(len(x)), index)
        extra = rng.choice(remaining, size=num_samples - len(index), replace=False)
        index = np.concatenate([index, extra])
    rng.shuffle(index)
    return x[index], y[index]
