"""High-level dataset loading API (UEA surrogate archive).

``load_dataset`` is the single entry point the examples, tests and
experiment harness use.  It wires together the Table-3 registry, the
latent-factor generator and preprocessing into one reproducible call.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .generators import GeneratorConfig, generate_split
from .metadata import DatasetInfo, dataset_info, dataset_names
from .preprocessing import zscore_per_channel

__all__ = ["MultivariateDataset", "load_dataset", "load_all_datasets"]


@dataclass
class MultivariateDataset:
    """A loaded train/test split plus its Table-3 metadata."""

    info: DatasetInfo
    x_train: np.ndarray
    y_train: np.ndarray
    x_test: np.ndarray
    y_test: np.ndarray
    seed: int
    scale: float = 1.0

    @property
    def name(self) -> str:
        return self.info.name

    @property
    def num_channels(self) -> int:
        return self.x_train.shape[-1]

    @property
    def sequence_length(self) -> int:
        return self.x_train.shape[1]

    @property
    def num_classes(self) -> int:
        return self.info.num_classes

    def describe(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{self.name}: train={len(self.x_train)} test={len(self.x_test)} "
            f"T={self.sequence_length} D={self.num_channels} "
            f"classes={self.num_classes}"
        )


def load_dataset(
    name: str,
    seed: int = 0,
    scale: float = 1.0,
    max_length: int | None = None,
    normalize: bool = True,
    generator_config: GeneratorConfig | None = None,
) -> MultivariateDataset:
    """Load (generate) one UEA surrogate dataset.

    Parameters
    ----------
    name:
        Full or short dataset name (see :func:`repro.data.dataset_names`).
    seed:
        Seed for the surrogate's class structure and sampling noise.
    scale:
        Fraction of the paper's train/test sizes to materialise — the
        CPU-budget knob used by the experiment harness.  The resource
        simulator always reasons about the *paper-scale* geometry in
        ``info`` regardless of this value.
    max_length:
        Optional cap on the generated sequence length (same caveat).
    normalize:
        Apply per-instance channel z-normalisation, the TSFM input
        convention.
    """
    info = dataset_info(name)
    x_train, y_train, x_test, y_test = generate_split(
        info, seed=seed, scale=scale, max_length=max_length, config=generator_config
    )
    if normalize:
        x_train = zscore_per_channel(x_train)
        x_test = zscore_per_channel(x_test)
    return MultivariateDataset(
        info=info,
        x_train=x_train,
        y_train=y_train,
        x_test=x_test,
        y_test=y_test,
        seed=seed,
        scale=scale,
    )


def load_all_datasets(
    seed: int = 0,
    scale: float = 1.0,
    max_length: int | None = None,
) -> dict[str, MultivariateDataset]:
    """Load every Table-3 dataset (in table order)."""
    return {
        name: load_dataset(name, seed=seed, scale=scale, max_length=max_length)
        for name in dataset_names()
    }
