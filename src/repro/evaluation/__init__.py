"""Metrics, multi-seed aggregation, statistics and report rendering."""

from .aggregate import MeanStd, aggregate_seeds
from .metrics import accuracy, confusion_matrix, macro_f1
from .reporting import (
    format_csv,
    render_bar_chart,
    render_latex_table,
    render_sparkline,
    render_table,
    write_csv,
)
from .stats import (
    average_ranks,
    mean_pairwise_pvalues,
    pairwise_pvalue_matrix,
    rank_scores,
    welch_ttest,
)

__all__ = [
    "accuracy",
    "confusion_matrix",
    "macro_f1",
    "MeanStd",
    "aggregate_seeds",
    "welch_ttest",
    "pairwise_pvalue_matrix",
    "mean_pairwise_pvalues",
    "average_ranks",
    "rank_scores",
    "render_table",
    "render_bar_chart",
    "render_sparkline",
    "render_latex_table",
    "write_csv",
    "format_csv",
]
