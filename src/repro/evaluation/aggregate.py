"""Multi-seed aggregation and mean±std formatting."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["MeanStd", "aggregate_seeds"]


@dataclass(frozen=True)
class MeanStd:
    """Mean and standard deviation of a multi-seed measurement."""

    mean: float
    std: float
    count: int

    def __str__(self) -> str:
        return f"{self.mean:.3f} ± {self.std:.3f}"

    def paper_format(self) -> str:
        """The paper's compact cell format, e.g. ``0.593±0.032``."""
        return f"{self.mean:.3f}±{self.std:.3f}"


def aggregate_seeds(values) -> MeanStd:
    """Aggregate per-seed scalars into :class:`MeanStd`.

    Uses the population standard deviation (ddof=0), matching how
    small-sample ML papers conventionally report the ± spread of 3
    seeds.
    """
    array = np.asarray(list(values), dtype=np.float64)
    if array.size == 0:
        raise ValueError("cannot aggregate zero values")
    if not np.isfinite(array).all():
        raise ValueError("aggregation received non-finite values")
    return MeanStd(float(array.mean()), float(array.std()), int(array.size))
