"""Classification metrics."""

from __future__ import annotations

import numpy as np

__all__ = ["accuracy", "confusion_matrix", "macro_f1"]


def _check_labels(y_true: np.ndarray, y_pred: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    y_true, y_pred = np.asarray(y_true), np.asarray(y_pred)
    if y_true.shape != y_pred.shape or y_true.ndim != 1:
        raise ValueError(
            f"label arrays must be 1D and aligned, got {y_true.shape} vs {y_pred.shape}"
        )
    if len(y_true) == 0:
        raise ValueError("empty label arrays")
    return y_true.astype(np.int64), y_pred.astype(np.int64)


def accuracy(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Fraction of correct predictions (the paper's primary metric)."""
    y_true, y_pred = _check_labels(y_true, y_pred)
    return float((y_true == y_pred).mean())


def confusion_matrix(y_true: np.ndarray, y_pred: np.ndarray, num_classes: int | None = None) -> np.ndarray:
    """(C, C) matrix with rows = true class, columns = predicted."""
    y_true, y_pred = _check_labels(y_true, y_pred)
    if num_classes is None:
        num_classes = int(max(y_true.max(), y_pred.max())) + 1
    matrix = np.zeros((num_classes, num_classes), dtype=np.int64)
    np.add.at(matrix, (y_true, y_pred), 1)
    return matrix


def macro_f1(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Unweighted mean of per-class F1 scores."""
    matrix = confusion_matrix(y_true, y_pred)
    true_pos = np.diag(matrix).astype(np.float64)
    predicted = matrix.sum(axis=0).astype(np.float64)
    actual = matrix.sum(axis=1).astype(np.float64)
    with np.errstate(divide="ignore", invalid="ignore"):
        precision = np.where(predicted > 0, true_pos / predicted, 0.0)
        recall = np.where(actual > 0, true_pos / actual, 0.0)
        denom = precision + recall
        f1 = np.where(denom > 0, 2 * precision * recall / denom, 0.0)
    present = actual > 0
    return float(f1[present].mean()) if present.any() else 0.0
