"""Rendering helpers: markdown tables, CSV dumps, ASCII bar charts.

The benchmark harness regenerates each paper table/figure as text:
tables as aligned markdown, figures as labelled value series plus an
ASCII bar chart so the "shape" (who wins, by how much) is visible in
terminal output and CI logs.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import Sequence

__all__ = ["render_table", "render_bar_chart", "render_sparkline", "render_latex_table", "write_csv", "format_csv"]


def render_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render an aligned markdown-style table."""
    if not headers:
        raise ValueError("headers must be non-empty")
    str_rows = [[str(cell) for cell in row] for row in rows]
    for index, row in enumerate(str_rows):
        if len(row) != len(headers):
            raise ValueError(
                f"row {index} has {len(row)} cells, expected {len(headers)}"
            )
    widths = [
        max(len(str(header)), *(len(row[col]) for row in str_rows)) if str_rows else len(str(header))
        for col, header in enumerate(headers)
    ]
    lines = [
        "| " + " | ".join(str(h).ljust(w) for h, w in zip(headers, widths)) + " |",
        "|-" + "-|-".join("-" * w for w in widths) + "-|",
    ]
    for row in str_rows:
        lines.append("| " + " | ".join(cell.ljust(w) for cell, w in zip(row, widths)) + " |")
    return "\n".join(lines)


def render_bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 50,
    unit: str = "",
) -> str:
    """Horizontal ASCII bar chart (used for the paper's figures)."""
    if len(labels) != len(values):
        raise ValueError("labels and values must align")
    if not labels:
        raise ValueError("nothing to chart")
    peak = max(values)
    label_width = max(len(str(label)) for label in labels)
    lines = []
    for label, value in zip(labels, values):
        bar_len = 0 if peak <= 0 else int(round(width * value / peak))
        bar = "█" * bar_len
        lines.append(f"{str(label).ljust(label_width)} | {bar} {value:.3g}{unit}")
    return "\n".join(lines)


def render_sparkline(values: Sequence[float], width: int = 60) -> str:
    """Render a numeric series as a unicode sparkline (training curves).

    Values are resampled to ``width`` points and mapped onto eight
    block heights; NaNs render as spaces.
    """
    values = list(values)
    if not values:
        raise ValueError("nothing to render")
    import numpy as np

    array = np.asarray(values, dtype=float)
    if len(array) > width:
        positions = np.linspace(0, len(array) - 1, width).round().astype(int)
        array = array[positions]
    finite = array[np.isfinite(array)]
    if finite.size == 0:
        return " " * len(array)
    low, high = float(finite.min()), float(finite.max())
    span = high - low
    blocks = "▁▂▃▄▅▆▇█"
    chars = []
    for value in array:
        if not np.isfinite(value):
            chars.append(" ")
            continue
        level = 0 if span == 0 else int(round((value - low) / span * (len(blocks) - 1)))
        chars.append(blocks[level])
    return "".join(chars)


def render_latex_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    caption: str | None = None,
    label: str | None = None,
) -> str:
    """Render a booktabs-style LaTeX table (for writing papers about
    the reproduction).  Cell text is escaped for the common specials."""
    if not headers:
        raise ValueError("headers must be non-empty")

    def escape(cell: object) -> str:
        text = str(cell)
        for char in ("&", "%", "#", "_"):
            text = text.replace(char, "\\" + char)
        return text.replace("±", "$\\pm$")

    lines = ["\\begin{table}[ht]", "\\centering"]
    if caption:
        lines.append(f"\\caption{{{escape(caption)}}}")
    if label:
        lines.append(f"\\label{{{label}}}")
    column_spec = "l" * len(headers)
    lines += [f"\\begin{{tabular}}{{{column_spec}}}", "\\toprule"]
    lines.append(" & ".join(escape(h) for h in headers) + " \\\\")
    lines.append("\\midrule")
    for index, row in enumerate(rows):
        if len(row) != len(headers):
            raise ValueError(f"row {index} has {len(row)} cells, expected {len(headers)}")
        lines.append(" & ".join(escape(cell) for cell in row) + " \\\\")
    lines += ["\\bottomrule", "\\end{tabular}", "\\end{table}"]
    return "\n".join(lines)


def write_csv(
    path: str | Path,
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
) -> Path:
    """Write rows to CSV, creating parent directories; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(headers)
        writer.writerows(rows)
    return path


def format_csv(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render CSV to a string (for logging without touching disk)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(headers)
    writer.writerows(rows)
    return buffer.getvalue()
