"""Statistical analyses used in the paper's evaluation.

* Welch's two-sample t-test (unequal variances) — Appendix C.4's
  pairwise p-values between fine-tuning methods (Figure 5).
* Average ranks across datasets — Figure 4's adapter comparison.
"""

from __future__ import annotations

import math

import numpy as np
from scipy import stats as scipy_stats

__all__ = [
    "welch_ttest",
    "pairwise_pvalue_matrix",
    "mean_pairwise_pvalues",
    "average_ranks",
    "rank_scores",
]


def welch_ttest(sample_a: np.ndarray, sample_b: np.ndarray) -> tuple[float, float]:
    """Two-sample Student's t-test with unequal variances (Welch).

    Returns ``(t_statistic, p_value)`` for the two-sided null
    hypothesis of equal means.  Implemented directly (with a
    cross-check against scipy in the test suite) so the formula used
    by the paper is explicit:

    ``t = (mean_a - mean_b) / sqrt(s_a^2/n_a + s_b^2/n_b)`` with
    Welch–Satterthwaite degrees of freedom.
    """
    a = np.asarray(sample_a, dtype=np.float64)
    b = np.asarray(sample_b, dtype=np.float64)
    if a.size < 2 or b.size < 2:
        raise ValueError("each sample needs at least 2 observations")
    var_a = a.var(ddof=1) / a.size
    var_b = b.var(ddof=1) / b.size
    pooled = var_a + var_b
    if pooled == 0:
        # Identical constant samples: means equal iff difference is 0.
        return (0.0, 1.0) if a.mean() == b.mean() else (math.inf, 0.0)
    t_stat = (a.mean() - b.mean()) / math.sqrt(pooled)
    df = pooled**2 / (
        var_a**2 / (a.size - 1) + var_b**2 / (b.size - 1)
    )
    p_value = 2.0 * scipy_stats.t.sf(abs(t_stat), df)
    return float(t_stat), float(p_value)


def pairwise_pvalue_matrix(
    samples: dict[str, np.ndarray],
) -> tuple[list[str], np.ndarray]:
    """Welch p-values between every pair of methods (Figure 5 heatmap).

    ``samples`` maps method name -> accuracy observations (across
    seeds and datasets).  The diagonal is 1 by convention.
    """
    names = list(samples)
    if len(names) < 2:
        raise ValueError("need at least two methods to compare")
    matrix = np.ones((len(names), len(names)))
    for i, name_i in enumerate(names):
        for j in range(i + 1, len(names)):
            _, p_value = welch_ttest(samples[name_i], samples[names[j]])
            matrix[i, j] = matrix[j, i] = p_value
    return names, matrix


def mean_pairwise_pvalues(
    per_dataset_samples: list[dict[str, np.ndarray]],
    method_names: list[str],
) -> np.ndarray:
    """Per-dataset Welch p-values averaged across datasets (Figure 5).

    The paper's heatmaps are "averaged across all datasets and three
    different seeds": for every dataset, a Welch t-test compares the
    two methods' per-seed accuracies; the heatmap cell is the *mean*
    of those per-dataset p-values.  Datasets where either method has
    fewer than two completed runs (TO/COM) are skipped for that pair.
    """
    k = len(method_names)
    if k < 2:
        raise ValueError("need at least two methods to compare")
    sums = np.zeros((k, k))
    counts = np.zeros((k, k))
    for samples in per_dataset_samples:
        for i in range(k):
            for j in range(i + 1, k):
                a = np.asarray(samples.get(method_names[i], ()), dtype=np.float64)
                b = np.asarray(samples.get(method_names[j], ()), dtype=np.float64)
                if a.size < 2 or b.size < 2:
                    continue
                _, p_value = welch_ttest(a, b)
                sums[i, j] += p_value
                counts[i, j] += 1
    matrix = np.ones((k, k))
    upper = counts > 0
    matrix[upper] = sums[upper] / counts[upper]
    matrix = np.triu(matrix, 1) + np.triu(matrix, 1).T + np.eye(k)
    return matrix


def rank_scores(scores: np.ndarray) -> np.ndarray:
    """Rank one dataset's method scores: 1 = best (highest), ties averaged."""
    scores = np.asarray(scores, dtype=np.float64)
    if scores.ndim != 1:
        raise ValueError(f"expected 1D scores, got shape {scores.shape}")
    # Rank descending with average tie handling (scipy ranks ascending).
    return scipy_stats.rankdata(-scores, method="average")


def average_ranks(score_table: np.ndarray, method_names: list[str]) -> dict[str, float]:
    """Mean rank of each method over datasets (Figure 4).

    ``score_table`` is (num_datasets, num_methods); higher scores are
    better; missing runs may be NaN and rank last for that dataset.
    """
    table = np.asarray(score_table, dtype=np.float64)
    if table.ndim != 2 or table.shape[1] != len(method_names):
        raise ValueError(
            f"score_table shape {table.shape} incompatible with "
            f"{len(method_names)} methods"
        )
    ranks = np.empty_like(table)
    for row in range(table.shape[0]):
        scores = table[row].copy()
        # NaN (failed run) ranks strictly below every finite score.
        scores[np.isnan(scores)] = -np.inf
        ranks[row] = rank_scores(scores)
    return {name: float(ranks[:, col].mean()) for col, name in enumerate(method_names)}
