"""Spec-driven experiment API and fault-tolerant parallel executor.

The subsystem has seven parts:

* :mod:`repro.exec.spec` — :class:`JobSpec`, the frozen hashable
  description of one experiment job, and :func:`grid` to expand
  coordinate axes into deterministic, duplicate-free spec tuples;
* :mod:`repro.exec.executor` — :class:`ParallelExecutor` /
  :func:`run_jobs`, which drive spec grids through worker processes
  (or inline when ``workers<=1``), plus the generic
  :class:`WorkerPool` they are built on;
* :mod:`repro.exec.faults` — the failure taxonomy (timeout, memory
  budget, transient, permanent), :class:`FaultPolicy` retry/backoff
  knobs, and the mapping of executor faults onto the paper's TO/COM
  table cells;
* :mod:`repro.exec.progress` — :class:`ProgressTracker`, aggregating
  per-job ``RunSummary`` events into one live report line;
* :mod:`repro.exec.journal` — :class:`GridJournal`, the persistent
  per-grid ledger (atomic per-spec state records, crash-safe resume,
  journaled TO/COM verdicts with a bounded retry budget);
* :mod:`repro.exec.lease` — :class:`LeaseBoard` file-lock shard
  leases with heartbeats and race-free stale-lease stealing, so N
  processes share one grid with no coordinator;
* :mod:`repro.exec.chaos` — the seeded fault-injection harness
  (:class:`ChaosPlan` / :func:`chaos_point`) plus the deterministic
  :class:`ScriptedRunner` used by the kill/resume test scenarios.

Usage and design notes: ``docs/exec.md``.
"""

from .chaos import (
    CHAOS_ENV,
    ChaosError,
    ChaosInjector,
    ChaosPlan,
    ScriptedRunner,
    chaos_point,
    corrupt_store_entry,
    plans_to_env,
    scripted_grid,
)
from .executor import JobOutcome, ParallelExecutor, WorkerPool, run_jobs
from .faults import (
    TRANSIENT_EXCEPTIONS,
    ExecError,
    FaultPolicy,
    JobFailedError,
    JobFailure,
    PoolBrokenError,
    TransientJobError,
    is_transient,
    memory_result,
    timeout_result,
)
from .journal import GridJournal, JournalEntry, JournalRecord
from .lease import DEFAULT_STALE_AFTER, Lease, LeaseBoard, default_owner
from .progress import ProgressTracker
from .spec import JobSpec, config_from_meta, config_to_meta, grid

__all__ = [
    "JobSpec",
    "grid",
    "ParallelExecutor",
    "WorkerPool",
    "JobOutcome",
    "run_jobs",
    "FaultPolicy",
    "ExecError",
    "PoolBrokenError",
    "JobFailedError",
    "JobFailure",
    "TransientJobError",
    "TRANSIENT_EXCEPTIONS",
    "is_transient",
    "timeout_result",
    "memory_result",
    "ProgressTracker",
    "config_to_meta",
    "config_from_meta",
    "GridJournal",
    "JournalEntry",
    "JournalRecord",
    "LeaseBoard",
    "Lease",
    "DEFAULT_STALE_AFTER",
    "default_owner",
    "ChaosPlan",
    "ChaosInjector",
    "ChaosError",
    "CHAOS_ENV",
    "chaos_point",
    "plans_to_env",
    "corrupt_store_entry",
    "ScriptedRunner",
    "scripted_grid",
]
