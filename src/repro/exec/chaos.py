"""Seeded, deterministic fault injection for grid orchestration.

The single-pool fault machinery (``repro.exec.faults`` + the property
harness from ``repro.testing``) proves that one *worker* can die
without taking a grid down.  This module scales the adversary up to
the whole orchestration: kill the parent process between a store write
and a journal append, SIGKILL a worker mid-job, corrupt a store entry
on disk, or freeze a shard's lease heartbeat so a peer steals its
work.  Every fault fires at a *deterministic, seeded* point, so a
failing scenario replays exactly.

Three pieces:

* :class:`ChaosPlan` / :class:`ChaosInjector` — a plan names a fault
  ``kind`` and an instrumented ``site`` (e.g. ``journal.committed``)
  plus the 1-based visit count ``after`` at which it fires.  Code
  under test calls :func:`chaos_point` at its instrumented sites; with
  no injector installed that is a near-free no-op.  The injector can
  be installed programmatically (:func:`install`) or — because chaos
  scenarios SIGKILL real processes — through the ``REPRO_CHAOS``
  environment variable, which spawned workers inherit.
* :class:`ScriptedRunner` — a minimal, fast stand-in honouring the
  ``ParallelExecutor`` runner contract: deterministic fake accuracies,
  results persisted through a real :class:`~repro.runtime.ArtifactStore`,
  and an append-only execution log so tests can count *actual*
  executions across killed/resumed/concurrent processes.
* ``python -m repro.exec.chaos`` — a subprocess driver that runs a
  scripted grid against a grid directory (journal + leases), printing
  a one-line JSON summary.  Tests and the resume benchmark launch it,
  kill it mid-grid via ``REPRO_CHAOS``, relaunch it with resume, and
  assert the invariant: *kill anywhere, resume, converge to the same
  grid result with zero re-executed done jobs*.

Instrumented sites (grep for ``chaos_point(`` to audit):

========================  ====================================================
``journal.record``        before a journal state record is persisted
``journal.committed``     after the record's atomic rename (between the
                          store write and the journal append for results)
``exec.job``              parent side, before a job is executed inline
``worker.job``            worker side, before a pooled job body runs
``lease.heartbeat``       a shard refreshing one of its lease heartbeats
========================  ====================================================
"""

from __future__ import annotations

import json
import os
import signal
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterable, Mapping, Sequence

__all__ = [
    "CHAOS_ENV",
    "ChaosError",
    "ChaosPlan",
    "ChaosInjector",
    "chaos_point",
    "install",
    "uninstall",
    "active_injector",
    "corrupt_store_entry",
    "ScriptedRunner",
    "scripted_grid",
]

#: Environment variable carrying a JSON list of plans (see ChaosPlan).
CHAOS_ENV = "REPRO_CHAOS"

#: Fault kinds a plan may name.
KINDS = ("kill", "exception", "freeze_heartbeat")


class ChaosError(RuntimeError):
    """Raised by an ``exception``-kind plan at its trigger point."""


@dataclass(frozen=True)
class ChaosPlan:
    """One scheduled fault: fire ``kind`` at visit ``after`` of ``site``.

    Attributes
    ----------
    kind:
        ``"kill"`` — SIGKILL the *current* process (parent or worker,
        whichever visits the site); ``"exception"`` — raise
        :class:`ChaosError`; ``"freeze_heartbeat"`` — from this point
        on, lease heartbeats in this process silently stop refreshing
        (the lease goes stale and peers may steal it).
    site:
        Instrumented site name (see the module docstring table).
    after:
        1-based visit count at which the fault fires; visits are
        counted per site within one process.
    """

    kind: str
    site: str
    after: int = 1

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"unknown chaos kind {self.kind!r}; expected one of {KINDS}")
        if self.after < 1:
            raise ValueError("ChaosPlan.after is 1-based and must be >= 1")

    def to_dict(self) -> dict:
        """JSON-ready dict for the ``REPRO_CHAOS`` transport."""
        return {"kind": self.kind, "site": self.site, "after": self.after}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ChaosPlan":
        return cls(kind=data["kind"], site=data["site"], after=int(data.get("after", 1)))


def plans_to_env(plans: Iterable[ChaosPlan]) -> str:
    """Serialise plans for the ``REPRO_CHAOS`` environment variable."""
    return json.dumps([plan.to_dict() for plan in plans])


class ChaosInjector:
    """Counts visits to instrumented sites and fires matching plans."""

    def __init__(self, plans: Iterable[ChaosPlan]) -> None:
        self.plans = tuple(plans)
        self.visits: dict[str, int] = {}
        self.fired: list[ChaosPlan] = []
        self.heartbeat_frozen = False

    def visit(self, site: str, **context: Any) -> None:
        """Count one visit to ``site``; fire any plan due at this count."""
        count = self.visits.get(site, 0) + 1
        self.visits[site] = count
        for plan in self.plans:
            if plan.site == site and plan.after == count:
                self._fire(plan, context)

    # ------------------------------------------------------------------
    def _fire(self, plan: ChaosPlan, context: dict) -> None:
        self.fired.append(plan)
        if plan.kind == "kill":
            # SIGKILL, not sys.exit: no atexit hooks, no finally blocks,
            # no flushing — the honest crash the journal must survive.
            os.kill(os.getpid(), signal.SIGKILL)
        elif plan.kind == "exception":
            raise ChaosError(f"injected at {plan.site} (visit {plan.after})")
        elif plan.kind == "freeze_heartbeat":
            self.heartbeat_frozen = True


_injector: ChaosInjector | None = None
_env_checked = False


def install(injector: ChaosInjector) -> ChaosInjector:
    """Install an injector for this process (tests drive this directly)."""
    global _injector, _env_checked
    _injector = injector
    _env_checked = True
    return injector


def uninstall() -> None:
    """Remove any installed injector (and re-arm the env lookup)."""
    global _injector, _env_checked
    _injector = None
    _env_checked = False


def active_injector() -> ChaosInjector | None:
    """The installed injector, lazily constructed from ``$REPRO_CHAOS``."""
    global _injector, _env_checked
    if not _env_checked:
        _env_checked = True
        blob = os.environ.get(CHAOS_ENV)
        if blob:
            _injector = ChaosInjector(
                ChaosPlan.from_dict(entry) for entry in json.loads(blob)
            )
    return _injector


def chaos_point(site: str, **context: Any) -> None:
    """Instrumentation hook: a no-op unless an injector is active."""
    injector = active_injector()
    if injector is not None:
        injector.visit(site, **context)


def heartbeat_frozen() -> bool:
    """Whether an active plan has frozen this process's heartbeats."""
    injector = active_injector()
    return injector is not None and injector.heartbeat_frozen


# ----------------------------------------------------------------------
# Store corruption (the one fault that is injected at rest, not live)
# ----------------------------------------------------------------------
def corrupt_store_entry(cache_dir: str | Path, key: str, *, seed: int = 0) -> Path:
    """Overwrite a disk-store entry with seeded garbage, in place.

    Models bit rot / a torn copy of an already-committed entry.  The
    store's read path must count it in ``stats.corrupt`` and treat it
    as a miss; the journal's resolver must then re-execute the job.
    """
    import numpy as np

    namespace, digest = key.split("/", 1)
    path = Path(cache_dir) / namespace / f"{digest}.npz"
    if not path.exists():
        raise FileNotFoundError(f"no store entry to corrupt at {path}")
    size = max(16, path.stat().st_size // 2)
    garbage = np.random.default_rng(seed).integers(0, 256, size=size, dtype=np.uint8)
    path.write_bytes(garbage.tobytes())
    return path


# ----------------------------------------------------------------------
# ScriptedRunner: the fast runner chaos scenarios orchestrate
# ----------------------------------------------------------------------
class ScriptedRunner:
    """A deterministic, fast stand-in for ``ExperimentRunner``.

    Implements exactly the surface :class:`repro.exec.ParallelExecutor`
    touches — ``cached_result`` / ``adopt_result`` / ``simulate_spec``
    / ``run_spec`` / ``store`` / ``config_fingerprint`` — with a fake
    training body: a deterministic accuracy derived from the spec, an
    optional fixed sleep, and results persisted through a real
    :class:`~repro.runtime.ArtifactStore` under the real content key.
    Chaos scenarios need hundreds of executions across killed and
    resumed processes; real training would make them minutes-slow
    without making the orchestration any more honest.

    ``exec_log`` (optional) appends one line per *actual* execution —
    the cross-process ground truth for "zero re-executed done jobs".
    Appends are single ``O_APPEND`` writes, atomic for these sizes on
    POSIX, so concurrent shards can share one log.

    Serial only: the pooled path spawns real ``ExperimentRunner``
    workers, so use ``workers=1`` (the default) with this runner.
    """

    def __init__(
        self,
        cache_dir: str | Path | None = None,
        *,
        store=None,
        seconds_per_job: float = 0.0,
        exec_log: str | Path | None = None,
        fingerprint: str = "scripted",
    ) -> None:
        from ..runtime import ArtifactStore

        self.store = store if store is not None else ArtifactStore(cache_dir)
        self.seconds_per_job = float(seconds_per_job)
        self.exec_log = Path(exec_log) if exec_log is not None else None
        self.config = None
        self.workers = 1
        self.job_timeout = None
        self.tracker = None
        self._fingerprint = fingerprint

    # -- runner contract ------------------------------------------------
    @property
    def config_fingerprint(self) -> str:
        return self._fingerprint

    def cached_result(self, spec):
        """The stored result for ``spec``, or ``None`` on a store miss."""
        from ..experiments.runner import ExperimentResult

        artifact = self.store.get(spec.result_key(self._fingerprint))
        if artifact is None:
            return None
        return ExperimentResult.from_meta(artifact.meta)

    def adopt_result(self, spec, result):
        """Persist ``result`` under the spec's content key (idempotent)."""
        key = spec.result_key(self._fingerprint)
        if self.store.get(key) is None:
            self.store.put(key, meta=json.loads(json.dumps(result.to_meta())))
        return result

    def simulate_spec(self, spec):
        """Every scripted job passes the cost-model gate as OK."""
        from ..resources import RunStatus, SimulatedRun

        return SimulatedRun(
            status=RunStatus.OK, seconds=1.0, peak_memory_bytes=1.0, flops=1.0
        )

    def run_spec(self, spec):
        """Execute one scripted job: optional sleep, log line, fake accuracy."""
        import time
        import zlib

        from ..experiments.runner import ExperimentResult

        cached = self.cached_result(spec)
        if cached is not None:
            return cached
        if self.seconds_per_job > 0:
            time.sleep(self.seconds_per_job)
        if self.exec_log is not None:
            fd = os.open(self.exec_log, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
            try:
                os.write(fd, (spec.label + "\n").encode("utf-8"))
            finally:
                os.close(fd)
        accuracy = (zlib.crc32(spec.label.encode("utf-8")) % 10_000) / 10_000.0
        result = ExperimentResult(
            dataset=spec.dataset,
            model=spec.model,
            adapter=spec.adapter,
            strategy=spec.strategy,
            seed=spec.seed,
            status=self.simulate_spec(spec).status,
            accuracy=accuracy,
            simulated=self.simulate_spec(spec),
            measured_seconds=self.seconds_per_job,
            summary=None,
        )
        key = spec.result_key(self._fingerprint)
        self.store.put(key, meta=json.loads(json.dumps(result.to_meta())))
        return result

    def executions(self) -> list[str]:
        """Labels actually executed so far (from the shared log)."""
        if self.exec_log is None or not self.exec_log.exists():
            return []
        return self.exec_log.read_text().splitlines()


def scripted_grid(jobs: int) -> tuple:
    """A deterministic ``jobs``-long spec grid for chaos scenarios."""
    from .spec import grid

    datasets = ("JapaneseVowels", "Heartbeat", "NATOPS", "FingerMovements")
    adapters = ("pca", "svd", "var", "rand_proj", "none")
    specs = grid(datasets, ("MOMENT", "ViT"), adapters=adapters, seeds=(0, 1, 2))
    if jobs > len(specs):
        raise ValueError(f"scripted_grid supports at most {len(specs)} jobs")
    return specs[:jobs]


# ----------------------------------------------------------------------
# Subprocess driver: `python -m repro.exec.chaos`
# ----------------------------------------------------------------------
def _drive(argv: Sequence[str] | None = None) -> int:
    import argparse

    from .executor import run_jobs
    from .progress import ProgressTracker

    parser = argparse.ArgumentParser(
        prog="python -m repro.exec.chaos",
        description="run a scripted grid against a grid directory (chaos harness driver)",
    )
    parser.add_argument("--grid-dir", required=True, help="journal + lease directory")
    parser.add_argument("--cache-dir", required=True, help="artifact store directory")
    parser.add_argument("--exec-log", required=True, help="append-only execution log")
    parser.add_argument("--jobs", type=int, default=12, help="grid size")
    parser.add_argument("--seconds-per-job", type=float, default=0.0)
    parser.add_argument("--no-resume", action="store_true")
    parser.add_argument("--shard", action="store_true",
                        help="work-steal without waiting for peer shards")
    parser.add_argument("--stale-after", type=float, default=30.0)
    parser.add_argument("--owner", default=None, help="lease owner id override")
    args = parser.parse_args(argv)

    runner = ScriptedRunner(
        args.cache_dir,
        seconds_per_job=args.seconds_per_job,
        exec_log=args.exec_log,
    )
    specs = scripted_grid(args.jobs)
    tracker = ProgressTracker()
    results = run_jobs(
        runner,
        specs,
        workers=1,
        tracker=tracker,
        grid_dir=args.grid_dir,
        resume=not args.no_resume,
        wait_for_peers=not args.shard,
        stale_after=args.stale_after,
        owner=args.owner,
    )
    cells = {spec.label: (None if r is None else r.cell) for spec, r in zip(specs, results)}
    print(json.dumps({
        "jobs": len(specs),
        "completed": sum(1 for cell in cells.values() if cell is not None),
        "cells": cells,
        "progress": tracker.snapshot(),
    }, sort_keys=True))
    return 0


if __name__ == "__main__":
    raise SystemExit(_drive())
