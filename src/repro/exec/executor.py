"""Fault-tolerant parallel job executor.

Two layers:

* :class:`WorkerPool` — a generic spawn-based process pool built
  directly on ``multiprocessing`` primitives (one task queue and one
  result pipe per worker) so the parent keeps full control: it knows
  which worker runs which job, can terminate exactly the worker that
  blew its wall-clock budget, respawns crashed workers without
  abandoning the grid, and retries transient failures with
  exponential backoff.  ``ProcessPoolExecutor`` offers none of that —
  one crashed worker breaks its whole pool.

  The result channel is deliberately *per worker* rather than one
  shared queue: a shared ``mp.Queue`` serialises writers through a
  cross-process lock, and a worker dying at the wrong instant — an
  ``os._exit`` in user code, an OOM kill, or the pool's own
  ``terminate()`` at a timeout — can die holding it, deadlocking
  every other worker's sends forever.  With a single-writer pipe per
  worker, a death mid-write corrupts only that worker's channel,
  which the crash-reaping path already handles.
* :class:`ParallelExecutor` / :func:`run_jobs` — the experiment layer:
  takes :class:`~repro.exec.spec.JobSpec`\\ s, deduplicates them,
  resolves cache hits and simulation-gated (TO/COM) jobs in the
  parent, fans the remaining training jobs out to workers, and maps
  executor faults onto the paper's TO/COM cells
  (see :mod:`repro.exec.faults`).

Durability and sharding (``grid_dir=...``): when a grid directory is
configured, every verdict streams into a crash-safe
:class:`~repro.exec.journal.GridJournal` *as it lands* (via the
pool's ``on_outcome`` hook), jobs are claimed through
:class:`~repro.exec.lease.LeaseBoard` file-lock shard leases, and
``resume=True`` reloads journaled verdicts — including the TO/COM
cells the artifact store deliberately refuses — so an interrupted or
crashed grid re-executes nothing that finished, and N independent
processes work-steal one grid with no coordinator and no duplicate
execution.  See ``docs/exec.md`` for the journal/lease lifecycle.

Determinism: jobs are assigned to workers in input order and results
are returned in input order, so a grid executed with ``workers=1`` and
``workers=4`` yields identical results (training is seeded and every
job is independent).  Workers share the parent's on-disk artifact
store when one is configured; with a memory-only store, results travel
back over the result pipe and the parent re-materialises them.

Timeout semantics: in pool mode the budget is enforced pre-emptively
(the worker is terminated at the deadline); in serial mode — used when
``workers<=1`` or as the degradation path when the pool dies — a job
cannot be pre-empted, so it is classified after the fact.  Either way
the job surfaces as a ``TO`` cell and the rest of the grid completes.
"""

from __future__ import annotations

import multiprocessing as mp
import time
from multiprocessing import connection as mp_connection
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Sequence

from ..runtime import Stopwatch
from .chaos import chaos_point
from .faults import FaultPolicy, _FailureLog, is_transient, memory_result, timeout_result
from .journal import GridJournal
from .lease import DEFAULT_STALE_AFTER, LeaseBoard
from .progress import ProgressTracker
from .spec import JobSpec, config_from_meta, config_to_meta

__all__ = ["JobOutcome", "WorkerPool", "ParallelExecutor", "run_jobs"]

#: Parent scheduler poll interval (seconds).
_POLL_S = 0.05


# ----------------------------------------------------------------------
# Worker-process side
# ----------------------------------------------------------------------
def _safe_send(result_conn, message) -> None:
    try:
        result_conn.send(message)
    except Exception:
        pass  # parent gone or pipe torn down; nothing useful left to do


def _worker_main(worker_id, task, initializer, initargs, task_q, result_conn) -> None:
    """Child entry point: init once, then execute tasks until sentinel."""
    try:
        if initializer is not None:
            initializer(*initargs)
    except BaseException as exc:  # noqa: BLE001 — init failure must be reported, not crash
        _safe_send(result_conn, (worker_id, None, "init_error", f"{type(exc).__name__}: {exc}"))
        return
    _safe_send(result_conn, (worker_id, None, "ready", None))
    while True:
        message = task_q.get()
        if message is None:
            return
        index, payload = message
        try:
            value = task(payload)
        except BaseException as exc:  # noqa: BLE001 — job errors are data, not crashes
            _safe_send(
                result_conn,
                (worker_id, index, "error", (f"{type(exc).__name__}: {exc}", is_transient(exc))),
            )
        else:
            _safe_send(result_conn, (worker_id, index, "ok", value))


# Spec-job worker state: one ExperimentRunner per worker process,
# rebuilt from the transported config by the initializer below.
_WORKER_RUNNER = None


def _spec_worker_init(config_meta: dict, cache_dir: str | None) -> None:
    global _WORKER_RUNNER
    from ..experiments.runner import ExperimentRunner

    _WORKER_RUNNER = ExperimentRunner(config_from_meta(config_meta), cache_dir=cache_dir)


def _execute_spec(payload: dict) -> dict:
    spec = JobSpec.from_dict(payload)
    chaos_point("worker.job", label=spec.label)
    result = _WORKER_RUNNER.run_spec(spec)
    return result.to_meta()


# ----------------------------------------------------------------------
# Parent side
# ----------------------------------------------------------------------
@dataclass
class JobOutcome:
    """Terminal state of one payload in :meth:`WorkerPool.map`."""

    index: int
    status: str  # "ok" | "timeout" | "error" | "broken"
    value: Any = None
    error: str | None = None
    attempts: int = 1


@dataclass
class _Pending:
    index: int
    payload: Any
    label: str
    failures: int = 0
    not_before: float = 0.0


@dataclass
class _Worker:
    process: Any
    task_q: Any
    conn: Any  # parent's receive end of this worker's result pipe
    ready: bool = False
    entry: _Pending | None = field(default=None)
    started: float = 0.0


class WorkerPool:
    """Spawn-based pool with per-job timeout, retry and respawn.

    Parameters
    ----------
    task:
        Module-level callable executed per payload in the workers
        (must be importable under spawn).
    workers:
        Worker process count (capped to the payload count per map).
    initializer / initargs:
        Optional per-worker one-time setup, also module-level.
    policy:
        Retry/backoff policy for transient failures and crashes.
    timeout:
        Per-job wall-clock budget, measured from assignment to a
        worker; the worker is terminated at the deadline.  ``None``
        disables enforcement.
    tracker:
        Optional :class:`ProgressTracker`, notified of retries.
    """

    def __init__(
        self,
        task: Callable[[Any], Any],
        *,
        workers: int = 2,
        initializer: Callable[..., None] | None = None,
        initargs: Sequence[Any] = (),
        policy: FaultPolicy | None = None,
        timeout: float | None = None,
        tracker: ProgressTracker | None = None,
    ) -> None:
        self.task = task
        self.workers = max(1, int(workers))
        self.initializer = initializer
        self.initargs = tuple(initargs)
        self.policy = policy if policy is not None else FaultPolicy()
        self.timeout = timeout
        self.tracker = tracker

    # ------------------------------------------------------------------
    def map(
        self,
        payloads: Sequence[Any],
        labels: Sequence[str] | None = None,
        *,
        on_outcome: Callable[[JobOutcome], None] | None = None,
        on_tick: Callable[[], None] | None = None,
    ) -> list[JobOutcome]:
        """Run every payload; returns outcomes in input order.

        Never raises for per-job conditions: timeouts, permanent
        errors and pool breakage are reported in the outcomes (status
        ``"timeout"`` / ``"error"`` / ``"broken"``) so the caller
        decides how to degrade.

        Streaming hooks: ``on_outcome`` fires in the parent the moment
        a payload reaches a terminal ``ok``/``error``/``timeout``
        outcome — this is how results land in the grid journal while
        the rest of the grid is still running — and ``on_tick`` fires
        once per scheduler poll (~50 ms), which the lease layer uses
        for heartbeats.  ``broken`` outcomes are *not* streamed: the
        caller decides how to degrade the surviving jobs first.
        """
        n = len(payloads)
        if n == 0:
            return []
        labels = list(labels) if labels is not None else [f"job-{i}" for i in range(n)]
        ctx = mp.get_context("spawn")
        pending: list[_Pending] = [
            _Pending(index=i, payload=p, label=labels[i]) for i, p in enumerate(payloads)
        ]
        outcomes: dict[int, JobOutcome] = {}
        workers: dict[int, _Worker] = {}
        target = min(self.workers, n)
        next_worker_id = 0
        init_failures = 0
        broken = False

        def spawn_one() -> bool:
            nonlocal next_worker_id, broken
            task_q = ctx.SimpleQueue()
            recv_conn, send_conn = ctx.Pipe(duplex=False)
            try:
                process = ctx.Process(
                    target=_worker_main,
                    args=(next_worker_id, self.task, self.initializer, self.initargs,
                          task_q, send_conn),
                    daemon=True,
                )
                process.start()
            except OSError:
                broken = True
                recv_conn.close()
                return False
            finally:
                # The child holds the only live send end; closing the
                # parent's copy makes a worker death surface as EOF.
                send_conn.close()
            workers[next_worker_id] = _Worker(process=process, task_q=task_q, conn=recv_conn)
            next_worker_id += 1
            return True

        def stop_worker(worker: _Worker, *, force: bool) -> None:
            if force:
                worker.process.terminate()
                worker.process.join(timeout=1.0)
                if worker.process.is_alive():
                    worker.process.kill()
                    worker.process.join(timeout=1.0)
            else:
                try:
                    worker.task_q.put(None)
                except Exception:
                    pass

        def settle(outcome: JobOutcome) -> None:
            outcomes[outcome.index] = outcome
            if on_outcome is not None:
                on_outcome(outcome)

        def record_failure(entry: _Pending, error: str, transient: bool) -> None:
            entry.failures += 1
            if transient and entry.failures <= self.policy.max_retries:
                entry.not_before = time.monotonic() + self.policy.backoff_delay(entry.failures)
                pending.append(entry)
                if self.tracker is not None:
                    self.tracker.job_retried(entry.label)
            else:
                settle(JobOutcome(
                    index=entry.index, status="error", error=error, attempts=entry.failures
                ))

        def close_conn(worker: _Worker) -> None:
            try:
                worker.conn.close()
            except OSError:
                pass

        try:
            while len(outcomes) < n:
                if on_tick is not None:
                    on_tick()
                if broken:
                    for worker in workers.values():
                        if worker.entry is not None:
                            pending.append(worker.entry)
                            worker.entry = None
                    for entry in pending:
                        outcomes.setdefault(
                            entry.index,
                            JobOutcome(index=entry.index, status="broken",
                                       error="worker pool broken", attempts=entry.failures + 1),
                        )
                    break

                now = time.monotonic()

                # Top up the pool (never more workers than waiting jobs).
                while len(workers) < target and len(pending) > sum(
                    1 for w in workers.values() if w.entry is None
                ):
                    if not spawn_one():
                        break
                if broken:
                    continue

                # Assign due jobs to ready idle workers, in input order.
                idle = [w for w in workers.values() if w.ready and w.entry is None]
                for worker in idle:
                    due = [e for e in pending if e.not_before <= now]
                    if not due:
                        break
                    entry = min(due, key=lambda e: e.index)
                    pending.remove(entry)
                    worker.entry = entry
                    worker.started = time.monotonic()
                    try:
                        worker.task_q.put((entry.index, entry.payload))
                    except Exception:
                        worker.entry = None
                        record_failure(entry, "task dispatch failed", transient=True)

                # Drain results: wait on every live worker's pipe at
                # once, then empty each readable pipe.  A dead worker's
                # EOF also wakes the wait, so reaping is prompt.
                readable = mp_connection.wait(
                    [worker.conn for worker in workers.values()], timeout=_POLL_S
                ) if workers else []
                for worker_id, worker in list(workers.items()):
                    if worker.conn not in readable:
                        continue
                    while True:
                        try:
                            if not worker.conn.poll(0):
                                break
                            message = worker.conn.recv()
                        except (EOFError, OSError):
                            break  # worker died; the reaping pass below handles it
                        _, index, kind, value = message
                        if kind == "ready":
                            worker.ready = True
                            continue
                        if kind == "init_error":
                            init_failures += 1
                            workers.pop(worker_id, None)
                            close_conn(worker)
                            if init_failures >= target:
                                broken = True
                            break
                        if worker.entry is None or worker.entry.index != index:
                            continue  # stale message (e.g. from a re-assigned retry)
                        entry = worker.entry
                        worker.entry = None
                        if kind == "ok":
                            settle(JobOutcome(
                                index=index, status="ok", value=value, attempts=entry.failures + 1
                            ))
                        else:  # "error"
                            error_text, transient = value
                            record_failure(entry, error_text, transient)

                # Reap crashed workers; their inflight job retries.
                for worker_id, worker in list(workers.items()):
                    if worker.process.is_alive():
                        continue
                    workers.pop(worker_id)
                    close_conn(worker)
                    if not worker.ready and worker.entry is None:
                        init_failures += 1
                        if init_failures >= target:
                            broken = True
                    if worker.entry is not None:
                        entry, worker.entry = worker.entry, None
                        record_failure(
                            entry,
                            f"worker process died (exitcode {worker.process.exitcode})",
                            transient=True,
                        )

                # Enforce the per-job wall-clock budget.
                if self.timeout is not None:
                    now = time.monotonic()
                    for worker_id, worker in list(workers.items()):
                        if worker.entry is None or now - worker.started <= self.timeout:
                            continue
                        entry = worker.entry
                        worker.entry = None
                        settle(JobOutcome(
                            index=entry.index, status="timeout",
                            error=f"exceeded job timeout of {self.timeout:g}s",
                            attempts=entry.failures + 1,
                        ))
                        workers.pop(worker_id)
                        stop_worker(worker, force=True)
                        close_conn(worker)
        finally:
            for worker in workers.values():
                stop_worker(worker, force=False)
            deadline = time.monotonic() + 2.0
            for worker in workers.values():
                worker.process.join(timeout=max(0.0, deadline - time.monotonic()))
                if worker.process.is_alive():
                    stop_worker(worker, force=True)
                close_conn(worker)

        return [outcomes[i] for i in range(n)]


# ----------------------------------------------------------------------
# Experiment layer
# ----------------------------------------------------------------------
class ParallelExecutor:
    """Runs :class:`JobSpec` grids through an :class:`ExperimentRunner`.

    The parent resolves everything that does not need a worker —
    journaled verdicts (on resume), cache hits, jobs the resource
    simulation already rejects (their TO/COM outcome costs no
    training), and jobs over the executor's simulated-memory budget —
    then fans the remaining training jobs out to a :class:`WorkerPool`
    (or runs them inline when ``workers<=1``).  Duplicate specs are
    deduplicated; results come back in input order.

    With a ``journal`` (and its sibling ``leases`` board), execution
    becomes durable and multi-process: each runnable spec is claimed
    through a file-lock lease before it runs, every verdict streams
    into the journal the moment it lands, and specs a live peer holds
    are *waited on* (their results arrive through the shared journal
    and store) or *stolen* once the peer's heartbeat goes stale.

    Parameters
    ----------
    journal:
        Optional :class:`~repro.exec.journal.GridJournal`; enables
        resume and is required by ``leases``.
    leases:
        Optional :class:`~repro.exec.lease.LeaseBoard`; enables
        multi-process work stealing over one grid directory.
    resume:
        Reload journaled verdicts instead of re-executing (default).
        ``False`` re-runs everything but still journals fresh state.
    wait_for_peers:
        Block until specs leased by live peers reach a terminal state
        (default).  ``False`` — shard mode — returns ``None`` result
        slots for jobs another shard is still running.
    peer_poll_s:
        Journal/lease poll interval while waiting on peers.
    """

    def __init__(
        self,
        runner,
        *,
        workers: int | None = None,
        job_timeout: float | None = None,
        policy: FaultPolicy | None = None,
        tracker: ProgressTracker | None = None,
        journal: GridJournal | None = None,
        leases: LeaseBoard | None = None,
        resume: bool = True,
        wait_for_peers: bool = True,
        peer_poll_s: float = 0.2,
    ) -> None:
        if leases is not None and journal is None:
            raise ValueError("shard leases require a grid journal (same grid_dir)")
        self.runner = runner
        self.workers = int(runner.workers if workers is None else workers)
        self.job_timeout = runner.job_timeout if job_timeout is None else job_timeout
        self.policy = policy if policy is not None else FaultPolicy()
        self.tracker = tracker
        self.journal = journal
        self.leases = leases
        self.resume = bool(resume)
        self.wait_for_peers = bool(wait_for_peers)
        self.peer_poll_s = float(peer_poll_s)

    # ------------------------------------------------------------------
    def run(self, specs: Iterable[JobSpec]) -> list:
        """Execute a grid; returns results in input order.

        Raises :class:`~repro.exec.faults.JobFailedError` only after
        the whole grid has been driven to completion, so completed
        work is preserved (cached and journaled) even when some jobs
        fail.  In shard mode (``wait_for_peers=False``) jobs still
        leased by a live peer at exit come back as ``None`` slots.
        """
        specs = [s if isinstance(s, JobSpec) else JobSpec.from_dict(s) for s in specs]
        unique: dict[JobSpec, None] = {}
        for spec in specs:
            unique.setdefault(spec, None)
        tracker = self.tracker if self.tracker is not None else ProgressTracker()
        tracker.begin(len(unique))
        if self.journal is not None:
            self.journal.register(unique)

        results: dict[JobSpec, Any] = {}
        failures = _FailureLog()
        todo = [spec for spec in unique if not self._resolve_cheap(spec, results, tracker)]

        try:
            while todo:
                claimed, deferred = self._claim(todo, tracker)
                if claimed:
                    self._execute(claimed, results, tracker, failures)
                todo = [s for s in deferred if s not in results]
                if not todo:
                    break
                if not self.wait_for_peers:
                    break  # shard mode: peers own the rest
                # Poll for peer completions; claimable leases (peer
                # finished or went stale) are picked up next pass.
                progressed = any(
                    self._resolve_cheap(spec, results, tracker) for spec in list(todo)
                )
                todo = [s for s in todo if s not in results]
                if todo and not claimed and not progressed:
                    time.sleep(self.peer_poll_s)
        finally:
            if self.leases is not None:
                self.leases.release_all()
            tracker.close()
        failures.raise_if_any()
        return [results.get(spec) for spec in specs]

    # ------------------------------------------------------------------
    # Cheap (no-training) resolution ladder
    # ------------------------------------------------------------------
    def _resolve_cheap(self, spec: JobSpec, results: dict, tracker: ProgressTracker) -> bool:
        """Resolve ``spec`` without a worker if possible.

        The ladder: journaled verdict (resume) → content-addressed
        store → simulated-memory budget → cost-model gate.  A store
        hit with a non-terminal journal entry also *repairs* the
        journal — the crash-between-store-write-and-journal-append
        case resumes with zero recomputation.
        """
        journal = self.journal
        if journal is not None and self.resume:
            resolved = journal.resolve(spec, self.runner)
            if resolved is not None:
                results[spec] = resolved
                tracker.job_resumed(spec.label, status=str(resolved.status))
                return True
        cached = self.runner.cached_result(spec)
        if cached is not None:
            results[spec] = cached
            if journal is not None:
                journal.record_result(spec, cached, cached=True)
            tracker.job_done(spec.label, status=str(cached.status), cached=True,
                             summary=cached.summary)
            return True
        simulated = self.runner.simulate_spec(spec)
        budget = self.policy.memory_budget_bytes
        if budget is not None and simulated.peak_memory_bytes > budget:
            result = memory_result(spec, simulated)
            results[spec] = result
            self._journal_result(spec, result)
            tracker.job_done(spec.label, status="COM")
            return True
        if not simulated.ok:
            # The runner records the TO/COM cell without training.
            result = self.runner.run_spec(spec)
            results[spec] = result
            self._journal_result(spec, result)
            tracker.job_done(spec.label, status=str(result.status), summary=result.summary)
            return True
        return False

    def _journal_result(self, spec: JobSpec, result, *, attempts: int | None = None) -> None:
        if self.journal is not None:
            owner = self.leases.owner if self.leases is not None else None
            self.journal.record_result(spec, result, attempts=attempts, owner=owner)

    def _journal_failed(self, spec: JobSpec, error: str, attempts: int) -> None:
        if self.journal is not None:
            owner = self.leases.owner if self.leases is not None else None
            self.journal.mark_failed(spec, error, attempts=attempts, owner=owner)

    def _prior_attempts(self, spec: JobSpec) -> int:
        return self.journal.entry(spec).attempts if self.journal is not None else 0

    # ------------------------------------------------------------------
    # Claiming (shard leases)
    # ------------------------------------------------------------------
    def _claim(self, todo: list, tracker: ProgressTracker) -> tuple[list, list]:
        """Split ``todo`` into claimed ``(spec, lease)`` pairs and deferred specs."""
        if self.leases is None:
            return [(spec, None) for spec in todo], []
        claimed: list[tuple[JobSpec, Any]] = []
        deferred: list[JobSpec] = []
        for spec in todo:
            lease = self.leases.try_acquire(self.journal.digest_for(spec))
            if lease is None:
                deferred.append(spec)
                continue
            if lease.stolen:
                tracker.lease_stolen(spec.label)
            self.journal.mark_leased(spec, lease.owner)
            claimed.append((spec, lease))
        return claimed, deferred

    def _release(self, lease) -> None:
        if lease is not None and self.leases is not None:
            self.leases.release(lease)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _execute(self, claimed: list, results: dict, tracker: ProgressTracker,
                 failures: _FailureLog) -> None:
        if self.workers > 1:
            self._run_pooled(claimed, results, tracker, failures)
            return
        for spec, lease in claimed:
            # A peer may have finished this spec between our deferral
            # and this (possibly stolen) claim: re-check before running.
            if lease is not None and self._resolve_cheap(spec, results, tracker):
                self._release(lease)
                continue
            if self.leases is not None:
                self.leases.heartbeat_held()
            chaos_point("exec.job", label=spec.label)
            attempts = self._prior_attempts(spec) + 1
            try:
                result = self._run_inline(spec)
            except BaseException as exc:
                self._journal_failed(spec, f"{type(exc).__name__}: {exc}", attempts)
                self._release(lease)
                raise
            results[spec] = result
            self._journal_result(spec, result, attempts=attempts)
            self._release(lease)
            tracker.job_done(spec.label, status=str(result.status), summary=result.summary)

    def _run_inline(self, spec: JobSpec):
        """In-process execution with post-hoc timeout classification."""
        watch = Stopwatch()
        result = self.runner.run_spec(spec)
        elapsed = watch.elapsed()
        if self.job_timeout is not None and elapsed > self.job_timeout:
            return timeout_result(spec, result.simulated, elapsed)
        return result

    def _run_pooled(self, claimed: list, results: dict, tracker: ProgressTracker,
                    failures: _FailureLog) -> None:
        from ..experiments.runner import ExperimentResult

        specs = [spec for spec, _ in claimed]
        prior = {spec: self._prior_attempts(spec) for spec in specs} if self.journal else {}
        cache_dir = self.runner.store.cache_dir
        pool = WorkerPool(
            _execute_spec,
            workers=min(self.workers, len(specs)),
            initializer=_spec_worker_init,
            initargs=(config_to_meta(self.runner.config),
                      str(cache_dir) if cache_dir is not None else None),
            policy=self.policy,
            timeout=self.job_timeout,
            tracker=tracker,
        )

        def stream(outcome: JobOutcome) -> None:
            """Journal + adopt one terminal outcome as it lands."""
            spec, lease = claimed[outcome.index]
            attempts = prior.get(spec, 0) + outcome.attempts
            if outcome.status == "ok":
                result = ExperimentResult.from_meta(outcome.value)
                self.runner.adopt_result(spec, result)
                results[spec] = result
                self._journal_result(spec, result, attempts=attempts)
                tracker.job_done(spec.label, status=str(result.status), summary=result.summary)
            elif outcome.status == "timeout":
                simulated = self.runner.simulate_spec(spec)
                result = timeout_result(spec, simulated, self.job_timeout or 0.0)
                results[spec] = result
                self._journal_result(spec, result, attempts=attempts)
                tracker.job_done(spec.label, status="TO")
            else:  # permanent error
                self._journal_failed(spec, outcome.error or "unknown error", attempts)
                tracker.job_failed(spec.label, outcome.error or "unknown error")
                failures.add(spec.label, outcome.error or "unknown error", outcome.attempts)
            self._release(lease)

        def tick() -> None:
            if self.leases is not None:
                self.leases.heartbeat_held()

        outcomes = pool.map(
            [s.to_dict() for s in specs],
            labels=[s.label for s in specs],
            on_outcome=stream,
            on_tick=tick,
        )
        for (spec, lease), outcome in zip(claimed, outcomes):
            if outcome.status != "broken":
                continue  # already streamed
            # Graceful degradation: the pool died, finish inline.
            attempts = prior.get(spec, 0) + 1
            try:
                result = self._run_inline(spec)
            except BaseException as exc:
                self._journal_failed(spec, f"{type(exc).__name__}: {exc}", attempts)
                self._release(lease)
                raise
            results[spec] = result
            self._journal_result(spec, result, attempts=attempts)
            self._release(lease)
            tracker.job_done(spec.label, status=str(result.status),
                             summary=result.summary)


def run_jobs(
    runner,
    specs: Iterable[JobSpec],
    *,
    workers: int | None = None,
    job_timeout: float | None = None,
    policy: FaultPolicy | None = None,
    tracker: ProgressTracker | None = None,
    grid_dir: str | None = None,
    resume: bool = True,
    retry_budget: int = 1,
    stale_after: float = DEFAULT_STALE_AFTER,
    owner: str | None = None,
    wait_for_peers: bool = True,
) -> list:
    """One-shot convenience wrapper around :class:`ParallelExecutor`.

    ``grid_dir`` turns on the durability layer: a
    :class:`~repro.exec.journal.GridJournal` (crash-safe resume, with
    ``retry_budget`` extra attempts for journaled TO/COM verdicts) and
    a :class:`~repro.exec.lease.LeaseBoard` (multi-process work
    stealing; leases older than ``stale_after`` seconds without a
    heartbeat are reclaimed).  ``wait_for_peers=False`` is shard mode:
    contribute what this process can claim and return, leaving
    ``None`` slots for jobs a live peer still holds.
    """
    journal = leases = None
    if grid_dir is not None:
        fingerprint = getattr(runner, "config_fingerprint", None)
        if fingerprint is None:  # pre-property runners (test doubles)
            fingerprint = getattr(runner, "_config_fingerprint", "")
        journal = GridJournal(grid_dir, fingerprint, retry_budget=retry_budget)
        leases = LeaseBoard(grid_dir, owner=owner, stale_after=stale_after)
    executor = ParallelExecutor(
        runner, workers=workers, job_timeout=job_timeout, policy=policy, tracker=tracker,
        journal=journal, leases=leases, resume=resume, wait_for_peers=wait_for_peers,
    )
    return executor.run(specs)
