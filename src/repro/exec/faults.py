"""Fault taxonomy and policy for the parallel job executor.

The executor distinguishes four failure modes, each with its own
handling — the point of the subsystem is that none of them takes the
rest of the grid down:

* **timeout** — a job exceeds the per-job wall-clock budget.  The
  worker is terminated (serial mode classifies after the fact) and the
  job surfaces as the paper's ``TO`` cell via :func:`timeout_result`.
* **memory budget** — a job's *simulated* paper-scale peak memory
  exceeds the executor's budget.  Detected before any work happens and
  surfaced as a ``COM`` cell via :func:`memory_result`.
* **transient worker failure** — the worker process died (crash,
  signal) or raised an exception classified transient
  (:func:`is_transient`).  The job is retried on a fresh worker, up to
  :attr:`FaultPolicy.max_retries` times with exponential backoff.
* **permanent job failure** — a deterministic exception from the job
  body, or a transient one that exhausted its retries.  Collected and
  raised as one :class:`JobFailedError` *after* the rest of the grid
  has finished (completed work stays in the artifact store).

Executor-level TO/COM results are deliberately **not** written to the
artifact store: the timeout and memory budget are properties of the
executor invocation, not of the job's content-addressed identity.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "ExecError",
    "PoolBrokenError",
    "JobFailure",
    "JobFailedError",
    "TransientJobError",
    "TRANSIENT_EXCEPTIONS",
    "is_transient",
    "FaultPolicy",
    "timeout_result",
    "memory_result",
]


class ExecError(RuntimeError):
    """Base class for executor errors."""


class PoolBrokenError(ExecError):
    """The worker pool could not keep any worker alive."""


class TransientJobError(RuntimeError):
    """Marker exception: a failure worth retrying on a fresh worker.

    Raised by job code (or injected by tests) to signal a condition
    that is expected to clear — e.g. a racy filesystem hiccup.
    """


#: Exception types the executor treats as transient (retryable).
TRANSIENT_EXCEPTIONS: tuple[type[BaseException], ...] = (
    TransientJobError,
    OSError,
    EOFError,
    BrokenPipeError,
    ConnectionError,
)


def is_transient(exc: BaseException) -> bool:
    """Whether an exception warrants a retry on a fresh worker."""
    return isinstance(exc, TRANSIENT_EXCEPTIONS)


@dataclass(frozen=True)
class JobFailure:
    """One permanently failed job, for :class:`JobFailedError`."""

    label: str
    error: str
    attempts: int


class JobFailedError(ExecError):
    """One or more jobs failed permanently (grid still completed)."""

    def __init__(self, failures: list[JobFailure]):
        self.failures = list(failures)
        lines = "; ".join(
            f"{f.label}: {f.error} (after {f.attempts} attempt{'s' if f.attempts != 1 else ''})"
            for f in self.failures
        )
        super().__init__(f"{len(self.failures)} job(s) failed permanently: {lines}")


@dataclass(frozen=True)
class FaultPolicy:
    """Retry / budget knobs of one executor invocation.

    Attributes
    ----------
    max_retries:
        Extra attempts granted to a job after a *transient* failure
        (a deterministic job exception is never retried).
    backoff_s / backoff_factor:
        Exponential backoff before re-submitting a retried job:
        attempt ``n`` (1-based failure count) waits
        ``backoff_s * backoff_factor ** (n - 1)`` seconds.
    memory_budget_bytes:
        Optional executor-level cap on a job's *simulated* paper-scale
        peak memory; jobs over it become ``COM`` cells without running.
        ``None`` leaves the run budget (V100-32GB) as the only cap.
    """

    max_retries: int = 2
    backoff_s: float = 0.25
    backoff_factor: float = 2.0
    memory_budget_bytes: float | None = None

    def backoff_delay(self, failures: int) -> float:
        """Seconds to wait before the retry following failure #n."""
        if failures <= 0:
            return 0.0
        return self.backoff_s * self.backoff_factor ** (failures - 1)

    def delays(self) -> tuple[float, ...]:
        """The full backoff schedule (one delay per permitted retry)."""
        return tuple(self.backoff_delay(n) for n in range(1, self.max_retries + 1))


@dataclass
class _FailureLog:
    """Mutable collector used by the executor while a grid runs."""

    failures: list[JobFailure] = field(default_factory=list)

    def add(self, label: str, error: str, attempts: int) -> None:
        self.failures.append(JobFailure(label=label, error=error, attempts=attempts))

    def raise_if_any(self) -> None:
        if self.failures:
            raise JobFailedError(self.failures)


# ----------------------------------------------------------------------
# Mapping executor faults onto the paper's table cells
# ----------------------------------------------------------------------
def timeout_result(spec, simulated, seconds: float):
    """An ``ExperimentResult`` rendering a timed-out job as a TO cell."""
    from ..experiments.runner import ExperimentResult
    from ..resources import RunStatus

    return ExperimentResult(
        dataset=spec.dataset,
        model=spec.model,
        adapter=spec.adapter,
        strategy=spec.strategy,
        seed=spec.seed,
        status=RunStatus.TIMEOUT,
        accuracy=None,
        simulated=simulated,
        measured_seconds=float(seconds),
        summary=None,
    )


def memory_result(spec, simulated):
    """An ``ExperimentResult`` rendering a budget-violating job as COM."""
    from ..experiments.runner import ExperimentResult
    from ..resources import RunStatus

    return ExperimentResult(
        dataset=spec.dataset,
        model=spec.model,
        adapter=spec.adapter,
        strategy=spec.strategy,
        seed=spec.seed,
        status=RunStatus.OUT_OF_MEMORY,
        accuracy=None,
        simulated=simulated,
        measured_seconds=0.0,
        summary=None,
    )
