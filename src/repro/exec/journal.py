"""Persistent grid ledger: crash-safe job state on top of the store.

The content-addressed store already makes *successful* work durable —
an OK result is one ``result/<digest>`` entry that any process can
reload.  What it cannot answer is the orchestration question: which
jobs of *this grid* are pending, running, or terminal, and with which
verdict?  Executor-level TO/COM verdicts are deliberately not cached
(a deadline is a property of the invocation, not of the job identity),
so before this module an interrupted grid re-burned every timed-out
job's full budget on every rerun.

:class:`GridJournal` closes the loop.  A grid directory holds:

* ``journal/grid.json`` — the manifest: every registered spec plus the
  config fingerprint, so ``repro grid status`` (and resuming shards)
  can enumerate the grid without reconstructing it;
* ``journal/<digest>.json`` — one record file per spec key (the digest
  of the spec's ``result/...`` store key), holding the *append-only*
  list of state records ``pending → leased → done/failed/timeout/com``.

Every write is atomic and durable (temp file + fsync + rename via
:func:`repro.runtime.atomic_write_bytes`): a reader — including a
process resuming after SIGKILL — sees either the previous state or
the new one, never a torn record.  A spec with no record file is
simply ``pending``; the first transition materialises it.

Resume semantics (:meth:`GridJournal.resolve`):

* ``done`` — the verdict points at the content-addressed store; if the
  entry is present the result is reloaded with **zero** recomputation,
  if it is missing or corrupt the job re-executes (the journal trusts
  the store, not itself, for payloads);
* ``timeout`` / ``com`` — the full verdict is embedded in the record
  (these are exactly the verdicts the store refuses to hold).  A
  bounded retry budget applies: a TO/COM verdict is retried at most
  ``retry_budget`` more times across resumes — transient timeouts get
  one more chance, persistent ones stop burning their budget forever;
* ``failed`` — always re-eligible: a permanent error is re-raised by
  the executor if it reproduces, and the record keeps the attempt
  count so repeated failures stay visible;
* ``leased`` — owned by a (possibly dead) process; the lease layer
  (:mod:`repro.exec.lease`) decides liveness, not the journal.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any, Iterable, Mapping

from ..runtime import atomic_write_bytes
from .chaos import chaos_point
from .spec import JobSpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..experiments.runner import ExperimentResult

__all__ = ["JOURNAL_VERSION", "STATES", "TERMINAL_STATES", "JournalRecord",
           "JournalEntry", "GridJournal"]

JOURNAL_VERSION = 1

#: Legal journal states, in lifecycle order.
STATES = ("pending", "leased", "done", "failed", "timeout", "com")

#: States after which a job needs no further execution (this run).
TERMINAL_STATES = ("done", "failed", "timeout", "com")

#: RunStatus.name -> journal state for terminal results.
_STATE_BY_STATUS = {"OK": "done", "TIMEOUT": "timeout", "OUT_OF_MEMORY": "com"}


@dataclass(frozen=True)
class JournalRecord:
    """One appended state transition of one job."""

    state: str
    at: float  # wall-clock epoch seconds (informational only)
    owner: str | None = None
    attempts: int = 0
    elapsed: float | None = None  # measured job seconds (terminal records)
    error: str | None = None
    cached: bool = False  # terminal verdict came from the store, not a run
    result: dict | None = None  # embedded verdict meta (timeout/com only)

    def to_dict(self) -> dict:
        """JSON-ready dict, omitting unset optional fields."""
        data: dict[str, Any] = {"state": self.state, "at": self.at}
        if self.owner is not None:
            data["owner"] = self.owner
        if self.attempts:
            data["attempts"] = self.attempts
        if self.elapsed is not None:
            data["elapsed"] = self.elapsed
        if self.error is not None:
            data["error"] = self.error
        if self.cached:
            data["cached"] = True
        if self.result is not None:
            data["result"] = self.result
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "JournalRecord":
        return cls(
            state=data["state"],
            at=float(data.get("at", 0.0)),
            owner=data.get("owner"),
            attempts=int(data.get("attempts", 0)),
            elapsed=data.get("elapsed"),
            error=data.get("error"),
            cached=bool(data.get("cached", False)),
            result=data.get("result"),
        )


@dataclass
class JournalEntry:
    """The full recorded history of one job (records, oldest first)."""

    key: str
    spec: dict = field(default_factory=dict)
    records: list[JournalRecord] = field(default_factory=list)

    @property
    def state(self) -> str:
        """Current state: the last record's, or ``pending``."""
        return self.records[-1].state if self.records else "pending"

    @property
    def attempts(self) -> int:
        """Executions so far (the max any record has seen)."""
        return max((r.attempts for r in self.records), default=0)

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    @property
    def last(self) -> JournalRecord | None:
        return self.records[-1] if self.records else None

    def executions(self) -> int:
        """Terminal records produced by an actual run (not cache/resume)."""
        return sum(1 for r in self.records if r.state in TERMINAL_STATES and not r.cached)


class GridJournal:
    """Crash-safe per-spec state ledger for one grid directory.

    Parameters
    ----------
    grid_dir:
        Root of the grid; the journal lives in ``<grid_dir>/journal``
        (the lease board uses ``<grid_dir>/leases``).
    fingerprint:
        The runner's config fingerprint; spec record files are named
        by the digest of ``spec.result_key(fingerprint)``, so the
        journal and the store agree on job identity.  Omit it when
        only *reading* (``GridJournal.open``): the manifest remembers
        the fingerprint of the registering run.
    retry_budget:
        Extra executions granted to a journaled TO/COM verdict across
        resumes before the verdict is reused as-is.
    """

    def __init__(
        self,
        grid_dir: str | Path,
        fingerprint: str | None = None,
        *,
        retry_budget: int = 1,
    ) -> None:
        self.grid_dir = Path(grid_dir)
        self.journal_dir = self.grid_dir / "journal"
        self.retry_budget = max(0, int(retry_budget))
        if fingerprint is None:
            fingerprint = self._manifest().get("fingerprint", "")
        self.fingerprint = fingerprint

    @classmethod
    def open(cls, grid_dir: str | Path, *, retry_budget: int = 1) -> "GridJournal":
        """Open an existing grid directory read-side (status, resume)."""
        journal = cls(grid_dir, None, retry_budget=retry_budget)
        return journal

    # ------------------------------------------------------------------
    # Identity
    # ------------------------------------------------------------------
    def key_for(self, spec: JobSpec) -> str:
        """The spec's store result key under this grid's fingerprint."""
        return spec.result_key(self.fingerprint)

    def digest_for(self, spec: JobSpec) -> str:
        """The hex digest naming the spec's record file and lease."""
        return self.key_for(spec).split("/", 1)[1]

    def _entry_path(self, digest: str) -> Path:
        return self.journal_dir / f"{digest}.json"

    # ------------------------------------------------------------------
    # Manifest
    # ------------------------------------------------------------------
    @property
    def manifest_path(self) -> Path:
        return self.journal_dir / "grid.json"

    def _manifest(self) -> dict:
        try:
            data = json.loads(self.manifest_path.read_text())
        except (OSError, ValueError):
            return {}
        return data if isinstance(data, dict) else {}

    def register(self, specs: Iterable[JobSpec]) -> None:
        """Merge ``specs`` into the grid manifest (idempotent).

        Concurrent shards registering the *same* grid write identical
        content, so the last atomic rename wins harmlessly.  (Shards
        registering disjoint grids into one directory should stagger
        their starts; the read-merge-write here is not transactional.)
        """
        manifest = self._manifest()
        known = {json.dumps(entry, sort_keys=True) for entry in manifest.get("specs", ())}
        merged = list(manifest.get("specs", ()))
        for spec in specs:
            blob = json.dumps(spec.to_dict(), sort_keys=True)
            if blob not in known:
                known.add(blob)
                merged.append(spec.to_dict())
        payload = {
            "version": JOURNAL_VERSION,
            "fingerprint": self.fingerprint,
            "specs": merged,
        }
        atomic_write_bytes(self.manifest_path, json.dumps(payload, indent=1).encode("utf-8"))

    def specs(self) -> tuple[JobSpec, ...]:
        """Every spec ever registered in this grid directory."""
        return tuple(JobSpec.from_dict(entry) for entry in self._manifest().get("specs", ()))

    # ------------------------------------------------------------------
    # Entries
    # ------------------------------------------------------------------
    def entry(self, spec: JobSpec) -> JournalEntry:
        """The spec's recorded history (a fresh ``pending`` one if none)."""
        return self._load(self.digest_for(spec), spec.to_dict())

    def entries(self) -> list[JournalEntry]:
        """One entry per registered spec (pending ones included)."""
        return [self.entry(spec) for spec in self.specs()]

    def _load(self, digest: str, spec_dict: dict | None = None) -> JournalEntry:
        path = self._entry_path(digest)
        key = f"result/{digest}"
        try:
            data = json.loads(path.read_text())
        except (OSError, ValueError):
            return JournalEntry(key=key, spec=dict(spec_dict or {}))
        records = [JournalRecord.from_dict(r) for r in data.get("records", ())]
        return JournalEntry(key=data.get("key", key), spec=data.get("spec", {}), records=records)

    def _append(self, spec: JobSpec, record: JournalRecord) -> JournalEntry:
        """Append one record and persist the entry atomically."""
        digest = self.digest_for(spec)
        entry = self._load(digest, spec.to_dict())
        entry.records.append(record)
        payload = {
            "version": JOURNAL_VERSION,
            "key": entry.key,
            "spec": spec.to_dict(),
            "records": [r.to_dict() for r in entry.records],
        }
        chaos_point("journal.record", key=entry.key, state=record.state)
        atomic_write_bytes(
            self._entry_path(digest), json.dumps(payload, indent=1).encode("utf-8")
        )
        chaos_point("journal.committed", key=entry.key, state=record.state)
        return entry

    # ------------------------------------------------------------------
    # Transitions
    # ------------------------------------------------------------------
    def mark_leased(self, spec: JobSpec, owner: str) -> JournalEntry:
        """Journal that ``owner`` claimed the spec's lease."""
        entry = self.entry(spec)
        return self._append(
            spec,
            JournalRecord(
                state="leased", at=time.time(), owner=owner, attempts=entry.attempts
            ),
        )

    def record_result(
        self,
        spec: JobSpec,
        result: "ExperimentResult",
        *,
        attempts: int | None = None,
        owner: str | None = None,
        cached: bool = False,
    ) -> JournalEntry:
        """Journal a terminal verdict (done / timeout / com).

        ``done`` records point at the store (which the worker or the
        runner already wrote); ``timeout``/``com`` records embed the
        full result meta because the store deliberately refuses those.
        """
        state = _STATE_BY_STATUS.get(result.status.name, "done")
        if attempts is None:
            attempts = self.entry(spec).attempts + (0 if cached else 1)
        embedded = None
        if state in ("timeout", "com"):
            embedded = json.loads(json.dumps(result.to_meta()))
        return self._append(
            spec,
            JournalRecord(
                state=state,
                at=time.time(),
                owner=owner,
                attempts=attempts,
                elapsed=float(result.measured_seconds),
                cached=cached,
                result=embedded,
            ),
        )

    def mark_failed(
        self, spec: JobSpec, error: str, *, attempts: int = 1, owner: str | None = None
    ) -> JournalEntry:
        """Journal a permanent error (always re-eligible on resume)."""
        return self._append(
            spec,
            JournalRecord(
                state="failed", at=time.time(), owner=owner, attempts=attempts, error=error
            ),
        )

    # ------------------------------------------------------------------
    # Resume
    # ------------------------------------------------------------------
    def resolve(self, spec: JobSpec, runner) -> "ExperimentResult | None":
        """The reusable verdict for ``spec``, or ``None`` (execute it).

        ``runner`` provides ``cached_result`` for ``done`` verdicts;
        a missing/corrupt store entry degrades to re-execution rather
        than trusting a payload the journal never stored.
        """
        entry = self.entry(spec)
        state = entry.state
        if state == "done":
            return runner.cached_result(spec)
        if state in ("timeout", "com"):
            if entry.attempts > self.retry_budget:
                return self._embedded_result(entry)
            return None
        return None

    def _embedded_result(self, entry: JournalEntry) -> "ExperimentResult | None":
        from ..experiments.runner import ExperimentResult

        for record in reversed(entry.records):
            if record.result is not None:
                return ExperimentResult.from_meta(record.result)
        return None

    # ------------------------------------------------------------------
    # Introspection (``repro grid status``)
    # ------------------------------------------------------------------
    def counts(self) -> dict[str, int]:
        """Per-state job counts over every registered spec."""
        counts = {state: 0 for state in STATES}
        for entry in self.entries():
            counts[entry.state] = counts.get(entry.state, 0) + 1
        return counts

    def progress(self) -> dict:
        """Counts, throughput and a naive ETA from terminal records.

        The ETA assumes the remaining jobs cost the mean measured
        seconds of the jobs that already ran (cache/resume hits are
        excluded from the mean — they cost nothing and would skew it).
        """
        entries = self.entries()
        counts = {state: 0 for state in STATES}
        samples: list[float] = []
        re_executed = 0
        for entry in entries:
            counts[entry.state] = counts.get(entry.state, 0) + 1
            re_executed += max(0, entry.executions() - 1)
            last = entry.last
            if (
                entry.terminal
                and last is not None
                and not last.cached
                and last.elapsed is not None
            ):
                samples.append(float(last.elapsed))
        remaining = counts["pending"] + counts["leased"]
        mean = sum(samples) / len(samples) if samples else None
        return {
            "total": len(entries),
            "counts": counts,
            "remaining": remaining,
            "re_executed": re_executed,
            "mean_job_seconds": mean,
            "eta_seconds": None if mean is None else mean * remaining,
        }
