"""Work-stealing shard leases: file locks with heartbeats, no coordinator.

N independent processes (``repro sweep --shard``) point at one grid
directory and work-steal specs from it.  Mutual exclusion per spec key
is a lockfile created with ``O_CREAT | O_EXCL`` — atomic on every
POSIX filesystem, no server, no advisory-lock caveats across NFS
implementations.  Liveness is the lockfile's mtime: the owner touches
it periodically (a *heartbeat*); a lease whose mtime lags behind
``stale_after`` belongs to a dead (or frozen) process and may be
reclaimed.

Reclamation must itself be race-free — two shards noticing the same
stale lease must produce exactly one new owner.  Deleting-then-creating
would not be (shard A could delete B's *fresh replacement*), so the
steal is a ``rename`` of the stale lockfile to a tombstone: POSIX
guarantees at most one renamer of a given source wins; the loser's
rename fails with ENOENT and it backs off.  The winner then takes the
lock through the ordinary ``O_EXCL`` path.

A lease is advisory for *scheduling*, not for correctness of results:
even if a frozen-but-alive owner finishes after its lease was stolen,
both executions write the same content-addressed result and the
journal's last record wins — duplicated work, never corrupted state.
The heartbeat interval is sized so that only a genuinely wedged owner
ever loses a lease.
"""

from __future__ import annotations

import json
import os
import socket
import time
import uuid
from dataclasses import dataclass, field
from pathlib import Path

from .chaos import chaos_point, heartbeat_frozen

__all__ = ["DEFAULT_STALE_AFTER", "Lease", "LeaseBoard", "default_owner"]

#: Seconds without a heartbeat after which a lease counts as stale.
DEFAULT_STALE_AFTER = 30.0


def default_owner() -> str:
    """A process-unique owner id: ``host:pid:nonce``."""
    return f"{socket.gethostname()}:{os.getpid()}:{uuid.uuid4().hex[:8]}"


@dataclass
class Lease:
    """One held lease: the lockfile this process owns for one spec key."""

    path: Path
    owner: str
    digest: str
    stolen: bool = False  # acquired by reclaiming a stale lease
    acquired_at: float = field(default_factory=time.monotonic)
    _last_beat: float = field(default_factory=time.monotonic)
    _lost: bool = False

    def heartbeat(self, *, min_interval: float = 0.0) -> bool:
        """Refresh the lease mtime; ``False`` once the lease is lost.

        Verifies ownership before touching: after a steal the path
        holds the *thief's* lockfile, and refreshing that would keep a
        zombie shard masquerading as live.  A chaos-frozen process
        reports success but stops touching — exactly the wedged-owner
        failure mode the stale-reclamation path exists for.
        """
        if self._lost:
            return False
        now = time.monotonic()
        if min_interval > 0.0 and now - self._last_beat < min_interval:
            return True
        chaos_point("lease.heartbeat", digest=self.digest, owner=self.owner)
        if heartbeat_frozen():
            return True
        try:
            data = json.loads(self.path.read_text())
            if data.get("owner") != self.owner:
                self._lost = True
                return False
            os.utime(self.path, None)
        except (OSError, ValueError):
            self._lost = True
            return False
        self._last_beat = now
        return True

    def release(self) -> None:
        """Drop the lease (missing file — e.g. already stolen — is fine)."""
        try:
            data = json.loads(self.path.read_text())
            if data.get("owner") == self.owner:
                self.path.unlink()
        except (OSError, ValueError):
            pass
        self._lost = True


class LeaseBoard:
    """Acquire/heartbeat/steal leases for one grid directory.

    Parameters
    ----------
    grid_dir:
        The grid root; lockfiles live in ``<grid_dir>/leases``.
    owner:
        This process's owner id (defaults to :func:`default_owner`).
    stale_after:
        Heartbeat age beyond which a foreign lease is reclaimable.
    """

    def __init__(
        self,
        grid_dir: str | Path,
        *,
        owner: str | None = None,
        stale_after: float = DEFAULT_STALE_AFTER,
    ) -> None:
        self.lease_dir = Path(grid_dir) / "leases"
        self.owner = owner if owner is not None else default_owner()
        self.stale_after = float(stale_after)
        self.acquired = 0
        self.contested = 0
        self.stolen = 0
        self._held: dict[str, Lease] = {}

    # ------------------------------------------------------------------
    def _path(self, digest: str) -> Path:
        return self.lease_dir / f"{digest}.lock"

    def try_acquire(self, digest: str) -> Lease | None:
        """Claim ``digest``; ``None`` while a live peer holds it.

        A stale holder is reclaimed first (rename-to-tombstone, see
        the module docstring) and the acquisition retried once; the
        returned lease's ``stolen`` flag records that a reclamation
        happened, for the progress counters.
        """
        self.lease_dir.mkdir(parents=True, exist_ok=True)
        stolen = False
        for _ in range(2):  # initial try + one retry after a steal
            lease = self._create(digest, stolen=stolen)
            if lease is not None:
                return lease
            if not self._reclaim_if_stale(digest):
                self.contested += 1
                return None
            stolen = True
        self.contested += 1
        return None

    def _create(self, digest: str, *, stolen: bool) -> Lease | None:
        path = self._path(digest)
        try:
            fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_EXCL, 0o644)
        except FileExistsError:
            return None
        try:
            payload = json.dumps(
                {"owner": self.owner, "digest": digest, "since": time.time()}
            ).encode("utf-8")
            os.write(fd, payload)
            os.fsync(fd)
        finally:
            os.close(fd)
        lease = Lease(path=path, owner=self.owner, digest=digest, stolen=stolen)
        self._held[digest] = lease
        self.acquired += 1
        if stolen:
            self.stolen += 1
        return lease

    def _reclaim_if_stale(self, digest: str) -> bool:
        """Tombstone a stale lockfile; ``True`` iff *we* removed it."""
        path = self._path(digest)
        try:
            age = time.time() - path.stat().st_mtime
        except OSError:
            return True  # holder released/was stolen between our checks
        if age < self.stale_after:
            return False
        tombstone = path.with_name(f"{path.name}.stale.{uuid.uuid4().hex[:8]}")
        try:
            os.rename(path, tombstone)  # exactly one stealer wins this
        except OSError:
            return False
        try:
            tombstone.unlink()
        except OSError:
            pass
        return True

    # ------------------------------------------------------------------
    def release(self, lease: Lease) -> None:
        """Drop one lease and forget it."""
        lease.release()
        self._held.pop(lease.digest, None)

    def release_all(self) -> None:
        """Drop every lease this board still holds (run teardown)."""
        for lease in list(self._held.values()):
            self.release(lease)

    def heartbeat_held(self, *, min_interval: float | None = None) -> int:
        """Refresh every held lease; returns how many are still ours.

        Called from the executor's scheduler tick; the default
        throttle (a quarter of ``stale_after``) keeps the touch rate
        negligible next to job runtimes.
        """
        if min_interval is None:
            min_interval = self.stale_after / 4.0
        live = 0
        for digest, lease in list(self._held.items()):
            if lease.heartbeat(min_interval=min_interval):
                live += 1
            else:
                self._held.pop(digest, None)
        return live

    # ------------------------------------------------------------------
    def active(self) -> list[dict]:
        """Every lockfile on the board: owner, age, staleness (status CLI)."""
        if not self.lease_dir.exists():
            return []
        rows = []
        now = time.time()
        for path in sorted(self.lease_dir.glob("*.lock")):
            try:
                stat = path.stat()
                data = json.loads(path.read_text())
            except (OSError, ValueError):
                continue
            age = now - stat.st_mtime
            rows.append(
                {
                    "digest": data.get("digest", path.stem),
                    "owner": data.get("owner", "?"),
                    "heartbeat_age_s": age,
                    "stale": age >= self.stale_after,
                }
            )
        return rows

    def stats(self) -> dict[str, int]:
        """Lifetime acquisition counters plus the current held count."""
        return {
            "acquired": self.acquired,
            "contested": self.contested,
            "stolen": self.stolen,
            "held": len(self._held),
        }
