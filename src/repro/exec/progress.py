"""Live progress aggregation for executor runs.

Each finished job carries an optional :class:`~repro.runtime.RunSummary`
(span seconds + counters).  The tracker folds those into one running
aggregate and keeps live jobs-done / failed / cached counts that the
CLI renders as a single updating status line.

The tracker is cumulative across batches on purpose: a table
regeneration issues one small grid per table cell, and the user cares
about overall progress, so ``begin()`` *adds* to the expected total
instead of resetting.
"""

from __future__ import annotations

import io
from typing import TextIO

from ..runtime import Instrumentation, RunSummary, Stopwatch

__all__ = ["ProgressTracker"]


class ProgressTracker:
    """Aggregates per-job events into a live one-line report.

    Parameters
    ----------
    stream:
        Optional text stream; when set, every event rewrites a
        ``\\r``-terminated status line (and :meth:`close` finishes it
        with a newline).  ``None`` keeps the tracker silent.
    """

    def __init__(self, stream: TextIO | None = None) -> None:
        self.stream = stream
        self.total = 0
        self.done = 0
        self.cached = 0
        self.resumed = 0
        self.stolen = 0
        self.retried = 0
        self.failed = 0
        self.by_status: dict[str, int] = {}
        self._instrumentation = Instrumentation()
        self._watch = Stopwatch()
        self._dirty = False

    # ------------------------------------------------------------------
    def begin(self, total: int) -> None:
        """Announce ``total`` more jobs (cumulative across batches)."""
        self.total += int(total)
        self._emit()

    def job_done(self, label: str, *, status: str = "OK", cached: bool = False,
                 summary: RunSummary | None = None) -> None:
        """Record one finished job (including cache hits and TO/COM)."""
        self.done += 1
        if cached:
            self.cached += 1
        self.by_status[status] = self.by_status.get(status, 0) + 1
        if summary is not None:
            self.merge_summary(summary)
        self._emit()

    def job_resumed(self, label: str, *, status: str = "OK") -> None:
        """Record one job resolved from the grid journal (no execution)."""
        self.done += 1
        self.resumed += 1
        self.by_status[status] = self.by_status.get(status, 0) + 1
        self._emit()

    def lease_stolen(self, label: str) -> None:
        """Record one stale-lease reclamation (the job is re-claimed)."""
        self.stolen += 1
        self._emit()

    def job_failed(self, label: str, error: str = "") -> None:
        """Record one permanently failed job."""
        self.done += 1
        self.failed += 1
        self._emit()

    def job_retried(self, label: str) -> None:
        """Record one retry (the job is still pending)."""
        self.retried += 1
        self._emit()

    def merge_summary(self, summary: RunSummary) -> None:
        """Fold a job's RunSummary into the aggregate."""
        for phase, seconds in summary.phase_seconds.items():
            self._instrumentation.add_seconds(phase, seconds)
        for counter, value in summary.counters.items():
            self._instrumentation.count(counter, value)

    # ------------------------------------------------------------------
    def summary(self) -> RunSummary:
        """The aggregated RunSummary over every recorded job."""
        return self._instrumentation.summary()

    def snapshot(self) -> dict:
        """Plain-dict state (JSON-able; used by tests and benchmarks)."""
        return {
            "total": self.total,
            "done": self.done,
            "cached": self.cached,
            "resumed": self.resumed,
            "stolen": self.stolen,
            "retried": self.retried,
            "failed": self.failed,
            "by_status": dict(self.by_status),
            "elapsed_s": self._watch.elapsed(),
        }

    def render(self) -> str:
        """The one-line report, e.g. ``jobs 5/8 done · 2 cached · 1 TO``."""
        parts = [f"jobs {self.done}/{self.total} done"]
        if self.cached:
            parts.append(f"{self.cached} cached")
        if self.resumed:
            parts.append(f"{self.resumed} resumed")
        if self.stolen:
            parts.append(f"{self.stolen} stolen")
        for status, count in sorted(self.by_status.items()):
            if status != "OK":
                parts.append(f"{count} {status}")
        if self.retried:
            parts.append(f"{self.retried} retried")
        if self.failed:
            parts.append(f"{self.failed} failed")
        parts.append(f"{self._watch.elapsed():.1f}s")
        return " · ".join(parts)

    def close(self) -> None:
        """Finish the live line (newline) if anything was written."""
        if self.stream is not None and self._dirty:
            try:
                self.stream.write("\n")
                self.stream.flush()
            except (OSError, io.UnsupportedOperation):
                pass
            self._dirty = False

    # ------------------------------------------------------------------
    def _emit(self) -> None:
        if self.stream is None:
            return
        try:
            self.stream.write("\r" + self.render())
            self.stream.flush()
            self._dirty = True
        except (OSError, io.UnsupportedOperation):
            pass
