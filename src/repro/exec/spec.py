"""Frozen, hashable experiment-job specifications.

One experiment job used to be a bag of keyword arguments threaded
through ``ExperimentRunner.run()``, the sweep helpers and three CLI
subcommands, each with its own copy of the signature.  :class:`JobSpec`
reifies the job as a single frozen dataclass: the five sweep
coordinates (dataset, model, adapter, strategy, seed) plus the two
modifiers that travelled alongside them (``adapter_kwargs`` and
``simulate_adapter_as``).

Because the spec is frozen and hashable it can be

* deduplicated (two equal specs are one job),
* used directly as a dict key by the executor's scheduler,
* serialised losslessly (``to_dict`` / ``from_dict``) across process
  boundaries to ``repro.exec`` worker processes, and
* mapped onto one content-addressed ``result/...`` store key via
  :meth:`JobSpec.result_key`.

:func:`grid` expands the cross product of coordinate axes into a
deterministic, duplicate-free tuple of specs — the input format of
:class:`repro.exec.ParallelExecutor` and ``run_sweep``.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping, Sequence

from ..data.metadata import dataset_info
from ..runtime import result_key as _result_key
from ..training import FineTuneStrategy

__all__ = ["JobSpec", "grid", "config_to_meta", "config_from_meta"]

#: Paper model labels accepted by :class:`JobSpec` (kept in sync with
#: ``repro.experiments.config.PAPER_MODELS``; validated lazily so this
#: module never imports the experiments package at import time).
_KNOWN_MODELS = ("MOMENT", "ViT")


def _normalize_kwargs(value: Any) -> tuple[tuple[str, Any], ...]:
    """Canonicalise adapter kwargs into a sorted, hashable tuple."""
    if value is None:
        return ()
    if isinstance(value, Mapping):
        items = value.items()
    else:  # already tuple-of-pairs (e.g. from a round-trip)
        items = [(k, v) for k, v in value]
    return tuple(sorted((str(k), v) for k, v in items))


@dataclass(frozen=True)
class JobSpec:
    """One experiment job: the unit the executor schedules.

    Attributes
    ----------
    dataset:
        Table-3 dataset name; short names are normalised to full names
        at construction, so two specs built from ``"Vowels"`` and
        ``"JapaneseVowels"`` compare (and hash, and cache) equal.
    model:
        Paper model label (``"MOMENT"`` or ``"ViT"``).
    adapter:
        Adapter registry name, or ``"none"``.
    adapter_kwargs:
        Extra adapter options as a sorted tuple of pairs (a plain dict
        is accepted and normalised); see :attr:`adapter_options`.
    strategy:
        Fine-tuning strategy (a :class:`FineTuneStrategy` or its
        string value).
    seed:
        Random seed of the job.
    simulate_adapter_as:
        Cost-model adapter kind when ``adapter`` is a variant the
        simulator does not know (e.g. ``scaled_pca`` prices as
        ``pca``).  Part of the spec — and hence of the result key.
    """

    dataset: str
    model: str
    adapter: str = "none"
    adapter_kwargs: tuple[tuple[str, Any], ...] = field(default=())
    strategy: FineTuneStrategy = FineTuneStrategy.ADAPTER_HEAD
    seed: int = 0
    simulate_adapter_as: str | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "dataset", dataset_info(self.dataset).name)
        if self.model not in _KNOWN_MODELS:
            raise ValueError(
                f"unknown paper model {self.model!r}; expected one of {_KNOWN_MODELS}"
            )
        object.__setattr__(self, "adapter_kwargs", _normalize_kwargs(self.adapter_kwargs))
        if not isinstance(self.strategy, FineTuneStrategy):
            object.__setattr__(self, "strategy", FineTuneStrategy(self.strategy))
        object.__setattr__(self, "seed", int(self.seed))
        if self.simulate_adapter_as == self.adapter:
            # Simulating as itself is the default; normalising keeps the
            # result key (and hence the cache) shared with plain specs.
            object.__setattr__(self, "simulate_adapter_as", None)

    # ------------------------------------------------------------------
    @property
    def adapter_options(self) -> dict[str, Any]:
        """The adapter kwargs as a plain dict (for ``make_adapter``)."""
        return dict(self.adapter_kwargs)

    @property
    def label(self) -> str:
        """Compact human-readable job identity (progress reports)."""
        extra = f"[{','.join(f'{k}={v}' for k, v in self.adapter_kwargs)}]" if self.adapter_kwargs else ""
        return f"{self.dataset}/{self.model}/{self.adapter}{extra}/{self.strategy.value}/s{self.seed}"

    def result_key(self, config_fingerprint: str) -> str:
        """The content-addressed ``result/...`` store key of this job."""
        return _result_key(
            config_fingerprint,
            self.dataset,
            self.model,
            self.adapter,
            self.adapter_options,
            self.strategy.value,
            self.seed,
            simulate_adapter_as=self.simulate_adapter_as,
        )

    def replace(self, **changes: Any) -> "JobSpec":
        """A copy with the given fields replaced (re-validated)."""
        return dataclasses.replace(self, **changes)

    # ------------------------------------------------------------------
    # Cross-process transport (JSON-able, pickle-free)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-able snapshot; inverse of :meth:`from_dict`."""
        return {
            "dataset": self.dataset,
            "model": self.model,
            "adapter": self.adapter,
            "adapter_kwargs": [[k, v] for k, v in self.adapter_kwargs],
            "strategy": self.strategy.value,
            "seed": self.seed,
            "simulate_adapter_as": self.simulate_adapter_as,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "JobSpec":
        return cls(
            dataset=data["dataset"],
            model=data["model"],
            adapter=data.get("adapter", "none"),
            adapter_kwargs=tuple((k, v) for k, v in data.get("adapter_kwargs") or ()),
            strategy=data.get("strategy", FineTuneStrategy.ADAPTER_HEAD),
            seed=data.get("seed", 0),
            simulate_adapter_as=data.get("simulate_adapter_as"),
        )

    @staticmethod
    def grid(*args, **kwargs) -> tuple["JobSpec", ...]:
        """Alias for :func:`repro.exec.grid`."""
        return grid(*args, **kwargs)


def _as_adapter_entry(entry: Any) -> tuple[str, dict, str | None]:
    """Normalise a grid adapter entry: name | (name, kwargs[, sim_as])."""
    if isinstance(entry, str):
        return entry, {}, None
    entry = tuple(entry)
    if len(entry) == 2:
        name, kwargs = entry
        return name, dict(kwargs or {}), None
    name, kwargs, sim_as = entry
    return name, dict(kwargs or {}), sim_as


def grid(
    datasets: Sequence[str] | str,
    models: Sequence[str] | str,
    adapters: Sequence[Any] | str = ("none",),
    strategies: Sequence[FineTuneStrategy | str] | FineTuneStrategy | str = (
        FineTuneStrategy.ADAPTER_HEAD,
    ),
    seeds: Iterable[int] | int = (0,),
) -> tuple[JobSpec, ...]:
    """Expand coordinate axes into a deterministic tuple of specs.

    Axes may be given as a single value or a sequence.  ``adapters``
    entries are either a registry name or a ``(name, kwargs)`` /
    ``(name, kwargs, simulate_adapter_as)`` tuple.  The expansion order
    is dataset-major (dataset, model, adapter, strategy, seed) and
    duplicates (e.g. from short/full dataset aliases) are dropped while
    preserving first appearance.
    """
    if isinstance(datasets, str):
        datasets = (datasets,)
    if isinstance(models, str):
        models = (models,)
    if isinstance(adapters, str):
        adapters = (adapters,)
    if isinstance(strategies, (FineTuneStrategy, str)):
        strategies = (strategies,)
    if isinstance(seeds, int):
        seeds = (seeds,)
    seeds = tuple(seeds)

    specs: dict[JobSpec, None] = {}
    for dataset in datasets:
        for model in models:
            for entry in adapters:
                adapter, kwargs, sim_as = _as_adapter_entry(entry)
                for strategy in strategies:
                    for seed in seeds:
                        spec = JobSpec(
                            dataset=dataset,
                            model=model,
                            adapter=adapter,
                            adapter_kwargs=kwargs,
                            strategy=strategy,
                            seed=seed,
                            simulate_adapter_as=sim_as,
                        )
                        specs.setdefault(spec, None)
    return tuple(specs)


# ----------------------------------------------------------------------
# ExperimentConfig transport (used to initialise worker processes)
# ----------------------------------------------------------------------
def config_to_meta(config: Any) -> dict:
    """JSON-able snapshot of a (frozen, flat) config dataclass."""
    meta = {}
    for f in dataclasses.fields(config):
        value = getattr(config, f.name)
        meta[f.name] = list(value) if isinstance(value, tuple) else value
    return meta


def config_from_meta(meta: Mapping[str, Any]) -> Any:
    """Rebuild an ``ExperimentConfig`` from :func:`config_to_meta` output."""
    from ..experiments.config import ExperimentConfig

    known = {f.name for f in dataclasses.fields(ExperimentConfig)}
    fields = {
        k: tuple(v) if isinstance(v, list) else v for k, v in meta.items() if k in known
    }
    return ExperimentConfig(**fields)
