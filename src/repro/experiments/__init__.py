"""Experiment harness: per-table and per-figure regeneration."""

from .config import FAST, PAPER_MODELS, STANDARD, ExperimentConfig, get_preset
from .figures import (
    FigureResult,
    figure1,
    figure2,
    figure3,
    figure4,
    figure5,
    figure6,
    headline_claims,
)
from .report import build_report
from .runner import ExperimentResult, ExperimentRunner
from .sweeps import SweepJob, SweepPoint, run_sweep, sweep_adapters, sweep_reduced_channels
from .tables import TableResult, table1, table2, table3, table4, table5

__all__ = [
    "ExperimentConfig",
    "PAPER_MODELS",
    "FAST",
    "STANDARD",
    "get_preset",
    "ExperimentRunner",
    "ExperimentResult",
    "build_report",
    "SweepPoint",
    "SweepJob",
    "run_sweep",
    "sweep_reduced_channels",
    "sweep_adapters",
    "TableResult",
    "table1",
    "table2",
    "table3",
    "table4",
    "table5",
    "FigureResult",
    "figure1",
    "figure2",
    "figure3",
    "figure4",
    "figure5",
    "figure6",
    "headline_claims",
]
