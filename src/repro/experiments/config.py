"""Experiment configuration and presets.

Every experiment pairs a **paper-scale** model config (consumed by the
resource simulator, which decides OK/TO/COM and simulated seconds)
with a **runnable** tiny config (actually trained on CPU to produce
accuracy numbers on the surrogate datasets).  ``ExperimentConfig``
holds the shared knobs; presets trade fidelity for wall-clock time.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..data.metadata import dataset_names

__all__ = ["ExperimentConfig", "PAPER_MODELS", "FAST", "STANDARD", "get_preset"]

#: Paper model label -> (paper-scale config, runnable config).
PAPER_MODELS: dict[str, tuple[str, str]] = {
    "MOMENT": ("moment-large", "moment-tiny"),
    "ViT": ("vit-base-ts", "vit-tiny"),
}


@dataclass(frozen=True)
class ExperimentConfig:
    """Knobs shared by every table/figure regeneration.

    Attributes
    ----------
    datasets:
        Dataset names to sweep (default: all 12 of Table 3).
    seeds:
        Random seeds; the paper averages over 3.
    reduced_channels:
        D' for all adapters (paper: 5).
    data_scale / max_length:
        CPU-budget knobs for the surrogate datasets; the resource
        simulator always uses paper-scale geometry regardless.
    pretrain_steps:
        Synthetic-corpus pretraining steps for the runnable models.
    head_epochs / joint_epochs / full_epochs:
        Experiment-scale epochs for cached-head training, trainable-
        adapter training and full fine-tuning respectively.
    batch_size / learning_rate:
        Optimisation knobs for all loops.
    """

    datasets: tuple[str, ...] = field(default_factory=lambda: tuple(dataset_names()))
    models: tuple[str, ...] = ("MOMENT", "ViT")
    seeds: tuple[int, ...] = (0, 1, 2)
    reduced_channels: int = 5
    data_scale: float = 0.05
    max_length: int | None = 96
    pretrain_steps: int = 20
    head_epochs: int = 60
    joint_epochs: int = 12
    full_epochs: int = 12
    batch_size: int = 32
    learning_rate: float = 3e-3
    lcomb_learning_rate: float = 5e-3
    lcomb_top_k: int = 7

    def with_(self, **overrides) -> "ExperimentConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **overrides)


#: Fast preset: small surrogates, short training — minutes, not hours.
FAST = ExperimentConfig(
    seeds=(0, 1, 2),
    data_scale=0.04,
    max_length=64,
    pretrain_steps=15,
    head_epochs=40,
    joint_epochs=12,
    full_epochs=10,
)

#: Standard preset: larger surrogates and longer training.
STANDARD = ExperimentConfig(
    data_scale=0.1,
    max_length=128,
    pretrain_steps=40,
    head_epochs=80,
    joint_epochs=20,
    full_epochs=20,
)

_PRESETS = {"fast": FAST, "standard": STANDARD}


def get_preset(name: str) -> ExperimentConfig:
    """Look up a preset by name (``fast`` or ``standard``)."""
    try:
        return _PRESETS[name]
    except KeyError:
        raise KeyError(f"unknown preset {name!r}; known: {sorted(_PRESETS)}") from None
