"""Regeneration of the paper's figures (1–6) and headline claims.

Figures are emitted as labelled numeric series plus ASCII bar charts;
the quantities match what the paper plots:

* Figure 1 — mean fine-tuning time per adapter (simulated V100 seconds
  at paper scale, plus the actually measured tiny-scale seconds).
* Figure 2 — PCA vs Patch-PCA accuracy per dataset.
* Figure 3 — lcomb vs lcomb_top_k accuracy per dataset.
* Figure 4 — average adapter ranks across datasets.
* Figure 5 — pairwise Welch p-value heatmaps.
* Figure 6 — lcomb: full fine-tuning vs adapter+head.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..evaluation import (
    average_ranks,
    mean_pairwise_pvalues,
    render_bar_chart,
    render_table,
)
from ..exec.spec import JobSpec
from ..resources import RunStatus
from ..training import FineTuneStrategy
from .runner import ExperimentRunner

__all__ = [
    "FigureResult",
    "figure1",
    "figure2",
    "figure3",
    "figure4",
    "figure5",
    "figure6",
    "headline_claims",
]

#: Methods compared by Figures 1, 4 and 5 (paper order).
FIGURE_METHODS = ("no_adapter", "pca", "svd", "rand_proj", "var", "lcomb")


@dataclass
class FigureResult:
    """One regenerated figure: named series plus a text rendering."""

    figure_id: str
    series: dict[str, dict[str, float]] = field(default_factory=dict)
    text: str = ""

    def render(self) -> str:
        """Markdown rendering: heading plus the figure's text body."""
        return f"# {self.figure_id}\n{self.text}"


def _method_job(method: str) -> tuple[str, FineTuneStrategy]:
    """Map a figure method label to (adapter, strategy)."""
    if method == "no_adapter":
        return "none", FineTuneStrategy.HEAD
    return method, FineTuneStrategy.ADAPTER_HEAD


# ----------------------------------------------------------------------
def figure1(runner: ExperimentRunner) -> FigureResult:
    """Figure 1: mean running time per adapter, MOMENT and ViT."""
    config = runner.config
    result = FigureResult("Figure 1: mean fine-tuning time per adapter")
    sections = []
    def method_spec(model: str, method: str, dataset: str, seed: int) -> JobSpec:
        adapter, strategy = _method_job(method)
        return JobSpec(dataset=dataset, model=model, adapter=adapter,
                       strategy=strategy, seed=seed)

    # One batch through the executor; the loops below read the cache.
    runner.run_specs(
        [
            method_spec(model, method, dataset, seed)
            for model in config.models
            for method in FIGURE_METHODS
            for dataset in config.datasets
            for seed in config.seeds
        ]
    )
    for model in config.models:
        simulated: dict[str, float] = {}
        measured: dict[str, float] = {}
        for method in FIGURE_METHODS:
            sim_times, wall_times = [], []
            for dataset in config.datasets:
                for seed in config.seeds:
                    run = runner.run_spec(method_spec(model, method, dataset, seed))
                    # Budget-violating runs contribute the full budget,
                    # as they did on the paper's cluster.
                    sim_times.append(min(run.simulated.seconds, 7200.0))
                    if run.status is RunStatus.OK:
                        wall_times.append(run.measured_seconds)
            simulated[method] = float(np.mean(sim_times))
            measured[method] = float(np.mean(wall_times)) if wall_times else float("nan")
        result.series[f"{model}/simulated_s"] = simulated
        result.series[f"{model}/measured_s"] = measured
        chart = render_bar_chart(list(simulated), list(simulated.values()), unit="s")
        sections.append(f"## {model} (simulated V100 seconds)\n{chart}")
    result.text = "\n\n".join(sections)
    return result


def figure2(runner: ExperimentRunner) -> FigureResult:
    """Figure 2: PCA vs Patch-PCA (pws = 1, 8, 16)."""
    config = runner.config
    variants = [("pws=1 (PCA)", "pca", {}), ("pws=8", "patch_pca", {"patch_window_size": 8}),
                ("pws=16", "patch_pca", {"patch_window_size": 16})]
    result = FigureResult("Figure 2: PCA vs Patch-PCA")
    rows = []

    def variant_spec(model: str, dataset: str, adapter: str, kwargs: dict, seed: int) -> JobSpec:
        return JobSpec(dataset=dataset, model=model, adapter=adapter,
                       adapter_kwargs=kwargs, strategy=FineTuneStrategy.ADAPTER_HEAD,
                       seed=seed, simulate_adapter_as="pca")

    runner.run_specs(
        [
            variant_spec(model, dataset, adapter, kwargs, seed)
            for model in config.models
            for dataset in config.datasets
            for _, adapter, kwargs in variants
            for seed in config.seeds
        ]
    )
    for model in config.models:
        for dataset in config.datasets:
            row = [model, dataset]
            for label, adapter, kwargs in variants:
                accs = [
                    runner.run_spec(variant_spec(model, dataset, adapter, kwargs, seed))
                    for seed in config.seeds
                ]
                vals = [r.accuracy for r in accs if r.accuracy is not None]
                mean = float(np.mean(vals)) if vals else float("nan")
                result.series.setdefault(f"{model}/{label}", {})[dataset] = mean
                row.append(f"{mean:.3f}" if vals else "n/a")
            rows.append(row)
    result.text = render_table(["Model", "Dataset"] + [v[0] for v in variants], rows)
    return result


def figure3(runner: ExperimentRunner) -> FigureResult:
    """Figure 3: lcomb vs lcomb_top_k (k=7)."""
    config = runner.config
    result = FigureResult("Figure 3: lcomb vs lcomb_top_k")
    rows = []
    for model in config.models:
        for dataset in config.datasets:
            row = [model, dataset]
            for adapter in ("lcomb", "lcomb_top_k"):
                runs = runner.run_seeds(
                    dataset, model, adapter=adapter, strategy=FineTuneStrategy.ADAPTER_HEAD
                )
                vals = [r.accuracy for r in runs if r.accuracy is not None]
                mean = float(np.mean(vals)) if vals else float("nan")
                result.series.setdefault(f"{model}/{adapter}", {})[dataset] = mean
                row.append(f"{mean:.3f}" if vals else str(runs[0].status))
            rows.append(row)
    result.text = render_table(["Model", "Dataset", "lcomb", "lcomb_top_k"], rows)
    return result


#: Figure 4 ranks the adapters only (the paper's bars exclude the
#: no-adapter baseline).
RANKED_ADAPTERS = ("pca", "svd", "rand_proj", "var", "lcomb")


def figure4(runner: ExperimentRunner) -> FigureResult:
    """Figure 4: average adapter ranks across datasets (lower = better)."""
    config = runner.config
    result = FigureResult("Figure 4: average adapter rank")
    sections = []
    for model in config.models:
        table = np.full((len(config.datasets), len(RANKED_ADAPTERS)), np.nan)
        for row, dataset in enumerate(config.datasets):
            for col, method in enumerate(RANKED_ADAPTERS):
                adapter, strategy = _method_job(method)
                runs = runner.run_seeds(dataset, model, adapter=adapter, strategy=strategy)
                vals = [r.accuracy for r in runs if r.accuracy is not None]
                if vals:
                    table[row, col] = float(np.mean(vals))
        ranks = average_ranks(table, list(RANKED_ADAPTERS))
        result.series[model] = ranks
        chart = render_bar_chart(list(ranks), list(ranks.values()))
        sections.append(f"## {model} (mean rank, lower is better)\n{chart}")
    result.text = "\n\n".join(sections)
    return result


def figure5(runner: ExperimentRunner) -> FigureResult:
    """Figure 5: pairwise Welch p-values between fine-tuning methods.

    Follows the paper's procedure exactly: for each dataset, a
    two-sample Welch t-test compares two methods' per-seed accuracies;
    the heatmap cell averages the per-dataset p-values over all
    datasets where both methods completed ("averaged across all
    datasets and three different seeds").
    """
    config = runner.config
    result = FigureResult("Figure 5: pairwise Welch p-values (per-dataset, averaged)")
    sections = []
    names = list(FIGURE_METHODS)
    for model in config.models:
        per_dataset: list[dict[str, np.ndarray]] = []
        for dataset in config.datasets:
            samples: dict[str, np.ndarray] = {}
            for method in names:
                adapter, strategy = _method_job(method)
                runs = runner.run_seeds(dataset, model, adapter=adapter, strategy=strategy)
                values = [r.accuracy for r in runs if r.accuracy is not None]
                if len(values) >= 2:
                    samples[method] = np.asarray(values)
            per_dataset.append(samples)
        matrix = mean_pairwise_pvalues(per_dataset, names)
        off_diagonal = matrix[~np.eye(len(names), dtype=bool)]
        result.series[f"{model}/min_p"] = {"min_p": float(off_diagonal.min())}
        for i, name in enumerate(names):
            result.series.setdefault(f"{model}/{name}", {}).update(
                {other: float(matrix[i, j]) for j, other in enumerate(names)}
            )
        rows = [[name] + [f"{matrix[i, j]:.2f}" for j in range(len(names))] for i, name in enumerate(names)]
        sections.append(f"## {model}\n" + render_table(["method"] + list(names), rows))
    result.text = "\n\n".join(sections)
    return result


def figure6(runner: ExperimentRunner) -> FigureResult:
    """Figure 6: lcomb full fine-tuning vs adapter+head."""
    config = runner.config
    result = FigureResult("Figure 6: lcomb full FT vs adapter+head")
    rows = []
    for model in config.models:
        for dataset in config.datasets:
            row = [model, dataset]
            for strategy, label in (
                (FineTuneStrategy.ADAPTER_HEAD, "adapter+head"),
                (FineTuneStrategy.FULL, "full"),
            ):
                runs = runner.run_seeds(dataset, model, adapter="lcomb", strategy=strategy)
                vals = [r.accuracy for r in runs if r.accuracy is not None]
                mean = float(np.mean(vals)) if vals else float("nan")
                result.series.setdefault(f"{model}/{label}", {})[dataset] = mean
                row.append(f"{mean:.3f}" if vals else str(runs[0].status))
            rows.append(row)
    result.text = render_table(["Model", "Dataset", "adapter+head", "full FT"], rows)
    return result


def headline_claims(runner: ExperimentRunner) -> FigureResult:
    """The paper's §4/§5 headline numbers: speedups and datasets-that-fit.

    * speedup = mean no-adapter time / mean fit-once-adapter time
      (paper: >10x for MOMENT, ~2x for ViT);
    * datasets fitting the budget under lcomb full fine-tuning vs
      no-adapter full fine-tuning (paper: 12 vs 5 for ViT = 2.4x,
      9 vs 2 for MOMENT = 4.5x).
    """
    config = runner.config
    result = FigureResult("Headline claims: speedup and GPU fit ratio")
    rows = []
    fig1 = figure1(runner)
    for model in config.models:
        sim = fig1.series[f"{model}/simulated_s"]
        fit_once = np.mean([sim[m] for m in ("pca", "svd", "rand_proj", "var")])
        speedup = sim["no_adapter"] / fit_once

        full_specs = [
            JobSpec(dataset=d, model=model, adapter="none", strategy=FineTuneStrategy.FULL)
            for d in config.datasets
        ]
        lcomb_specs = [
            JobSpec(dataset=d, model=model, adapter="lcomb", strategy=FineTuneStrategy.FULL)
            for d in config.datasets
        ]
        full_ok = sum(
            r.status is RunStatus.OK for r in runner.run_specs(full_specs)
        )
        lcomb_ok = sum(
            r.status is RunStatus.OK for r in runner.run_specs(lcomb_specs)
        )
        fit_ratio = lcomb_ok / full_ok if full_ok else float("inf")
        result.series[model] = {
            "speedup": float(speedup),
            "full_ft_ok": float(full_ok),
            "lcomb_full_ft_ok": float(lcomb_ok),
            "fit_ratio": float(fit_ratio),
        }
        rows.append(
            [model, f"{speedup:.1f}x", str(full_ok), str(lcomb_ok), f"{fit_ratio:.1f}x"]
        )
    result.text = render_table(
        ["Model", "adapter speedup", "full-FT datasets OK", "lcomb full-FT OK", "fit ratio"],
        rows,
    )
    return result
