"""Machine-readable reference values from the paper.

Everything legible in the paper's tables and figures, transcribed so
the report generator (and tests) can put *paper vs measured* side by
side.  Cells the PDF renders illegibly are omitted rather than
guessed.

Sources: Tables 1–5, Figures 1/4/5, and the §4/§5 prose claims of
Feofanov, Ilbert, et al., ICDE 2025.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "PaperCell",
    "TABLE1_STATUS",
    "TABLE2_CELLS",
    "TABLE4_MOMENT",
    "TABLE5_VIT",
    "FIGURE5_MIN_P",
    "HEADLINE_CLAIMS",
]


@dataclass(frozen=True)
class PaperCell:
    """One accuracy cell: mean ± std over the paper's 3 seeds."""

    mean: float
    std: float

    def __str__(self) -> str:
        return f"{self.mean:.3f}±{self.std:.3f}"


#: Table 1 — outcome of full fine-tuning without adapter, (ViT, MOMENT).
TABLE1_STATUS: dict[str, tuple[str, str]] = {
    "DuckDuckGeese": ("COM", "COM"),
    "FaceDetection": ("COM", "COM"),
    "FingerMovements": ("COM", "COM"),
    "HandMovementDirection": ("OK", "OK"),
    "Heartbeat": ("COM", "COM"),
    "InsectWingbeat": ("COM", "COM"),
    "JapaneseVowels": ("OK", "OK"),
    "MotorImagery": ("COM", "COM"),
    "NATOPS": ("OK", "TO"),
    "PEMS-SF": ("COM", "COM"),
    "PhonemeSpectra": ("OK", "TO"),
    "SpokenArabicDigits": ("OK", "TO"),
}

#: Table 1 — accuracies of the jobs that completed, (model -> dataset -> cell).
TABLE1_ACCURACY: dict[str, dict[str, PaperCell]] = {
    "ViT": {
        "HandMovementDirection": PaperCell(0.401, 0.021),
        "JapaneseVowels": PaperCell(0.981, 0.005),
        "NATOPS": PaperCell(0.937, 0.012),
        "PhonemeSpectra": PaperCell(0.342, 0.002),
        "SpokenArabicDigits": PaperCell(0.987, 0.001),
    },
    "MOMENT": {
        "HandMovementDirection": PaperCell(0.356, 0.016),
        "JapaneseVowels": PaperCell(0.925, 0.002),
    },
}

#: Table 2 — the columns legible in the source: head (no adapter), PCA,
#: and lcomb_top_k, per (dataset, model).  "TO" marks paper timeouts.
TABLE2_CELLS: dict[tuple[str, str, str], PaperCell | str] = {
    ("DuckDuckGeese", "MOMENT", "head"): PaperCell(0.460, 0.016),
    ("DuckDuckGeese", "ViT", "head"): PaperCell(0.420, 0.020),
    ("DuckDuckGeese", "MOMENT", "pca"): PaperCell(0.627, 0.023),
    ("DuckDuckGeese", "ViT", "pca"): PaperCell(0.558, 0.023),
    ("DuckDuckGeese", "MOMENT", "lcomb_top_k"): PaperCell(0.393, 0.114),
    ("DuckDuckGeese", "ViT", "lcomb_top_k"): PaperCell(0.393, 0.031),
    ("FaceDetection", "MOMENT", "pca"): PaperCell(0.567, 0.002),
    ("FaceDetection", "ViT", "pca"): PaperCell(0.554, 0.001),
    ("FaceDetection", "MOMENT", "lcomb"): "TO",
    ("FaceDetection", "ViT", "lcomb"): PaperCell(0.548, 0.008),
    ("FaceDetection", "MOMENT", "lcomb_top_k"): "TO",
    ("FaceDetection", "ViT", "lcomb_top_k"): PaperCell(0.550, 0.008),
    ("FingerMovements", "MOMENT", "pca"): PaperCell(0.593, 0.032),
    ("FingerMovements", "ViT", "pca"): PaperCell(0.593, 0.044),
    ("FingerMovements", "MOMENT", "lcomb_top_k"): PaperCell(0.540, 0.017),
    ("FingerMovements", "ViT", "lcomb_top_k"): PaperCell(0.567, 0.046),
    ("HandMovementDirection", "MOMENT", "head"): PaperCell(0.401, 0.008),
    ("HandMovementDirection", "ViT", "head"): PaperCell(0.342, 0.021),
    ("HandMovementDirection", "MOMENT", "lcomb_top_k"): PaperCell(0.414, 0.008),
    ("HandMovementDirection", "ViT", "lcomb_top_k"): PaperCell(0.320, 0.028),
    ("Heartbeat", "MOMENT", "head"): PaperCell(0.740, 0.003),
    ("Heartbeat", "ViT", "head"): PaperCell(0.811, 0.010),
    ("Heartbeat", "MOMENT", "pca"): PaperCell(0.732, 0.000),
    ("Heartbeat", "ViT", "pca"): PaperCell(0.766, 0.005),
    ("Heartbeat", "MOMENT", "lcomb_top_k"): PaperCell(0.737, 0.013),
    ("Heartbeat", "ViT", "lcomb_top_k"): PaperCell(0.779, 0.014),
    ("InsectWingbeat", "MOMENT", "head"): PaperCell(0.284, 0.003),
    ("InsectWingbeat", "ViT", "head"): PaperCell(0.614, 0.005),
    ("InsectWingbeat", "MOMENT", "pca"): PaperCell(0.239, 0.003),
    ("InsectWingbeat", "ViT", "pca"): PaperCell(0.344, 0.013),
    ("InsectWingbeat", "MOMENT", "lcomb_top_k"): PaperCell(0.213, 0.010),
    ("InsectWingbeat", "ViT", "lcomb_top_k"): PaperCell(0.354, 0.041),
    ("JapaneseVowels", "MOMENT", "head"): PaperCell(0.885, 0.002),
    ("JapaneseVowels", "ViT", "head"): PaperCell(0.979, 0.006),
    ("JapaneseVowels", "MOMENT", "pca"): PaperCell(0.801, 0.009),
    ("JapaneseVowels", "ViT", "pca"): PaperCell(0.922, 0.009),
    ("JapaneseVowels", "MOMENT", "lcomb_top_k"): PaperCell(0.819, 0.027),
    ("JapaneseVowels", "ViT", "lcomb_top_k"): PaperCell(0.816, 0.027),
    ("MotorImagery", "MOMENT", "pca"): PaperCell(0.590, 0.010),
    ("MotorImagery", "ViT", "pca"): PaperCell(0.593, 0.025),
    ("MotorImagery", "MOMENT", "lcomb_top_k"): PaperCell(0.593, 0.025),
    ("MotorImagery", "ViT", "lcomb_top_k"): PaperCell(0.607, 0.055),
    ("NATOPS", "MOMENT", "head"): PaperCell(0.872, 0.011),
    ("NATOPS", "ViT", "head"): PaperCell(0.944, 0.011),
    ("NATOPS", "MOMENT", "lcomb_top_k"): PaperCell(0.769, 0.031),
    ("NATOPS", "ViT", "lcomb_top_k"): PaperCell(0.826, 0.036),
    ("PEMS-SF", "MOMENT", "pca"): PaperCell(0.678, 0.007),
    ("PEMS-SF", "ViT", "pca"): PaperCell(0.674, 0.032),
    ("PEMS-SF", "MOMENT", "lcomb_top_k"): PaperCell(0.697, 0.013),
    ("PEMS-SF", "ViT", "lcomb_top_k"): PaperCell(0.594, 0.065),
    ("PhonemeSpectra", "MOMENT", "head"): PaperCell(0.234, 0.001),
    ("PhonemeSpectra", "ViT", "head"): PaperCell(0.296, 0.003),
    ("PhonemeSpectra", "MOMENT", "pca"): PaperCell(0.234, 0.002),
    ("PhonemeSpectra", "ViT", "pca"): PaperCell(0.270, 0.003),
    ("PhonemeSpectra", "MOMENT", "lcomb_top_k"): "TO",
    ("PhonemeSpectra", "ViT", "lcomb_top_k"): PaperCell(0.286, 0.001),
    ("SpokenArabicDigits", "MOMENT", "head"): PaperCell(0.977, 0.001),
    ("SpokenArabicDigits", "ViT", "head"): PaperCell(0.940, 0.003),
    ("SpokenArabicDigits", "MOMENT", "pca"): PaperCell(0.972, 0.000),
    ("SpokenArabicDigits", "ViT", "pca"): PaperCell(0.962, 0.003),
    ("SpokenArabicDigits", "MOMENT", "lcomb"): "TO",
    ("SpokenArabicDigits", "ViT", "lcomb"): PaperCell(0.834, 0.019),
    ("SpokenArabicDigits", "MOMENT", "lcomb_top_k"): "TO",
    ("SpokenArabicDigits", "ViT", "lcomb_top_k"): PaperCell(0.873, 0.019),
}

#: Table 4 — PCA variants on MOMENT (complete in the source;
#: FaceDetection/Scaled-PCA is a paper-reported COM).
TABLE4_MOMENT: dict[str, dict[str, "PaperCell | str"]] = {
    "DuckDuckGeese": {
        "PCA": PaperCell(0.667, 0.012), "Scaled PCA": PaperCell(0.533, 0.031),
        "Patch_8": PaperCell(0.567, 0.031), "Patch_16": PaperCell(0.573, 0.031),
    },
    "FaceDetection": {
        "PCA": PaperCell(0.566, 0.001), "Scaled PCA": "COM",
        "Patch_8": PaperCell(0.582, 0.003), "Patch_16": PaperCell(0.558, 0.004),
    },
    "FingerMovements": {
        "PCA": PaperCell(0.573, 0.012), "Scaled PCA": PaperCell(0.563, 0.032),
        "Patch_8": PaperCell(0.633, 0.012), "Patch_16": PaperCell(0.563, 0.015),
    },
    "HandMovementDirection": {
        "PCA": PaperCell(0.365, 0.036), "Scaled PCA": PaperCell(0.356, 0.043),
        "Patch_8": PaperCell(0.464, 0.021), "Patch_16": PaperCell(0.383, 0.021),
    },
    "Heartbeat": {
        "PCA": PaperCell(0.732, 0.005), "Scaled PCA": PaperCell(0.728, 0.003),
        "Patch_8": PaperCell(0.738, 0.007), "Patch_16": PaperCell(0.741, 0.013),
    },
    "InsectWingbeat": {
        "PCA": PaperCell(0.224, 0.003), "Scaled PCA": PaperCell(0.239, 0.003),
        "Patch_8": PaperCell(0.458, 0.002), "Patch_16": PaperCell(0.459, 0.004),
    },
    "JapaneseVowels": {
        "PCA": PaperCell(0.803, 0.003), "Scaled PCA": PaperCell(0.723, 0.020),
        "Patch_8": PaperCell(0.967, 0.002), "Patch_16": PaperCell(0.963, 0.002),
    },
    "MotorImagery": {
        "PCA": PaperCell(0.607, 0.012), "Scaled PCA": PaperCell(0.590, 0.020),
        "Patch_8": PaperCell(0.577, 0.006), "Patch_16": PaperCell(0.597, 0.015),
    },
    "NATOPS": {
        "PCA": PaperCell(0.739, 0.017), "Scaled PCA": PaperCell(0.731, 0.012),
        "Patch_8": PaperCell(0.857, 0.003), "Patch_16": PaperCell(0.915, 0.003),
    },
    "PEMS-SF": {
        "PCA": PaperCell(0.511, 0.022), "Scaled PCA": PaperCell(0.678, 0.007),
        "Patch_8": PaperCell(0.719, 0.012), "Patch_16": PaperCell(0.696, 0.018),
    },
    "PhonemeSpectra": {
        "PCA": PaperCell(0.212, 0.002), "Scaled PCA": PaperCell(0.227, 0.008),
        "Patch_8": PaperCell(0.224, 0.001), "Patch_16": PaperCell(0.186, 0.001),
    },
    "SpokenArabicDigits": {
        "PCA": PaperCell(0.978, 0.000), "Scaled PCA": PaperCell(0.963, 0.001),
        "Patch_8": PaperCell(0.967, 0.001), "Patch_16": PaperCell(0.956, 0.001),
    },
}

#: Table 5 — PCA variants on ViT (complete in the source).
TABLE5_VIT: dict[str, dict[str, PaperCell]] = {
    "DuckDuckGeese": {
        "PCA": PaperCell(0.558, 0.023), "Scaled PCA": PaperCell(0.522, 0.023),
        "Patch_8": PaperCell(0.467, 0.031), "Patch_16": PaperCell(0.440, 0.035),
    },
    "FaceDetection": {
        "PCA": PaperCell(0.554, 0.001), "Scaled PCA": PaperCell(0.550, 0.010),
        "Patch_8": PaperCell(0.551, 0.003), "Patch_16": PaperCell(0.547, 0.007),
    },
    "FingerMovements": {
        "PCA": PaperCell(0.593, 0.044), "Scaled PCA": PaperCell(0.583, 0.023),
        "Patch_8": PaperCell(0.530, 0.036), "Patch_16": PaperCell(0.570, 0.053),
    },
    "HandMovementDirection": {
        "PCA": PaperCell(0.367, 0.042), "Scaled PCA": PaperCell(0.327, 0.056),
        "Patch_8": PaperCell(0.396, 0.021), "Patch_16": PaperCell(0.369, 0.021),
    },
    "Heartbeat": {
        "PCA": PaperCell(0.736, 0.010), "Scaled PCA": PaperCell(0.734, 0.014),
        "Patch_8": PaperCell(0.766, 0.005), "Patch_16": PaperCell(0.763, 0.018),
    },
    "InsectWingbeat": {
        "PCA": PaperCell(0.344, 0.013), "Scaled PCA": PaperCell(0.268, 0.005),
        "Patch_8": PaperCell(0.287, 0.011), "Patch_16": PaperCell(0.266, 0.006),
    },
    "JapaneseVowels": {
        "PCA": PaperCell(0.890, 0.008), "Scaled PCA": PaperCell(0.865, 0.016),
        "Patch_8": PaperCell(0.922, 0.009), "Patch_16": PaperCell(0.921, 0.011),
    },
    "MotorImagery": {
        "PCA": PaperCell(0.567, 0.006), "Scaled PCA": PaperCell(0.552, 0.045),
        "Patch_8": PaperCell(0.593, 0.025), "Patch_16": PaperCell(0.573, 0.065),
    },
    "NATOPS": {
        "PCA": PaperCell(0.837, 0.012), "Scaled PCA": PaperCell(0.840, 0.017),
        "Patch_8": PaperCell(0.874, 0.014), "Patch_16": PaperCell(0.870, 0.008),
    },
    "PEMS-SF": {
        "PCA": PaperCell(0.584, 0.010), "Scaled PCA": PaperCell(0.613, 0.025),
        "Patch_8": PaperCell(0.634, 0.013), "Patch_16": PaperCell(0.674, 0.032),
    },
    "PhonemeSpectra": {
        "PCA": PaperCell(0.270, 0.003), "Scaled PCA": PaperCell(0.262, 0.008),
        "Patch_8": PaperCell(0.234, 0.002), "Patch_16": PaperCell(0.205, 0.006),
    },
    "SpokenArabicDigits": {
        "PCA": PaperCell(0.962, 0.003), "Scaled PCA": PaperCell(0.952, 0.003),
        "Patch_8": PaperCell(0.921, 0.006), "Patch_16": PaperCell(0.899, 0.002),
    },
}

#: Figure 5 — minimum pairwise Welch p-value per model.
FIGURE5_MIN_P = {"MOMENT": 0.46, "ViT": 0.25}

#: Abstract / §4 / §5 headline claims.
HEADLINE_CLAIMS = {
    "MOMENT": {
        "speedup": 10.0,          # "over ten times faster"
        "full_ft_ok": 2,
        "lcomb_full_ft_ok": 9,
        "fit_ratio": 4.5,
    },
    "ViT": {
        "speedup": 2.0,           # "two-fold speed increase"
        "full_ft_ok": 5,
        "lcomb_full_ft_ok": 12,
        "fit_ratio": 2.4,
    },
}
