"""Paper-vs-measured report generator.

Builds the EXPERIMENTS.md comparison: for every table and figure of
the paper, what the paper reports next to what this reproduction
measures (resource outcomes at paper scale from the simulator;
accuracies from the surrogate-data runs).  Exposed on the CLI as
``repro report``.
"""

from __future__ import annotations

import numpy as np

from ..evaluation import render_table
from ..exec.spec import JobSpec
from ..training import FineTuneStrategy
from . import paper_reference as paper
from .figures import figure1, figure4, figure5, headline_claims
from .runner import ExperimentRunner
from .tables import table1, table2, table4, table5

__all__ = ["build_report"]


def _measured_cell(values: list[float] | None) -> str:
    if values is None:
        return "n/a"
    return f"{np.mean(values):.3f}±{np.std(values):.3f}"


def _section_table1(runner: ExperimentRunner) -> str:
    result = table1(runner)
    rows = []
    matches = 0
    total = 0
    for dataset in runner.config.datasets:
        paper_vit, paper_moment = paper.TABLE1_STATUS.get(dataset, ("?", "?"))
        got = {}
        for model in runner.config.models:
            runs = runner.run_seeds(dataset, model, adapter="none", strategy=FineTuneStrategy.FULL)
            got[model] = str(runs[0].status)
        for model, expected in (("ViT", paper_vit), ("MOMENT", paper_moment)):
            if model in got:
                total += 1
                matches += got[model] == expected
        rows.append(
            [
                dataset,
                paper_moment,
                got.get("MOMENT", "-"),
                paper_vit,
                got.get("ViT", "-"),
            ]
        )
    table = render_table(
        ["Dataset", "MOMENT paper", "MOMENT ours", "ViT paper", "ViT ours"], rows
    )
    verdict = f"\nStatus agreement: {matches}/{total} cells."
    return "## Table 1 — full fine-tuning without adapter (OK/TO/COM)\n\n" + table + verdict


def _section_table2(runner: ExperimentRunner) -> str:
    result = table2(runner)
    rows = []
    for (dataset, model, column), reference in sorted(paper.TABLE2_CELLS.items()):
        if dataset not in runner.config.datasets or model not in runner.config.models:
            continue
        measured = result.values.get((dataset, model, column))
        measured_text = _measured_cell(measured)
        if measured is None:
            # resource failure: report the simulated status instead
            adapter = "none" if column == "head" else column
            strategy = (
                FineTuneStrategy.HEAD if column == "head" else FineTuneStrategy.ADAPTER_HEAD
            )
            run = runner.run_spec(
                JobSpec(dataset=dataset, model=model, adapter=adapter, strategy=strategy)
            )
            measured_text = str(run.status)
        rows.append([dataset, model, column, str(reference), measured_text])
    table = render_table(["Dataset", "Model", "Column", "Paper", "Ours"], rows)
    note = (
        "\nAbsolute accuracies are *not* comparable (synthetic surrogates vs the "
        "real UEA archive); the comparison shows both produce full accuracy grids "
        "with the same resource failures (TO cells) in the same places."
    )
    return "## Table 2 — adapter comparison at D'=5 (legible paper cells)\n\n" + table + note


def _section_pca_variants(runner: ExperimentRunner) -> str:
    sections = []
    for model, reference, builder, label in (
        ("MOMENT", paper.TABLE4_MOMENT, table4, "Table 4"),
        ("ViT", paper.TABLE5_VIT, table5, "Table 5"),
    ):
        if model not in runner.config.models:
            continue
        result = builder(runner)
        rows = []
        for dataset in runner.config.datasets:
            for variant in ("PCA", "Scaled PCA", "Patch_8", "Patch_16"):
                ref = reference.get(dataset, {}).get(variant, "?")
                measured = result.values.get((dataset, model, variant))
                rows.append([dataset, variant, str(ref), _measured_cell(measured)])
        table = render_table(["Dataset", "Variant", "Paper", "Ours"], rows)
        sections.append(f"## {label} — PCA variants, {model}\n\n" + table)
    return "\n\n".join(sections)


def _section_figure1(runner: ExperimentRunner) -> str:
    result = figure1(runner)
    rows = []
    for model in runner.config.models:
        sims = result.series[f"{model}/simulated_s"]
        fit_once = float(np.mean([sims[a] for a in ("pca", "svd", "rand_proj", "var")]))
        speedup = sims["no_adapter"] / fit_once
        rows.append(
            [
                model,
                f"{paper.HEADLINE_CLAIMS[model]['speedup']:.1f}x",
                f"{speedup:.1f}x",
                f"{sims['no_adapter']:.0f}s",
                f"{fit_once:.0f}s",
                f"{sims['lcomb']:.0f}s",
            ]
        )
    table = render_table(
        ["Model", "Paper speedup", "Ours", "no-adapter mean", "fit-once mean", "lcomb mean"],
        rows,
    )
    return "## Figure 1 — mean fine-tuning time per adapter\n\n" + table


def _section_figure4(runner: ExperimentRunner) -> str:
    result = figure4(runner)
    rows = []
    for model in runner.config.models:
        ranks = result.series[model]
        ordering = " < ".join(sorted(ranks, key=ranks.get))
        rows.append([model, "PCA best; lcomb/Rand_Proj worst", ordering])
    table = render_table(["Model", "Paper ordering", "Our ordering (best -> worst)"], rows)
    return "## Figure 4 — average adapter ranks\n\n" + table


def _section_figure5(runner: ExperimentRunner) -> str:
    result = figure5(runner)
    rows = []
    for model in runner.config.models:
        min_p = result.series[f"{model}/min_p"]["min_p"]
        rows.append(
            [model, f"min p = {paper.FIGURE5_MIN_P[model]:.2f}", f"min p = {min_p:.2f}",
             "not significant" if min_p > 0.05 else "SIGNIFICANT"]
        )
    table = render_table(["Model", "Paper", "Ours", "Conclusion at 5%"], rows)
    return "## Figure 5 — pairwise Welch p-values\n\n" + table


def _section_claims(runner: ExperimentRunner) -> str:
    result = headline_claims(runner)
    rows = []
    for model in runner.config.models:
        ours = result.series[model]
        ref = paper.HEADLINE_CLAIMS[model]
        rows.append(
            [
                model,
                f"{ref['speedup']:.1f}x / {ours['speedup']:.1f}x",
                f"{ref['full_ft_ok']} / {ours['full_ft_ok']:.0f}",
                f"{ref['lcomb_full_ft_ok']} / {ours['lcomb_full_ft_ok']:.0f}",
                f"{ref['fit_ratio']:.1f}x / {ours['fit_ratio']:.1f}x",
            ]
        )
    table = render_table(
        [
            "Model",
            "speedup (paper/ours)",
            "full-FT OK (paper/ours)",
            "lcomb full-FT OK (paper/ours)",
            "fit ratio (paper/ours)",
        ],
        rows,
    )
    return "## Headline claims (abstract / §4 / §5)\n\n" + table


def build_report(runner: ExperimentRunner) -> str:
    """Assemble the full paper-vs-measured report (markdown)."""
    config = runner.config
    header = (
        "# EXPERIMENTS — paper vs measured\n\n"
        "Generated by `repro.experiments.report.build_report`.\n\n"
        f"- datasets: {len(config.datasets)} | seeds: {list(config.seeds)} | "
        f"D' = {config.reduced_channels}\n"
        f"- surrogate scale = {config.data_scale}, max length = {config.max_length}\n"
        "- resource outcomes (OK/TO/COM, simulated seconds) come from the "
        "V100-32GB cost model at paper scale; accuracies come from the tiny "
        "runnable models on the synthetic surrogates (see DESIGN.md §2).\n"
    )
    sections = [
        header,
        _section_claims(runner),
        _section_table1(runner),
        _section_table2(runner),
        _section_pca_variants(runner),
        _section_figure1(runner),
        _section_figure4(runner),
        _section_figure5(runner),
    ]
    return "\n\n".join(sections) + "\n"
