"""Experiment runner: one (dataset, model, adapter, strategy, seed) job.

Each job combines two layers, mirroring DESIGN.md's substitution:

1. the **resource simulator** prices the job at *paper scale*
   (moment-large / vit-base-ts on the real Table-3 geometry, V100,
   2-hour budget) and decides OK / TO / COM plus simulated seconds;
2. if (and only if) the simulated job fits the budget, the runnable
   tiny model is actually fine-tuned on the surrogate dataset to
   produce an accuracy — the paper, likewise, only reports accuracy
   for jobs that completed.

All reuse goes through one content-addressed
:class:`repro.runtime.ArtifactStore`: pretrained weights, generated
datasets, frozen-encoder embeddings (via the pipeline) and finished
:class:`ExperimentResult`\\ s.  With a disk-backed store (``cache_dir``
or ``$REPRO_CACHE_DIR``) that reuse survives process restarts — a
figure regeneration in a fresh process replays the table sweep's jobs
from cache with zero pretraining steps and zero encoder passes.
"""

from __future__ import annotations

import json
import warnings
from dataclasses import dataclass
from typing import Iterable

import numpy as np

from ..adapters import make_adapter
from ..data import load_dataset
from ..data.metadata import dataset_info
from ..data.uea import MultivariateDataset
from ..models import build_model
from ..models.pretraining import pretrain_moment, pretrain_vit, synthetic_pretraining_corpus
from ..resources import RunStatus, SimulatedRun, simulate_finetuning
from ..runtime import (
    ArtifactStore,
    Instrumentation,
    RunSummary,
    dataset_key,
    fingerprint_config_fields,
    pretrain_key,
    resolve_cache_dir,
)
from ..exec.spec import JobSpec
from ..training import AdapterPipeline, FineTuneStrategy, TrainConfig
from .config import PAPER_MODELS, ExperimentConfig

__all__ = ["ExperimentResult", "ExperimentRunner"]


@dataclass(frozen=True)
class ExperimentResult:
    """Outcome of one experiment job."""

    dataset: str
    model: str
    adapter: str
    strategy: FineTuneStrategy
    seed: int
    status: RunStatus
    accuracy: float | None
    simulated: SimulatedRun
    measured_seconds: float
    summary: RunSummary | None = None

    @property
    def cell(self) -> str:
        """Table-cell rendering: accuracy, or the TO/COM label."""
        if self.accuracy is None:
            return str(self.status)
        return f"{self.accuracy:.3f}"

    # ------------------------------------------------------------------
    # Pickle-free (de)serialisation for the artifact store
    # ------------------------------------------------------------------
    def to_meta(self) -> dict:
        """JSON-able snapshot (round-trips exactly via :meth:`from_meta`)."""
        return {
            "dataset": self.dataset,
            "model": self.model,
            "adapter": self.adapter,
            "strategy": self.strategy.value,
            "seed": self.seed,
            "status": self.status.name,
            "accuracy": self.accuracy,
            "simulated": {
                "status": self.simulated.status.name,
                "seconds": self.simulated.seconds,
                "peak_memory_bytes": self.simulated.peak_memory_bytes,
                "flops": self.simulated.flops,
            },
            "measured_seconds": self.measured_seconds,
            "summary": self.summary.to_dict() if self.summary is not None else None,
        }

    @classmethod
    def from_meta(cls, meta: dict) -> "ExperimentResult":
        simulated = meta["simulated"]
        summary = meta.get("summary")
        return cls(
            dataset=meta["dataset"],
            model=meta["model"],
            adapter=meta["adapter"],
            strategy=FineTuneStrategy(meta["strategy"]),
            seed=int(meta["seed"]),
            status=RunStatus[meta["status"]],
            accuracy=None if meta["accuracy"] is None else float(meta["accuracy"]),
            simulated=SimulatedRun(
                status=RunStatus[simulated["status"]],
                seconds=float(simulated["seconds"]),
                peak_memory_bytes=float(simulated["peak_memory_bytes"]),
                flops=float(simulated["flops"]),
            ),
            measured_seconds=float(meta["measured_seconds"]),
            summary=None if summary is None else RunSummary.from_dict(summary),
        )


class ExperimentRunner:
    """Runs jobs through a content-addressed artifact store.

    Caching matters because the figures reuse the tables' runs: e.g.
    Figure 4's ranks and Figure 5's p-values are computed from the
    same accuracy sweep as Table 2.  With a disk-backed store the
    reuse also crosses process boundaries.

    Parameters
    ----------
    config:
        The experiment preset/overrides.
    cache_dir:
        Directory for the persistent store tier.  ``None`` falls back
        to ``$REPRO_CACHE_DIR``; if that is unset too, the store is
        memory-only (per-process caching, the historical behaviour).
    store:
        Inject a ready-made store (shared across runners, or a test
        double).  Overrides ``cache_dir``.
    workers:
        Default worker-process count for :meth:`run_specs` (and hence
        the sweeps and CLI paths built on it).  ``1`` keeps everything
        in-process.
    job_timeout:
        Default per-job wall-clock budget in seconds for
        :meth:`run_specs`; jobs over it surface as ``TO`` cells.
        ``None`` disables enforcement.
    tracker:
        Default :class:`repro.exec.ProgressTracker` used by
        :meth:`run_specs` (e.g. the CLI's stderr live line).
    """

    #: ExperimentConfig fields that change a single job's outcome.  The
    #: sweep-coordinate fields (datasets, models, seeds) are part of
    #: each job key instead, so restricting a sweep never invalidates
    #: previously cached jobs.
    _JOB_CONFIG_FIELDS = (
        "reduced_channels",
        "data_scale",
        "max_length",
        "pretrain_steps",
        "head_epochs",
        "joint_epochs",
        "full_epochs",
        "batch_size",
        "learning_rate",
        "lcomb_learning_rate",
        "lcomb_top_k",
    )

    def __init__(
        self,
        config: ExperimentConfig,
        cache_dir: str | None = None,
        store: ArtifactStore | None = None,
        workers: int = 1,
        job_timeout: float | None = None,
        tracker=None,
    ) -> None:
        self.config = config
        self.store = store if store is not None else ArtifactStore(resolve_cache_dir(cache_dir))
        self.workers = max(1, int(workers))
        self.job_timeout = job_timeout
        self.tracker = tracker
        self.instrumentation = Instrumentation()
        self._config_fingerprint = fingerprint_config_fields(config, self._JOB_CONFIG_FIELDS)
        #: Per-process identity layer over the store, so repeated
        #: ``run`` calls return the *same* ExperimentResult object.
        self._materialized: dict[str, ExperimentResult] = {}

    # ------------------------------------------------------------------
    # Cached artifacts
    # ------------------------------------------------------------------
    def _dataset(self, name: str, seed: int) -> MultivariateDataset:
        info = dataset_info(name)
        key = dataset_key(info.name, seed, self.config.data_scale, self.config.max_length)
        artifact = self.store.get(key)
        if artifact is not None:
            return MultivariateDataset(
                info=info,
                x_train=artifact.arrays["x_train"],
                y_train=artifact.arrays["y_train"],
                x_test=artifact.arrays["x_test"],
                y_test=artifact.arrays["y_test"],
                seed=seed,
                scale=self.config.data_scale,
            )
        with self.instrumentation.span("dataset"):
            dataset = load_dataset(
                name,
                seed=seed,
                scale=self.config.data_scale,
                max_length=self.config.max_length,
            )
        self.store.put(
            key,
            arrays={
                "x_train": dataset.x_train,
                "y_train": dataset.y_train,
                "x_test": dataset.x_test,
                "y_test": dataset.y_test,
            },
            meta={"name": info.name, "seed": seed},
        )
        return dataset

    def _pretrained_model(self, paper_model: str, seed: int):
        """Build the runnable counterpart, pretrained (cached weights)."""
        _, runnable = PAPER_MODELS[paper_model]
        key = pretrain_key(runnable, seed, self.config.pretrain_steps)
        model = build_model(runnable, seed=seed)
        artifact = self.store.get(key)
        if artifact is not None:
            model.load_state_dict(artifact.arrays)
        else:
            if self.config.pretrain_steps > 0:
                with self.instrumentation.span("pretrain"):
                    rng = np.random.default_rng(seed + 1000)
                    corpus = synthetic_pretraining_corpus(96, 96, rng)
                    if model.config.family == "moment":
                        pretrain_moment(model, corpus, steps=self.config.pretrain_steps, seed=seed)
                    else:
                        pretrain_vit(model, corpus, steps=self.config.pretrain_steps, seed=seed)
                self.instrumentation.count("pretrain_runs")
                self.instrumentation.count("pretrain_steps", self.config.pretrain_steps)
            self.store.put(key, arrays=model.state_dict(), meta={"model": runnable})
        model.eval()
        return model

    # ------------------------------------------------------------------
    def _train_config(self, adapter: str, strategy: FineTuneStrategy, seed: int) -> TrainConfig:
        cfg = self.config
        trainable = adapter in ("lcomb", "lcomb_top_k")
        if strategy is FineTuneStrategy.FULL:
            epochs = cfg.full_epochs
        elif trainable:
            epochs = cfg.joint_epochs
        else:
            epochs = cfg.head_epochs
        lr = cfg.lcomb_learning_rate if trainable else cfg.learning_rate
        return TrainConfig(
            epochs=epochs,
            batch_size=cfg.batch_size,
            learning_rate=lr,
            seed=seed,
        )

    # ------------------------------------------------------------------
    # Spec-driven API (canonical)
    # ------------------------------------------------------------------
    @property
    def config_fingerprint(self) -> str:
        """Fingerprint of the job-relevant config fields.

        Part of the runner contract the executor's durability layer
        relies on: result keys and the grid journal's manifest both
        derive from it, so two runners with the same fingerprint share
        results and journals.
        """
        return self._config_fingerprint

    def cached_result(self, spec: JobSpec) -> ExperimentResult | None:
        """The stored result for ``spec``, or ``None`` when absent."""
        key = spec.result_key(self._config_fingerprint)
        if key in self._materialized:
            return self._materialized[key]
        artifact = self.store.get(key)
        if artifact is None:
            return None
        result = ExperimentResult.from_meta(artifact.meta)
        self._materialized[key] = result
        return result

    def adopt_result(self, spec: JobSpec, result: ExperimentResult) -> ExperimentResult:
        """Record a result computed elsewhere (e.g. a worker process).

        With a shared disk store the worker already persisted it and
        this only refreshes the parent's tiers; with a memory-only
        store this is how the result enters the parent's cache at all.
        """
        key = spec.result_key(self._config_fingerprint)
        if self.store.get(key) is None:
            self.store.put(key, meta=json.loads(json.dumps(result.to_meta())))
        self._materialized[key] = result
        return result

    def simulate_spec(self, spec: JobSpec) -> SimulatedRun:
        """Price ``spec`` at paper scale without running anything.

        Needs only the dataset *metadata*, so it is cheap enough for
        the executor to gate every job on it before scheduling.
        """
        paper_config, _ = PAPER_MODELS[spec.model]
        info = dataset_info(spec.dataset)
        sim_adapter = spec.simulate_adapter_as or spec.adapter
        return simulate_finetuning(
            paper_config,
            info,
            adapter=None if sim_adapter == "none" else sim_adapter,
            reduced_channels=self.config.reduced_channels,
            full_finetune=spec.strategy is FineTuneStrategy.FULL,
        )

    def run_spec(self, spec: JobSpec) -> ExperimentResult:
        """Run (or fetch from the store) one experiment job."""
        cached = self.cached_result(spec)
        if cached is not None:
            return cached

        simulated = self.simulate_spec(spec)
        accuracy = None
        measured = 0.0
        summary = None
        if simulated.ok:
            ds = self._dataset(spec.dataset, spec.seed)
            self.instrumentation.count("fit_runs")
            job = Instrumentation()
            with job.span("job"):
                runnable = self._pretrained_model(spec.model, spec.seed)
                if spec.adapter == "none":
                    built_adapter = make_adapter("none")
                else:
                    built_adapter = make_adapter(
                        spec.adapter,
                        self.config.reduced_channels,
                        seed=spec.seed,
                        **spec.adapter_options,
                    )
                pipeline = AdapterPipeline(
                    runnable, built_adapter, ds.num_classes, seed=spec.seed, store=self.store
                )
                fit_report = pipeline.fit(
                    ds.x_train,
                    ds.y_train,
                    strategy=spec.strategy,
                    config=self._train_config(spec.adapter, spec.strategy, spec.seed),
                )
                with job.span("score"):
                    accuracy = pipeline.score(ds.x_test, ds.y_test)
            if fit_report.summary is not None:
                for phase, seconds in fit_report.summary.phase_seconds.items():
                    job.add_seconds(f"fit_{phase}", seconds)
                for counter, value in fit_report.summary.counters.items():
                    job.count(counter, value)
            measured = job.seconds("job")
            summary = job.summary()

        result = ExperimentResult(
            dataset=spec.dataset,
            model=spec.model,
            adapter=spec.adapter,
            strategy=spec.strategy,
            seed=spec.seed,
            status=simulated.status,
            accuracy=accuracy,
            simulated=simulated,
            measured_seconds=measured,
            summary=summary,
        )
        key = spec.result_key(self._config_fingerprint)
        # Guard against unserialisable drift early: the store meta must
        # round-trip through JSON for the disk tier to be trustworthy.
        self.store.put(key, meta=json.loads(json.dumps(result.to_meta())))
        self._materialized[key] = result
        return result

    def run_specs(
        self,
        specs: Iterable[JobSpec],
        *,
        workers: int | None = None,
        job_timeout: float | None = None,
        policy=None,
        tracker=None,
        grid_dir: str | None = None,
        resume: bool = True,
        retry_budget: int = 1,
        stale_after: float | None = None,
        owner: str | None = None,
        wait_for_peers: bool = True,
    ) -> list[ExperimentResult]:
        """Run a grid of specs through the parallel executor.

        ``workers`` / ``job_timeout`` default to the runner's own
        settings; see :class:`repro.exec.ParallelExecutor` for the
        fault semantics.  Results come back in input order.

        ``grid_dir`` turns on the crash-safe journal and shard-lease
        layer (see :func:`repro.exec.run_jobs`): interrupted grids
        resume without recomputation and several processes can share
        one grid directory.
        """
        from ..exec.executor import run_jobs
        from ..exec.lease import DEFAULT_STALE_AFTER

        return run_jobs(
            self, specs, workers=workers, job_timeout=job_timeout,
            policy=policy, tracker=tracker if tracker is not None else self.tracker,
            grid_dir=grid_dir, resume=resume, retry_budget=retry_budget,
            stale_after=DEFAULT_STALE_AFTER if stale_after is None else stale_after,
            owner=owner, wait_for_peers=wait_for_peers,
        )

    # ------------------------------------------------------------------
    # Keyword API (deprecated shim)
    # ------------------------------------------------------------------
    def run(
        self,
        dataset: str | JobSpec,
        model: str | None = None,
        adapter: str = "none",
        strategy: FineTuneStrategy = FineTuneStrategy.ADAPTER_HEAD,
        seed: int = 0,
        adapter_kwargs: dict | None = None,
        simulate_adapter_as: str | None = None,
    ) -> ExperimentResult:
        """Run one experiment job.

        The canonical call passes a single :class:`repro.exec.JobSpec`
        (``runner.run(spec)``); the historical keyword form is kept as
        a shim that builds the spec and emits a DeprecationWarning.
        """
        if isinstance(dataset, JobSpec):
            return self.run_spec(dataset)
        warnings.warn(
            "ExperimentRunner.run(dataset, model, ...) keywords are deprecated; "
            "pass a repro.exec.JobSpec instead",
            DeprecationWarning,
            stacklevel=2,
        )
        spec = JobSpec(
            dataset=dataset,
            model=model,
            adapter=adapter,
            adapter_kwargs=adapter_kwargs,
            strategy=strategy,
            seed=seed,
            simulate_adapter_as=simulate_adapter_as,
        )
        return self.run_spec(spec)

    def run_seeds(self, dataset: str, model: str, **kwargs) -> list[ExperimentResult]:
        """Run one job across all configured seeds (via the executor)."""
        specs = [
            JobSpec(dataset=dataset, model=model, seed=seed, **kwargs)
            for seed in self.config.seeds
        ]
        return self.run_specs(specs)
