"""Experiment runner: one (dataset, model, adapter, strategy, seed) job.

Each job combines two layers, mirroring DESIGN.md's substitution:

1. the **resource simulator** prices the job at *paper scale*
   (moment-large / vit-base-ts on the real Table-3 geometry, V100,
   2-hour budget) and decides OK / TO / COM plus simulated seconds;
2. if (and only if) the simulated job fits the budget, the runnable
   tiny model is actually fine-tuned on the surrogate dataset to
   produce an accuracy — the paper, likewise, only reports accuracy
   for jobs that completed.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..adapters import make_adapter
from ..data import load_dataset
from ..models import build_model
from ..models.config import RUNNABLE_COUNTERPART
from ..models.pretraining import pretrain_moment, pretrain_vit, synthetic_pretraining_corpus
from ..resources import RunStatus, SimulatedRun, simulate_finetuning
from ..training import AdapterPipeline, FineTuneStrategy, TrainConfig
from .config import PAPER_MODELS, ExperimentConfig

__all__ = ["ExperimentResult", "ExperimentRunner"]


@dataclass(frozen=True)
class ExperimentResult:
    """Outcome of one experiment job."""

    dataset: str
    model: str
    adapter: str
    strategy: FineTuneStrategy
    seed: int
    status: RunStatus
    accuracy: float | None
    simulated: SimulatedRun
    measured_seconds: float

    @property
    def cell(self) -> str:
        """Table-cell rendering: accuracy, or the TO/COM label."""
        if self.accuracy is None:
            return str(self.status)
        return f"{self.accuracy:.3f}"


class ExperimentRunner:
    """Runs jobs with process-level caches for pretraining and results.

    Caching matters because the figures reuse the tables' runs: e.g.
    Figure 4's ranks and Figure 5's p-values are computed from the
    same accuracy sweep as Table 2.
    """

    def __init__(self, config: ExperimentConfig) -> None:
        self.config = config
        self._results: dict[tuple, ExperimentResult] = {}
        self._pretrained_states: dict[tuple, dict[str, np.ndarray]] = {}
        self._datasets: dict[tuple, object] = {}

    # ------------------------------------------------------------------
    # Caches
    # ------------------------------------------------------------------
    def _dataset(self, name: str, seed: int):
        key = (name, seed)
        if key not in self._datasets:
            self._datasets[key] = load_dataset(
                name,
                seed=seed,
                scale=self.config.data_scale,
                max_length=self.config.max_length,
            )
        return self._datasets[key]

    def _pretrained_model(self, paper_model: str, seed: int):
        """Build the runnable counterpart, pretrained (cached weights)."""
        _, runnable = PAPER_MODELS[paper_model]
        key = (runnable, seed, self.config.pretrain_steps)
        model = build_model(runnable, seed=seed)
        if key not in self._pretrained_states:
            if self.config.pretrain_steps > 0:
                rng = np.random.default_rng(seed + 1000)
                corpus = synthetic_pretraining_corpus(96, 96, rng)
                if model.config.family == "moment":
                    pretrain_moment(model, corpus, steps=self.config.pretrain_steps, seed=seed)
                else:
                    pretrain_vit(model, corpus, steps=self.config.pretrain_steps, seed=seed)
            self._pretrained_states[key] = model.state_dict()
        else:
            model.load_state_dict(self._pretrained_states[key])
        model.eval()
        return model

    # ------------------------------------------------------------------
    def _train_config(self, adapter: str, strategy: FineTuneStrategy, seed: int) -> TrainConfig:
        cfg = self.config
        trainable = adapter in ("lcomb", "lcomb_top_k")
        if strategy is FineTuneStrategy.FULL:
            epochs = cfg.full_epochs
        elif trainable:
            epochs = cfg.joint_epochs
        else:
            epochs = cfg.head_epochs
        lr = cfg.lcomb_learning_rate if trainable else cfg.learning_rate
        return TrainConfig(
            epochs=epochs,
            batch_size=cfg.batch_size,
            learning_rate=lr,
            seed=seed,
        )

    def run(
        self,
        dataset: str,
        model: str,
        adapter: str = "none",
        strategy: FineTuneStrategy = FineTuneStrategy.ADAPTER_HEAD,
        seed: int = 0,
        adapter_kwargs: dict | None = None,
        simulate_adapter_as: str | None = None,
    ) -> ExperimentResult:
        """Run (or fetch from cache) one experiment job.

        Parameters
        ----------
        dataset, model, adapter, strategy, seed:
            Job coordinates.  ``model`` is a paper label ("MOMENT" or
            "ViT"); ``adapter`` is a registry name or "none".
        adapter_kwargs:
            Extra adapter options (``patch_window_size``, ``top_k``).
        simulate_adapter_as:
            Cost-model adapter kind when the adapter name is a
            variant the simulator does not know (e.g. ``scaled_pca``
            simulates as ``pca``).
        """
        adapter_kwargs = adapter_kwargs or {}
        key = (
            dataset,
            model,
            adapter,
            tuple(sorted(adapter_kwargs.items())),
            strategy,
            seed,
        )
        if key in self._results:
            return self._results[key]

        paper_config, _ = PAPER_MODELS[model]
        ds = self._dataset(dataset, seed)
        sim_adapter = simulate_adapter_as or adapter
        simulated = simulate_finetuning(
            paper_config,
            ds.info,
            adapter=None if sim_adapter == "none" else sim_adapter,
            reduced_channels=self.config.reduced_channels,
            full_finetune=strategy is FineTuneStrategy.FULL,
        )

        accuracy = None
        measured = 0.0
        if simulated.ok:
            start = time.perf_counter()
            runnable = self._pretrained_model(model, seed)
            if adapter == "none":
                built_adapter = make_adapter("none")
                effective_strategy = strategy
            else:
                built_adapter = make_adapter(
                    adapter,
                    self.config.reduced_channels,
                    seed=seed,
                    **adapter_kwargs,
                )
                effective_strategy = strategy
            pipeline = AdapterPipeline(runnable, built_adapter, ds.num_classes, seed=seed)
            pipeline.fit(
                ds.x_train,
                ds.y_train,
                strategy=effective_strategy,
                config=self._train_config(adapter, strategy, seed),
            )
            accuracy = pipeline.score(ds.x_test, ds.y_test)
            measured = time.perf_counter() - start

        result = ExperimentResult(
            dataset=dataset,
            model=model,
            adapter=adapter,
            strategy=strategy,
            seed=seed,
            status=simulated.status,
            accuracy=accuracy,
            simulated=simulated,
            measured_seconds=measured,
        )
        self._results[key] = result
        return result

    def run_seeds(self, dataset: str, model: str, **kwargs) -> list[ExperimentResult]:
        """Run one job across all configured seeds."""
        return [
            self.run(dataset, model, seed=seed, **kwargs) for seed in self.config.seeds
        ]
