"""Reusable hyperparameter sweeps over the adapter pipeline.

Library-level counterparts of the ablation benchmarks: sweep the
reduced channel count D', or compare a set of adapters, on one
dataset — returning structured points (accuracy, wall time, simulated
paper-scale cost) ready for tabulation or plotting.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..adapters import make_adapter
from ..data.uea import MultivariateDataset
from ..models import build_model
from ..resources import SimulatedRun, simulate_finetuning
from ..runtime import Stopwatch
from ..training import AdapterPipeline, FineTuneStrategy, TrainConfig

__all__ = ["SweepPoint", "sweep_reduced_channels", "sweep_adapters"]


@dataclass(frozen=True)
class SweepPoint:
    """One sweep configuration and its measurements."""

    label: str
    accuracy: float
    wall_seconds: float
    simulated: SimulatedRun


def _fit_and_score(
    dataset: MultivariateDataset,
    model_name: str,
    adapter_name: str,
    channels: int,
    config: TrainConfig,
    seed: int,
    adapter_kwargs: dict | None = None,
) -> tuple[float, float]:
    """Train one pipeline; returns (accuracy, wall_seconds)."""
    watch = Stopwatch()
    model = build_model(model_name, seed=seed)
    model.eval()
    adapter = make_adapter(adapter_name, channels, seed=seed, **(adapter_kwargs or {}))
    strategy = (
        FineTuneStrategy.HEAD if adapter_name == "none" else FineTuneStrategy.ADAPTER_HEAD
    )
    pipeline = AdapterPipeline(model, adapter, dataset.num_classes, seed=seed)
    pipeline.fit(dataset.x_train, dataset.y_train, strategy=strategy, config=config)
    accuracy = pipeline.score(dataset.x_test, dataset.y_test)
    return accuracy, watch.elapsed()


def sweep_reduced_channels(
    dataset: MultivariateDataset,
    channel_grid: tuple[int, ...] = (2, 5, 8, 12),
    model_name: str = "moment-tiny",
    paper_model: str = "moment-large",
    adapter_name: str = "pca",
    config: TrainConfig | None = None,
    seed: int = 0,
) -> list[SweepPoint]:
    """Accuracy / cost as a function of the reduced channel count D'.

    The simulated cost uses the trainable-adapter (lcomb) regime at
    paper scale, where D' actually moves the needle — the quantity the
    D'-linearity of the cost model predicts.
    """
    config = config if config is not None else TrainConfig(epochs=40, seed=seed)
    points = []
    for channels in channel_grid:
        if channels > dataset.num_channels:
            raise ValueError(
                f"D'={channels} exceeds the dataset's {dataset.num_channels} channels"
            )
        accuracy, wall = _fit_and_score(
            dataset, model_name, adapter_name, channels, config, seed
        )
        simulated = simulate_finetuning(
            paper_model, dataset.info, adapter="lcomb", reduced_channels=channels
        )
        points.append(SweepPoint(f"D'={channels}", accuracy, wall, simulated))
    return points


def sweep_adapters(
    dataset: MultivariateDataset,
    adapters: tuple[str, ...] = ("none", "pca", "svd", "rand_proj", "var"),
    model_name: str = "moment-tiny",
    paper_model: str = "moment-large",
    channels: int = 5,
    config: TrainConfig | None = None,
    seed: int = 0,
) -> list[SweepPoint]:
    """Compare a set of adapters on one dataset (Table-2 style, one row)."""
    config = config if config is not None else TrainConfig(epochs=40, seed=seed)
    points = []
    for adapter_name in adapters:
        accuracy, wall = _fit_and_score(
            dataset, model_name, adapter_name, channels, config, seed
        )
        simulated = simulate_finetuning(
            paper_model,
            dataset.info,
            adapter=None if adapter_name == "none" else adapter_name,
            reduced_channels=channels,
        )
        points.append(SweepPoint(adapter_name, accuracy, wall, simulated))
    return points
