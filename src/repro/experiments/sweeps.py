"""Grid-driven hyperparameter sweeps over the adapter pipeline.

Library-level counterparts of the ablation benchmarks: describe each
sweep configuration as a :class:`SweepJob` and run the whole grid
through :func:`run_sweep`, which executes points on the
:class:`repro.exec.WorkerPool` (inline when ``workers<=1``) and
returns structured :class:`SweepPoint`\\ s — accuracy, wall time and
the simulated paper-scale cost — ready for tabulation or plotting.

The historical entry points :func:`sweep_reduced_channels` (accuracy
vs the reduced channel count D') and :func:`sweep_adapters` (Table-2
style adapter comparison) remain as thin grid-building wrappers.

Infeasible points — a D' larger than the dataset's channel count —
are *skipped with a logged warning* and marked ``skipped=True`` in the
results instead of aborting the sweep and discarding every completed
point.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Sequence

from ..adapters import make_adapter
from ..data import load_dataset
from ..data.uea import MultivariateDataset
from ..exec.executor import WorkerPool
from ..exec.faults import FaultPolicy, _FailureLog
from ..exec.progress import ProgressTracker
from ..models import build_model
from ..resources import SimulatedRun, simulate_finetuning
from ..runtime import Stopwatch
from ..training import AdapterPipeline, FineTuneStrategy, TrainConfig

__all__ = [
    "SweepPoint",
    "SweepJob",
    "run_sweep",
    "sweep_reduced_channels",
    "sweep_adapters",
]

logger = logging.getLogger(__name__)


@dataclass(frozen=True)
class SweepPoint:
    """One sweep configuration and its measurements.

    ``accuracy`` is ``None`` when the point produced no score: either
    it was infeasible (``skipped=True``) or it exceeded the sweep's
    per-job timeout (``note="TO"``).
    """

    label: str
    accuracy: float | None
    wall_seconds: float
    simulated: SimulatedRun
    skipped: bool = False
    note: str = ""


@dataclass(frozen=True)
class SweepJob:
    """One point of a sweep grid (the unit :func:`run_sweep` runs).

    Attributes
    ----------
    label:
        Human-readable point identity, carried onto the result.
    adapter:
        Adapter registry name, or ``"none"`` (trains head-only).
    channels:
        Reduced channel count D' for the adapter.
    adapter_kwargs:
        Extra adapter options as a sorted tuple of pairs (a plain
        mapping is accepted and normalised).
    simulate_adapter_as:
        Adapter kind used for the paper-scale cost simulation when it
        should differ from ``adapter`` (the D' sweep prices the
        trainable ``lcomb`` regime regardless of the adapter it
        trains).
    """

    label: str
    adapter: str = "pca"
    channels: int = 5
    adapter_kwargs: tuple[tuple[str, Any], ...] = field(default=())
    simulate_adapter_as: str | None = None

    def __post_init__(self) -> None:
        kwargs = self.adapter_kwargs
        if isinstance(kwargs, Mapping):
            kwargs = kwargs.items()
        object.__setattr__(
            self, "adapter_kwargs", tuple(sorted((str(k), v) for k, v in kwargs))
        )
        object.__setattr__(self, "channels", int(self.channels))


def _fit_and_score(
    dataset: MultivariateDataset,
    model_name: str,
    adapter_name: str,
    channels: int,
    config: TrainConfig,
    seed: int,
    adapter_kwargs: dict | None = None,
) -> tuple[float, float]:
    """Train one pipeline; returns (accuracy, wall_seconds)."""
    watch = Stopwatch()
    model = build_model(model_name, seed=seed)
    model.eval()
    adapter = make_adapter(adapter_name, channels, seed=seed, **(adapter_kwargs or {}))
    strategy = (
        FineTuneStrategy.HEAD if adapter_name == "none" else FineTuneStrategy.ADAPTER_HEAD
    )
    pipeline = AdapterPipeline(model, adapter, dataset.num_classes, seed=seed)
    pipeline.fit(dataset.x_train, dataset.y_train, strategy=strategy, config=config)
    accuracy = pipeline.score(dataset.x_test, dataset.y_test)
    return accuracy, watch.elapsed()


def _sweep_task(payload: dict) -> tuple[float, float]:
    """Worker-side execution of one sweep point (spawn-safe)."""
    return _fit_and_score(
        payload["dataset"],
        payload["model_name"],
        payload["adapter"],
        payload["channels"],
        payload["config"],
        payload["seed"],
        payload["adapter_kwargs"],
    )


def run_sweep(
    dataset: MultivariateDataset | str,
    jobs: Sequence[SweepJob],
    *,
    model_name: str = "moment-tiny",
    paper_model: str = "moment-large",
    config: TrainConfig | None = None,
    seed: int = 0,
    workers: int = 1,
    job_timeout: float | None = None,
    policy: FaultPolicy | None = None,
    tracker: ProgressTracker | None = None,
    on_point: Callable[[SweepPoint], None] | None = None,
) -> list[SweepPoint]:
    """Run a sweep grid on one dataset; one :class:`SweepPoint` per job.

    ``dataset`` is a loaded :class:`MultivariateDataset` or a dataset
    name (full or short), loaded with the same compact defaults as
    :func:`repro.api.fit_pipeline`.

    Points whose D' exceeds ``dataset.num_channels`` are skipped with
    a logged warning (``skipped=True``, ``accuracy=None``) instead of
    aborting the sweep.  With ``workers > 1`` feasible points run on a
    :class:`repro.exec.WorkerPool`; a point over ``job_timeout`` comes
    back with ``accuracy=None`` and ``note="TO"``, and permanent
    worker failures raise :class:`repro.exec.JobFailedError` only
    after every other point has finished.

    ``on_point`` is called with every finished :class:`SweepPoint`
    *as it lands* (pool mode streams through the executor's
    ``on_outcome`` hook), in completion order — skipped points
    included, permanently failed points excluded.  Useful for
    incremental plotting or checkpointing partial sweeps.
    """
    if isinstance(dataset, str):
        dataset = load_dataset(dataset, seed=seed, scale=0.1, max_length=96)
    config = config if config is not None else TrainConfig(epochs=40, seed=seed)
    results: dict[int, SweepPoint] = {}
    runnable: list[tuple[int, SweepJob]] = []
    tracker = tracker if tracker is not None else ProgressTracker()
    tracker.begin(len(jobs))

    def settle(index: int, result: SweepPoint) -> None:
        results[index] = result
        if on_point is not None:
            on_point(result)

    def simulated_for(job: SweepJob) -> SimulatedRun:
        sim_adapter = job.simulate_adapter_as or job.adapter
        return simulate_finetuning(
            paper_model,
            dataset.info,
            adapter=None if sim_adapter == "none" else sim_adapter,
            reduced_channels=job.channels,
        )

    for index, job in enumerate(jobs):
        if job.channels > dataset.num_channels:
            logger.warning(
                "skipping sweep point %s: D'=%d exceeds the dataset's %d channels",
                job.label, job.channels, dataset.num_channels,
            )
            settle(index, SweepPoint(
                label=job.label,
                accuracy=None,
                wall_seconds=0.0,
                simulated=simulated_for(job),
                skipped=True,
                note=f"D'={job.channels} > {dataset.num_channels} channels",
            ))
            tracker.job_done(job.label, status="SKIP")
        else:
            runnable.append((index, job))

    def payload_for(job: SweepJob) -> dict:
        return {
            "dataset": dataset,
            "model_name": model_name,
            "adapter": job.adapter,
            "channels": job.channels,
            "config": config,
            "seed": seed,
            "adapter_kwargs": dict(job.adapter_kwargs),
        }

    def point(job: SweepJob, accuracy: float | None, wall: float, note: str = "") -> SweepPoint:
        return SweepPoint(
            label=job.label,
            accuracy=accuracy,
            wall_seconds=wall,
            simulated=simulated_for(job),
            note=note,
        )

    if workers > 1 and runnable:
        pool = WorkerPool(
            _sweep_task,
            workers=min(workers, len(runnable)),
            policy=policy,
            timeout=job_timeout,
            tracker=tracker,
        )
        failures = _FailureLog()

        def stream(outcome) -> None:
            index, job = runnable[outcome.index]
            if outcome.status == "ok":
                accuracy, wall = outcome.value
                settle(index, point(job, accuracy, wall))
                tracker.job_done(job.label)
            elif outcome.status == "timeout":
                settle(index, point(job, None, job_timeout or 0.0, note="TO"))
                tracker.job_done(job.label, status="TO")
            else:  # permanent error
                tracker.job_failed(job.label, outcome.error or "unknown error")
                failures.add(job.label, outcome.error or "unknown error", outcome.attempts)

        outcomes = pool.map(
            [payload_for(job) for _, job in runnable],
            labels=[job.label for _, job in runnable],
            on_outcome=stream,
        )
        for (index, job), outcome in zip(runnable, outcomes):
            if outcome.status != "broken":
                continue  # already streamed
            accuracy, wall = _sweep_task(payload_for(job))
            settle(index, point(job, accuracy, wall))
            tracker.job_done(job.label)
        failures.raise_if_any()
    else:
        for index, job in runnable:
            accuracy, wall = _sweep_task(payload_for(job))
            if job_timeout is not None and wall > job_timeout:
                settle(index, point(job, None, wall, note="TO"))
                tracker.job_done(job.label, status="TO")
            else:
                settle(index, point(job, accuracy, wall))
                tracker.job_done(job.label)
    tracker.close()
    return [results[i] for i in sorted(results)]


def sweep_reduced_channels(
    dataset: MultivariateDataset,
    channel_grid: tuple[int, ...] = (2, 5, 8, 12),
    model_name: str = "moment-tiny",
    paper_model: str = "moment-large",
    adapter_name: str = "pca",
    config: TrainConfig | None = None,
    seed: int = 0,
    workers: int = 1,
    job_timeout: float | None = None,
) -> list[SweepPoint]:
    """Accuracy / cost as a function of the reduced channel count D'.

    Wrapper over :func:`run_sweep` with one :class:`SweepJob` per
    channel count.  The simulated cost uses the trainable-adapter
    (lcomb) regime at paper scale, where D' actually moves the
    needle — the quantity the D'-linearity of the cost model predicts.
    Channel counts beyond the dataset's are skipped (and marked), not
    fatal.
    """
    jobs = [
        SweepJob(
            label=f"D'={channels}",
            adapter=adapter_name,
            channels=channels,
            simulate_adapter_as="lcomb",
        )
        for channels in channel_grid
    ]
    return run_sweep(
        dataset, jobs,
        model_name=model_name, paper_model=paper_model,
        config=config, seed=seed, workers=workers, job_timeout=job_timeout,
    )


def sweep_adapters(
    dataset: MultivariateDataset,
    adapters: tuple[str, ...] = ("none", "pca", "svd", "rand_proj", "var"),
    model_name: str = "moment-tiny",
    paper_model: str = "moment-large",
    channels: int = 5,
    config: TrainConfig | None = None,
    seed: int = 0,
    workers: int = 1,
    job_timeout: float | None = None,
) -> list[SweepPoint]:
    """Compare a set of adapters on one dataset (Table-2 style, one row).

    Wrapper over :func:`run_sweep` with one :class:`SweepJob` per
    adapter, priced at paper scale as itself.
    """
    jobs = [
        SweepJob(label=adapter_name, adapter=adapter_name, channels=channels)
        for adapter_name in adapters
    ]
    return run_sweep(
        dataset, jobs,
        model_name=model_name, paper_model=paper_model,
        config=config, seed=seed, workers=workers, job_timeout=job_timeout,
    )
