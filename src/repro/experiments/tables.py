"""Regeneration of the paper's tables (1, 2, 3, 4, 5).

Each function drives the :class:`ExperimentRunner` over the relevant
grid and renders the same rows the paper reports: accuracy mean±std
over seeds, or the TO/COM resource labels for jobs that do not fit
the V100/2-hour budget.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..data.metadata import dataset_info
from ..evaluation import aggregate_seeds, render_latex_table, render_table
from ..exec.spec import JobSpec
from ..resources import RunStatus
from ..training import FineTuneStrategy
from .config import ExperimentConfig
from .runner import ExperimentResult, ExperimentRunner

__all__ = ["TableResult", "table1", "table2", "table3", "table4", "table5"]

#: Table-2 adapter columns, in paper order.
TABLE2_ADAPTERS = ("pca", "svd", "rand_proj", "var", "lcomb", "lcomb_top_k")


@dataclass
class TableResult:
    """One regenerated table: structured values plus rendering."""

    table_id: str
    headers: list[str]
    rows: list[list[str]]
    #: Raw per-cell accuracies: (dataset, model, column) -> list over seeds,
    #: or None when the job hit TO/COM.
    values: dict[tuple[str, str, str], list[float] | None] = field(default_factory=dict)

    def render(self) -> str:
        """Markdown rendering: heading plus the aligned table."""
        return f"# {self.table_id}\n" + render_table(self.headers, self.rows)

    def to_latex(self, label: str | None = None) -> str:
        """Booktabs LaTeX rendering of the same rows.

        Markdown emphasis markers (** / *) used for best/second-best
        are translated to ``\\textbf`` / ``\\textit``.
        """
        def delatex(cell: str) -> str:
            if cell.startswith("**") and cell.endswith("**"):
                return f"\\textbf{{{cell[2:-2]}}}"
            if cell.startswith("*") and cell.endswith("*"):
                return f"\\textit{{{cell[1:-1]}}}"
            return cell

        rows = [[delatex(str(cell)) for cell in row] for row in self.rows]
        return render_latex_table(self.headers, rows, caption=self.table_id, label=label)


def _aggregate_cell(results: list[ExperimentResult]) -> tuple[str, list[float] | None]:
    """Render one table cell from the per-seed results."""
    statuses = {r.status for r in results}
    if statuses != {RunStatus.OK}:
        # Resource outcomes are deterministic across seeds.
        failed = next(r.status for r in results if r.status is not RunStatus.OK)
        return str(failed), None
    accuracies = [r.accuracy for r in results]
    return aggregate_seeds(accuracies).paper_format(), accuracies


def _mark_best(cells: list[str], values: list[list[float] | None]) -> list[str]:
    """Bold the best and italicise the second-best accuracy in a row."""
    means = [np.mean(v) if v else -np.inf for v in values]
    order = np.argsort(means)[::-1]
    marked = list(cells)
    if len(order) >= 1 and np.isfinite(means[order[0]]):
        marked[order[0]] = f"**{cells[order[0]]}**"
    if len(order) >= 2 and np.isfinite(means[order[1]]):
        marked[order[1]] = f"*{cells[order[1]]}*"
    return marked


# ----------------------------------------------------------------------
def table1(runner: ExperimentRunner) -> TableResult:
    """Table 1: full fine-tuning without an adapter (accuracy or COM/TO)."""
    config = runner.config
    headers = ["Dataset"] + list(config.models)
    result = TableResult("Table 1: full fine-tuning, no adapter", headers, [])
    specs = [
        JobSpec(dataset=dataset, model=model, adapter="none",
                strategy=FineTuneStrategy.FULL, seed=seed)
        for dataset in config.datasets
        for model in config.models
        for seed in config.seeds
    ]
    by_spec = dict(zip(specs, runner.run_specs(specs)))
    for dataset in config.datasets:
        row = [dataset]
        for model in config.models:
            runs = [
                by_spec[JobSpec(dataset=dataset, model=model, adapter="none",
                                strategy=FineTuneStrategy.FULL, seed=seed)]
                for seed in config.seeds
            ]
            cell, values = _aggregate_cell(runs)
            result.values[(dataset, model, "none")] = values
            row.append(cell)
        result.rows.append(row)
    return result


def table2(runner: ExperimentRunner) -> TableResult:
    """Table 2: head-only vs adapter+head for every adapter, D'=5."""
    config = runner.config
    headers = ["Dataset", "Model", "head (no adapter)"] + [
        adapter for adapter in TABLE2_ADAPTERS
    ]
    result = TableResult("Table 2: adapter comparison (adapter+head, D'=5)", headers, [])

    def cell_specs(dataset: str, model: str, column: str) -> list[JobSpec]:
        adapter = "none" if column == "head" else column
        strategy = (
            FineTuneStrategy.HEAD if column == "head" else FineTuneStrategy.ADAPTER_HEAD
        )
        return [
            JobSpec(dataset=dataset, model=model, adapter=adapter,
                    strategy=strategy, seed=seed)
            for seed in config.seeds
        ]

    columns = ("head",) + TABLE2_ADAPTERS
    specs = [
        spec
        for dataset in config.datasets
        for model in config.models
        for column in columns
        for spec in cell_specs(dataset, model, column)
    ]
    by_spec = dict(zip(specs, runner.run_specs(specs)))
    for dataset in config.datasets:
        for model in config.models:
            cells: list[str] = []
            raw: list[list[float] | None] = []
            for column in columns:
                runs = [by_spec[spec] for spec in cell_specs(dataset, model, column)]
                cell, values = _aggregate_cell(runs)
                result.values[(dataset, model, column)] = values
                cells.append(cell)
                raw.append(values)
            result.rows.append([dataset, model] + _mark_best(cells, raw))
    return result


def table3(config: ExperimentConfig | None = None) -> TableResult:
    """Table 3: dataset characteristics (straight from the registry)."""
    from .config import FAST

    config = config if config is not None else FAST
    headers = ["Dataset", "Train Size", "Test Size", "# of channels", "Sequence Len", "# of classes"]
    result = TableResult("Table 3: dataset characteristics", headers, [])
    for dataset in config.datasets:
        info = dataset_info(dataset)
        result.rows.append(
            [
                f"{info.name} ({info.short_name})",
                str(info.train_size),
                str(info.test_size),
                str(info.num_channels),
                str(info.sequence_length),
                str(info.num_classes),
            ]
        )
    return result


def _pca_variants_table(runner: ExperimentRunner, model: str, table_id: str) -> TableResult:
    """Shared implementation of Tables 4 and 5 (PCA hyperparameters)."""
    config = runner.config
    columns = [
        ("PCA", "pca", {}),
        ("Scaled PCA", "scaled_pca", {}),
        ("Patch_8", "patch_pca", {"patch_window_size": 8}),
        ("Patch_16", "patch_pca", {"patch_window_size": 16}),
    ]
    headers = ["Dataset"] + [label for label, _, _ in columns]
    result = TableResult(table_id, headers, [])

    def cell_specs(dataset: str, adapter: str, kwargs: dict) -> list[JobSpec]:
        return [
            JobSpec(dataset=dataset, model=model, adapter=adapter,
                    adapter_kwargs=kwargs, strategy=FineTuneStrategy.ADAPTER_HEAD,
                    seed=seed, simulate_adapter_as="pca")
            for seed in config.seeds
        ]

    specs = [
        spec
        for dataset in config.datasets
        for _, adapter, kwargs in columns
        for spec in cell_specs(dataset, adapter, kwargs)
    ]
    by_spec = dict(zip(specs, runner.run_specs(specs)))
    for dataset in config.datasets:
        cells: list[str] = []
        raw: list[list[float] | None] = []
        for label, adapter, kwargs in columns:
            runs = [by_spec[spec] for spec in cell_specs(dataset, adapter, kwargs)]
            cell, values = _aggregate_cell(runs)
            result.values[(dataset, model, label)] = values
            cells.append(cell)
            raw.append(values)
        result.rows.append([dataset] + _mark_best(cells, raw))
    return result


def table4(runner: ExperimentRunner) -> TableResult:
    """Table 4: PCA variant comparison for MOMENT."""
    return _pca_variants_table(runner, "MOMENT", "Table 4: PCA variants, MOMENT")


def table5(runner: ExperimentRunner) -> TableResult:
    """Table 5: PCA variant comparison for ViT."""
    return _pca_variants_table(runner, "ViT", "Table 5: PCA variants, ViT")
