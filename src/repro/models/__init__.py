"""Time-series foundation models (MOMENT-style and ViT-style)."""

from .base import FoundationModel
from .config import MODEL_CONFIGS, RUNNABLE_COUNTERPART, ModelConfig, get_config
from .heads import ClassificationHead
from .moment import MomentModel
from .patching import extract_patches, flatten_channels, num_patches, patch_statistics
from .pretraining import (
    augment_series,
    pretrain_moment,
    pretrain_vit,
    synthetic_pretraining_corpus,
)
from .registry import MODEL_FAMILIES, build_model, load_pretrained
from .vit import ViTModel

__all__ = [
    "FoundationModel",
    "ModelConfig",
    "MODEL_CONFIGS",
    "RUNNABLE_COUNTERPART",
    "get_config",
    "ClassificationHead",
    "MomentModel",
    "ViTModel",
    "extract_patches",
    "flatten_channels",
    "num_patches",
    "patch_statistics",
    "augment_series",
    "pretrain_moment",
    "pretrain_vit",
    "synthetic_pretraining_corpus",
    "MODEL_FAMILIES",
    "build_model",
    "load_pretrained",
]
