"""Foundation-model base class: channel-independent encoding."""

from __future__ import annotations

import abc

import numpy as np

from .. import nn
from .config import ModelConfig
from .patching import flatten_channels

__all__ = ["FoundationModel"]


class FoundationModel(nn.Module, abc.ABC):
    """A channel-independent time-series encoder.

    Subclasses implement :meth:`encode_univariate`, which maps a batch
    of univariate series ``(B, T)`` to token embeddings
    ``(B, n_patches, d_model)``.  The shared :meth:`encode` applies it
    to each channel of a multivariate input independently and pools
    tokens and channels into one embedding per sample — the exact
    pipeline the paper describes for MOMENT/ViT on multivariate data.
    """

    def __init__(self, config: ModelConfig) -> None:
        super().__init__()
        self.config = config
        #: Compiled inference graphs for the pooled univariate encode,
        #: keyed per (shape, dtype) bucket of the flattened channel
        #: batch.  Invisible to parameter discovery/state_dict; cleared
        #: by ``load_state_dict`` via ``Module.invalidate_graphs``.
        self._graph_cache = nn.graph.GraphCache()

    # ------------------------------------------------------------------
    @property
    def embed_dim(self) -> int:
        return self.config.d_model

    @abc.abstractmethod
    def encode_univariate(self, x: nn.Tensor) -> nn.Tensor:
        """Encode (B, T) univariate series to (B, n_patches, d_model)."""

    def fingerprint(self) -> str:
        """Content fingerprint of this model (config name + weights).

        Used by :mod:`repro.runtime` to key cached frozen-encoder
        embeddings: any weight update (pretraining, fine-tuning, a
        different init seed) yields a new fingerprint.
        """
        from ..runtime.fingerprint import fingerprint_model

        return fingerprint_model(self)

    # ------------------------------------------------------------------
    def encode(self, x: np.ndarray | nn.Tensor, channel_batch: int = 0) -> nn.Tensor:
        """Encode (N, T, D) multivariate series to (N, d_model).

        Channels are folded into the batch axis (``flatten_channels``:
        ``(N, T, D) -> (N*D, T)``), encoded in one univariate pass,
        mean-pooled over patches, then over channels.
        ``channel_batch`` optionally chunks the flattened (N*D)
        sequence batch to bound peak memory (0 = single pass);
        chunking is only valid outside the autodiff graph (inference),
        so it is rejected when any parameter requires grad and grad
        mode is on.

        Inference passes route through a compiled replay graph per
        (shape, dtype) bucket (see :mod:`repro.nn.graph`), falling back
        to the eager tensor path whenever replay is unavailable; the
        two are validated bit-identical at capture time.

        Accepts a :class:`nn.Tensor` input so trainable adapters
        (lcomb) can backpropagate through the channel mixing.
        """
        if isinstance(x, nn.Tensor):
            return self._encode_tensor(x)
        dtype = self.dtype
        flat, n, d = flatten_channels(np.asarray(x))
        # Cast once at the model boundary: float64 data driving a
        # float32 model would otherwise upcast every activation.
        flat = flat.astype(dtype, copy=False)
        if channel_batch and channel_batch < len(flat):
            if nn.is_grad_enabled() and any(p.requires_grad for p in self.parameters()):
                raise RuntimeError(
                    "channel_batch chunking is inference-only; wrap in nn.no_grad()"
                )
            chunks = [
                self._pooled_univariate(flat[i : i + channel_batch])
                for i in range(0, len(flat), channel_batch)
            ]
            pooled = np.concatenate(chunks, axis=0)
            return nn.Tensor(pooled.reshape(n, d, self.embed_dim).mean(axis=1))
        if self._replay_ready():
            pooled = self._graph_cache.run(self._pooled_eager, flat)
            if pooled is not None:
                return nn.Tensor(pooled.reshape(n, d, self.embed_dim).mean(axis=1))
        tokens = self.encode_univariate(nn.Tensor(flat))  # (N*D, P, E)
        pooled = tokens.mean(axis=1)  # (N*D, E)
        return pooled.reshape(n, d, self.embed_dim).mean(axis=1)

    def _encode_tensor(self, x: nn.Tensor) -> nn.Tensor:
        """Differentiable path for tensor inputs (adapter in the graph)."""
        x = x.astype(self.dtype)
        n, t, d = x.shape
        flat = x.transpose(0, 2, 1).reshape(n * d, t)
        if not flat.requires_grad and self._replay_ready():
            pooled = self._graph_cache.run(self._pooled_eager, flat.data)
            if pooled is not None:
                return nn.Tensor(pooled.reshape(n, d, self.embed_dim).mean(axis=1))
        tokens = self.encode_univariate(flat)
        pooled = tokens.mean(axis=1)
        return pooled.reshape(n, d, self.embed_dim).mean(axis=1)

    # ------------------------------------------------------------------
    def _replay_ready(self) -> bool:
        """Whether a compiled-graph replay may stand in for eager encode.

        Only pure inference qualifies: eval mode, compilation enabled,
        and no gradient can be requested from the encoder (grad mode
        off, or every parameter frozen so the eager result would be
        detached anyway).
        """
        if self.training or not nn.graph.compile_enabled():
            return False
        if not nn.is_grad_enabled():
            return True
        return not any(p.requires_grad for p in self.parameters())

    def _pooled_eager(self, flat: nn.Tensor) -> nn.Tensor:
        """Eager (B, T) -> (B, E): encode one flattened channel batch."""
        return self.encode_univariate(flat).mean(axis=1)

    def _pooled_univariate(self, flat: np.ndarray) -> np.ndarray:
        """(B, T) -> (B, E) pooled embeddings, compiled when possible."""
        if self._replay_ready():
            pooled = self._graph_cache.run(self._pooled_eager, flat)
            if pooled is not None:
                return pooled
        return self._pooled_eager(nn.Tensor(flat)).data

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(config={self.config.name}, "
            f"params={self.num_parameters():,})"
        )
