"""Foundation-model base class: channel-independent encoding."""

from __future__ import annotations

import abc

import numpy as np

from .. import nn
from .config import ModelConfig
from .patching import flatten_channels

__all__ = ["FoundationModel"]


class FoundationModel(nn.Module, abc.ABC):
    """A channel-independent time-series encoder.

    Subclasses implement :meth:`encode_univariate`, which maps a batch
    of univariate series ``(B, T)`` to token embeddings
    ``(B, n_patches, d_model)``.  The shared :meth:`encode` applies it
    to each channel of a multivariate input independently and pools
    tokens and channels into one embedding per sample — the exact
    pipeline the paper describes for MOMENT/ViT on multivariate data.
    """

    def __init__(self, config: ModelConfig) -> None:
        super().__init__()
        self.config = config

    # ------------------------------------------------------------------
    @property
    def embed_dim(self) -> int:
        return self.config.d_model

    @abc.abstractmethod
    def encode_univariate(self, x: nn.Tensor) -> nn.Tensor:
        """Encode (B, T) univariate series to (B, n_patches, d_model)."""

    def fingerprint(self) -> str:
        """Content fingerprint of this model (config name + weights).

        Used by :mod:`repro.runtime` to key cached frozen-encoder
        embeddings: any weight update (pretraining, fine-tuning, a
        different init seed) yields a new fingerprint.
        """
        from ..runtime.fingerprint import fingerprint_model

        return fingerprint_model(self)

    # ------------------------------------------------------------------
    def encode(self, x: np.ndarray | nn.Tensor, channel_batch: int = 0) -> nn.Tensor:
        """Encode (N, T, D) multivariate series to (N, d_model).

        Each channel is encoded independently; token embeddings are
        mean-pooled over patches, then over channels.  ``channel_batch``
        optionally chunks the flattened (N*D) sequence batch to bound
        peak memory (0 = single pass); chunking is only valid outside
        the autodiff graph (inference), so it is rejected when any
        parameter requires grad and grad mode is on.

        Accepts a :class:`nn.Tensor` input so trainable adapters
        (lcomb) can backpropagate through the channel mixing.
        """
        if isinstance(x, nn.Tensor):
            return self._encode_tensor(x)
        dtype = self.dtype
        flat, n, d = flatten_channels(np.asarray(x))
        # Cast once at the model boundary: float64 data driving a
        # float32 model would otherwise upcast every activation.
        flat = flat.astype(dtype, copy=False)
        if channel_batch and channel_batch < len(flat):
            if nn.is_grad_enabled() and any(p.requires_grad for p in self.parameters()):
                raise RuntimeError(
                    "channel_batch chunking is inference-only; wrap in nn.no_grad()"
                )
            chunks = [
                self.encode_univariate(nn.Tensor(flat[i : i + channel_batch]))
                .mean(axis=1)
                .data
                for i in range(0, len(flat), channel_batch)
            ]
            pooled = np.concatenate(chunks, axis=0)
            return nn.Tensor(pooled.reshape(n, d, self.embed_dim).mean(axis=1))
        tokens = self.encode_univariate(nn.Tensor(flat))  # (N*D, P, E)
        pooled = tokens.mean(axis=1)  # (N*D, E)
        return pooled.reshape(n, d, self.embed_dim).mean(axis=1)

    def _encode_tensor(self, x: nn.Tensor) -> nn.Tensor:
        """Differentiable path for tensor inputs (adapter in the graph)."""
        x = x.astype(self.dtype)
        n, t, d = x.shape
        flat = x.transpose(0, 2, 1).reshape(n * d, t)
        tokens = self.encode_univariate(flat)
        pooled = tokens.mean(axis=1)
        return pooled.reshape(n, d, self.embed_dim).mean(axis=1)

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(config={self.config.name}, "
            f"params={self.num_parameters():,})"
        )
