"""Model configurations, including paper-scale geometries.

Two kinds of config live here:

* **paper-scale** configs (``moment-large``, ``vit-base-ts``) that
  match the parameter counts reported in the paper (341M and 8M).
  They are consumed *analytically* by the resource cost model — they
  are far too large to train on CPU, exactly as they were too large
  for the paper's V100 on most datasets.
* **runnable** configs (``moment-tiny``, ``vit-tiny``) with the same
  architecture but small widths, used for the actual CPU training runs
  that produce accuracy numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["ModelConfig", "MODEL_CONFIGS", "get_config"]


@dataclass(frozen=True)
class ModelConfig:
    """Architecture geometry of a channel-independent TSFM."""

    name: str
    family: str  # "moment" | "vit"
    d_model: int
    num_layers: int
    num_heads: int
    d_ff: int
    patch_length: int
    patch_stride: int
    max_sequence_length: int
    dropout: float = 0.1
    #: Compute dtype of the built model: "float32", "float64", or None
    #: to follow the global ``repro.nn`` default (float32).  Weights,
    #: activations and optimizer state all materialise in this dtype.
    dtype: str | None = None

    def __post_init__(self) -> None:
        if self.family not in ("moment", "vit"):
            raise ValueError(f"unknown model family {self.family!r}")
        if self.d_model % self.num_heads != 0:
            raise ValueError(
                f"d_model={self.d_model} not divisible by num_heads={self.num_heads}"
            )
        if self.patch_stride > self.patch_length:
            raise ValueError("patch_stride larger than patch_length leaves gaps")
        if self.dtype not in (None, "float32", "float64"):
            raise ValueError(
                f"dtype must be 'float32', 'float64' or None, got {self.dtype!r}"
            )

    # ------------------------------------------------------------------
    # Analytic geometry (used by the resource cost model)
    # ------------------------------------------------------------------
    def tokens_per_channel(self, sequence_length: int) -> int:
        """Patches per univariate channel for a given input length."""
        length = min(sequence_length, self.max_sequence_length)
        if length < self.patch_length:
            return 1
        return (length - self.patch_length) // self.patch_stride + 1

    def encoder_parameter_count(self) -> int:
        """Analytic transformer-encoder parameter count.

        Per layer: 4 attention projections (with bias), two FF
        matrices (with bias), two LayerNorms; plus patch embedding and
        the final LayerNorm.  Matches the actual built models'
        ``num_parameters()`` for the runnable configs (asserted in
        tests), so the paper-scale counts can be trusted.
        """
        d, ff = self.d_model, self.d_ff
        attention = 4 * (d * d + d)
        feed_forward = d * ff + ff + ff * d + d
        norms = 2 * 2 * d
        per_layer = attention + feed_forward + norms
        input_dim = self.patch_length + (2 if self.family == "vit" else 0)
        patch_embedding = input_dim * d + d
        positional = self.max_positions() * d
        final_norm = 2 * d
        if self.family == "moment":
            # mask token + linear reconstruction head
            extras = d + (d * self.patch_length + self.patch_length)
        else:
            # contrastive projection head
            extras = d * d + d
        return self.num_layers * per_layer + patch_embedding + positional + final_norm + extras

    def max_positions(self) -> int:
        """Size of the learned positional-embedding table."""
        return self.tokens_per_channel(self.max_sequence_length)


def _paper_scale_configs() -> list[ModelConfig]:
    return [
        # MOMENT-large: T5-large-style encoder (24 x 1024/4096) ~= 341M.
        ModelConfig(
            name="moment-large",
            family="moment",
            d_model=1024,
            num_layers=24,
            num_heads=16,
            d_ff=4096,
            patch_length=8,
            patch_stride=8,
            max_sequence_length=512,
        ),
        # ViT-style TSFM ~= 8M parameters (Nu-Time / PatchTST scale).
        ModelConfig(
            name="vit-base-ts",
            family="vit",
            d_model=256,
            num_layers=8,
            num_heads=8,
            d_ff=1024,
            patch_length=16,
            patch_stride=4,
            max_sequence_length=512,
        ),
    ]


def _runnable_configs() -> list[ModelConfig]:
    return [
        ModelConfig(
            name="moment-tiny",
            family="moment",
            d_model=64,
            num_layers=2,
            num_heads=4,
            d_ff=128,
            patch_length=8,
            patch_stride=8,
            max_sequence_length=512,
            dropout=0.0,
        ),
        ModelConfig(
            name="vit-tiny",
            family="vit",
            d_model=48,
            num_layers=2,
            num_heads=4,
            d_ff=96,
            patch_length=16,
            patch_stride=8,
            max_sequence_length=512,
            dropout=0.0,
        ),
    ]


MODEL_CONFIGS: dict[str, ModelConfig] = {
    config.name: config for config in _paper_scale_configs() + _runnable_configs()
}

#: Maps each paper-scale model to the runnable stand-in used for
#: actual CPU training (same family and tokenisation).
RUNNABLE_COUNTERPART = {
    "moment-large": "moment-tiny",
    "vit-base-ts": "vit-tiny",
    "moment-tiny": "moment-tiny",
    "vit-tiny": "vit-tiny",
}


def get_config(name: str, **overrides) -> ModelConfig:
    """Fetch a named config, optionally overriding fields."""
    try:
        config = MODEL_CONFIGS[name]
    except KeyError:
        raise KeyError(f"unknown model config {name!r}; known: {sorted(MODEL_CONFIGS)}") from None
    return replace(config, **overrides) if overrides else config
