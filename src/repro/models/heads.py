"""Classification heads placed on top of the frozen/fine-tuned encoder."""

from __future__ import annotations

import numpy as np

from .. import nn

__all__ = ["ClassificationHead"]


class ClassificationHead(nn.Module):
    """Linear classifier over pooled encoder embeddings.

    This is the "head" of the paper's fine-tuning regimes: a single
    linear layer mapping the encoder embedding to class logits, with
    optional dropout for regularisation.
    """

    def __init__(
        self,
        embed_dim: int,
        num_classes: int,
        dropout: float = 0.0,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        if num_classes < 2:
            raise ValueError(f"need at least 2 classes, got {num_classes}")
        rng = rng if rng is not None else np.random.default_rng()
        self.embed_dim = embed_dim
        self.num_classes = num_classes
        self.dropout = nn.Dropout(dropout, rng=rng)
        self.linear = nn.Linear(embed_dim, num_classes, rng=rng)

    def forward(self, embeddings: nn.Tensor) -> nn.Tensor:
        """Class logits for pooled embeddings (N, E) -> (N, C)."""
        return self.linear(self.dropout(embeddings))
