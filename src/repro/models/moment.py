"""MOMENT-style foundation model (Goswami et al., 2024).

Architecture reproduced at the family level: univariate series are cut
into non-overlapping patches, linearly embedded, combined with learned
positional embeddings, and processed by a pre-norm transformer
encoder.  Pretraining is masked-patch reconstruction: a fraction of
patch tokens is replaced by a learned mask embedding, and a linear
reconstruction head predicts the original patch values; the loss is
MSE on the masked patches only.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from .base import FoundationModel
from .config import ModelConfig, get_config
from .patching import num_patches

__all__ = ["MomentModel"]


class MomentModel(FoundationModel):
    """Masked-reconstruction TSFM with non-overlapping patches."""

    def __init__(self, config: ModelConfig | str = "moment-tiny", seed: int = 0) -> None:
        if isinstance(config, str):
            config = get_config(config)
        if config.family != "moment":
            raise ValueError(f"config {config.name!r} is not a moment-family config")
        super().__init__(config)
        rng = np.random.default_rng(seed)
        with nn.default_dtype(config.dtype):
            self.patch_embed = nn.Linear(config.patch_length, config.d_model, rng=rng)
            self.positional = nn.Parameter(
                nn.init.normal((config.max_positions(), config.d_model), rng)
            )
            self.mask_token = nn.Parameter(nn.init.normal((config.d_model,), rng))
            self.encoder = nn.TransformerEncoder(
                d_model=config.d_model,
                num_heads=config.num_heads,
                d_ff=config.d_ff,
                num_layers=config.num_layers,
                dropout=config.dropout,
                rng=rng,
            )
            self.reconstruction_head = nn.Linear(
                config.d_model, config.patch_length, rng=rng
            )

    # ------------------------------------------------------------------
    def _patch_index(self, length: int) -> np.ndarray:
        """(n_patches, patch_length) gather index for the time axis."""
        cfg = self.config
        length = min(length, cfg.max_sequence_length)
        count = num_patches(length, cfg.patch_length, cfg.patch_stride)
        starts = np.arange(count) * cfg.patch_stride
        return starts[:, None] + np.arange(cfg.patch_length)[None, :]

    def _patchify(self, x: nn.Tensor) -> nn.Tensor:
        """(B, T) -> (B, n_patches, patch_length), differentiable."""
        x = nn.as_tensor(x)
        batch, length = x.shape
        cfg = self.config
        if length > cfg.max_sequence_length:
            x = x[:, : cfg.max_sequence_length]
            length = cfg.max_sequence_length
        if length < cfg.patch_length:
            pad = nn.Tensor(
                np.zeros((batch, cfg.patch_length - length), dtype=x.data.dtype)
            )
            x = nn.concatenate([x, pad], axis=1)
            length = cfg.patch_length
        return x[:, self._patch_index(length)]

    def _embed(self, patches: nn.Tensor, mask: np.ndarray | None = None) -> nn.Tensor:
        """Patch values -> position-aware token embeddings.

        ``mask`` is an optional boolean (B, n_patches) array marking
        tokens to replace by the learned mask embedding (pretraining).
        """
        tokens = self.patch_embed(patches)  # (B, P, E)
        if mask is not None:
            dtype = tokens.data.dtype
            keep = nn.Tensor((~mask).astype(dtype)[..., None])
            masked = nn.Tensor(mask.astype(dtype)[..., None])
            tokens = tokens * keep + self.mask_token.reshape(1, 1, -1) * masked
        count = tokens.shape[1]
        return tokens + self.positional[:count].reshape(1, count, -1)

    # ------------------------------------------------------------------
    def encode_univariate(self, x: nn.Tensor) -> nn.Tensor:
        patches = self._patchify(x)
        return self.encoder(self._embed(patches))

    def reconstruct(self, x: nn.Tensor, mask: np.ndarray) -> tuple[nn.Tensor, nn.Tensor]:
        """Masked forward pass for pretraining.

        Returns ``(reconstruction, target_patches)`` where both are
        (B, n_patches, patch_length); the caller computes MSE on the
        masked positions.
        """
        patches = self._patchify(x)
        if mask.shape != patches.shape[:2]:
            raise ValueError(
                f"mask shape {mask.shape} does not match patch grid {patches.shape[:2]}"
            )
        hidden = self.encoder(self._embed(patches, mask=mask))
        return self.reconstruction_head(hidden), patches
