"""Patch tokenisation utilities for time-series foundation models.

Channel-independent TSFMs treat every channel of a multivariate series
as a separate univariate sequence; each sequence is cut into patches
(possibly overlapping) that become transformer tokens.  These helpers
implement that tokenisation on plain numpy arrays — gradients never
flow through the patch *extraction* itself, only through the
embeddings computed from the patches.
"""

from __future__ import annotations

import numpy as np

from ..nn.dtype import get_default_dtype

__all__ = ["num_patches", "extract_patches", "patch_statistics", "flatten_channels"]


def num_patches(sequence_length: int, patch_length: int, stride: int) -> int:
    """Number of patches a length-``sequence_length`` series yields."""
    if patch_length <= 0 or stride <= 0:
        raise ValueError("patch_length and stride must be positive")
    if sequence_length < patch_length:
        return 1  # series shorter than one patch are zero-padded to a single patch
    return (sequence_length - patch_length) // stride + 1


def extract_patches(x: np.ndarray, patch_length: int, stride: int) -> np.ndarray:
    """Cut (B, T) univariate series into (B, n_patches, patch_length).

    Series shorter than one patch are right-padded with zeros.  A
    ragged tail (final window not filling a full patch) is dropped,
    mirroring the behaviour of standard TSFM tokenisers.  Output is in
    the framework's default dtype (float32 unless opted out).
    """
    x = np.asarray(x, dtype=get_default_dtype())
    if x.ndim != 2:
        raise ValueError(f"expected (B, T) input, got shape {x.shape}")
    batch, length = x.shape
    if length < patch_length:
        padded = np.zeros((batch, patch_length), dtype=x.dtype)
        padded[:, :length] = x
        return padded[:, None, :]
    count = num_patches(length, patch_length, stride)
    starts = np.arange(count) * stride
    index = starts[:, None] + np.arange(patch_length)[None, :]
    return x[:, index]


def patch_statistics(patches: np.ndarray, eps: float = 1e-8) -> np.ndarray:
    """Per-patch statistical features (Nu-Time style numeric embedding).

    Returns (B, n_patches, 2): the mean and standard deviation of each
    patch, which the ViT model concatenates to the (normalised) patch
    values so amplitude information survives patch normalisation.
    """
    mean = patches.mean(axis=-1, keepdims=True)
    std = patches.std(axis=-1, keepdims=True) + eps
    return np.concatenate([mean, std], axis=-1)


def flatten_channels(x: np.ndarray) -> tuple[np.ndarray, int, int]:
    """(N, T, D) -> ((N*D, T), N, D): channel-independent reshaping.

    Each channel becomes an independent univariate series; the model
    treats the N*D sequences as one batch.  This is the exact reason
    TSFM cost scales linearly in D — the property the paper's adapters
    exploit by shrinking D to D'.
    """
    x = np.asarray(x)
    if x.ndim != 3:
        raise ValueError(f"expected (N, T, D) input, got shape {x.shape}")
    n, t, d = x.shape
    return x.transpose(0, 2, 1).reshape(n * d, t), n, d
