"""Pretraining objectives and the synthetic pretraining corpus.

The paper consumes *already pretrained* checkpoints (MOMENT from
HuggingFace; ViT pretrained by the authors).  Offline, we reproduce
the pretraining stage itself on a synthetic corpus of heterogeneous
univariate series:

* MOMENT: masked-patch reconstruction (MSE on masked patches).
* ViT: MoCo-style InfoNCE between two augmented views, with an EMA
  momentum key encoder (He et al., 2020; Oord et al., 2018).
"""

from __future__ import annotations

import copy

import numpy as np

from .. import nn
from ..nn import functional as F
from .moment import MomentModel
from .vit import ViTModel

__all__ = [
    "synthetic_pretraining_corpus",
    "pretrain_moment",
    "pretrain_vit",
    "augment_series",
]


def synthetic_pretraining_corpus(
    num_series: int,
    length: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Sample a heterogeneous univariate corpus of shape (num_series, length).

    Mixtures of the canonical time-series motifs (trend, seasonality,
    AR noise, level shifts), z-normalised per series — a stand-in for
    the large heterogeneous pretraining collections used by TSFMs.
    """
    if num_series <= 0 or length <= 0:
        raise ValueError("num_series and length must be positive")
    t = np.linspace(0.0, 1.0, length)
    series = np.empty((num_series, length))
    for row in range(num_series):
        kind = rng.integers(0, 4)
        signal = np.zeros(length)
        if kind == 0:  # seasonal
            for _ in range(rng.integers(1, 4)):
                freq = rng.uniform(1.0, 12.0)
                signal += rng.uniform(0.5, 2.0) * np.sin(
                    2 * np.pi * freq * t + rng.uniform(0, 2 * np.pi)
                )
        elif kind == 1:  # trend + season
            signal = rng.uniform(-3, 3) * t + np.sin(
                2 * np.pi * rng.uniform(1, 6) * t
            )
        elif kind == 2:  # AR(1)
            white = rng.normal(size=length)
            rho = rng.uniform(0.5, 0.95)
            signal[0] = white[0]
            for step in range(1, length):
                signal[step] = rho * signal[step - 1] + white[step]
        else:  # level shifts
            shifts = np.cumsum(rng.normal(0, 0.2, size=length))
            breaks = rng.integers(0, length, size=rng.integers(1, 4))
            for brk in breaks:
                shifts[brk:] += rng.normal(0, 2.0)
            signal = shifts
        signal += rng.normal(0, 0.2, size=length)
        std = signal.std()
        series[row] = (signal - signal.mean()) / (std if std > 1e-8 else 1.0)
    return series


def augment_series(x: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    """Contrastive-view augmentation: jitter + scaling + random crop-resize."""
    batch, length = x.shape
    scale = rng.uniform(0.7, 1.3, size=(batch, 1))
    jitter = rng.normal(0, 0.1, size=x.shape)
    view = x * scale + jitter
    # Random crop to >= 70% of the series, then resize back (linear).
    crop_len = max(4, int(length * rng.uniform(0.7, 1.0)))
    start = rng.integers(0, length - crop_len + 1)
    cropped = view[:, start : start + crop_len]
    old_grid = np.linspace(0.0, 1.0, crop_len)
    new_grid = np.linspace(0.0, 1.0, length)
    return np.stack([np.interp(new_grid, old_grid, row) for row in cropped])


def pretrain_moment(
    model: MomentModel,
    corpus: np.ndarray,
    steps: int,
    batch_size: int = 32,
    mask_ratio: float = 0.3,
    lr: float = 1e-3,
    seed: int = 0,
) -> list[float]:
    """Masked-patch reconstruction pretraining; returns per-step losses."""
    if not 0.0 < mask_ratio < 1.0:
        raise ValueError(f"mask_ratio must be in (0, 1), got {mask_ratio}")
    rng = np.random.default_rng(seed)
    optimizer = nn.AdamW(model.parameters(), lr=lr)
    schedule = nn.WarmupCosineSchedule(
        optimizer, warmup_steps=max(1, steps // 10), total_steps=max(2, steps)
    )
    model.train()
    losses: list[float] = []
    for _ in range(steps):
        index = rng.choice(len(corpus), size=min(batch_size, len(corpus)), replace=False)
        batch = nn.Tensor(corpus[index], dtype=model.dtype)
        patch_grid = model._patchify(batch).shape[:2]
        mask = rng.random(patch_grid) < mask_ratio
        # Guarantee at least one masked patch per series.
        empty_rows = ~mask.any(axis=1)
        if empty_rows.any():
            mask[empty_rows, rng.integers(0, patch_grid[1], size=empty_rows.sum())] = True
        reconstruction, target = model.reconstruct(batch, mask)
        loss = F.masked_mse_loss(reconstruction, target.data, mask[..., None])
        optimizer.zero_grad()
        loss.backward()
        nn.clip_grad_norm(model.parameters(), max_norm=1.0)
        optimizer.step()
        schedule.step()
        losses.append(float(loss.data))
    model.eval()
    return losses


def pretrain_vit(
    model: ViTModel,
    corpus: np.ndarray,
    steps: int,
    batch_size: int = 32,
    temperature: float = 0.07,
    momentum: float = 0.99,
    lr: float = 1e-3,
    seed: int = 0,
) -> list[float]:
    """MoCo-style InfoNCE pretraining with an EMA key encoder."""
    rng = np.random.default_rng(seed)
    key_encoder = copy.deepcopy(model)
    key_encoder.freeze()
    optimizer = nn.AdamW(model.parameters(), lr=lr)
    schedule = nn.WarmupCosineSchedule(
        optimizer, warmup_steps=max(1, steps // 10), total_steps=max(2, steps)
    )
    model.train()
    losses: list[float] = []
    query_params = dict(model.named_parameters())
    key_params = dict(key_encoder.named_parameters())
    for _ in range(steps):
        index = rng.choice(len(corpus), size=min(batch_size, len(corpus)), replace=False)
        batch = corpus[index]
        queries = model.contrastive_embed(
            nn.Tensor(augment_series(batch, rng), dtype=model.dtype)
        )
        with nn.no_grad():
            keys = key_encoder.contrastive_embed(
                nn.Tensor(augment_series(batch, rng), dtype=model.dtype)
            )
        loss = F.info_nce_loss(queries, keys.detach(), temperature=temperature)
        optimizer.zero_grad()
        loss.backward()
        nn.clip_grad_norm(model.parameters(), max_norm=1.0)
        optimizer.step()
        schedule.step()
        # EMA update of the key encoder.
        for name, param in query_params.items():
            key = key_params[name]
            key.data *= momentum
            key.data += (1.0 - momentum) * param.data
        losses.append(float(loss.data))
    model.eval()
    return losses
