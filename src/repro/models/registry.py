"""Model factory and pretrained-checkpoint cache."""

from __future__ import annotations

from pathlib import Path

import numpy as np

from .. import nn
from .base import FoundationModel
from .config import MODEL_CONFIGS, RUNNABLE_COUNTERPART, get_config
from .moment import MomentModel
from .pretraining import pretrain_moment, pretrain_vit, synthetic_pretraining_corpus
from .vit import ViTModel

__all__ = ["build_model", "load_pretrained", "MODEL_FAMILIES"]

MODEL_FAMILIES = ("moment", "vit")


def build_model(name: str, seed: int = 0) -> FoundationModel:
    """Instantiate a (randomly initialised) foundation model by config name."""
    config = get_config(name)
    if config.family == "moment":
        return MomentModel(config, seed=seed)
    return ViTModel(config, seed=seed)


def load_pretrained(
    name: str,
    seed: int = 0,
    pretrain_steps: int = 40,
    corpus_size: int = 128,
    corpus_length: int = 128,
    cache_dir: str | Path | None = None,
) -> FoundationModel:
    """Build a model and pretrain it on the synthetic corpus.

    Stands in for downloading a published checkpoint: the model is
    pretrained with its family objective (masked reconstruction for
    MOMENT, InfoNCE for ViT) on a synthetic heterogeneous corpus.
    Results are cached on disk keyed by (name, seed, steps) so
    experiment sweeps pay the pretraining cost once.

    Paper-scale configs (``moment-large``, ``vit-base-ts``) cannot be
    trained on CPU; they are transparently substituted by their
    runnable counterparts (``moment-tiny``, ``vit-tiny``) — the
    paper-scale geometry is only ever used analytically by the
    resource simulator.
    """
    runnable = RUNNABLE_COUNTERPART.get(name, name)
    if runnable not in MODEL_CONFIGS:
        raise KeyError(f"unknown model {name!r}")
    model = build_model(runnable, seed=seed)

    cache_path = None
    if cache_dir is not None:
        cache_path = Path(cache_dir) / f"{runnable}-seed{seed}-steps{pretrain_steps}.npz"
        if cache_path.exists():
            nn.load_checkpoint(model, cache_path)
            model.eval()
            return model

    if pretrain_steps > 0:
        rng = np.random.default_rng(seed + 1000)
        corpus = synthetic_pretraining_corpus(corpus_size, corpus_length, rng)
        if model.config.family == "moment":
            pretrain_moment(model, corpus, steps=pretrain_steps, seed=seed)
        else:
            pretrain_vit(model, corpus, steps=pretrain_steps, seed=seed)
    model.eval()

    if cache_path is not None:
        nn.save_checkpoint(model, cache_path, metadata={"name": runnable, "seed": seed})
    return model
