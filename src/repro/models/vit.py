"""ViT-style foundation model (Nu-Time / PatchTST inspired).

Per Appendix B.1 of the paper: overlapping patches are extracted from
the (univariate) series and embedded together with statistical
features (per-patch mean and standard deviation) to form tokens for a
transformer encoder.  Pretraining uses a MoCo-style InfoNCE objective
between two augmented views of each series, with a momentum (EMA) key
encoder.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from .base import FoundationModel
from .config import ModelConfig, get_config
from .patching import num_patches

__all__ = ["ViTModel"]


class ViTModel(FoundationModel):
    """Contrastively pretrained TSFM with overlapping patches.

    Tokens are built from patch values normalised per patch plus the
    patch mean and standard deviation (the "statistical embedding"),
    so amplitude information is preserved explicitly instead of being
    destroyed by normalisation.
    """

    def __init__(self, config: ModelConfig | str = "vit-tiny", seed: int = 0) -> None:
        if isinstance(config, str):
            config = get_config(config)
        if config.family != "vit":
            raise ValueError(f"config {config.name!r} is not a vit-family config")
        super().__init__(config)
        rng = np.random.default_rng(seed)
        token_dim = config.patch_length + 2  # values + (mean, std)
        with nn.default_dtype(config.dtype):
            self.patch_embed = nn.Linear(token_dim, config.d_model, rng=rng)
            self.positional = nn.Parameter(
                nn.init.normal((config.max_positions(), config.d_model), rng)
            )
            self.encoder = nn.TransformerEncoder(
                d_model=config.d_model,
                num_heads=config.num_heads,
                d_ff=config.d_ff,
                num_layers=config.num_layers,
                dropout=config.dropout,
                rng=rng,
            )
            self.projection_head = nn.Linear(config.d_model, config.d_model, rng=rng)

    # ------------------------------------------------------------------
    def _patch_index(self, length: int) -> np.ndarray:
        cfg = self.config
        length = min(length, cfg.max_sequence_length)
        count = num_patches(length, cfg.patch_length, cfg.patch_stride)
        starts = np.arange(count) * cfg.patch_stride
        return starts[:, None] + np.arange(cfg.patch_length)[None, :]

    def _patchify(self, x: nn.Tensor) -> nn.Tensor:
        x = nn.as_tensor(x)
        batch, length = x.shape
        cfg = self.config
        if length > cfg.max_sequence_length:
            x = x[:, : cfg.max_sequence_length]
            length = cfg.max_sequence_length
        if length < cfg.patch_length:
            pad = nn.Tensor(
                np.zeros((batch, cfg.patch_length - length), dtype=x.data.dtype)
            )
            x = nn.concatenate([x, pad], axis=1)
            length = cfg.patch_length
        return x[:, self._patch_index(length)]

    def _tokenize(self, patches: nn.Tensor) -> nn.Tensor:
        """Patch values -> statistical tokens: [normalised values, mean, std]."""
        mean = patches.mean(axis=-1, keepdims=True)
        centered = patches - mean
        std = ((centered * centered).mean(axis=-1, keepdims=True) + 1e-8).sqrt()
        normalized = centered / std
        tokens = nn.concatenate([normalized, mean, std], axis=-1)
        embedded = self.patch_embed(tokens)
        count = embedded.shape[1]
        return embedded + self.positional[:count].reshape(1, count, -1)

    # ------------------------------------------------------------------
    def encode_univariate(self, x: nn.Tensor) -> nn.Tensor:
        return self.encoder(self._tokenize(self._patchify(x)))

    def contrastive_embed(self, x: nn.Tensor) -> nn.Tensor:
        """Pooled projection-head embedding used by the InfoNCE objective."""
        tokens = self.encode_univariate(x)
        return self.projection_head(tokens.mean(axis=1))
