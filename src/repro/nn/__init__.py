"""``repro.nn`` — a minimal numpy deep-learning framework.

This package substitutes for PyTorch in the offline reproduction: a
reverse-mode autodiff :class:`Tensor`, layer/module system, multi-head
attention and transformer encoder, optimizers, and data loading.
"""

from . import functional, graph, init, profiler
from .attention import MultiHeadSelfAttention
from .data import ArrayDataset, DataLoader
from .dtype import default_dtype, get_default_dtype, set_default_dtype
from .layers import GELU, Conv1d, Dropout, Embedding, LayerNorm, Linear, ReLU
from .module import Module, Parameter, Sequential
from .optim import (
    SGD,
    Adam,
    AdamW,
    CosineSchedule,
    Optimizer,
    WarmupCosineSchedule,
    clip_grad_norm,
)
from .serialization import load_checkpoint, save_checkpoint
from .tensor import Tensor, as_tensor, concatenate, is_grad_enabled, no_grad, stack, where
from .transformer import TransformerEncoder, TransformerEncoderLayer

__all__ = [
    "Tensor",
    "as_tensor",
    "concatenate",
    "stack",
    "where",
    "no_grad",
    "is_grad_enabled",
    "default_dtype",
    "get_default_dtype",
    "set_default_dtype",
    "functional",
    "graph",
    "init",
    "profiler",
    "Module",
    "Parameter",
    "Sequential",
    "Linear",
    "LayerNorm",
    "Dropout",
    "Embedding",
    "Conv1d",
    "GELU",
    "ReLU",
    "MultiHeadSelfAttention",
    "TransformerEncoder",
    "TransformerEncoderLayer",
    "Optimizer",
    "SGD",
    "Adam",
    "AdamW",
    "clip_grad_norm",
    "CosineSchedule",
    "WarmupCosineSchedule",
    "ArrayDataset",
    "DataLoader",
    "save_checkpoint",
    "load_checkpoint",
]
