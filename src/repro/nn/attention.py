"""Multi-head self-attention."""

from __future__ import annotations

import math

import numpy as np

from . import functional as F
from .layers import Dropout, Linear
from .module import Module
from .tensor import Tensor, as_tensor

__all__ = ["MultiHeadSelfAttention"]


class MultiHeadSelfAttention(Module):
    """Standard scaled dot-product multi-head self-attention.

    Input/output shape: ``(batch, tokens, d_model)``.  An optional
    boolean ``attn_mask`` of shape ``(tokens, tokens)`` or
    ``(batch, tokens, tokens)`` marks positions that *may* attend
    (True = keep, False = mask out with -inf before the softmax).
    """

    def __init__(
        self,
        d_model: int,
        num_heads: int,
        dropout: float = 0.0,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        if d_model % num_heads != 0:
            raise ValueError(f"d_model={d_model} not divisible by num_heads={num_heads}")
        rng = rng if rng is not None else np.random.default_rng()
        self.d_model = d_model
        self.num_heads = num_heads
        self.head_dim = d_model // num_heads
        self.query_proj = Linear(d_model, d_model, rng=rng)
        self.key_proj = Linear(d_model, d_model, rng=rng)
        self.value_proj = Linear(d_model, d_model, rng=rng)
        self.out_proj = Linear(d_model, d_model, rng=rng)
        self.attn_dropout = Dropout(dropout, rng=rng)

    def _split_heads(self, x: Tensor, batch: int, tokens: int) -> Tensor:
        """(B, T, D) -> (B, H, T, Dh)."""
        return x.reshape(batch, tokens, self.num_heads, self.head_dim).transpose(0, 2, 1, 3)

    def forward(self, x: Tensor, attn_mask: np.ndarray | None = None) -> Tensor:
        """Attend over tokens: (B, T, D) -> (B, T, D)."""
        x = as_tensor(x)
        batch, tokens, d_model = x.shape
        if d_model != self.d_model:
            raise ValueError(f"expected d_model={self.d_model}, got {d_model}")

        queries = self._split_heads(self.query_proj(x), batch, tokens)
        keys = self._split_heads(self.key_proj(x), batch, tokens)
        values = self._split_heads(self.value_proj(x), batch, tokens)

        scale = 1.0 / math.sqrt(self.head_dim)
        scores = (queries @ keys.transpose(0, 1, 3, 2)) * scale  # (B, H, T, T)
        if attn_mask is not None:
            mask = np.asarray(attn_mask, dtype=bool)
            if mask.ndim == 2:
                mask = mask[None, None, :, :]
            elif mask.ndim == 3:
                mask = mask[:, None, :, :]
            else:
                raise ValueError(f"attn_mask must be 2D or 3D, got ndim={mask.ndim}")
            # Additive bias, broadcast by numpy inside the add: the
            # old explicit broadcast_to(...).copy() materialised an
            # O(B*H*T*T) array per layer for a (1, 1, T, T) mask.
            bias = np.where(mask, 0.0, -1e9).astype(scores.dtype, copy=False)
            scores = scores + Tensor(bias)

        weights = F.softmax(scores, axis=-1)
        weights = self.attn_dropout(weights)
        context = weights @ values  # (B, H, T, Dh)
        merged = context.transpose(0, 2, 1, 3).reshape(batch, tokens, d_model)
        return self.out_proj(merged)
