"""Dataset and mini-batch loading utilities."""

from __future__ import annotations

from typing import Iterator

import numpy as np

__all__ = ["ArrayDataset", "DataLoader"]


class ArrayDataset:
    """In-memory dataset of aligned numpy arrays (e.g. inputs + labels)."""

    def __init__(self, *arrays: np.ndarray) -> None:
        if not arrays:
            raise ValueError("ArrayDataset needs at least one array")
        arrays = tuple(np.asarray(a) for a in arrays)
        length = len(arrays[0])
        for index, array in enumerate(arrays):
            if len(array) != length:
                raise ValueError(
                    f"array {index} has length {len(array)}, expected {length}"
                )
        self.arrays = arrays

    def __len__(self) -> int:
        return len(self.arrays[0])

    def __getitem__(self, index) -> tuple[np.ndarray, ...]:
        return tuple(array[index] for array in self.arrays)


class DataLoader:
    """Iterate over mini-batches of an :class:`ArrayDataset`.

    Parameters
    ----------
    dataset:
        Source dataset.
    batch_size:
        Samples per batch (the final batch may be smaller unless
        ``drop_last``).
    shuffle:
        Reshuffle at the start of every epoch using ``rng``.
    rng:
        Generator driving the shuffle (reproducible across epochs only
        through its own state).
    """

    def __init__(
        self,
        dataset: ArrayDataset,
        batch_size: int,
        shuffle: bool = False,
        drop_last: bool = False,
        rng: np.random.Generator | None = None,
    ) -> None:
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        self.dataset = dataset
        self.batch_size = batch_size
        self.shuffle = shuffle
        self.drop_last = drop_last
        self._rng = rng if rng is not None else np.random.default_rng()

    def __len__(self) -> int:
        n = len(self.dataset)
        if self.drop_last:
            return n // self.batch_size
        return (n + self.batch_size - 1) // self.batch_size

    def __iter__(self) -> Iterator[tuple[np.ndarray, ...]]:
        n = len(self.dataset)
        order = np.arange(n)
        if self.shuffle:
            self._rng.shuffle(order)
        stop = (n // self.batch_size) * self.batch_size if self.drop_last else n
        for start in range(0, stop, self.batch_size):
            index = order[start : start + self.batch_size]
            yield self.dataset[index]
