"""Global floating-point dtype policy for ``repro.nn``.

The framework computes in **float32 by default**: model weights,
activations, gradients and optimizer state all live in single
precision, which halves memory traffic and roughly doubles CPU BLAS
throughput relative to the float64 the stack originally ran in.
Float64 remains a first-class opt-in for numerics-sensitive work
(finite-difference gradient checks, parity baselines):

* :func:`set_default_dtype` switches the policy globally;
* :func:`default_dtype` scopes the switch to a ``with`` block.

The policy governs *creation*, not existing arrays: a ``Tensor`` built
from a floating numpy array keeps that array's dtype (so ``detach()``
and checkpoint loading never silently change precision), while python
lists/scalars, integer and boolean inputs, weight initialisers,
dropout masks and patch extraction all materialise in the default
dtype.  Models cast their inputs to their own parameter dtype at the
encode boundary, so mixed-precision graphs do not silently upcast.
"""

from __future__ import annotations

import contextlib

import numpy as np

__all__ = ["get_default_dtype", "set_default_dtype", "default_dtype"]

_ALLOWED = (np.dtype(np.float32), np.dtype(np.float64))

_DEFAULT_DTYPE = np.dtype(np.float32)


def _validate(dtype) -> np.dtype:
    resolved = np.dtype(dtype)
    if resolved not in _ALLOWED:
        raise ValueError(
            f"default dtype must be float32 or float64, got {resolved}"
        )
    return resolved


def get_default_dtype() -> np.dtype:
    """The dtype new tensors, weights and masks are created with."""
    return _DEFAULT_DTYPE


def set_default_dtype(dtype) -> np.dtype:
    """Set the global default dtype; returns the previous one.

    Only ``float32`` and ``float64`` are accepted — integer compute
    makes no sense for an autodiff stack, and half precision is not
    profitable under numpy.
    """
    global _DEFAULT_DTYPE
    previous = _DEFAULT_DTYPE
    _DEFAULT_DTYPE = _validate(dtype)
    return previous


@contextlib.contextmanager
def default_dtype(dtype):
    """Scope the default dtype to a ``with`` block.

    ``default_dtype(None)`` is a no-op context, which lets callers
    thread an *optional* dtype override (e.g. ``ModelConfig.dtype``)
    without branching.
    """
    if dtype is None:
        yield get_default_dtype()
        return
    previous = set_default_dtype(dtype)
    try:
        yield get_default_dtype()
    finally:
        set_default_dtype(previous)
