"""Differentiable functional operations built on :class:`repro.nn.Tensor`.

These are composite operations (activations, normalisations, losses)
expressed in terms of the primitive tensor ops, plus a few fused
implementations with hand-written backward passes where the composite
form would be numerically fragile (softmax, cross-entropy).
"""

from __future__ import annotations

import math

import numpy as np

from .tensor import Tensor, as_tensor, registered_op

__all__ = [
    "relu",
    "gelu",
    "sigmoid",
    "softmax",
    "log_softmax",
    "dropout",
    "layer_norm",
    "cross_entropy",
    "mse_loss",
    "masked_mse_loss",
    "info_nce_loss",
]

_SQRT_2_OVER_PI = math.sqrt(2.0 / math.pi)


@registered_op("relu")
def relu(x: Tensor) -> Tensor:
    """Rectified linear unit."""
    x = as_tensor(x)
    out_data = np.maximum(x.data, 0.0)

    def backward(grad: np.ndarray) -> None:
        x._accumulate(grad * (x.data > 0))

    return Tensor._make(out_data, (x,), backward)


@registered_op("gelu")
def gelu(x: Tensor) -> Tensor:
    """Gaussian error linear unit (tanh approximation, as in BERT/GPT)."""
    x = as_tensor(x)
    data = x.data
    inner = _SQRT_2_OVER_PI * (data + 0.044715 * data**3)
    tanh_inner = np.tanh(inner)
    out_data = 0.5 * data * (1.0 + tanh_inner)

    def backward(grad: np.ndarray) -> None:
        sech2 = 1.0 - tanh_inner**2
        d_inner = _SQRT_2_OVER_PI * (1.0 + 3 * 0.044715 * data**2)
        local = 0.5 * (1.0 + tanh_inner) + 0.5 * data * sech2 * d_inner
        x._accumulate(grad * local)

    return Tensor._make(out_data, (x,), backward)


@registered_op("sigmoid")
def sigmoid(x: Tensor) -> Tensor:
    """Logistic sigmoid with a numerically stable forward pass."""
    x = as_tensor(x)
    out_data = np.where(
        x.data >= 0,
        1.0 / (1.0 + np.exp(-np.abs(x.data))),
        np.exp(-np.abs(x.data)) / (1.0 + np.exp(-np.abs(x.data))),
    )

    def backward(grad: np.ndarray) -> None:
        x._accumulate(grad * out_data * (1.0 - out_data))

    return Tensor._make(out_data, (x,), backward)


@registered_op("softmax")
def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Softmax along ``axis`` with a fused, stable backward pass."""
    x = as_tensor(x)
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    exp = np.exp(shifted)
    out_data = exp / exp.sum(axis=axis, keepdims=True)

    def backward(grad: np.ndarray) -> None:
        dot = (grad * out_data).sum(axis=axis, keepdims=True)
        x._accumulate(out_data * (grad - dot))

    return Tensor._make(out_data, (x,), backward)


@registered_op("log_softmax")
def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Log-softmax along ``axis`` (stable log-sum-exp form)."""
    x = as_tensor(x)
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    log_norm = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    out_data = shifted - log_norm

    def backward(grad: np.ndarray) -> None:
        softmax_data = np.exp(out_data)
        x._accumulate(grad - softmax_data * grad.sum(axis=axis, keepdims=True))

    return Tensor._make(out_data, (x,), backward)


@registered_op("dropout")
def dropout(x: Tensor, p: float, training: bool, rng: np.random.Generator) -> Tensor:
    """Inverted dropout: zero with probability ``p``, rescale by 1/(1-p)."""
    if not training or p <= 0.0:
        return as_tensor(x)
    if not 0.0 <= p < 1.0:
        raise ValueError(f"dropout probability must be in [0, 1), got {p}")
    x = as_tensor(x)
    # Draw, threshold and rescale in the activation's own dtype and in
    # one buffer: a float64 mask would silently upcast a float32
    # activation (and allocate twice).
    mask_dtype = x.data.dtype if x.data.dtype == np.float32 else np.float64
    keep = rng.random(x.shape, dtype=mask_dtype)
    np.greater_equal(keep, p, out=keep)
    keep *= 1.0 / (1.0 - p)
    out_data = x.data * keep

    def backward(grad: np.ndarray) -> None:
        x._accumulate(grad * keep)

    return Tensor._make(out_data, (x,), backward)


@registered_op("layer_norm")
def layer_norm(x: Tensor, weight: Tensor, bias: Tensor, eps: float = 1e-5) -> Tensor:
    """Layer normalisation over the trailing dimension (fused).

    Normalises each feature vector to zero mean / unit variance, then
    applies the learnable affine transform ``weight * x_hat + bias``.

    Forward and backward are a single graph node with a hand-written
    gradient (the standard closed form), replacing the ~8-node
    composite the op used to expand into — roughly 6 fewer
    full-activation temporaries per call in each direction.
    """
    x, weight, bias = as_tensor(x), as_tensor(weight), as_tensor(bias)
    data = x.data
    mean = data.mean(axis=-1, keepdims=True)
    centered = data - mean
    variance = np.mean(centered * centered, axis=-1, keepdims=True)
    inv_std = 1.0 / np.sqrt(variance + eps)
    x_hat = centered * inv_std
    out_data = x_hat * weight.data + bias.data

    def backward(grad: np.ndarray) -> None:
        if bias.requires_grad:
            bias._accumulate(grad)
        if weight.requires_grad:
            weight._accumulate(grad * x_hat)
        if x.requires_grad:
            # d/dx of (x - mu) / sigma, folded: the mean terms remove
            # the per-row component of the gradient along 1 and x_hat.
            d_x_hat = grad * weight.data
            mean_d = d_x_hat.mean(axis=-1, keepdims=True)
            mean_dx = (d_x_hat * x_hat).mean(axis=-1, keepdims=True)
            x._accumulate((d_x_hat - mean_d - x_hat * mean_dx) * inv_std)

    return Tensor._make(out_data, (x, weight, bias), backward)


@registered_op("cross_entropy")
def cross_entropy(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Mean cross-entropy between ``logits`` (N, C) and integer targets (N,)."""
    logits = as_tensor(logits)
    targets = targets.data if isinstance(targets, Tensor) else np.asarray(targets)
    targets = targets.astype(np.int64)
    if logits.ndim != 2:
        raise ValueError(f"expected 2D logits, got shape {logits.shape}")
    if targets.ndim != 1 or targets.shape[0] != logits.shape[0]:
        raise ValueError(
            f"targets shape {targets.shape} incompatible with logits {logits.shape}"
        )
    n = logits.shape[0]
    log_probs = log_softmax(logits, axis=-1)
    picked = log_probs[np.arange(n), targets]
    return -picked.mean()


@registered_op("mse_loss")
def mse_loss(prediction: Tensor, target: Tensor | np.ndarray) -> Tensor:
    """Mean squared error over all elements."""
    prediction = as_tensor(prediction)
    target = target.data if isinstance(target, Tensor) else np.asarray(target)
    diff = prediction - Tensor(target, dtype=prediction.dtype)
    return (diff * diff).mean()


@registered_op("masked_mse_loss")
def masked_mse_loss(
    prediction: Tensor, target: np.ndarray, mask: np.ndarray
) -> Tensor:
    """MSE computed only where ``mask`` is nonzero.

    Used by the MOMENT-style masked-patch reconstruction objective: the
    loss is measured on masked patches only.
    """
    prediction = as_tensor(prediction)
    target = np.asarray(target)
    mask = np.asarray(mask, dtype=prediction.dtype)
    total = float(mask.sum())
    if total == 0:
        raise ValueError("masked_mse_loss received an all-zero mask")
    diff = (prediction - Tensor(target, dtype=prediction.dtype)) * Tensor(mask)
    return (diff * diff).sum() / total


@registered_op("info_nce_loss")
def info_nce_loss(queries: Tensor, keys: Tensor, temperature: float = 0.07) -> Tensor:
    """InfoNCE contrastive loss (Oord et al., 2018; MoCo variant).

    ``queries`` and ``keys`` are (N, E) batches of embeddings where
    row ``i`` of each is a positive pair; all other rows act as
    negatives.  Embeddings are L2-normalised internally.
    """
    queries, keys = as_tensor(queries), as_tensor(keys)
    if queries.shape != keys.shape or queries.ndim != 2:
        raise ValueError(
            f"expected matching 2D embeddings, got {queries.shape} and {keys.shape}"
        )
    q_norm = queries * ((queries * queries).sum(axis=-1, keepdims=True) + 1e-12) ** -0.5
    k_norm = keys * ((keys * keys).sum(axis=-1, keepdims=True) + 1e-12) ** -0.5
    logits = (q_norm @ k_norm.transpose()) * (1.0 / temperature)
    targets = np.arange(queries.shape[0])
    return cross_entropy(logits, targets)
