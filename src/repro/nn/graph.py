"""Graph capture, compilation and replay for ``repro.nn``.

The paper's dominant workload is a *frozen* channel-independent
encoder replayed over thousands of ``(batch, channel)`` slices: the
same autodiff graph, the same shapes, new data.  Eager execution
re-records every tape node, re-allocates every intermediate and
re-builds every backward closure on each call.  This module removes
all three costs for that workload:

* **Capture** — :func:`capture` installs a tracer into the
  ``@registered_op`` wrappers of :mod:`repro.nn.tensor` and runs the
  target function once.  Each *outermost* registered op becomes one
  :class:`TraceStep` (op name from ``OP_REGISTRY``, argument
  references, output shape/dtype); composites (``sub``, ``mean``,
  ``cross_entropy``, ...) record as single steps, exactly mirroring
  the replay-kernel granularity.  Tensor arguments are classified:
  graph inputs and op outputs become *slots*, tensors that existed
  before the capture (weights, biases, positional embeddings) are
  recorded *by reference* — replay reads their current ``.data``, so
  in-place weight updates are picked up automatically — and leaves
  born mid-capture are baked *by value*.
* **Compile** — :func:`compile_trace` runs dead-node elimination
  (anything the output does not depend on is dropped, and no backward
  closure or grad bookkeeping survives by construction), then an
  alias-aware liveness analysis that assigns every intermediate to a
  preallocated arena block; blocks are reused across ops whose
  lifetimes do not overlap.  View-producing steps (``reshape``,
  ``transpose``, ``getitem`` on basic indices) share their input's
  storage, so a buffer is never recycled while a view of it is live.
* **Replay** — :meth:`CompiledGraph.run` executes the step list
  through :data:`REPLAY_KERNELS`, a dispatch table of raw-numpy
  kernels that mirror the eager forward expressions *bit for bit*,
  writing into arena buffers where the kernel supports ``out=``.  A
  guard raises :class:`ReplayGuard` on any input/parameter
  shape-or-dtype mismatch so callers can fall back to eager, and an
  active :mod:`repro.nn.profiler` receives per-op replay timings and
  per-run bytes-saved stats.

Every name in ``OP_REGISTRY`` must either have a replay kernel or be
listed in :data:`EAGER_ONLY_OPS` with a reason; a new op added without
either fails :func:`assert_replay_coverage` **by name**, mirroring the
gradcheck sweep's ``assert_full_coverage``.

Typical use is through :class:`GraphCache` (one per model, keyed by
input signature), which validates each freshly compiled graph against
an eager pass on perturbed inputs before trusting it — a capture that
baked a data-dependent constant or hit a non-parity kernel quietly
degrades to eager instead of corrupting results.
"""

from __future__ import annotations

import contextlib
import math
import os
import time
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from . import profiler as _profiler
from . import tensor as _tensor
from .tensor import OP_REGISTRY, Tensor, no_grad

__all__ = [
    "TraceError",
    "ReplayGuard",
    "TraceStep",
    "Trace",
    "CompiledGraph",
    "GraphCache",
    "capture",
    "compile_trace",
    "capture_compiled",
    "REPLAY_KERNELS",
    "EAGER_ONLY_OPS",
    "missing_replay_kernels",
    "stale_replay_kernels",
    "assert_replay_coverage",
    "compile_enabled",
    "set_compile_enabled",
    "compile_disabled",
]


class TraceError(RuntimeError):
    """A function could not be captured (non-replayable op, nesting, ...)."""


class ReplayGuard(RuntimeError):
    """A compiled graph refused to run (input/parameter signature mismatch)."""


# Argument-reference kinds inside a TraceStep.
_SLOT = "slot"  # output of an earlier step, or a graph input
_PARAM = "param"  # pre-existing tensor, read by reference at replay
_VALUE = "value"  # mid-capture leaf tensor / ndarray, baked by value
_CONST = "const"  # plain python constant (scalars, axes, dtypes, slices)
_SEQ = "seq"  # list/tuple containing tensor references (concatenate, stack)

#: ``TraceStep.alias_of`` sentinel: the output is a view of storage the
#: graph does not manage (a parameter or a baked constant), e.g. the
#: transpose of a weight matrix.  Such steps get no arena buffer.
EXTERNAL_VIEW = -1


# ----------------------------------------------------------------------
# Enable switch
# ----------------------------------------------------------------------
_COMPILE_ENABLED = os.environ.get("REPRO_NN_COMPILE", "1").strip().lower() not in {
    "0",
    "false",
    "off",
    "no",
}


def compile_enabled() -> bool:
    """Whether :class:`GraphCache` may capture/replay compiled graphs.

    Defaults to on; set ``REPRO_NN_COMPILE=0`` in the environment or
    call :func:`set_compile_enabled` / :func:`compile_disabled` to
    force the eager path everywhere.
    """
    return _COMPILE_ENABLED


def set_compile_enabled(enabled: bool) -> bool:
    """Set the global compile switch; returns the previous value."""
    global _COMPILE_ENABLED
    previous = _COMPILE_ENABLED
    _COMPILE_ENABLED = bool(enabled)
    return previous


@contextlib.contextmanager
def compile_disabled():
    """Context manager forcing eager execution (benchmarks, parity tests)."""
    previous = set_compile_enabled(False)
    try:
        yield
    finally:
        set_compile_enabled(previous)


# ----------------------------------------------------------------------
# Trace data model
# ----------------------------------------------------------------------
@dataclass
class TraceStep:
    """One recorded op application."""

    op: str
    args: tuple
    kwargs: dict
    out: int  # output slot id
    shape: tuple[int, ...]
    dtype: np.dtype
    #: slot whose storage the output shares (view ops), else None.
    #: :data:`EXTERNAL_VIEW` marks a view of non-slot storage (a
    #: parameter or baked constant): no arena buffer, nothing to track.
    alias_of: int | None = None
    #: memory layout of the eager output.  Ufuncs choose their output
    #: layout from their inputs' layout (a transpose upstream makes
    #: every downstream ufunc output axis-permuted), and reductions
    #: traverse memory in layout order — so replay must reproduce the
    #: exact eager strides or float rounding diverges.
    strides: tuple[int, ...] | None = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.alias_of is None:
            view = ""
        elif self.alias_of == EXTERNAL_VIEW:
            view = " (external view)"
        else:
            view = f" (view of %{self.alias_of})"
        return f"%{self.out} = {self.op}{view} -> {self.shape} {self.dtype}"


@dataclass
class Trace:
    """A captured op sequence, ready for :func:`compile_trace`.

    ``render()`` gives a readable listing — the supported way to
    inspect what a capture actually recorded (see docs/graph.md).
    """

    steps: list[TraceStep]
    inputs: list[int]  # slot ids of graph inputs, in call order
    output: int  # slot id of the function result
    params: list[Tensor]  # by-reference leaves (weights etc.)
    num_slots: int
    input_sig: list[tuple[tuple[int, ...], np.dtype]]
    grad: bool = False  # captures run under no_grad; kept for keying

    def render(self) -> str:
        """Human-readable listing of the recorded steps."""
        lines = [
            f"inputs: {[f'%{i}' for i in self.inputs]}  "
            f"params: {len(self.params)}  output: %{self.output}"
        ]
        lines += [repr(step) for step in self.steps]
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Capture
# ----------------------------------------------------------------------
class Tracer:
    """Records registered-op applications while installed in tensor.py.

    Lifecycle: created by :func:`capture`, installed via
    ``tensor._set_tracer``, fed by the ``registered_op`` wrappers
    (``_traced_call``) and ``Tensor.__init__`` (``_note_leaf``).
    """

    def __init__(self) -> None:
        self.steps: list[TraceStep] = []
        self.params: list[Tensor] = []
        self._depth = 0  # >0 while inside a recorded composite
        self._slot_of: dict[int, int] = {}  # id(tensor) -> slot
        self._slot_tensors: list[Tensor] = []  # keeps ids stable
        self._param_of: dict[int, int] = {}  # id(tensor) -> param index
        self._fresh: dict[int, Tensor] = {}  # leaves born mid-capture
        self._baked: dict[int, tuple] = {}  # id(tensor) -> VALUE ref

    # -- hooks (called from tensor.py) ---------------------------------
    def _note_leaf(self, t: Tensor) -> None:
        self._fresh[id(t)] = t

    def _traced_call(self, name: str, fn, args: tuple, kwargs: dict):
        args = tuple(
            list(a) if not isinstance(a, (Tensor, np.ndarray, str, bytes)) and _is_iterator(a) else a
            for a in args
        )
        self._depth += 1
        try:
            out = fn(*args, **kwargs)
        finally:
            self._depth -= 1
        self._record(name, args, kwargs, out)
        return out

    # -- recording -----------------------------------------------------
    def _record(self, name: str, args: tuple, kwargs: dict, out) -> None:
        if not isinstance(out, Tensor):
            raise TraceError(f"op {name!r} returned {type(out).__name__}, not a Tensor")
        key = id(out)
        if key in self._slot_of or key in self._param_of:
            return  # identity op (eval dropout, same-dtype astype): pure alias
        if name in EAGER_ONLY_OPS:
            raise TraceError(f"op {name!r} is not replayable: {EAGER_ONLY_OPS[name]}")
        if name not in REPLAY_KERNELS:
            raise TraceError(
                f"op {name!r} has no replay kernel; add one to "
                "repro.nn.graph.REPLAY_KERNELS or list it in EAGER_ONLY_OPS"
            )
        arg_refs = tuple(self._ref_of(a) for a in args)
        kwarg_refs = {k: self._ref_of(v) for k, v in kwargs.items()}
        alias_of = self._find_alias(out, args, kwargs)
        slot = self._new_slot(out)
        self.steps.append(
            TraceStep(
                op=name,
                args=arg_refs,
                kwargs=kwarg_refs,
                out=slot,
                shape=out.data.shape,
                dtype=out.data.dtype,
                alias_of=alias_of,
                strides=out.data.strides,
            )
        )

    def _find_alias(self, out: Tensor, args: tuple, kwargs: dict) -> int | None:
        """Slot whose memory the output shares, if any (view ops).

        A view of a *non-slot* tensor (e.g. ``weight.transpose(...)``)
        is :data:`EXTERNAL_VIEW`: it needs no arena buffer and replays
        as a view of the live parameter.
        """
        external = None
        for value in list(args) + list(kwargs.values()):
            candidates = value if isinstance(value, (list, tuple)) else (value,)
            for item in candidates:
                if not isinstance(item, Tensor):
                    continue
                if not np.may_share_memory(out.data, item.data):
                    continue
                slot = self._slot_of.get(id(item))
                if slot is not None:
                    return slot
                external = EXTERNAL_VIEW
        return external

    def _new_slot(self, t: Tensor) -> int:
        slot = len(self._slot_tensors)
        self._slot_tensors.append(t)
        self._slot_of[id(t)] = slot
        return slot

    def _ref_of(self, value):
        if isinstance(value, Tensor):
            slot = self._slot_of.get(id(value))
            if slot is not None:
                return (_SLOT, slot)
            index = self._param_of.get(id(value))
            if index is not None:
                return (_PARAM, index)
            if id(value) in self._fresh:
                # Born during the capture from raw data: its content is
                # part of the program, not a live weight.  Copy so later
                # in-place mutation cannot leak into the trace.
                ref = self._baked.get(id(value))
                if ref is None:
                    # order="K" keeps the source layout: replay rounding
                    # depends on operand memory order, not just values.
                    ref = (_VALUE, value.data.copy(order="K"))
                    self._baked[id(value)] = ref
                return ref
            # Pre-existing tensor (parameter, buffer): by reference.
            index = len(self.params)
            self.params.append(value)
            self._param_of[id(value)] = index
            return (_PARAM, index)
        if isinstance(value, (list, tuple)):
            if _contains_tensor(value):
                return (_SEQ, tuple(self._ref_of(item) for item in value))
            return (_CONST, value)
        if isinstance(value, np.ndarray):
            return (_VALUE, value.copy(order="K"))
        return (_CONST, value)


def _contains_tensor(seq) -> bool:
    return any(
        isinstance(item, Tensor)
        or (isinstance(item, (list, tuple)) and _contains_tensor(item))
        for item in seq
    )


def _is_iterator(value) -> bool:
    return hasattr(value, "__next__")


def capture(fn: Callable[..., Tensor], inputs: Sequence[np.ndarray]) -> Trace:
    """Run ``fn`` once on ``inputs`` and record its op sequence.

    ``fn`` receives one :class:`Tensor` per input array and must return
    a Tensor whose value is produced by registered ops.  The capture
    runs under ``no_grad`` (compiled replay is an inference engine);
    raises :class:`TraceError` when the function cannot be replayed —
    a non-deterministic op (training-mode dropout), a nested capture,
    or an output that is not a traced op result.
    """
    if _tensor._TRACER is not None:
        raise TraceError("a graph capture is already active")
    # Normalise input layout: replay also C-normalises its inputs, and
    # every recorded stride downstream assumes this base layout.
    arrays = [np.ascontiguousarray(x) for x in inputs]
    # Input tensors are created *before* the tracer is installed so
    # they register as slots, not as baked mid-capture leaves.
    tensors = [Tensor(a) for a in arrays]
    tracer = Tracer()
    input_slots = [tracer._new_slot(t) for t in tensors]
    previous = _tensor._set_tracer(tracer)
    try:
        with no_grad():
            out = fn(*tensors)
    finally:
        _tensor._set_tracer(previous)
    if not isinstance(out, Tensor):
        raise TraceError(f"captured function returned {type(out).__name__}, not a Tensor")
    out_slot = tracer._slot_of.get(id(out))
    if out_slot is None or not tracer.steps:
        raise TraceError("captured function produced no traced ops for its output")
    return Trace(
        steps=tracer.steps,
        inputs=input_slots,
        output=out_slot,
        params=tracer.params,
        num_slots=len(tracer._slot_tensors),
        input_sig=[(a.shape, a.dtype) for a in arrays],
    )


# ----------------------------------------------------------------------
# Replay kernels — each mirrors the eager forward expression bit for bit
# ----------------------------------------------------------------------
_SQRT_2_OVER_PI = math.sqrt(2.0 / math.pi)

#: op name -> replay kernel.  Signatures mirror the eager op (so the
#: recorded positional/keyword arguments apply unchanged) with Tensor
#: operands replaced by ndarrays, plus a keyword-only ``out=`` that a
#: kernel may use to write into its arena buffer (or ignore).
REPLAY_KERNELS: dict[str, Callable] = {}

#: Registered ops that can never be replayed, with the reason; the
#: tracer refuses a capture that records one (mirroring the fail-by-name
#: contract of the gradcheck sweep).
EAGER_ONLY_OPS: dict[str, str] = {
    "dropout": "training-mode dropout draws a fresh random mask per call",
}


def replay_kernel(name: str):
    """Register the replay kernel for op ``name``."""

    def decorate(fn):
        if name in REPLAY_KERNELS:
            raise ValueError(f"replay kernel {name!r} registered twice")
        REPLAY_KERNELS[name] = fn
        return fn

    return decorate


def _coerce_operand(a: np.ndarray, other) -> np.ndarray:
    """Replicate ``Tensor._operand``'s dtype policy on raw arrays."""
    if isinstance(other, np.ndarray):
        return other
    if np.isscalar(other):
        return np.asarray(other, dtype=a.dtype)
    return Tensor(other).data


def _as_array(value) -> np.ndarray:
    """Replicate ``as_tensor``'s creation policy on raw values."""
    return value if isinstance(value, np.ndarray) else Tensor(value).data


@replay_kernel("add")
def _k_add(a, b, *, out=None):
    b = _coerce_operand(a, b)
    return np.add(a, b, out=out) if out is not None else a + b


@replay_kernel("neg")
def _k_neg(a, *, out=None):
    return np.negative(a, out=out) if out is not None else -a


@replay_kernel("sub")
def _k_sub(a, b, *, out=None):
    # Eager sub is a + (-b); IEEE-754 subtraction is identical bit for bit.
    b = _coerce_operand(a, b)
    return np.subtract(a, b, out=out) if out is not None else a - b


@replay_kernel("mul")
def _k_mul(a, b, *, out=None):
    b = _coerce_operand(a, b)
    return np.multiply(a, b, out=out) if out is not None else a * b


@replay_kernel("truediv")
def _k_truediv(a, b, *, out=None):
    b = _coerce_operand(a, b)
    return np.divide(a, b, out=out) if out is not None else a / b


@replay_kernel("pow")
def _k_pow(a, exponent, *, out=None):
    return np.power(a, exponent, out=out) if out is not None else a**exponent


@replay_kernel("matmul")
def _k_matmul(a, b, *, out=None):
    b = _as_array(b)
    if out is not None:
        try:
            return np.matmul(a, b, out=out)
        except (TypeError, ValueError):
            pass
    return a @ b


@replay_kernel("reshape")
def _k_reshape(a, *shape, out=None):
    if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
        shape = tuple(shape[0])
    return a.reshape(shape)


@replay_kernel("transpose")
def _k_transpose(a, *axes, out=None):
    if not axes:
        axes = tuple(reversed(range(a.ndim)))
    elif len(axes) == 1 and isinstance(axes[0], (tuple, list)):
        axes = tuple(axes[0])
    return a.transpose(axes)


@replay_kernel("astype")
def _k_astype(a, dtype, *, out=None):
    # Identity casts never record a step, so this is always a real copy.
    if out is not None:
        out[...] = a
        return out
    return a.astype(np.dtype(dtype))


@replay_kernel("swapaxes")
def _k_swapaxes(a, axis1, axis2, *, out=None):
    return np.swapaxes(a, axis1, axis2)


@replay_kernel("getitem")
def _k_getitem(a, index, *, out=None):
    if isinstance(index, np.ndarray) and index.dtype.kind == "f":
        # The eager op coerces Tensor indices via .astype(np.int64).
        index = index.astype(np.int64)
    return np.asarray(a[index])


@replay_kernel("sum")
def _k_sum(a, axis=None, keepdims=False, *, out=None):
    if out is not None:
        return np.sum(a, axis=axis, keepdims=keepdims, out=out)
    return np.asarray(a.sum(axis=axis, keepdims=keepdims))


def _reduce_count(a: np.ndarray, axis) -> int:
    if axis is None:
        return a.size
    axes = (axis,) if isinstance(axis, int) else tuple(axis)
    return int(np.prod([a.shape[ax] for ax in axes]))


@replay_kernel("mean")
def _k_mean(a, axis=None, keepdims=False, *, out=None):
    # Eager mean is sum(...) / count with the count coerced to the
    # sum's dtype (Tensor._operand weak-scalar rule).
    s = np.asarray(a.sum(axis=axis, keepdims=keepdims))
    count = np.asarray(_reduce_count(a, axis), dtype=s.dtype)
    return np.divide(s, count, out=out) if out is not None else s / count


@replay_kernel("var")
def _k_var(a, axis=None, keepdims=False, *, out=None):
    centered = a - _k_mean(a, axis=axis, keepdims=True)
    return _k_mean(centered * centered, axis=axis, keepdims=keepdims, out=out)


@replay_kernel("max")
def _k_max(a, axis=None, keepdims=False, *, out=None):
    return np.asarray(a.max(axis=axis, keepdims=keepdims))


@replay_kernel("exp")
def _k_exp(a, *, out=None):
    return np.exp(a, out=out) if out is not None else np.exp(a)


@replay_kernel("log")
def _k_log(a, *, out=None):
    return np.log(a, out=out) if out is not None else np.log(a)


@replay_kernel("sqrt")
def _k_sqrt(a, *, out=None):
    return np.sqrt(a, out=out) if out is not None else np.sqrt(a)


@replay_kernel("tanh")
def _k_tanh(a, *, out=None):
    return np.tanh(a, out=out) if out is not None else np.tanh(a)


@replay_kernel("abs")
def _k_abs(a, *, out=None):
    return np.abs(a, out=out) if out is not None else np.abs(a)


@replay_kernel("clip")
def _k_clip(a, low, high, *, out=None):
    if out is not None:
        return np.clip(a, low, high, out=out)
    return np.clip(a, low, high)


@replay_kernel("concatenate")
def _k_concatenate(tensors, axis=0, *, out=None):
    arrays = [_as_array(t) for t in tensors]
    if out is not None:
        return np.concatenate(arrays, axis=axis, out=out)
    return np.concatenate(arrays, axis=axis)


@replay_kernel("stack")
def _k_stack(tensors, axis=0, *, out=None):
    arrays = [_as_array(t) for t in tensors]
    if out is not None:
        return np.stack(arrays, axis=axis, out=out)
    return np.stack(arrays, axis=axis)


@replay_kernel("where")
def _k_where(condition, a, b, *, out=None):
    condition = np.asarray(condition)
    return np.where(condition, _as_array(a), _as_array(b))


@replay_kernel("relu")
def _k_relu(x, *, out=None):
    return np.maximum(x, 0.0, out=out) if out is not None else np.maximum(x, 0.0)


@replay_kernel("gelu")
def _k_gelu(x, *, out=None):
    if out is None:
        inner = _SQRT_2_OVER_PI * (x + 0.044715 * x**3)
        return (0.5 * x) * (1.0 + np.tanh(inner))
    # Same operation tree, but staged through ``out`` (which never
    # aliases ``x``) so the only full-size temporary is ``0.5 * x``.
    # Each ufunc matches the eager expression operand-for-operand, so
    # the rounding is bit-identical.
    np.power(x, 3, out=out)
    np.multiply(0.044715, out, out=out)
    np.add(x, out, out=out)
    np.multiply(_SQRT_2_OVER_PI, out, out=out)
    np.tanh(out, out=out)
    np.add(1.0, out, out=out)
    return np.multiply(0.5 * x, out, out=out)


@replay_kernel("sigmoid")
def _k_sigmoid(x, *, out=None):
    return np.where(
        x >= 0,
        1.0 / (1.0 + np.exp(-np.abs(x))),
        np.exp(-np.abs(x)) / (1.0 + np.exp(-np.abs(x))),
    )


@replay_kernel("softmax")
def _k_softmax(x, axis=-1, *, out=None):
    if out is None:
        shifted = x - x.max(axis=axis, keepdims=True)
        exp = np.exp(shifted)
        return exp / exp.sum(axis=axis, keepdims=True)
    # Staged through ``out``: no full-size temporaries.  ``out`` carries
    # the eager layout (see _out_view), so the ``sum`` reduction walks
    # memory in the same order eager did — bit-identical rounding.
    np.subtract(x, x.max(axis=axis, keepdims=True), out=out)
    np.exp(out, out=out)
    norm = out.sum(axis=axis, keepdims=True)
    return np.divide(out, norm, out=out)


@replay_kernel("log_softmax")
def _k_log_softmax(x, axis=-1, *, out=None):
    shifted = x - x.max(axis=axis, keepdims=True)
    log_norm = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    if out is not None:
        return np.subtract(shifted, log_norm, out=out)
    return shifted - log_norm


@replay_kernel("layer_norm")
def _k_layer_norm(x, weight, bias, eps=1e-5, *, out=None):
    mean = x.mean(axis=-1, keepdims=True)
    if out is None:
        centered = x - mean
        variance = np.mean(centered * centered, axis=-1, keepdims=True)
        inv_std = 1.0 / np.sqrt(variance + eps)
        return (centered * inv_std) * weight + bias
    # ``out`` holds ``centered`` while the row statistics are reduced,
    # then is normalized and affine-transformed in place.  The only
    # full-size temporary is ``centered * centered``.
    np.subtract(x, mean, out=out)
    variance = np.mean(out * out, axis=-1, keepdims=True)
    inv_std = 1.0 / np.sqrt(variance + eps)
    np.multiply(out, inv_std, out=out)
    np.multiply(out, weight, out=out)
    np.add(out, bias, out=out)
    return out


@replay_kernel("cross_entropy")
def _k_cross_entropy(logits, targets, *, out=None):
    targets = np.asarray(targets).astype(np.int64)
    n = logits.shape[0]
    shifted = logits - logits.max(axis=-1, keepdims=True)
    log_norm = np.log(np.exp(shifted).sum(axis=-1, keepdims=True))
    log_probs = shifted - log_norm
    picked = log_probs[np.arange(n), targets]
    return np.negative(_k_mean(picked))


@replay_kernel("mse_loss")
def _k_mse_loss(prediction, target, *, out=None):
    target = np.asarray(target, dtype=prediction.dtype)
    diff = prediction - target
    return _k_mean(diff * diff)


@replay_kernel("masked_mse_loss")
def _k_masked_mse_loss(prediction, target, mask, *, out=None):
    target = np.asarray(np.asarray(target), dtype=prediction.dtype)
    mask = np.asarray(mask, dtype=prediction.dtype)
    total = float(mask.sum())
    diff = (prediction - target) * mask
    s = np.asarray((diff * diff).sum())
    return s / np.asarray(total, dtype=s.dtype)


@replay_kernel("info_nce_loss")
def _k_info_nce_loss(queries, keys, temperature=0.07, *, out=None):
    q_scale = ((queries * queries).sum(axis=-1, keepdims=True) + 1e-12) ** -0.5
    k_scale = ((keys * keys).sum(axis=-1, keepdims=True) + 1e-12) ** -0.5
    q_norm = queries * q_scale
    k_norm = keys * k_scale
    logits = (q_norm @ k_norm.transpose()) * np.asarray(
        1.0 / temperature, dtype=q_norm.dtype
    )
    targets = np.arange(queries.shape[0])
    return _k_cross_entropy(logits, targets)


def missing_replay_kernels() -> list[str]:
    """Registered ops with neither a replay kernel nor an eager-only entry."""
    return sorted(
        name
        for name in OP_REGISTRY
        if name not in REPLAY_KERNELS and name not in EAGER_ONLY_OPS
    )


def stale_replay_kernels() -> list[str]:
    """Replay kernels (or eager-only entries) naming no registered op."""
    known = set(OP_REGISTRY)
    return sorted(
        name for name in (set(REPLAY_KERNELS) | set(EAGER_ONLY_OPS)) if name not in known
    )


def assert_replay_coverage() -> None:
    """Raise naming every op without replay dispatch (or stale kernel)."""
    problems = []
    missing = missing_replay_kernels()
    if missing:
        problems.append(f"ops without a replay kernel: {missing}")
    stale = stale_replay_kernels()
    if stale:
        problems.append(f"replay kernels for unknown ops: {stale}")
    if problems:
        raise AssertionError("; ".join(problems))


# ----------------------------------------------------------------------
# Compile: dead-node elimination + alias-aware arena planning
# ----------------------------------------------------------------------
def _ref_slots(ref) -> list[int]:
    kind = ref[0]
    if kind == _SLOT:
        return [ref[1]]
    if kind == _SEQ:
        slots: list[int] = []
        for item in ref[1]:
            slots += _ref_slots(item)
        return slots
    return []


def _step_input_slots(step: TraceStep) -> list[int]:
    slots: list[int] = []
    for ref in step.args:
        slots += _ref_slots(ref)
    for ref in step.kwargs.values():
        slots += _ref_slots(ref)
    return slots


def _c_strides(shape, itemsize: int) -> tuple[int, ...]:
    """C-contiguous byte strides for ``shape``."""
    strides = []
    running = itemsize
    for n in reversed(shape):
        strides.append(running)
        running *= max(n, 1)
    return tuple(reversed(strides))


def _is_dense_layout(shape, strides, itemsize: int) -> bool:
    """Whether (shape, strides) tile a flat buffer exactly once.

    True for any axis permutation of a contiguous array (what ufuncs
    produce for transposed inputs); False for negative strides,
    broadcast (0-stride) axes, or gapped layouts — those cannot be
    expressed over a flat arena block.
    """
    dims = sorted((st, n) for st, n in zip(strides, shape) if n > 1)
    running = itemsize
    for stride, n in dims:
        if stride != running:
            return False
        running *= n
    return True


@dataclass
class ArenaPlan:
    """Static buffer assignment for one compiled graph."""

    #: slot -> (block id, nbytes); only slots that own an arena buffer
    buffers: dict[int, tuple[int, int]] = field(default_factory=dict)
    #: block id -> capacity in bytes
    blocks: dict[int, int] = field(default_factory=dict)

    @property
    def arena_bytes(self) -> int:
        return sum(self.blocks.values())


class CompiledGraph:
    """An executable, arena-allocated program compiled from a :class:`Trace`."""

    def __init__(self, trace: Trace, live_steps: list[TraceStep], plan: ArenaPlan) -> None:
        self.trace = trace
        self.steps = live_steps
        self.plan = plan
        self.params = trace.params
        self.input_sig = trace.input_sig
        self.param_sig = [(p.data.shape, p.data.dtype) for p in trace.params]
        #: bytes every eager pass would allocate for live-step outputs
        self.eager_bytes = sum(
            int(np.prod(s.shape)) * s.dtype.itemsize for s in live_steps if s.alias_of is None
        )
        self.dead_steps = len(trace.steps) - len(live_steps)
        self.replays = 0
        self._kernels = [REPLAY_KERNELS[s.op] for s in live_steps]
        self._blocks: dict[int, np.ndarray] = {}
        self._views: dict[int, np.ndarray] = {}
        self._slots: list = [None] * trace.num_slots
        #: per-step execution plan with constants pre-resolved and the
        #: arena view pre-built; only slot/param refs resolve per run
        self._exec: list | None = None

    # -- memory --------------------------------------------------------
    @property
    def arena_bytes(self) -> int:
        """Planned peak intermediate bytes (sum of arena block capacities)."""
        return self.plan.arena_bytes

    def _out_view(self, slot: int, shape, dtype, strides=None) -> np.ndarray | None:
        if slot in self._views:
            return self._views[slot]
        assignment = self.plan.buffers.get(slot)
        if assignment is None:
            return None
        block_id, nbytes = assignment
        block = self._blocks.get(block_id)
        if block is None:
            block = self._blocks[block_id] = np.empty(self.plan.blocks[block_id], dtype=np.uint8)
        base = block[:nbytes].view(dtype)
        # The view must replicate the eager output's memory layout, not
        # just its shape: downstream reductions sum in layout order, so
        # a C-contiguous stand-in for an axis-permuted eager array
        # changes float rounding (see TraceStep.strides).
        if strides is None or strides == _c_strides(shape, dtype.itemsize):
            view = base.reshape(shape)
        elif _is_dense_layout(shape, strides, dtype.itemsize):
            view = np.lib.stride_tricks.as_strided(base, shape=shape, strides=strides)
        else:
            # Cannot express this layout over a flat block; let the
            # kernel allocate naturally (inputs carry eager layouts, so
            # numpy picks the same output layout eager did).
            view = None
        self._views[slot] = view
        return view

    # -- execution -----------------------------------------------------
    def run(self, inputs: Sequence[np.ndarray]) -> np.ndarray:
        """Execute the compiled program on ``inputs``; returns an ndarray.

        Raises :class:`ReplayGuard` when the input or parameter
        signature no longer matches the capture (callers fall back to
        eager).  The returned array is freshly owned — it never aliases
        the arena, so the next replay cannot clobber it.
        """
        # Replay must see the same memory layout capture saw (reduction
        # order follows layout); non-contiguous callers pay one copy.
        arrays = [np.ascontiguousarray(x) for x in inputs]
        if len(arrays) != len(self.input_sig):
            raise ReplayGuard(
                f"expected {len(self.input_sig)} inputs, got {len(arrays)}"
            )
        for array, (shape, dtype) in zip(arrays, self.input_sig):
            if array.shape != shape or array.dtype != dtype:
                raise ReplayGuard(
                    f"input signature mismatch: got {array.shape} {array.dtype}, "
                    f"compiled for {shape} {dtype}"
                )
        for param, (shape, dtype) in zip(self.params, self.param_sig):
            if param.data.shape != shape or param.data.dtype != dtype:
                raise ReplayGuard(
                    f"parameter signature changed since capture: got "
                    f"{param.data.shape} {param.data.dtype}, compiled for {shape} {dtype}"
                )
        profiler = _profiler._ACTIVE
        slots = self._slots
        params = self.params
        for slot, array in zip(self.trace.inputs, arrays):
            slots[slot] = array
        if self._exec is None:
            self._exec = self._build_exec()
        resolve = self._resolve
        for kernel, template, arg_fills, kw_static, kw_fills, out, step in self._exec:
            if arg_fills:
                args = template.copy()
                for position, ref in arg_fills:
                    args[position] = resolve(ref, slots, params)
            else:
                args = template
            if kw_fills:
                kwargs = dict(kw_static)
                for key, ref in kw_fills:
                    kwargs[key] = resolve(ref, slots, params)
            else:
                kwargs = kw_static
            if profiler is not None:
                start = time.perf_counter()
                value = kernel(*args, out=out, **kwargs)
                seconds = time.perf_counter() - start
            else:
                value = kernel(*args, out=out, **kwargs)
            if not isinstance(value, np.ndarray):
                # Full reductions return numpy scalars; eager wraps them
                # into 0-d arrays (Tensor.__init__), so replay must too
                # or a downstream kernel would re-coerce their dtype.
                value = np.asarray(value)
            if profiler is not None:
                profiler.record_replay(
                    step.op, seconds, 0 if step.alias_of is not None else value.nbytes
                )
            slots[step.out] = value
        result = slots[self.trace.output]
        self.replays += 1
        if profiler is not None:
            profiler.record_replay_run(self.eager_bytes, self.arena_bytes)
            # Replay time is already attributed; do not charge it to the
            # next eager op's gap.
            profiler.mark()
        # Arena and input memory is reused by the next run, so a result
        # that does not own its buffer must be copied out.  A result
        # with base=None is a fresh allocation (the output storage is
        # never arena-assigned) and can be handed over as is.
        if result.base is not None or not result.flags.owndata:
            result = result.copy()
        for slot in range(len(slots)):
            slots[slot] = None
        return result

    def _build_exec(self) -> list:
        """Pre-resolve everything static in each step.

        Constants and baked values never change between runs, and the
        arena view for each output slot is fixed by the plan — so the
        per-run work shrinks to filling slot/param references into a
        copied template.  Parameters stay dynamic on purpose: replay
        must read the *current* ``.data`` of each captured tensor.
        """
        plan = []
        static = (_VALUE, _CONST)
        for step, kernel in zip(self.steps, self._kernels):
            template: list = []
            arg_fills: list[tuple[int, tuple]] = []
            for position, ref in enumerate(step.args):
                if ref[0] in static:
                    template.append(ref[1])
                else:
                    template.append(None)
                    arg_fills.append((position, ref))
            kw_static: dict = {}
            kw_fills: list[tuple[str, tuple]] = []
            for key, ref in step.kwargs.items():
                if ref[0] in static:
                    kw_static[key] = ref[1]
                else:
                    kw_fills.append((key, ref))
            out = self._out_view(step.out, step.shape, step.dtype, step.strides)
            plan.append((kernel, template, arg_fills, kw_static, kw_fills, out, step))
        return plan

    @staticmethod
    def _resolve(ref, slots, params):
        kind = ref[0]
        if kind == _SLOT:
            return slots[ref[1]]
        if kind == _PARAM:
            return params[ref[1]].data
        if kind == _SEQ:
            return [CompiledGraph._resolve(item, slots, params) for item in ref[1]]
        return ref[1]  # _VALUE and _CONST both resolve to the payload

    # -- introspection -------------------------------------------------
    def stats(self) -> dict:
        """JSON-able summary of this graph's shape and memory plan."""
        return {
            "steps": len(self.steps),
            "dead_steps": self.dead_steps,
            "params": len(self.params),
            "eager_bytes": self.eager_bytes,
            "arena_bytes": self.arena_bytes,
            "arena_blocks": len(self.plan.blocks),
            "replays": self.replays,
        }


def compile_trace(trace: Trace) -> CompiledGraph:
    """Dead-node elimination + liveness analysis + arena assignment."""
    # 1. Dead-node elimination: keep only steps the output depends on.
    needed: set[int] = {trace.output}
    live_reversed: list[TraceStep] = []
    for step in reversed(trace.steps):
        if step.out in needed:
            live_reversed.append(step)
            needed.update(_step_input_slots(step))
            if step.alias_of is not None and step.alias_of != EXTERNAL_VIEW:
                needed.add(step.alias_of)
    live_steps = list(reversed(live_reversed))

    # 2. Storage groups: a view shares its input's storage, so the
    #    union of their lifetimes governs buffer reuse.
    storage_of: dict[int, int] = {slot: slot for slot in trace.inputs}
    for step in live_steps:
        if step.alias_of is not None:
            storage_of[step.out] = storage_of.get(step.alias_of, step.alias_of)
        else:
            storage_of[step.out] = step.out

    input_storages = {storage_of[slot] for slot in trace.inputs}
    output_storage = storage_of.get(trace.output, trace.output)

    # 3. Liveness per storage: last step index at which any slot of the
    #    storage is read or written.  The output lives past the end.
    last_use: dict[int, int] = {}
    for index, step in enumerate(live_steps):
        for slot in _step_input_slots(step) + [step.out]:
            storage = storage_of.get(slot)
            if storage is not None:
                last_use[storage] = index
    last_use[output_storage] = len(live_steps)

    # 4. Greedy arena assignment (best-fit over freed blocks).  The
    #    output storage is excluded: its value must survive the run, so
    #    a non-view final step simply writes a fresh array.
    plan = ArenaPlan()
    free_blocks: list[int] = []
    next_block = 0
    release_at: dict[int, list[int]] = {}
    for index, step in enumerate(live_steps):
        if step.alias_of is None:
            storage = storage_of[step.out]
            if storage not in input_storages and storage != output_storage:
                nbytes = int(np.prod(step.shape)) * step.dtype.itemsize
                best = None
                for block_id in free_blocks:
                    capacity = plan.blocks[block_id]
                    if capacity >= nbytes and (
                        best is None or capacity < plan.blocks[best]
                    ):
                        best = block_id
                if best is not None:
                    free_blocks.remove(best)
                    block_id = best
                elif free_blocks:
                    # No free block is big enough: grow the largest one
                    # rather than adding a new block.  Capacities are
                    # plan-time numbers (blocks are materialized lazily),
                    # so growing is free and strictly shrinks the arena
                    # versus keeping the too-small block around.
                    block_id = max(free_blocks, key=plan.blocks.__getitem__)
                    free_blocks.remove(block_id)
                    plan.blocks[block_id] = nbytes
                else:
                    block_id = next_block
                    next_block += 1
                    plan.blocks[block_id] = nbytes
                plan.buffers[step.out] = (block_id, nbytes)
                release_at.setdefault(last_use[storage], []).append(block_id)
        # Release buffers after their storage's last use so a step's
        # output block can never alias one of its own inputs.
        for block_id in release_at.pop(index, ()):
            free_blocks.append(block_id)

    return CompiledGraph(trace, live_steps, plan)


# ----------------------------------------------------------------------
# Validation + caching
# ----------------------------------------------------------------------
def capture_compiled(
    fn: Callable[..., Tensor],
    inputs: Sequence[np.ndarray],
    validate: bool = True,
) -> CompiledGraph | None:
    """Capture and compile ``fn``; ``None`` when it must stay eager.

    ``validate=True`` replays the compiled graph on *perturbed* inputs
    and requires bit-identity with an eager pass — this catches both
    data-dependent constants accidentally baked into the trace and any
    kernel that fails exact parity on this platform.
    """
    try:
        trace = capture(fn, inputs)
    except TraceError:
        return None
    graph = compile_trace(trace)
    if validate:
        rng = np.random.default_rng(0x5EED)
        probes = []
        for shape, dtype in graph.input_sig:
            if np.dtype(dtype).kind == "f":
                probes.append(rng.standard_normal(shape).astype(dtype))
            else:
                probes.append(np.zeros(shape, dtype=dtype))
        try:
            with no_grad():
                eager = fn(*[Tensor(p) for p in probes])
            replayed = graph.run(probes)
        except Exception:
            return None
        if not isinstance(eager, Tensor):
            return None
        expected = eager.data
        if (
            expected.shape != replayed.shape
            or expected.dtype != replayed.dtype
            or not np.array_equal(expected, replayed, equal_nan=True)
        ):
            return None
    return graph


class GraphCache:
    """Per-model cache of compiled inference graphs, keyed by input signature.

    ``run(fn, array)`` returns the replayed result, or ``None`` when
    the caller should execute eagerly (compilation disabled, capture
    failed validation, or a replay guard tripped).  A failed capture is
    remembered per key so the eager fallback costs one dict lookup.
    """

    def __init__(self, max_entries: int = 8) -> None:
        self.max_entries = max_entries
        self._entries: dict[tuple, CompiledGraph | None] = {}
        self.hits = 0
        self.misses = 0
        self.fallbacks = 0

    def run(self, fn: Callable[[Tensor], Tensor], array: np.ndarray) -> np.ndarray | None:
        """Replay ``fn`` on ``array`` via the cached graph for its bucket.

        Captures + compiles on first sight of a ``(shape, dtype)``
        bucket (counted as a miss; LRU-evicting past ``max_entries``),
        replays on later calls (counted as hits).  Returns ``None``
        whenever the caller must run eager instead: compilation
        disabled, an outer capture in progress, the bucket validated
        as eager-only, or a :class:`ReplayGuard` fallback.
        """
        if not compile_enabled() or _tensor._TRACER is not None:
            return None
        key = (array.shape, array.dtype.str)
        fresh = key not in self._entries
        if fresh:
            self.misses += 1
            if len(self._entries) >= self.max_entries:
                self._entries.pop(next(iter(self._entries)))
            self._entries[key] = capture_compiled(fn, [array])
        graph = self._entries[key]
        if graph is None:
            self.fallbacks += 1
            return None
        try:
            result = graph.run([array])
        except ReplayGuard:
            self.fallbacks += 1
            return None
        if not fresh:
            self.hits += 1
        return result

    def graphs(self) -> list[CompiledGraph]:
        """The currently cached compiled graphs (eager sentinels excluded)."""
        return [g for g in self._entries.values() if g is not None]

    def clear(self) -> None:
        """Drop every cached graph (weights reloaded, model mutated)."""
        self._entries.clear()

    def stats(self) -> dict:
        """JSON-able cache counters plus per-graph summaries."""
        return {
            "entries": len(self._entries),
            "compiled": len(self.graphs()),
            "hits": self.hits,
            "misses": self.misses,
            "fallbacks": self.fallbacks,
            "graphs": [g.stats() for g in self.graphs()],
        }

    def __len__(self) -> int:
        return len(self._entries)
