"""Weight initialisation schemes.

All initialisers take an explicit ``numpy.random.Generator`` so model
construction is fully reproducible from a seed.  Outputs materialise
in the global default dtype (:mod:`repro.nn.dtype`); random draws
happen in float64 and are then cast, so a given seed produces the
same weights (up to rounding) under every dtype policy.
"""

from __future__ import annotations

import math

import numpy as np

from .dtype import get_default_dtype

__all__ = [
    "xavier_uniform",
    "xavier_normal",
    "kaiming_uniform",
    "normal",
    "zeros",
    "ones",
]


def _fan_in_out(shape: tuple[int, ...]) -> tuple[int, int]:
    if len(shape) < 2:
        raise ValueError(f"fan in/out undefined for shape {shape}")
    receptive = int(np.prod(shape[2:])) if len(shape) > 2 else 1
    fan_in = shape[1] * receptive
    fan_out = shape[0] * receptive
    return fan_in, fan_out


def xavier_uniform(shape: tuple[int, ...], rng: np.random.Generator, gain: float = 1.0) -> np.ndarray:
    """Glorot uniform: U(-a, a) with a = gain * sqrt(6 / (fan_in + fan_out))."""
    fan_in, fan_out = _fan_in_out(shape)
    bound = gain * math.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape).astype(get_default_dtype(), copy=False)


def xavier_normal(shape: tuple[int, ...], rng: np.random.Generator, gain: float = 1.0) -> np.ndarray:
    """Glorot normal: N(0, gain^2 * 2 / (fan_in + fan_out))."""
    fan_in, fan_out = _fan_in_out(shape)
    std = gain * math.sqrt(2.0 / (fan_in + fan_out))
    return rng.normal(0.0, std, size=shape).astype(get_default_dtype(), copy=False)


def kaiming_uniform(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """He uniform initialisation for ReLU-family activations."""
    fan_in, _ = _fan_in_out(shape)
    bound = math.sqrt(6.0 / fan_in)
    return rng.uniform(-bound, bound, size=shape).astype(get_default_dtype(), copy=False)


def normal(shape: tuple[int, ...], rng: np.random.Generator, std: float = 0.02) -> np.ndarray:
    """Plain Gaussian initialisation (transformer embedding convention)."""
    return rng.normal(0.0, std, size=shape).astype(get_default_dtype(), copy=False)


def zeros(shape: tuple[int, ...]) -> np.ndarray:
    """All-zero array of the given shape (bias convention)."""
    return np.zeros(shape, dtype=get_default_dtype())


def ones(shape: tuple[int, ...]) -> np.ndarray:
    """All-one array of the given shape (LayerNorm weight convention)."""
    return np.ones(shape, dtype=get_default_dtype())
