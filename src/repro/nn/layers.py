"""Core neural-network layers: Linear, LayerNorm, Dropout, Embedding, Conv1d."""

from __future__ import annotations

import numpy as np

from . import functional as F
from . import init
from .module import Module, Parameter
from .tensor import Tensor, as_tensor

__all__ = ["Linear", "LayerNorm", "Dropout", "Embedding", "Conv1d", "GELU", "ReLU"]


class Linear(Module):
    """Affine map ``y = x @ W.T + b`` over the trailing dimension.

    Parameters
    ----------
    in_features, out_features:
        Input / output widths.
    bias:
        Whether to learn an additive bias.
    rng:
        Generator for weight initialisation (Xavier uniform).
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.xavier_uniform((out_features, in_features), rng))
        self.bias = Parameter(init.zeros((out_features,))) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        """Affine map over the trailing dim: (..., in) -> (..., out)."""
        x = as_tensor(x)
        out = x @ self.weight.transpose()
        if self.bias is not None:
            out = out + self.bias
        return out

    def __repr__(self) -> str:
        return f"Linear({self.in_features}, {self.out_features}, bias={self.bias is not None})"


class LayerNorm(Module):
    """Layer normalisation with learnable affine parameters."""

    def __init__(self, normalized_shape: int, eps: float = 1e-5) -> None:
        super().__init__()
        self.normalized_shape = normalized_shape
        self.eps = eps
        self.weight = Parameter(init.ones((normalized_shape,)))
        self.bias = Parameter(init.zeros((normalized_shape,)))

    def forward(self, x: Tensor) -> Tensor:
        """Normalise the trailing dimension, then apply the affine."""
        return F.layer_norm(x, self.weight, self.bias, eps=self.eps)

    def __repr__(self) -> str:
        return f"LayerNorm({self.normalized_shape})"


class Dropout(Module):
    """Inverted dropout; identity in eval mode."""

    def __init__(self, p: float = 0.1, rng: np.random.Generator | None = None) -> None:
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        self.p = p
        self._rng = rng if rng is not None else np.random.default_rng()

    def forward(self, x: Tensor) -> Tensor:
        """Randomly zero entries in training mode; identity in eval."""
        return F.dropout(x, self.p, self.training, self._rng)

    def __repr__(self) -> str:
        return f"Dropout(p={self.p})"


class Embedding(Module):
    """Lookup table mapping integer ids to learned vectors."""

    def __init__(
        self,
        num_embeddings: int,
        embedding_dim: int,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        self.num_embeddings = num_embeddings
        self.embedding_dim = embedding_dim
        self.weight = Parameter(init.normal((num_embeddings, embedding_dim), rng))

    def forward(self, ids) -> Tensor:
        """Gather embedding rows: integer ids (...,) -> (..., dim)."""
        ids = np.asarray(ids.data if isinstance(ids, Tensor) else ids, dtype=np.int64)
        if ids.min(initial=0) < 0 or ids.max(initial=0) >= self.num_embeddings:
            raise IndexError(
                f"embedding ids out of range [0, {self.num_embeddings}): "
                f"min={ids.min()}, max={ids.max()}"
            )
        return self.weight[ids]

    def __repr__(self) -> str:
        return f"Embedding({self.num_embeddings}, {self.embedding_dim})"


class Conv1d(Module):
    """1D convolution over (batch, channels, length) via im2col matmul."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        bias: bool = True,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        self.weight = Parameter(
            init.kaiming_uniform((out_channels, in_channels, kernel_size), rng)
        )
        self.bias = Parameter(init.zeros((out_channels,))) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        """Correlate kernels over (B, C_in, L) -> (B, C_out, L_out)."""
        x = as_tensor(x)
        batch, channels, length = x.shape
        if channels != self.in_channels:
            raise ValueError(f"expected {self.in_channels} channels, got {channels}")
        if self.padding:
            x = _pad_length(x, self.padding)
            length = length + 2 * self.padding
        out_length = (length - self.kernel_size) // self.stride + 1
        if out_length <= 0:
            raise ValueError(
                f"input length {length} too short for kernel {self.kernel_size}"
            )
        # im2col: gather sliding windows, (B, out_len, C * K)
        starts = np.arange(out_length) * self.stride
        window_index = starts[:, None] + np.arange(self.kernel_size)[None, :]
        # x: (B, C, L) -> windows (B, C, out_len, K)
        windows = x.transpose(0, 2, 1)[:, window_index, :]  # (B, out_len, K, C)
        cols = windows.transpose(0, 1, 3, 2).reshape(batch, out_length, channels * self.kernel_size)
        kernel = self.weight.reshape(self.out_channels, channels * self.kernel_size)
        out = cols @ kernel.transpose()  # (B, out_len, out_channels)
        if self.bias is not None:
            out = out + self.bias
        return out.transpose(0, 2, 1)

    def __repr__(self) -> str:
        return (
            f"Conv1d({self.in_channels}, {self.out_channels}, "
            f"kernel_size={self.kernel_size}, stride={self.stride})"
        )


def _pad_length(x: Tensor, padding: int) -> Tensor:
    """Zero-pad the last axis of a (B, C, L) tensor on both sides."""
    from .tensor import concatenate

    batch, channels, _ = x.shape
    zeros_block = Tensor(np.zeros((batch, channels, padding), dtype=x.data.dtype))
    return concatenate([zeros_block, x, zeros_block], axis=2)


class GELU(Module):
    """GELU activation as a module, for use in :class:`Sequential`."""

    def forward(self, x: Tensor) -> Tensor:
        """Apply GELU elementwise."""
        return F.gelu(x)


class ReLU(Module):
    """ReLU activation as a module, for use in :class:`Sequential`."""

    def forward(self, x: Tensor) -> Tensor:
        """Apply ReLU elementwise."""
        return F.relu(x)
