"""Module base class and parameter container for ``repro.nn``.

Mirrors the (subset of the) ``torch.nn.Module`` contract the rest of
the codebase needs: recursive parameter discovery, train/eval mode,
freezing, and state-dict export/import.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from .dtype import get_default_dtype
from .tensor import Tensor

__all__ = ["Parameter", "Module", "Sequential"]


class Parameter(Tensor):
    """A :class:`Tensor` that is registered as trainable by modules."""

    def __init__(self, data, name: str | None = None) -> None:
        super().__init__(data, requires_grad=True, name=name)


class Module:
    """Base class for neural-network components.

    Subclasses assign :class:`Parameter` and :class:`Module` instances
    as attributes; those are discovered automatically by
    :meth:`parameters`, :meth:`named_parameters` and
    :meth:`state_dict`.
    """

    def __init__(self) -> None:
        self.training = True

    # ------------------------------------------------------------------
    # Discovery
    # ------------------------------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        """Yield ``(dotted_name, parameter)`` pairs, depth-first."""
        for name, value in vars(self).items():
            full_name = f"{prefix}{name}"
            if isinstance(value, Parameter):
                yield full_name, value
            elif isinstance(value, Module):
                yield from value.named_parameters(prefix=f"{full_name}.")
            elif isinstance(value, (list, tuple)):
                for index, item in enumerate(value):
                    if isinstance(item, Module):
                        yield from item.named_parameters(prefix=f"{full_name}.{index}.")
                    elif isinstance(item, Parameter):
                        yield f"{full_name}.{index}", item

    def parameters(self) -> list[Parameter]:
        """Return all parameters in this module tree."""
        return [param for _, param in self.named_parameters()]

    def trainable_parameters(self) -> list[Parameter]:
        """Return parameters that currently require gradients."""
        return [param for param in self.parameters() if param.requires_grad]

    def modules(self) -> Iterator["Module"]:
        """Yield this module and every descendant module."""
        yield self
        for value in vars(self).values():
            if isinstance(value, Module):
                yield from value.modules()
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        yield from item.modules()

    def num_parameters(self, trainable_only: bool = False) -> int:
        """Total scalar parameter count."""
        params = self.trainable_parameters() if trainable_only else self.parameters()
        return int(sum(p.size for p in params))

    @property
    def dtype(self) -> np.dtype:
        """Floating dtype of this module's parameters.

        Models cast their inputs to this at the encode boundary so a
        float64 data array cannot silently upcast a float32 graph.
        Parameter-free modules report the global default dtype.
        """
        for _, param in self.named_parameters():
            return param.data.dtype
        return get_default_dtype()

    # ------------------------------------------------------------------
    # Mode / freezing
    # ------------------------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        """Set training mode recursively (affects dropout etc.)."""
        for module in self.modules():
            module.training = mode
        return self

    def eval(self) -> "Module":
        """Set evaluation mode (disables dropout etc.)."""
        return self.train(False)

    def freeze(self) -> "Module":
        """Stop gradient flow into every parameter of this subtree."""
        for param in self.parameters():
            param.requires_grad = False
        return self

    def unfreeze(self) -> "Module":
        """Re-enable gradients for every parameter of this subtree."""
        for param in self.parameters():
            param.requires_grad = True
        return self

    def zero_grad(self) -> None:
        """Clear the gradients of every parameter in the tree."""
        for param in self.parameters():
            param.grad = None

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------
    def state_dict(self) -> dict[str, np.ndarray]:
        """Return a name -> array snapshot of all parameters (copies)."""
        return {name: param.data.copy() for name, param in self.named_parameters()}

    def load_state_dict(
        self, state: dict[str, np.ndarray], preserve_dtype: bool = False
    ) -> None:
        """Load a snapshot produced by :meth:`state_dict`.

        Raises ``KeyError`` on missing entries and ``ValueError`` on
        shape mismatches, so silent weight corruption is impossible.

        ``preserve_dtype=False`` (the default) casts values into each
        parameter's current dtype — the right behaviour when copying
        weights between live models that must keep their compute
        dtype.  ``preserve_dtype=True`` adopts the *stored* floating
        dtype instead, so a float32 checkpoint restored under a
        float64 default (or vice versa) round-trips per-parameter
        precision exactly; non-float entries still follow the
        parameter's dtype.
        """
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        if missing:
            raise KeyError(f"state dict is missing parameters: {sorted(missing)}")
        for name, param in own.items():
            value = np.asarray(state[name])
            if value.shape != param.data.shape:
                raise ValueError(
                    f"shape mismatch for {name!r}: expected {param.data.shape}, "
                    f"got {value.shape}"
                )
            if preserve_dtype and value.dtype.kind == "f":
                param.data = value.copy()
            else:
                param.data = value.astype(param.data.dtype, copy=True)
        # Compiled replay graphs hold parameters by object reference;
        # swapping .data arrays is picked up automatically, but dtype
        # or shape drift must not serve a stale program.
        self.invalidate_graphs()

    def invalidate_graphs(self) -> None:
        """Drop compiled replay graphs cached anywhere in this module tree.

        Modules that route inference through :mod:`repro.nn.graph`
        store a :class:`~repro.nn.graph.GraphCache` under a
        ``_graph_cache`` attribute (invisible to parameter discovery
        and ``state_dict``); this clears every such cache so the next
        inference call re-captures against the current weights.
        """
        for module in self.modules():
            cache = getattr(module, "_graph_cache", None)
            if cache is not None:
                cache.clear()

    # ------------------------------------------------------------------
    # Call protocol
    # ------------------------------------------------------------------
    def forward(self, *args, **kwargs):
        """Compute the module's output; subclasses must override."""
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)


class Sequential(Module):
    """Apply a list of modules in order."""

    def __init__(self, *layers: Module) -> None:
        super().__init__()
        self.layers = list(layers)

    def forward(self, x):
        """Thread ``x`` through every layer in order."""
        for layer in self.layers:
            x = layer(x)
        return x

    def __len__(self) -> int:
        return len(self.layers)

    def __getitem__(self, index: int) -> Module:
        return self.layers[index]
