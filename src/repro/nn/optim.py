"""Optimizers and learning-rate schedulers."""

from __future__ import annotations

import math
from typing import Iterable

import numpy as np

from .module import Parameter

__all__ = [
    "Optimizer",
    "SGD",
    "Adam",
    "AdamW",
    "clip_grad_norm",
    "CosineSchedule",
    "WarmupCosineSchedule",
]


class Optimizer:
    """Base optimizer operating on a fixed parameter list.

    Parameters whose ``requires_grad`` flag is False at construction
    time are excluded, matching how the fine-tuning strategies freeze
    encoder weights before building the optimizer.
    """

    def __init__(self, params: Iterable[Parameter], lr: float) -> None:
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.params = [p for p in params if p.requires_grad]
        self.lr = lr

    def zero_grad(self) -> None:
        """Clear stored gradients before the next backward pass."""
        for param in self.params:
            param.grad = None

    def step(self) -> None:
        """Apply one update from the current gradients."""
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum.

    The update runs entirely through ``out=`` ufuncs on a preallocated
    per-parameter scratch buffer — zero temporaries per step.
    """

    def __init__(self, params: Iterable[Parameter], lr: float, momentum: float = 0.0) -> None:
        super().__init__(params, lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in self.params]
        self._scratch = [np.empty_like(p.data) for p in self.params]

    def step(self) -> None:
        """SGD update: ``p -= lr * (momentum-smoothed) grad``."""
        for param, velocity, scratch in zip(self.params, self._velocity, self._scratch):
            if param.grad is None:
                continue
            if self.momentum:
                velocity *= self.momentum
                velocity += param.grad
                np.multiply(velocity, self.lr, out=scratch)
            else:
                np.multiply(param.grad, self.lr, out=scratch)
            np.subtract(param.data, scratch, out=param.data)


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2015) with bias correction.

    The step is expressed through ``out=`` ufuncs over two preallocated
    scratch buffers per parameter, replacing the ~5 fresh temporaries
    the textbook formulation allocates per parameter per step.  The
    operation order matches the textbook form exactly, so the update is
    bit-for-bit identical to the reference implementation (asserted in
    tests/nn/test_optim_inplace.py).
    """

    def __init__(
        self,
        params: Iterable[Parameter],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._step_count = 0
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]
        self._num = [np.empty_like(p.data) for p in self.params]
        self._den = [np.empty_like(p.data) for p in self.params]

    def step(self) -> None:
        """Adam update with bias-corrected first/second moments."""
        self._step_count += 1
        bias1 = 1.0 - self.beta1**self._step_count
        bias2 = 1.0 - self.beta2**self._step_count
        for param, m, v, num, den in zip(
            self.params, self._m, self._v, self._num, self._den
        ):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                # grad + wd * p, staged in `num` (free until the
                # numerator is needed, by which point m/v are updated).
                np.multiply(param.data, self.weight_decay, out=num)
                np.add(grad, num, out=num)
                grad = num
            # m = beta1*m + (1-beta1)*grad
            m *= self.beta1
            np.multiply(grad, 1.0 - self.beta1, out=den)
            m += den
            # v = beta2*v + (1-beta2)*grad^2
            v *= self.beta2
            np.multiply(grad, grad, out=den)
            den *= 1.0 - self.beta2
            v += den
            # p -= lr * (m/bias1) / (sqrt(v/bias2) + eps)
            np.divide(v, bias2, out=den)
            np.sqrt(den, out=den)
            den += self.eps
            np.divide(m, bias1, out=num)
            num *= self.lr
            np.divide(num, den, out=num)
            np.subtract(param.data, num, out=param.data)


class AdamW(Adam):
    """Adam with decoupled weight decay (Loshchilov & Hutter, 2019)."""

    def __init__(
        self,
        params: Iterable[Parameter],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.01,
    ) -> None:
        super().__init__(params, lr, betas=betas, eps=eps, weight_decay=0.0)
        self.decoupled_weight_decay = weight_decay

    def step(self) -> None:
        """Decoupled decay (``p *= 1 - lr*wd``) then the Adam update."""
        if self.decoupled_weight_decay:
            decay = self.lr * self.decoupled_weight_decay
            for param, num in zip(self.params, self._num):
                if param.grad is not None:
                    np.multiply(param.data, decay, out=num)
                    np.subtract(param.data, num, out=param.data)
        super().step()


def clip_grad_norm(params: Iterable[Parameter], max_norm: float) -> float:
    """Rescale gradients in place so their global L2 norm <= max_norm.

    Returns the pre-clipping norm (useful for logging).  The common
    case is a single BLAS dot product per gradient — no temporaries,
    one pass.  Overflow safety is preserved: if the squared sum leaves
    float range (gradient spikes ~1e200 in float64, ~1e19 in float32),
    the norm is recomputed on gradients pre-scaled by their largest
    magnitude, exactly as the original two-pass implementation did.
    """
    grads = [p.grad for p in params if p.grad is not None]
    if not grads:
        return 0.0
    total_sq = 0.0
    with np.errstate(over="ignore"):
        for grad in grads:
            flat = grad.reshape(-1)
            total_sq += float(np.dot(flat, flat))
    total = math.sqrt(total_sq) if total_sq > 0.0 else 0.0
    if not math.isfinite(total):
        peak = max(float(np.abs(grad).max(initial=0.0)) for grad in grads)
        if peak == 0.0:
            return 0.0
        total = peak * math.sqrt(sum(float(((g / peak) ** 2).sum()) for g in grads))
    if total == 0.0:
        return 0.0
    if total > max_norm:
        scale = max_norm / total
        for grad in grads:
            grad *= scale
    return total


class CosineSchedule:
    """Cosine decay from ``lr`` to ``min_lr`` over ``total_steps``."""

    def __init__(self, optimizer: Optimizer, total_steps: int, min_lr: float = 0.0) -> None:
        if total_steps <= 0:
            raise ValueError("total_steps must be positive")
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.min_lr = min_lr
        self.total_steps = total_steps
        self._step_count = 0

    def step(self) -> float:
        """Advance one step; sets and returns the optimizer's new lr."""
        self._step_count = min(self._step_count + 1, self.total_steps)
        progress = self._step_count / self.total_steps
        lr = self.min_lr + 0.5 * (self.base_lr - self.min_lr) * (1 + math.cos(math.pi * progress))
        self.optimizer.lr = lr
        return lr


class WarmupCosineSchedule:
    """Linear warmup followed by cosine decay (transformer convention)."""

    def __init__(
        self,
        optimizer: Optimizer,
        warmup_steps: int,
        total_steps: int,
        min_lr: float = 0.0,
    ) -> None:
        if warmup_steps < 0 or total_steps <= warmup_steps:
            raise ValueError("need 0 <= warmup_steps < total_steps")
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.warmup_steps = warmup_steps
        self.total_steps = total_steps
        self.min_lr = min_lr
        self._step_count = 0

    def step(self) -> float:
        """Advance one step; sets and returns the optimizer's new lr."""
        self._step_count = min(self._step_count + 1, self.total_steps)
        if self.warmup_steps and self._step_count <= self.warmup_steps:
            lr = self.base_lr * self._step_count / self.warmup_steps
        else:
            progress = (self._step_count - self.warmup_steps) / (
                self.total_steps - self.warmup_steps
            )
            lr = self.min_lr + 0.5 * (self.base_lr - self.min_lr) * (
                1 + math.cos(math.pi * progress)
            )
        self.optimizer.lr = lr
        return lr
