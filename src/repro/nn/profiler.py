"""Opt-in op-level profiler for the ``repro.nn`` autodiff stack.

When a profile is active, :meth:`Tensor._make` reports every graph
node it creates and :meth:`Tensor.backward` times every backward
function it runs.  The profiler aggregates three things per op type
(``matmul``, ``layer_norm``, ``softmax``, ...):

* **calls** — how many nodes of that type were created;
* **bytes** — output bytes allocated by those nodes;
* **seconds** — wall time attributed to the op, split into forward
  and backward.

Backward timings are exact (each backward closure is timed directly).
Forward timings are *gap-attributed*: the interval between two
consecutive node creations is charged to the later op, because the op
computes its output immediately before registering the node.  In the
single-threaded numpy stack this is accurate to within python dispatch
overhead; time spent outside tensor ops (data indexing, the optimizer)
accrues to whatever op runs next, so callers that want clean phase
boundaries call :meth:`OpProfiler.mark` between phases — the trainer
does this around each step's non-graph work.

Usage::

    from repro.nn import profiler

    with profiler.profile() as prof:
        loss = model(x)          # any tensor code
        loss.backward()
    print(prof.render())

Overhead when inactive is one module-attribute check per node; when
active, a ``perf_counter`` pair and two dict updates per node.
"""

from __future__ import annotations

import contextlib
import time
from dataclasses import dataclass, field

__all__ = [
    "OpStats",
    "OpProfiler",
    "profile",
    "active_profiler",
    "render_ops",
    "render_replay_ops",
]

#: The currently active profiler (module-global, like grad mode).
_ACTIVE: "OpProfiler | None" = None


def active_profiler() -> "OpProfiler | None":
    """The profiler installed by :func:`profile`, if any."""
    return _ACTIVE


def _op_name(code) -> str:
    """Derive the op name from a backward closure's code object.

    ``Tensor.__matmul__.<locals>.backward`` -> ``matmul``;
    ``layer_norm.<locals>.backward`` -> ``layer_norm``.
    """
    qualname = code.co_qualname if hasattr(code, "co_qualname") else code.co_name
    head = qualname.split(".<locals>", 1)[0]
    name = head.rsplit(".", 1)[-1]
    return name.strip("_") or name


@dataclass
class OpStats:
    """Aggregated statistics for one op type."""

    calls: int = 0
    bytes: int = 0
    forward_s: float = 0.0
    backward_s: float = 0.0
    backward_calls: int = 0

    @property
    def total_s(self) -> float:
        return self.forward_s + self.backward_s

    def to_dict(self) -> dict:
        """JSON-able snapshot (inverse of :meth:`from_dict`)."""
        return {
            "calls": self.calls,
            "bytes": self.bytes,
            "forward_s": self.forward_s,
            "backward_s": self.backward_s,
            "backward_calls": self.backward_calls,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "OpStats":
        """Rebuild stats from :meth:`to_dict` output (tolerant)."""
        return cls(
            calls=int(data.get("calls", 0)),
            bytes=int(data.get("bytes", 0)),
            forward_s=float(data.get("forward_s", 0.0)),
            backward_s=float(data.get("backward_s", 0.0)),
            backward_calls=int(data.get("backward_calls", 0)),
        )


class OpProfiler:
    """Per-op-type call counts, output bytes and wall time."""

    def __init__(self) -> None:
        self.ops: dict[str, OpStats] = {}
        #: per-op stats of compiled-graph replays (repro.nn.graph);
        #: kept separate from the eager tape stats so the two execution
        #: modes can be compared side by side.
        self.replay_ops: dict[str, OpStats] = {}
        self.replay_runs = 0
        self.replay_bytes_saved = 0
        self._names: dict[int, str] = {}  # id(code object) -> op name
        self._last: float | None = None

    # -- hooks (called from Tensor) ------------------------------------
    def _resolve(self, code) -> str:
        name = self._names.get(id(code))
        if name is None:
            name = _op_name(code)
            self._names[id(code)] = name
        return name

    def _stats(self, name: str) -> OpStats:
        stats = self.ops.get(name)
        if stats is None:
            stats = self.ops[name] = OpStats()
        return stats

    def record_make(self, code, nbytes: int) -> None:
        """Register a freshly created graph node (called by ``_make``)."""
        now = time.perf_counter()
        stats = self._stats(self._resolve(code))
        stats.calls += 1
        stats.bytes += int(nbytes)
        if self._last is not None:
            stats.forward_s += now - self._last
        self._last = now

    def record_backward(self, code, seconds: float) -> None:
        """Register one timed backward-closure invocation."""
        stats = self._stats(self._resolve(code))
        stats.backward_calls += 1
        stats.backward_s += seconds

    def record_replay(self, name: str, seconds: float, nbytes: int) -> None:
        """Register one compiled-graph op execution (CompiledGraph.run)."""
        stats = self.replay_ops.get(name)
        if stats is None:
            stats = self.replay_ops[name] = OpStats()
        stats.calls += 1
        stats.bytes += int(nbytes)
        stats.forward_s += seconds

    def record_replay_run(self, eager_bytes: int, arena_bytes: int) -> None:
        """Register one full graph replay and its allocation savings."""
        self.replay_runs += 1
        self.replay_bytes_saved += max(0, int(eager_bytes) - int(arena_bytes))

    def mark(self) -> None:
        """Reset the forward gap clock at a phase boundary.

        Call between graph-building phases so time spent in non-tensor
        code (optimizer steps, data indexing) is not attributed to the
        next op.
        """
        self._last = time.perf_counter()

    # -- reporting -----------------------------------------------------
    def summary(self) -> dict[str, dict]:
        """JSON-able ``{op: {calls, bytes, forward_s, backward_s, ...}}``."""
        return {name: stats.to_dict() for name, stats in sorted(self.ops.items())}

    def replay_summary(self) -> dict:
        """JSON-able replay view: per-op stats, run count and bytes saved.

        ``ops`` uses the same per-op dict shape as :meth:`summary`
        (``backward_s`` is always zero — replays are inference-only);
        ``bytes_saved`` accumulates, per replay, how many intermediate
        output bytes the arena plan avoided allocating versus eager.
        """
        return {
            "ops": {name: s.to_dict() for name, s in sorted(self.replay_ops.items())},
            "runs": self.replay_runs,
            "bytes_saved": self.replay_bytes_saved,
        }

    def total_bytes(self) -> int:
        """Bytes allocated by all recorded graph-node outputs."""
        return sum(stats.bytes for stats in self.ops.values())

    def total_seconds(self) -> float:
        """Forward + backward seconds over every recorded op."""
        return sum(stats.total_s for stats in self.ops.values())

    def render(self, top: int | None = None) -> str:
        """Human-readable table, hottest ops (by total time) first."""
        return render_ops(self.summary(), top=top)


def render_ops(ops: dict[str, dict], top: int | None = None) -> str:
    """Render a ``{op: stats-dict}`` table (from :meth:`OpProfiler.summary`,
    ``TrainResult.op_profile`` or ``RunSummary.ops``), hottest first."""
    stats_by_name = {name: OpStats.from_dict(data) for name, data in ops.items()}
    rows = sorted(stats_by_name.items(), key=lambda kv: kv[1].total_s, reverse=True)
    if top is not None:
        rows = rows[:top]
    header = f"{'op':<16} {'calls':>8} {'fwd_s':>9} {'bwd_s':>9} {'MiB':>9}"
    lines = [header, "-" * len(header)]
    for name, stats in rows:
        lines.append(
            f"{name:<16} {stats.calls:>8} {stats.forward_s:>9.4f} "
            f"{stats.backward_s:>9.4f} {stats.bytes / 1024**2:>9.2f}"
        )
    lines.append(
        f"{'total':<16} {sum(s.calls for _, s in rows):>8} "
        f"{sum(s.forward_s for _, s in rows):>9.4f} "
        f"{sum(s.backward_s for _, s in rows):>9.4f} "
        f"{sum(s.bytes for _, s in rows) / 1024**2:>9.2f}"
    )
    return "\n".join(lines)


def render_replay_ops(replay: dict, top: int | None = None) -> str:
    """Render a replay summary (from :meth:`OpProfiler.replay_summary`).

    Shows the per-op table of compiled-graph executions followed by the
    run count and the intermediate bytes the arena plan saved.
    """
    ops = replay.get("ops", {})
    stats_by_name = {name: OpStats.from_dict(data) for name, data in ops.items()}
    rows = sorted(stats_by_name.items(), key=lambda kv: kv[1].forward_s, reverse=True)
    if top is not None:
        rows = rows[:top]
    header = f"{'replayed op':<16} {'calls':>8} {'time_s':>9} {'MiB':>9}"
    lines = [header, "-" * len(header)]
    for name, stats in rows:
        lines.append(
            f"{name:<16} {stats.calls:>8} {stats.forward_s:>9.4f} "
            f"{stats.bytes / 1024**2:>9.2f}"
        )
    lines.append(
        f"{'total':<16} {sum(s.calls for _, s in rows):>8} "
        f"{sum(s.forward_s for _, s in rows):>9.4f} "
        f"{sum(s.bytes for _, s in rows) / 1024**2:>9.2f}"
    )
    lines.append(
        f"graph replays: {replay.get('runs', 0)}   "
        f"arena bytes saved: {replay.get('bytes_saved', 0) / 1024**2:.2f} MiB"
    )
    return "\n".join(lines)


@dataclass
class _ProfileHandle:
    profiler: OpProfiler = field(default_factory=OpProfiler)


@contextlib.contextmanager
def profile():
    """Activate op-level profiling for the enclosed block.

    Yields the :class:`OpProfiler`; nesting reuses the outer profiler
    so library code can profile unconditionally without clobbering a
    caller's session.
    """
    global _ACTIVE
    outer = _ACTIVE
    prof = outer if outer is not None else OpProfiler()
    _ACTIVE = prof
    prof.mark()
    try:
        yield prof
    finally:
        _ACTIVE = outer
