"""Checkpoint save/load for modules (numpy ``.npz`` format)."""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from .module import Module

__all__ = ["save_checkpoint", "load_checkpoint"]

_META_KEY = "__checkpoint_meta__"


def save_checkpoint(module: Module, path: str | Path, metadata: dict | None = None) -> Path:
    """Serialise ``module.state_dict()`` plus optional JSON metadata.

    Returns the path written (with ``.npz`` suffix enforced).
    """
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(".npz")
    path.parent.mkdir(parents=True, exist_ok=True)
    state = module.state_dict()
    if _META_KEY in state:
        raise ValueError(f"parameter name collides with reserved key {_META_KEY!r}")
    meta_blob = np.frombuffer(
        json.dumps(metadata or {}).encode("utf-8"), dtype=np.uint8
    ).copy()
    np.savez(path, **state, **{_META_KEY: meta_blob})
    return path


def load_checkpoint(module: Module, path: str | Path) -> dict:
    """Load weights saved by :func:`save_checkpoint`; returns metadata."""
    path = Path(path)
    if not path.exists() and path.suffix != ".npz":
        path = path.with_suffix(".npz")
    with np.load(path) as archive:
        state = {key: archive[key] for key in archive.files if key != _META_KEY}
        metadata = {}
        if _META_KEY in archive.files:
            metadata = json.loads(archive[_META_KEY].tobytes().decode("utf-8"))
    module.load_state_dict(state)
    return metadata
