"""Checkpoint save/load for modules (numpy ``.npz`` format)."""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

import numpy as np

from .module import Module

__all__ = ["save_checkpoint", "load_checkpoint", "array_digest", "state_dict_digest"]

_META_KEY = "__checkpoint_meta__"


def array_digest(array: np.ndarray, hasher=None) -> str:
    """Stable content digest of one array (shape + dtype + bytes).

    The shape/dtype prefix distinguishes arrays whose raw bytes
    coincide (e.g. a (2, 3) and a (3, 2) float matrix, or int8 vs
    uint8 views of the same buffer).
    """
    h = hasher if hasher is not None else hashlib.blake2b(digest_size=16)
    array = np.ascontiguousarray(array)
    h.update(repr(array.shape).encode("ascii"))
    h.update(str(array.dtype).encode("ascii"))
    h.update(array.tobytes())
    return h.hexdigest()


def state_dict_digest(state: dict[str, np.ndarray]) -> str:
    """Stable content digest of a ``state_dict``-style mapping.

    Parameter names participate in the digest (sorted, so dict order
    is irrelevant): renaming or re-wiring a parameter changes the
    fingerprint even if the raw weight bytes happen to match.
    """
    h = hashlib.blake2b(digest_size=16)
    for name in sorted(state):
        h.update(name.encode("utf-8"))
        array = np.ascontiguousarray(state[name])
        h.update(repr(array.shape).encode("ascii"))
        h.update(str(array.dtype).encode("ascii"))
        h.update(array.tobytes())
    return h.hexdigest()


def save_checkpoint(module: Module, path: str | Path, metadata: dict | None = None) -> Path:
    """Serialise ``module.state_dict()`` plus optional JSON metadata.

    Returns the path written (with ``.npz`` suffix enforced).
    """
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(".npz")
    path.parent.mkdir(parents=True, exist_ok=True)
    state = module.state_dict()
    if _META_KEY in state:
        raise ValueError(f"parameter name collides with reserved key {_META_KEY!r}")
    meta_blob = np.frombuffer(
        json.dumps(metadata or {}).encode("utf-8"), dtype=np.uint8
    ).copy()
    np.savez(path, **state, **{_META_KEY: meta_blob})
    return path


def load_checkpoint(module: Module, path: str | Path) -> dict:
    """Load weights saved by :func:`save_checkpoint`; returns metadata."""
    path = Path(path)
    if not path.exists() and path.suffix != ".npz":
        path = path.with_suffix(".npz")
    with np.load(path) as archive:
        state = {key: archive[key] for key in archive.files if key != _META_KEY}
        metadata = {}
        if _META_KEY in archive.files:
            metadata = json.loads(archive[_META_KEY].tobytes().decode("utf-8"))
    # Checkpoints carry each parameter's dtype on disk; restoring must
    # not quantise a float64 checkpoint through a float32-built module
    # (or silently upcast the converse) just because the process-wide
    # default dtype changed between save and load.
    module.load_state_dict(state, preserve_dtype=True)
    return metadata
