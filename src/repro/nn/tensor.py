"""Reverse-mode automatic differentiation on numpy arrays.

This module is the foundation of the ``repro.nn`` framework, a minimal
PyTorch substitute used to train the foundation models in this
reproduction.  A :class:`Tensor` wraps a ``numpy.ndarray`` and records
the operations applied to it in a dynamic computation graph; calling
:meth:`Tensor.backward` walks that graph in reverse topological order
and accumulates gradients into every tensor created with
``requires_grad=True``.

Design notes
------------
* Gradients are plain ``numpy.ndarray`` objects stored on ``.grad`` —
  there is no higher-order differentiation.
* Broadcasting follows numpy semantics; :func:`_unbroadcast` reduces an
  upstream gradient back to the shape of the operand it belongs to.
* Graph recording can be suspended with the :func:`no_grad` context
  manager, which training loops use for evaluation passes.
"""

from __future__ import annotations

import contextlib
import functools
import time
from typing import Callable, Iterable, Sequence

import numpy as np

from . import profiler as _profiler
from .dtype import get_default_dtype

__all__ = [
    "Tensor",
    "no_grad",
    "is_grad_enabled",
    "as_tensor",
    "OpInfo",
    "OP_REGISTRY",
    "registered_op",
]

_GRAD_ENABLED = True

#: The active graph tracer installed by :mod:`repro.nn.graph` during a
#: capture (one at a time, like the profiler's ``_ACTIVE``).  ``None``
#: keeps every op wrapper on the zero-overhead fast path.
_TRACER = None


def _set_tracer(tracer):
    """Install ``tracer`` as the active capture hook; returns the previous one."""
    global _TRACER
    previous = _TRACER
    _TRACER = tracer
    return previous


# ----------------------------------------------------------------------
# Op registry
# ----------------------------------------------------------------------
class OpInfo:
    """Metadata for one registered tensor operation.

    The registry exists for *verification*, not dispatch: the
    property-based harness (:mod:`repro.testing.gradcheck`) enumerates
    it and requires a passing finite-difference gradient check for
    every differentiable op, so a new op cannot ship silently
    unchecked.
    """

    __slots__ = ("name", "qualname", "module", "differentiable")

    def __init__(self, name: str, qualname: str, module: str, differentiable: bool) -> None:
        self.name = name
        self.qualname = qualname
        self.module = module
        self.differentiable = differentiable

    def __repr__(self) -> str:
        flag = "" if self.differentiable else ", differentiable=False"
        return f"OpInfo({self.name!r}, {self.module}.{self.qualname}{flag})"


#: name -> :class:`OpInfo` for every op that creates autodiff graph
#: nodes.  Populated by :func:`registered_op` at import time (here and
#: in :mod:`repro.nn.functional`).
OP_REGISTRY: dict[str, OpInfo] = {}


def registered_op(name: str, differentiable: bool = True):
    """Decorator registering a graph-node-creating op under ``name``.

    Every function or method that calls :meth:`Tensor._make` must be
    decorated (the harness cross-checks the source to enforce this);
    ``differentiable=False`` marks ops recorded for completeness that
    do not propagate gradients.
    """

    def decorate(fn):
        if name in OP_REGISTRY:
            raise ValueError(f"op {name!r} registered twice")
        OP_REGISTRY[name] = OpInfo(
            name=name,
            qualname=fn.__qualname__,
            module=fn.__module__,
            differentiable=differentiable,
        )

        # The wrapper is the capture hook of repro.nn.graph: when a
        # tracer is installed it records the *outermost* registered op
        # (name, arguments, output) and lets composites (sub, mean,
        # cross_entropy, ...) execute their inner ops unrecorded, so a
        # trace step maps 1:1 to a replay kernel.  functools.wraps
        # keeps __qualname__/__wrapped__ intact for the coverage scans
        # in repro.testing.gradcheck.
        @functools.wraps(fn)
        def op_wrapper(*args, **kwargs):
            tracer = _TRACER
            if tracer is None or tracer._depth:
                return fn(*args, **kwargs)
            return tracer._traced_call(name, fn, args, kwargs)

        return op_wrapper

    return decorate


@contextlib.contextmanager
def no_grad():
    """Context manager that disables graph recording.

    Operations executed inside the block produce tensors detached from
    the autograd graph, which keeps evaluation passes cheap.
    """
    global _GRAD_ENABLED
    previous = _GRAD_ENABLED
    _GRAD_ENABLED = False
    try:
        yield
    finally:
        _GRAD_ENABLED = previous


def is_grad_enabled() -> bool:
    """Return whether operations are currently recorded for autograd."""
    return _GRAD_ENABLED


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape``, inverting numpy broadcasting."""
    if grad.shape == shape:
        return grad
    # Remove leading broadcast dimensions.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were expanded from size 1.
    axes = tuple(i for i, dim in enumerate(shape) if dim == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A numpy-backed array node in a reverse-mode autodiff graph.

    Parameters
    ----------
    data:
        Anything convertible to a numpy array (lists, scalars,
        existing arrays).  Floating numpy arrays keep their dtype;
        everything else (lists, python scalars, integer and boolean
        arrays) materialises in the global default dtype
        (:func:`repro.nn.get_default_dtype`, float32 unless opted
        out) — unless an explicit ``dtype`` is given.
    requires_grad:
        When true, :meth:`backward` accumulates a gradient into
        ``self.grad``.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "_freed", "name")

    def __init__(
        self,
        data,
        requires_grad: bool = False,
        name: str | None = None,
        dtype=None,
    ) -> None:
        if isinstance(data, Tensor):
            data = data.data
        if dtype is not None:
            array = np.asarray(data, dtype=dtype)
        elif isinstance(data, (np.ndarray, np.generic)):
            # Existing arrays AND numpy scalars keep floating precision
            # (detach(), state loading, full reductions like ``sum()``
            # whose ndarray.sum(axis=None) returns an np.floating);
            # only non-float kinds are promoted.  Without the
            # np.generic case a float64 tensor's ``.sum()`` would
            # silently downcast to the float32 default.
            array = np.asarray(data)
            if array.dtype.kind in "iub":
                array = array.astype(get_default_dtype())
        else:
            array = np.asarray(data)
            if array.dtype.kind in "iubf":
                array = array.astype(get_default_dtype(), copy=False)
        self.data: np.ndarray = array
        self.grad: np.ndarray | None = None
        self.requires_grad = bool(requires_grad) and _GRAD_ENABLED
        self._backward: Callable[[np.ndarray], None] | None = None
        self._parents: tuple[Tensor, ...] = ()
        self._freed = False
        self.name = name
        if _TRACER is not None:
            # Leaves born mid-capture are constants of the trace (their
            # data is baked by value); pre-existing tensors are recorded
            # by reference instead.  See repro.nn.graph.Tracer.
            _TRACER._note_leaf(self)

    # ------------------------------------------------------------------
    # Basic protocol
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor({self.data!r}{grad_flag})"

    def numpy(self) -> np.ndarray:
        """Return the underlying array (shared, not copied)."""
        return self.data

    def item(self) -> float:
        """Return the single scalar value of a 1-element tensor."""
        if self.data.size != 1:
            raise ValueError(
                f"item() requires a tensor with exactly one element, "
                f"got shape {self.data.shape} ({self.data.size} elements)"
            )
        return float(self.data.reshape(-1)[0])

    def detach(self) -> "Tensor":
        """Return a tensor sharing data but cut from the graph."""
        return Tensor(self.data)

    def copy(self) -> "Tensor":
        """Deep-copy the data into a fresh leaf tensor."""
        return Tensor(self.data.copy(), requires_grad=self.requires_grad)

    def zero_grad(self) -> None:
        """Drop any accumulated gradient."""
        self.grad = None

    # ------------------------------------------------------------------
    # Graph construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def _make(
        cls,
        data: np.ndarray,
        parents: Sequence["Tensor"],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        """Create a graph node whose gradient flows to ``parents``."""
        profiler = _profiler._ACTIVE
        if profiler is not None:
            profiler.record_make(backward.__code__, data.nbytes)
        requires = _GRAD_ENABLED and any(p.requires_grad for p in parents)
        out = cls(data, requires_grad=False)
        out.requires_grad = requires
        if requires:
            out._parents = tuple(parents)
            out._backward = backward
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        """Add ``grad`` into ``self.grad`` (used by op backward passes)."""
        if not self.requires_grad:
            return
        grad = _unbroadcast(np.asarray(grad), self.data.shape)
        if self.grad is None:
            self.grad = grad.astype(self.data.dtype, copy=True)
        else:
            self.grad += grad

    def backward(self, grad: np.ndarray | None = None, retain_graph: bool = False) -> None:
        """Backpropagate from this tensor through the recorded graph.

        Parameters
        ----------
        grad:
            Upstream gradient.  Defaults to ones, which for a scalar
            loss is the conventional seed.
        retain_graph:
            Keep the backward closures and graph edges alive after the
            pass so ``backward`` can run again (gradients accumulate as
            in torch).  By default the graph is freed in place and a
            second call raises instead of silently yielding wrong
            gradients.
        """
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not require grad")
        if self._freed:
            raise RuntimeError(
                "backward() through a graph that has already been freed; "
                "intermediate closures are released after the first backward() "
                "call — pass retain_graph=True to backpropagate more than once"
            )
        if grad is None:
            grad = np.ones_like(self.data)
        else:
            grad = np.asarray(grad, dtype=self.data.dtype)
            if grad.shape != self.data.shape:
                raise ValueError(
                    f"gradient shape {grad.shape} does not match tensor shape {self.data.shape}"
                )

        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            if node._freed:
                raise RuntimeError(
                    "backward() reached a subgraph that has already been freed "
                    "by an earlier backward() call — pass retain_graph=True to "
                    "that call to backpropagate through shared nodes again"
                )
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))

        if self._backward is None:
            # Leaf root: accumulate, matching per-op leaf semantics.
            self._accumulate(grad)
        else:
            # Non-leaf root: each pass seeds fresh.  A retained grad
            # from an earlier retain_graph pass must not compound into
            # this pass's seed (torch likewise does not retain non-leaf
            # grads at all).
            self.grad = grad.astype(self.data.dtype, copy=True)
        profiler = _profiler._ACTIVE
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                if profiler is not None:
                    start = time.perf_counter()
                    node._backward(node.grad)
                    profiler.record_backward(
                        node._backward.__code__, time.perf_counter() - start
                    )
                else:
                    node._backward(node.grad)
                # Free intermediate gradients and graph edges eagerly;
                # leaves (no backward fn) keep their gradients.
                if not retain_graph:
                    node._backward = None
                    node._parents = ()
                    node._freed = True
                node.grad = None if node is not self else node.grad
        if profiler is not None:
            # Non-graph work follows a backward pass (optimizer step,
            # batch assembly); do not charge it to the next op.
            profiler.mark()

    # ------------------------------------------------------------------
    # Arithmetic ops
    # ------------------------------------------------------------------
    def _operand(self, other) -> "Tensor":
        """Coerce a binary-op operand to a Tensor.

        Python/numpy scalars are *weak*: they adopt this tensor's
        dtype, so ``x * 2.0`` or ``x + 1e-8`` never upcasts a float32
        graph to the ambient default dtype.  Everything else follows
        the normal creation policy.
        """
        if isinstance(other, Tensor):
            return other
        if np.isscalar(other):
            return Tensor(np.asarray(other, dtype=self.data.dtype))
        return Tensor(other)

    @registered_op("add")
    def __add__(self, other) -> "Tensor":
        other = self._operand(other)
        out_data = self.data + other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad)
            other._accumulate(grad)

        return Tensor._make(out_data, (self, other), backward)

    __radd__ = __add__

    @registered_op("neg")
    def __neg__(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            self._accumulate(-grad)

        return Tensor._make(-self.data, (self,), backward)

    @registered_op("sub")
    def __sub__(self, other) -> "Tensor":
        return self + (-self._operand(other))

    def __rsub__(self, other) -> "Tensor":
        return self._operand(other) + (-self)

    @registered_op("mul")
    def __mul__(self, other) -> "Tensor":
        other = self._operand(other)
        out_data = self.data * other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * other.data)
            other._accumulate(grad * self.data)

        return Tensor._make(out_data, (self, other), backward)

    __rmul__ = __mul__

    @registered_op("truediv")
    def __truediv__(self, other) -> "Tensor":
        other = self._operand(other)
        out_data = self.data / other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad / other.data)
            other._accumulate(-grad * self.data / (other.data**2))

        return Tensor._make(out_data, (self, other), backward)

    def __rtruediv__(self, other) -> "Tensor":
        return self._operand(other) / self

    @registered_op("pow")
    def __pow__(self, exponent: float) -> "Tensor":
        if not np.isscalar(exponent):
            raise TypeError("only scalar exponents are supported")
        out_data = self.data**exponent

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return Tensor._make(out_data, (self,), backward)

    @registered_op("matmul")
    def __matmul__(self, other) -> "Tensor":
        other = as_tensor(other)
        out_data = self.data @ other.data

        def backward(grad: np.ndarray) -> None:
            a, b = self.data, other.data
            if a.ndim == 1 and b.ndim == 1:
                self._accumulate(grad * b)
                other._accumulate(grad * a)
                return
            a2 = a.reshape(1, -1) if a.ndim == 1 else a
            b2 = b.reshape(-1, 1) if b.ndim == 1 else b
            g = grad
            if a.ndim == 1:
                g = np.expand_dims(g, -2)
            if b.ndim == 1:
                g = np.expand_dims(g, -1)
            grad_a = g @ np.swapaxes(b2, -1, -2)
            grad_b = np.swapaxes(a2, -1, -2) @ g
            if a.ndim == 1:
                grad_a = grad_a.reshape(a.shape)
            if b.ndim == 1:
                grad_b = grad_b.reshape(b.shape)
            # _accumulate unbroadcasts; reducing here as well would do
            # the same axis-sums twice on every broadcasted matmul.
            self._accumulate(grad_a)
            other._accumulate(grad_b)

        return Tensor._make(out_data, (self, other), backward)

    def __rmatmul__(self, other) -> "Tensor":
        return as_tensor(other) @ self

    # Comparison operators return plain boolean arrays (no gradient).
    def __gt__(self, other):
        return self.data > (other.data if isinstance(other, Tensor) else other)

    def __lt__(self, other):
        return self.data < (other.data if isinstance(other, Tensor) else other)

    def __ge__(self, other):
        return self.data >= (other.data if isinstance(other, Tensor) else other)

    def __le__(self, other):
        return self.data <= (other.data if isinstance(other, Tensor) else other)

    # ------------------------------------------------------------------
    # Shape ops
    # ------------------------------------------------------------------
    @registered_op("reshape")
    def reshape(self, *shape) -> "Tensor":
        """View the data under a new shape (differentiable)."""
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        original = self.data.shape
        out_data = self.data.reshape(shape)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad.reshape(original))

        return Tensor._make(out_data, (self,), backward)

    @registered_op("transpose")
    def transpose(self, *axes) -> "Tensor":
        """Permute axes (default: reverse them); differentiable."""
        if not axes:
            axes = tuple(reversed(range(self.data.ndim)))
        elif len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        inverse = np.argsort(axes)
        out_data = self.data.transpose(axes)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad.transpose(inverse))

        return Tensor._make(out_data, (self,), backward)

    @registered_op("astype")
    def astype(self, dtype) -> "Tensor":
        """Cast to ``dtype`` (differentiable; grads cast back).

        Returns ``self`` unchanged when the dtype already matches, so
        boundary casts are free in the common single-dtype case.
        """
        dtype = np.dtype(dtype)
        if self.data.dtype == dtype:
            return self
        out_data = self.data.astype(dtype)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad)

        return Tensor._make(out_data, (self,), backward)

    @registered_op("swapaxes")
    def swapaxes(self, axis1: int, axis2: int) -> "Tensor":
        """Swap two axes; differentiable."""
        out_data = np.swapaxes(self.data, axis1, axis2)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(np.swapaxes(grad, axis1, axis2))

        return Tensor._make(out_data, (self,), backward)

    @registered_op("getitem")
    def __getitem__(self, index) -> "Tensor":
        if isinstance(index, Tensor):
            index = index.data.astype(np.int64)
        out_data = self.data[index]

        def backward(grad: np.ndarray) -> None:
            full = np.zeros_like(self.data)
            np.add.at(full, index, grad)
            self._accumulate(full)

        return Tensor._make(out_data, (self,), backward)

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    @registered_op("sum")
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        """Sum over ``axis`` (all axes by default); differentiable."""
        out_data = self.data.sum(axis=axis, keepdims=keepdims)
        shape = self.data.shape

        def backward(grad: np.ndarray) -> None:
            g = grad
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis)
            self._accumulate(np.broadcast_to(g, shape))

        return Tensor._make(out_data, (self,), backward)

    @registered_op("mean")
    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        """Arithmetic mean over ``axis``; differentiable."""
        if axis is None:
            count = self.data.size
        else:
            axes = (axis,) if isinstance(axis, int) else tuple(axis)
            count = int(np.prod([self.data.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) / count

    @registered_op("var")
    def var(self, axis=None, keepdims: bool = False) -> "Tensor":
        """Population variance over ``axis``; differentiable."""
        centered = self - self.mean(axis=axis, keepdims=True)
        return (centered * centered).mean(axis=axis, keepdims=keepdims)

    @registered_op("max")
    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        """Maximum over ``axis``; gradient splits evenly across ties."""
        out_data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            g = grad
            out = out_data
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis)
                out = np.expand_dims(out, axis)
            mask = (self.data == out).astype(self.data.dtype)
            mask /= np.maximum(mask.sum(axis=axis, keepdims=True), 1.0)
            self._accumulate(mask * g)

        return Tensor._make(out_data, (self,), backward)

    # ------------------------------------------------------------------
    # Elementwise math
    # ------------------------------------------------------------------
    @registered_op("exp")
    def exp(self) -> "Tensor":
        """Elementwise exponential."""
        out_data = np.exp(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * out_data)

        return Tensor._make(out_data, (self,), backward)

    @registered_op("log")
    def log(self) -> "Tensor":
        """Elementwise natural logarithm."""
        out_data = np.log(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad / self.data)

        return Tensor._make(out_data, (self,), backward)

    @registered_op("sqrt")
    def sqrt(self) -> "Tensor":
        """Elementwise square root."""
        out_data = np.sqrt(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * 0.5 / out_data)

        return Tensor._make(out_data, (self,), backward)

    @registered_op("tanh")
    def tanh(self) -> "Tensor":
        """Elementwise hyperbolic tangent."""
        out_data = np.tanh(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * (1.0 - out_data**2))

        return Tensor._make(out_data, (self,), backward)

    @registered_op("abs")
    def abs(self) -> "Tensor":
        """Elementwise absolute value (sign subgradient)."""
        out_data = np.abs(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * np.sign(self.data))

        return Tensor._make(out_data, (self,), backward)

    @registered_op("clip")
    def clip(self, low: float, high: float) -> "Tensor":
        """Clamp to [low, high]; gradient passes only inside the range."""
        out_data = np.clip(self.data, low, high)

        def backward(grad: np.ndarray) -> None:
            inside = ((self.data >= low) & (self.data <= high)).astype(self.data.dtype)
            self._accumulate(grad * inside)

        return Tensor._make(out_data, (self,), backward)


def as_tensor(value) -> Tensor:
    """Coerce ``value`` to a :class:`Tensor` (no copy if already one)."""
    return value if isinstance(value, Tensor) else Tensor(value)


@registered_op("concatenate")
def concatenate(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis`` with gradient routing."""
    tensors = [as_tensor(t) for t in tensors]
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.data.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad: np.ndarray) -> None:
        for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            slicer = [slice(None)] * grad.ndim
            slicer[axis] = slice(start, stop)
            tensor._accumulate(grad[tuple(slicer)])

    return Tensor._make(out_data, tensors, backward)


@registered_op("stack")
def stack(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new ``axis`` with gradient routing."""
    tensors = [as_tensor(t) for t in tensors]
    out_data = np.stack([t.data for t in tensors], axis=axis)

    def backward(grad: np.ndarray) -> None:
        pieces = np.split(grad, len(tensors), axis=axis)
        for tensor, piece in zip(tensors, pieces):
            tensor._accumulate(np.squeeze(piece, axis=axis))

    return Tensor._make(out_data, tensors, backward)


@registered_op("where")
def where(condition: np.ndarray, a: Tensor, b: Tensor) -> Tensor:
    """Elementwise select ``a`` where ``condition`` else ``b``."""
    a, b = as_tensor(a), as_tensor(b)
    condition = condition.data if isinstance(condition, Tensor) else np.asarray(condition)
    out_data = np.where(condition, a.data, b.data)

    def backward(grad: np.ndarray) -> None:
        a._accumulate(grad * condition)
        b._accumulate(grad * ~condition if condition.dtype == bool else grad * (1 - condition))

    return Tensor._make(out_data, (a, b), backward)
