"""Transformer encoder stack (pre-norm variant, as used by modern TSFMs)."""

from __future__ import annotations

import numpy as np

from . import functional as F
from .attention import MultiHeadSelfAttention
from .layers import Dropout, LayerNorm, Linear
from .module import Module
from .tensor import Tensor

__all__ = ["TransformerEncoderLayer", "TransformerEncoder"]


class TransformerEncoderLayer(Module):
    """One pre-norm transformer block: MHSA + GELU feed-forward."""

    def __init__(
        self,
        d_model: int,
        num_heads: int,
        d_ff: int,
        dropout: float = 0.0,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        self.attention = MultiHeadSelfAttention(d_model, num_heads, dropout=dropout, rng=rng)
        self.norm1 = LayerNorm(d_model)
        self.norm2 = LayerNorm(d_model)
        self.ff_in = Linear(d_model, d_ff, rng=rng)
        self.ff_out = Linear(d_ff, d_model, rng=rng)
        self.dropout1 = Dropout(dropout, rng=rng)
        self.dropout2 = Dropout(dropout, rng=rng)

    def forward(self, x: Tensor, attn_mask: np.ndarray | None = None) -> Tensor:
        """One pre-norm block: x + MHSA(LN(x)), then x + FF(LN(x))."""
        x = x + self.dropout1(self.attention(self.norm1(x), attn_mask=attn_mask))
        x = x + self.dropout2(self.ff_out(F.gelu(self.ff_in(self.norm2(x)))))
        return x


class TransformerEncoder(Module):
    """Stack of :class:`TransformerEncoderLayer` with a final LayerNorm."""

    def __init__(
        self,
        d_model: int,
        num_heads: int,
        d_ff: int,
        num_layers: int,
        dropout: float = 0.0,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        self.d_model = d_model
        self.num_layers = num_layers
        self.layers = [
            TransformerEncoderLayer(d_model, num_heads, d_ff, dropout=dropout, rng=rng)
            for _ in range(num_layers)
        ]
        self.final_norm = LayerNorm(d_model)

    def forward(self, x: Tensor, attn_mask: np.ndarray | None = None) -> Tensor:
        """Run every block, then the final LayerNorm."""
        for layer in self.layers:
            x = layer(x, attn_mask=attn_mask)
        return self.final_norm(x)
