"""Resource simulation: FLOPs/memory cost model and the V100 simulator."""

from .budget import DEFAULT_BUDGET, RunBudget, RunStatus, SimulatedRun
from .cost_model import (
    FAMILY_PARAMS,
    REGIMES,
    CostModelParams,
    FineTuneRegime,
    TrainingJob,
    adapter_fit_flops,
    embedding_pass_flops,
    forward_flops_per_sample,
    head_training_flops,
    inference_memory_bytes,
    peak_training_memory_bytes,
    streaming_inference_memory_bytes,
    training_step_flops,
)
from .gpu import V100_32GB, GpuSpec, regime_for_adapter, simulate_finetuning

__all__ = [
    "RunStatus",
    "RunBudget",
    "SimulatedRun",
    "DEFAULT_BUDGET",
    "FineTuneRegime",
    "CostModelParams",
    "TrainingJob",
    "REGIMES",
    "FAMILY_PARAMS",
    "forward_flops_per_sample",
    "training_step_flops",
    "embedding_pass_flops",
    "head_training_flops",
    "adapter_fit_flops",
    "peak_training_memory_bytes",
    "inference_memory_bytes",
    "streaming_inference_memory_bytes",
    "GpuSpec",
    "V100_32GB",
    "simulate_finetuning",
    "regime_for_adapter",
]
