"""Run budgets and outcome classification (OK / TO / COM).

The paper runs every fine-tuning job on a single NVIDIA V100-32GB with
a 2-hour wall-clock limit; jobs exceeding the limit are reported as
``TO`` (time out) and jobs exhausting GPU memory as ``COM`` (CUDA out
of memory).  These enums/records are shared by the cost model, the
experiment harness and the table renderers.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = ["RunStatus", "RunBudget", "SimulatedRun", "DEFAULT_BUDGET"]


class RunStatus(enum.Enum):
    """Outcome of a (simulated or real) fine-tuning run."""

    OK = "OK"
    TIMEOUT = "TO"
    OUT_OF_MEMORY = "COM"

    def __str__(self) -> str:  # table rendering uses the paper's labels
        return self.value


@dataclass(frozen=True)
class RunBudget:
    """Wall-clock and memory limits of one experiment slot."""

    time_limit_s: float = 2 * 3600.0
    memory_limit_bytes: int = 32 * 1024**3  # V100-32GB

    def classify(self, seconds: float, peak_memory_bytes: float) -> RunStatus:
        """Apply the paper's rule: memory failures dominate timeouts.

        A job that would OOM never reaches the time limit, so COM is
        checked first.
        """
        if peak_memory_bytes > self.memory_limit_bytes:
            return RunStatus.OUT_OF_MEMORY
        if seconds > self.time_limit_s:
            return RunStatus.TIMEOUT
        return RunStatus.OK


@dataclass(frozen=True)
class SimulatedRun:
    """Result of simulating one fine-tuning job on the GPU model."""

    status: RunStatus
    seconds: float
    peak_memory_bytes: float
    flops: float

    @property
    def ok(self) -> bool:
        return self.status is RunStatus.OK

    @property
    def peak_memory_gib(self) -> float:
        return self.peak_memory_bytes / 1024**3

    @property
    def hours(self) -> float:
        return self.seconds / 3600.0


DEFAULT_BUDGET = RunBudget()
