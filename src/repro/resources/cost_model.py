"""Analytic FLOPs / memory cost model for TSFM fine-tuning.

This module predicts the resource footprint of fine-tuning a
channel-independent foundation model on a given dataset, reproducing
the paper's hardware-side results (COM/TO entries of Tables 1–2 and
the Figure-1 running times) without a physical V100.

The model is standard transformer accounting:

* forward FLOPs per token ~= 2 x encoder parameters, plus the
  quadratic attention term ``4 x layers x tokens_per_seq x d_model``
  per token;
* a training step costs ``3x`` the forward pass (backward ~= 2x);
  fine-tuning through a *frozen* encoder (the lcomb regime) costs
  ``2.5x`` — gradients flow through activations but no encoder
  parameter gradients are materialised;
* peak memory = parameter bytes + optimizer bytes (gradient + two Adam
  moments for trainable parameters) + stored activations
  (``tokens x d_model x layers x multiplier``) for the largest batch.

The free constants (effective throughput, per-family batch size and
activation multiplier, per-regime epoch counts, per-step launch
overhead) are calibrated once, in :mod:`repro.resources.gpu`, against
the OK/TO/COM pattern of the paper's Table 1 — see DESIGN.md §5.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..models.config import ModelConfig

__all__ = [
    "FineTuneRegime",
    "CostModelParams",
    "TrainingJob",
    "forward_flops_per_sample",
    "training_step_flops",
    "embedding_pass_flops",
    "adapter_fit_flops",
    "head_training_flops",
    "peak_training_memory_bytes",
    "inference_memory_bytes",
    "streaming_inference_memory_bytes",
]

#: Bytes per float32 value.
FLOAT_BYTES = 4
#: Bytes per parameter under Adam: gradient + exp_avg + exp_avg_sq.
OPTIMIZER_STATE_BYTES = 12


@dataclass(frozen=True)
class FineTuneRegime:
    """One of the paper's fine-tuning strategies, as the cost model sees it.

    Attributes
    ----------
    name:
        ``full`` | ``adapter_full`` | ``adapter_head`` | ``head``.
    encoder_in_loop:
        Whether the encoder runs on every optimisation step (True for
        full fine-tuning and for trainable adapters; False when a
        fit-once adapter allows caching frozen-encoder embeddings).
    encoder_trainable:
        Whether encoder parameters receive gradients and optimizer
        state.
    backward_multiplier:
        Step cost as a multiple of the forward pass.
    epochs:
        Default fine-tuning epochs for this regime.
    """

    name: str
    encoder_in_loop: bool
    encoder_trainable: bool
    backward_multiplier: float
    epochs: int


#: The paper's regimes with calibrated epoch defaults (DESIGN.md §5).
REGIMES: dict[str, FineTuneRegime] = {
    # Table 1: full fine-tuning, no adapter.
    "full": FineTuneRegime("full", True, True, 3.0, epochs=250),
    # Figure 6: lcomb adapter + full network fine-tuning.
    "adapter_full": FineTuneRegime("adapter_full", True, True, 3.0, epochs=100),
    # Table 2 lcomb columns: trainable adapter + head, frozen encoder.
    "adapter_head_trainable": FineTuneRegime(
        "adapter_head_trainable", True, False, 2.5, epochs=100
    ),
    # Table 2 PCA/SVD/... columns: fit-once adapter + head; encoder
    # embeddings are computed once and cached.
    "adapter_head_cached": FineTuneRegime(
        "adapter_head_cached", False, False, 0.0, epochs=200
    ),
    # Table 2 "head" column: same caching, original channels.
    "head": FineTuneRegime("head", False, False, 0.0, epochs=200),
}


@dataclass(frozen=True)
class CostModelParams:
    """Per-family calibration constants (see DESIGN.md §5)."""

    batch_size: int
    activation_multiplier_per_layer: float
    inference_activation_multiplier: float = 4.0
    head_batch_size: int = 64
    #: Per-layer activation multiplier of a *captured* inference pass
    #: (graph capture retains the full intermediate-tensor tape, unlike
    #: steady-state replay) — the constant behind
    #: :func:`streaming_inference_memory_bytes`, calibrated against
    #: tracemalloc peaks of ``repro.stream.encode_long`` on this
    #: machine (stable to ~1% across channel counts and families).
    streaming_capture_multiplier_per_layer: float = 7.15


#: Calibrated against the Table-1 OK/TO/COM pattern.
FAMILY_PARAMS: dict[str, CostModelParams] = {
    "moment": CostModelParams(batch_size=16, activation_multiplier_per_layer=10.5),
    "vit": CostModelParams(batch_size=96, activation_multiplier_per_layer=10.0),
}


@dataclass(frozen=True)
class TrainingJob:
    """Everything the cost model needs to price one fine-tuning job."""

    config: ModelConfig
    train_size: int
    test_size: int
    sequence_length: int
    channels: int
    num_classes: int
    regime: FineTuneRegime
    epochs: int | None = None  # override the regime default

    @property
    def effective_epochs(self) -> int:
        return self.epochs if self.epochs is not None else self.regime.epochs

    @property
    def params(self) -> CostModelParams:
        return FAMILY_PARAMS[self.config.family]

    @property
    def tokens_per_channel(self) -> int:
        # Models pad/truncate to their fixed context window, so the
        # token count per channel is that of the padded length.
        return self.config.tokens_per_channel(self.config.max_sequence_length)

    @property
    def tokens_per_sample(self) -> int:
        return self.channels * self.tokens_per_channel


# ----------------------------------------------------------------------
# FLOPs
# ----------------------------------------------------------------------
def forward_flops_per_sample(job: TrainingJob) -> float:
    """Forward-pass FLOPs for one multivariate sample."""
    cfg = job.config
    per_token = 2.0 * cfg.encoder_parameter_count()
    tokens_per_seq = job.tokens_per_channel
    attention = 4.0 * cfg.num_layers * tokens_per_seq * cfg.d_model
    return job.tokens_per_sample * (per_token + attention)


def training_step_flops(job: TrainingJob, batch_samples: int) -> float:
    """FLOPs of one optimisation step over ``batch_samples`` samples."""
    return batch_samples * forward_flops_per_sample(job) * job.regime.backward_multiplier


def embedding_pass_flops(job: TrainingJob) -> float:
    """One inference pass over train+test (the embedding-cache fill)."""
    total = job.train_size + job.test_size
    return total * forward_flops_per_sample(job)


def head_training_flops(job: TrainingJob) -> float:
    """Head-only training on cached embeddings (linear layer only)."""
    per_sample = 2.0 * job.config.d_model * job.num_classes
    # forward + backward of a linear layer ~= 3x forward
    return job.effective_epochs * job.train_size * per_sample * 3.0


def adapter_fit_flops(
    channels_in: int,
    channels_out: int,
    train_size: int,
    sequence_length: int,
    kind: str,
) -> float:
    """Cost of fitting a fit-once adapter on (N*T, D) training rows."""
    rows = train_size * sequence_length
    if kind in ("pca", "scaled_pca", "svd", "patch_pca", "lda", "cluster_avg"):
        # Covariance accumulation + D x D eigendecomposition.
        return rows * channels_in**2 + 10.0 * channels_in**3
    if kind == "var":
        return rows * channels_in
    if kind in ("rand_proj", "none"):
        return 0.0
    raise ValueError(f"unknown fit-once adapter kind {kind!r}")


# ----------------------------------------------------------------------
# Memory
# ----------------------------------------------------------------------
def peak_training_memory_bytes(job: TrainingJob) -> float:
    """Peak device memory during fine-tuning."""
    cfg = job.config
    params = job.params
    n_params = cfg.encoder_parameter_count()
    weight_bytes = n_params * FLOAT_BYTES

    if not job.regime.encoder_in_loop:
        # Cached-embedding regimes: the encoder only ever runs in
        # inference mode (chunked), so peak memory is the inference
        # footprint; head training on embeddings is negligible.
        return weight_bytes + inference_memory_bytes(job)

    batch = min(params.batch_size, job.train_size)
    batch_tokens = batch * job.tokens_per_sample
    act_multiplier = params.activation_multiplier_per_layer * cfg.num_layers
    activations = batch_tokens * cfg.d_model * act_multiplier * FLOAT_BYTES
    # Attention probability matrices: heads x P^2 per channel-sequence,
    # per layer (stored for backward).
    seqs = batch * job.channels
    attn_probs = (
        seqs * cfg.num_heads * job.tokens_per_channel**2 * cfg.num_layers * FLOAT_BYTES
    )

    optimizer = 0.0
    if job.regime.encoder_trainable:
        optimizer = n_params * OPTIMIZER_STATE_BYTES
    return weight_bytes + optimizer + activations + attn_probs


def inference_memory_bytes(job: TrainingJob) -> float:
    """Activation footprint of the chunked embedding pass.

    Mirrors how :meth:`repro.models.base.FoundationModel.encode`
    actually runs: ``flatten_channels`` folds all D channels into the
    batch axis (one ``(N*D, T)`` univariate batch through the encoder,
    not a per-channel Python loop), and ``channel_batch`` chunks that
    flattened axis — so the live activation set is one chunk of
    ``batch * min(D, chunk) * tokens_per_channel`` token rows at a
    time, modest even for D ~ 1000.
    """
    cfg = job.config
    params = job.params
    batch = min(params.batch_size, max(1, job.train_size))
    chunk_tokens = batch * min(job.channels, 64) * job.tokens_per_channel
    return chunk_tokens * cfg.d_model * params.inference_activation_multiplier * FLOAT_BYTES


def streaming_inference_memory_bytes(
    config: ModelConfig,
    *,
    window: int,
    channels: int,
    batch_windows: int,
    agg: str = "mean",
    num_windows: int = 0,
    input_dtype_bytes: int = 8,
) -> float:
    """Predicted peak allocation of ``repro.stream.encode_long``.

    The streaming encoder's peak is independent of the series length:
    only ``batch_windows`` windows are live at once, and the ``mean`` /
    ``last`` aggregators fold into constant-size accumulators.  Three
    terms:

    * encoder activations — the dominant term.  Long-context encoding
      runs each batch through *graph capture* once per shape bucket,
      and capture retains the full intermediate-tensor tape, so the
      multiplier is the calibrated
      ``streaming_capture_multiplier_per_layer x num_layers`` rather
      than the steady-state ``inference_activation_multiplier``;
    * window staging — the fancy-index window copy, its padded
      concatenation and the float32 cast inside the encoder (three
      transient copies of one ``(batch_windows, window, D)`` batch);
    * aggregation state — O(1) for ``mean``/``last``; ``attention``
      retains all ``num_windows`` embeddings and scales with the
      series.

    The measured-vs-predicted contract (±20%) is pinned by
    ``tests/stream/test_memory_bound.py``.
    """
    params = FAMILY_PARAMS[config.family]
    tokens_per_channel = config.tokens_per_channel(config.max_sequence_length)
    chunk_tokens = batch_windows * min(channels, 64) * tokens_per_channel
    capture_multiplier = (
        params.streaming_capture_multiplier_per_layer * config.num_layers
    )
    activations = chunk_tokens * config.d_model * capture_multiplier * FLOAT_BYTES
    staging = 3.0 * batch_windows * window * channels * input_dtype_bytes
    if agg == "attention":
        aggregation = num_windows * config.d_model * FLOAT_BYTES
    else:
        aggregation = config.d_model * 2 * FLOAT_BYTES  # float64 accumulator
    return activations + staging + aggregation
