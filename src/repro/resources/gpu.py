"""V100-32GB simulator: classify fine-tuning jobs as OK / TO / COM.

Combines the analytic cost model with a throughput/overhead model of
the paper's hardware (single NVIDIA Tesla V100-32GB, 2-hour limit) to
produce simulated run times and outcomes for paper-scale jobs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..data.metadata import DatasetInfo
from ..models.config import ModelConfig, get_config
from .budget import DEFAULT_BUDGET, RunBudget, SimulatedRun
from .cost_model import (
    REGIMES,
    TrainingJob,
    adapter_fit_flops,
    embedding_pass_flops,
    head_training_flops,
    inference_memory_bytes,
    peak_training_memory_bytes,
    training_step_flops,
)

__all__ = ["GpuSpec", "V100_32GB", "simulate_finetuning", "regime_for_adapter"]


@dataclass(frozen=True)
class GpuSpec:
    """Throughput/overhead model of one GPU.

    ``throughput_flops`` is the *effective sustained* rate for the
    large batched matmuls of transformer training (V100 fp32 peak is
    15.7 TFLOP/s; we assume ~90% utilisation).  The overhead terms
    capture kernel-launch / dataloader / logging time that dominates
    tiny steps — they are what keeps head-only fine-tuning from being
    infinitely fast and calibrate the Figure-1 speedup ratios.
    """

    name: str = "NVIDIA Tesla V100-32GB"
    memory_bytes: int = 32 * 1024**3
    throughput_flops: float = 15.7e12
    per_step_overhead_s: float = 2.0e-3
    per_epoch_overhead_s: float = 0.05
    setup_overhead_s: float = 5.0

    def seconds_for(self, flops: float) -> float:
        """Wall-clock seconds to execute ``flops`` at sustained rate."""
        return flops / self.throughput_flops


V100_32GB = GpuSpec()

#: Adapter name -> cost-model regime for the adapter+head setting.
_TRAINABLE_ADAPTERS = {"lcomb", "lcomb_top_k"}
_FIT_ONCE_ADAPTERS = {
    "pca",
    "scaled_pca",
    "patch_pca",
    "svd",
    "rand_proj",
    "var",
    "lda",
    "cluster_avg",
}


def regime_for_adapter(adapter: str | None, full_finetune: bool = False) -> str:
    """Map a (possibly absent) adapter to the cost-model regime name."""
    if adapter is None or adapter == "none":
        return "full" if full_finetune else "head"
    if adapter in _TRAINABLE_ADAPTERS:
        return "adapter_full" if full_finetune else "adapter_head_trainable"
    if adapter in _FIT_ONCE_ADAPTERS:
        if full_finetune:
            raise ValueError(
                f"fit-once adapter {adapter!r} cannot be combined with full "
                "fine-tuning in the paper's protocol"
            )
        return "adapter_head_cached"
    raise KeyError(f"unknown adapter {adapter!r}")


def simulate_finetuning(
    model: ModelConfig | str,
    dataset: DatasetInfo,
    adapter: str | None = None,
    reduced_channels: int = 5,
    full_finetune: bool = False,
    epochs: int | None = None,
    gpu: GpuSpec = V100_32GB,
    budget: RunBudget = DEFAULT_BUDGET,
) -> SimulatedRun:
    """Simulate one paper-scale fine-tuning job.

    Parameters
    ----------
    model:
        Paper-scale model config (``moment-large`` / ``vit-base-ts``)
        or its name.
    dataset:
        Table-3 geometry of the target dataset.
    adapter:
        ``None``/"none" for the no-adapter setting, otherwise one of
        the registry names (``pca`` ... ``lcomb_top_k``).
    reduced_channels:
        D' produced by the adapter (paper default 5).  Ignored without
        an adapter.
    full_finetune:
        True for the Table-1 / Figure-6 full fine-tuning regimes;
        False for head or adapter+head fine-tuning.
    epochs:
        Optional override of the regime's default epoch count.
    """
    config = get_config(model) if isinstance(model, str) else model
    regime_name = regime_for_adapter(adapter, full_finetune=full_finetune)
    regime = REGIMES[regime_name]
    channels = (
        dataset.num_channels if adapter in (None, "none") else int(reduced_channels)
    )
    job = TrainingJob(
        config=config,
        train_size=dataset.train_size,
        test_size=dataset.test_size,
        sequence_length=dataset.sequence_length,
        channels=channels,
        num_classes=dataset.num_classes,
        regime=regime,
        epochs=epochs,
    )

    peak_memory = peak_training_memory_bytes(job)
    seconds = gpu.setup_overhead_s
    total_flops = 0.0

    if adapter in _FIT_ONCE_ADAPTERS:
        fit_flops = adapter_fit_flops(
            channels_in=dataset.num_channels,
            channels_out=channels,
            train_size=dataset.train_size,
            sequence_length=dataset.sequence_length,
            kind=adapter,
        )
        total_flops += fit_flops
        seconds += gpu.seconds_for(fit_flops)

    if regime.encoder_in_loop:
        # Encoder runs every step: epochs x steps_per_epoch.
        batch = min(job.params.batch_size, dataset.train_size)
        steps_per_epoch = math.ceil(dataset.train_size / batch)
        step_flops = training_step_flops(job, batch)
        train_flops = job.effective_epochs * steps_per_epoch * step_flops
        total_flops += train_flops
        seconds += gpu.seconds_for(train_flops)
        seconds += job.effective_epochs * (
            steps_per_epoch * gpu.per_step_overhead_s + gpu.per_epoch_overhead_s
        )
        # Final evaluation pass over the test split.
        eval_job = TrainingJob(
            config=config,
            train_size=0,
            test_size=dataset.test_size,
            sequence_length=dataset.sequence_length,
            channels=channels,
            num_classes=dataset.num_classes,
            regime=regime,
        )
        eval_flops = embedding_pass_flops(eval_job)
        total_flops += eval_flops
        seconds += gpu.seconds_for(eval_flops)
    else:
        # Cached-embedding regimes: one embedding pass, then cheap
        # head-only training on the cache.
        embed_flops = embedding_pass_flops(job)
        head_flops = head_training_flops(job)
        total_flops += embed_flops + head_flops
        seconds += gpu.seconds_for(embed_flops + head_flops)
        head_batch = min(job.params.head_batch_size, max(1, dataset.train_size))
        steps_per_epoch = math.ceil(dataset.train_size / head_batch)
        seconds += job.effective_epochs * (
            steps_per_epoch * gpu.per_step_overhead_s + gpu.per_epoch_overhead_s
        )
        peak_memory = max(
            peak_memory,
            config.encoder_parameter_count() * 4.0 + inference_memory_bytes(job),
        )

    status = budget.classify(seconds, peak_memory)
    return SimulatedRun(
        status=status, seconds=seconds, peak_memory_bytes=peak_memory, flops=total_flops
    )
