"""Content-addressed runtime layer: fingerprints, artifact store, spans.

The paper's headline speedups come from *reusing* frozen-encoder work;
this subsystem makes that reuse first-class.  It has three parts:

* :mod:`repro.runtime.fingerprint` — stable content fingerprints for
  arrays, model weights, fitted adapters and configs;
* :mod:`repro.runtime.store` — a two-tier (memory LRU + optional disk)
  key -> artifact store with hit/miss/eviction counters, pickle-free
  and corruption-tolerant;
* :mod:`repro.runtime.instrument` — span timers and counters whose
  :class:`RunSummary` rides inside ``FitReport`` /
  ``ExperimentResult``.

Design notes, disk layout and invalidation rules: ``docs/runtime.md``.
"""

from .fingerprint import (
    combine_fingerprints,
    fingerprint_adapter,
    fingerprint_array,
    fingerprint_config,
    fingerprint_config_fields,
    fingerprint_model,
    fingerprint_state_dict,
)
from .instrument import Instrumentation, RunSummary, Stopwatch
from .keys import (
    NAMESPACES,
    dataset_key,
    embedding_key,
    golden_key,
    pipeline_catalog_key,
    pipeline_key,
    pretrain_key,
    result_key,
)
from .store import (
    CACHE_DIR_ENV,
    STORE_VERSION,
    Artifact,
    ArtifactStore,
    StoreStats,
    atomic_write_bytes,
    resolve_cache_dir,
)

__all__ = [
    "fingerprint_array",
    "fingerprint_state_dict",
    "fingerprint_model",
    "fingerprint_adapter",
    "fingerprint_config",
    "fingerprint_config_fields",
    "combine_fingerprints",
    "NAMESPACES",
    "embedding_key",
    "pretrain_key",
    "dataset_key",
    "result_key",
    "golden_key",
    "pipeline_key",
    "pipeline_catalog_key",
    "STORE_VERSION",
    "CACHE_DIR_ENV",
    "Artifact",
    "ArtifactStore",
    "StoreStats",
    "atomic_write_bytes",
    "resolve_cache_dir",
    "Stopwatch",
    "Instrumentation",
    "RunSummary",
]
