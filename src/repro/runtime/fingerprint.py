"""Stable content fingerprints for the artifacts the runtime caches.

Every cache key in :mod:`repro.runtime` is built from *content*
fingerprints, never from object identity: two arrays with the same
bytes fingerprint identically no matter where they live in memory, and
mutating an array in place changes its fingerprint.  This is what
makes the store safe across processes (disk tier) and immune to the
``id()``-reuse bug the old embedding cache had.

Fingerprint composition (also documented in ``docs/runtime.md``):

* **arrays** — shape + dtype + raw bytes (``blake2b``);
* **model weights** — config name + sorted ``state_dict`` digest, so a
  pretraining step, a different seed, or a different architecture all
  produce new fingerprints;
* **adapters** — class name + every fitted attribute (projection
  matrices, scalers, trainable-module weights), so two adapters fitted
  on the same data with different seeds or hyperparameters never
  collide;
* **configs** — any dataclass, via its sorted field/value JSON.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
from typing import Any

import numpy as np

from ..nn.module import Module
from ..nn.serialization import array_digest, state_dict_digest

__all__ = [
    "fingerprint_array",
    "fingerprint_state_dict",
    "fingerprint_model",
    "fingerprint_adapter",
    "fingerprint_config",
    "combine_fingerprints",
]


def _hasher():
    return hashlib.blake2b(digest_size=16)


def fingerprint_array(x: np.ndarray) -> str:
    """Content fingerprint of one numpy array."""
    return array_digest(np.asarray(x), _hasher())


def fingerprint_state_dict(state: dict[str, np.ndarray]) -> str:
    """Content fingerprint of a name -> array weight snapshot."""
    return state_dict_digest(state)


def fingerprint_model(model) -> str:
    """Fingerprint of a model: architecture name + current weights.

    Works for any :class:`repro.nn.Module`; models exposing a
    ``config.name`` (all :class:`repro.models.FoundationModel`
    subclasses) mix it in so two architectures with coincidentally
    equal flattened weights cannot collide.
    """
    config = getattr(model, "config", None)
    name = getattr(config, "name", type(model).__name__)
    return combine_fingerprints("model", name, fingerprint_state_dict(model.state_dict()))


def _fingerprint_value(value: Any) -> str:
    """Fingerprint one attribute value of an adapter/config object."""
    if isinstance(value, np.ndarray):
        return fingerprint_array(value)
    if isinstance(value, Module):
        return fingerprint_state_dict(value.state_dict())
    if isinstance(value, enum.Enum):
        return repr(value.value)
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return fingerprint_config(value)
    return repr(value)


def fingerprint_adapter(adapter) -> str:
    """Fingerprint of a (possibly fitted) adapter instance.

    Covers the class name plus every instance attribute — fitted
    projection matrices, preprocessing statistics, trainable-module
    weights, seeds and hyperparameters — so any difference that could
    change ``transform`` output changes the key.
    """
    parts = ["adapter", type(adapter).__name__]
    for name in sorted(vars(adapter)):
        parts.append(name)
        parts.append(_fingerprint_value(vars(adapter)[name]))
    return combine_fingerprints(*parts)


def fingerprint_config(config) -> str:
    """Fingerprint of a dataclass config (``TrainConfig``, presets...).

    ``fields`` optionally restricts the digest to a subset — used by
    the experiment runner to key results only on the knobs that affect
    a single job, so e.g. restricting ``ExperimentConfig.datasets``
    does not invalidate previously cached jobs.
    """
    return fingerprint_config_fields(config, None)


def fingerprint_config_fields(config, fields: tuple[str, ...] | None) -> str:
    """Fingerprint a dataclass over ``fields`` (``None`` = all fields)."""
    if not dataclasses.is_dataclass(config):
        raise TypeError(f"expected a dataclass, got {type(config).__name__}")
    mapping = {f.name: getattr(config, f.name) for f in dataclasses.fields(config)}
    if fields is not None:
        mapping = {name: mapping[name] for name in fields}
    blob = json.dumps(
        {name: _fingerprint_value(value) for name, value in sorted(mapping.items())},
        sort_keys=True,
    )
    return combine_fingerprints("config", type(config).__name__, blob)


def combine_fingerprints(*parts: str) -> str:
    """Order-sensitively combine string parts into one fingerprint."""
    h = _hasher()
    for part in parts:
        encoded = str(part).encode("utf-8")
        # Length-prefix every part so ("ab", "c") != ("a", "bc").
        h.update(len(encoded).to_bytes(8, "little"))
        h.update(encoded)
    return h.hexdigest()
