"""Lightweight span timers and counters for run instrumentation.

Replaces the scattered ``time.perf_counter()`` pairs that used to live
in ``trainer.py``, ``pipeline.py``, ``runner.py``, ``sweeps.py`` and
``cli.py`` with two tiny primitives:

* :class:`Stopwatch` — a single interval (``elapsed()``), for loops
  that need a running total (e.g. the trainer's wall-clock cap);
* :class:`Instrumentation` — named, accumulating phase spans plus
  event counters, summarised into a :class:`RunSummary` that reports
  embed instead of loose floats.

Nothing here is clever on purpose: the overhead of a span is one
``perf_counter()`` pair and a dict update, so instrumenting a hot path
costs nothing measurable next to an encoder forward.
"""

from __future__ import annotations

import time
from collections import defaultdict
from contextlib import contextmanager
from dataclasses import dataclass, field

__all__ = ["Stopwatch", "RunSummary", "Instrumentation"]


class Stopwatch:
    """A started-on-creation wall-clock interval."""

    def __init__(self) -> None:
        self._start = time.perf_counter()

    def elapsed(self) -> float:
        """Seconds since creation (or the last :meth:`restart`)."""
        return time.perf_counter() - self._start

    def restart(self) -> float:
        """Reset the origin; returns the interval that just ended."""
        now = time.perf_counter()
        elapsed = now - self._start
        self._start = now
        return elapsed


@dataclass(frozen=True)
class RunSummary:
    """Structured per-run instrumentation summary.

    ``phase_seconds`` maps phase name -> accumulated seconds;
    ``counters`` maps event name -> count (cache hits/misses, actual
    pretraining runs, ...); ``ops`` maps autodiff op name -> per-op
    stats (calls/bytes/seconds, see :class:`repro.nn.profiler.OpStats`)
    when an op-level profile was captured, else ``{}``.  JSON-able by
    construction so it can ride along inside store metadata.
    """

    phase_seconds: dict[str, float] = field(default_factory=dict)
    counters: dict[str, int] = field(default_factory=dict)
    ops: dict[str, dict] = field(default_factory=dict)

    def to_dict(self) -> dict:
        """JSON-able snapshot (inverse of :meth:`from_dict`)."""
        payload = {
            "phase_seconds": dict(self.phase_seconds),
            "counters": dict(self.counters),
        }
        if self.ops:
            payload["ops"] = {name: dict(stats) for name, stats in self.ops.items()}
        return payload

    @classmethod
    def from_dict(cls, data: dict) -> "RunSummary":
        """Rebuild a summary from :meth:`to_dict` output (tolerant)."""
        return cls(
            phase_seconds={k: float(v) for k, v in (data.get("phase_seconds") or {}).items()},
            counters={k: int(v) for k, v in (data.get("counters") or {}).items()},
            ops={k: dict(v) for k, v in (data.get("ops") or {}).items()},
        )


class Instrumentation:
    """Accumulating named spans + counters for one run/runner."""

    def __init__(self) -> None:
        self._phase_seconds: dict[str, float] = defaultdict(float)
        self._counters: dict[str, int] = defaultdict(int)
        self._ops: dict[str, dict] = {}

    @contextmanager
    def span(self, name: str):
        """Time a ``with`` block under ``name`` (accumulates on re-entry)."""
        start = time.perf_counter()
        try:
            yield self
        finally:
            self._phase_seconds[name] += time.perf_counter() - start

    def add_seconds(self, name: str, seconds: float) -> None:
        """Fold an externally measured interval into a phase."""
        self._phase_seconds[name] += float(seconds)

    def count(self, name: str, n: int = 1) -> None:
        """Increment an event counter."""
        self._counters[name] += int(n)

    def seconds(self, name: str) -> float:
        """Accumulated seconds of one phase (0.0 if never entered)."""
        return self._phase_seconds.get(name, 0.0)

    def counter(self, name: str) -> int:
        """Current value of one counter (0 if never incremented)."""
        return self._counters.get(name, 0)

    def attach_ops(self, ops: dict[str, dict]) -> None:
        """Fold an op-level profile (op name -> stats dict) into the run.

        Stats from repeated captures accumulate field-wise, so a
        multi-phase run (head fit + joint fit) reports one merged
        table.
        """
        for name, stats in ops.items():
            slot = self._ops.setdefault(name, {})
            for key, value in stats.items():
                slot[key] = slot.get(key, 0) + value

    def summary(self) -> RunSummary:
        """Freeze the current state into a :class:`RunSummary`."""
        return RunSummary(
            phase_seconds=dict(self._phase_seconds),
            counters=dict(self._counters),
            ops={name: dict(stats) for name, stats in self._ops.items()},
        )

    def reset(self) -> None:
        """Zero every phase and counter."""
        self._phase_seconds.clear()
        self._counters.clear()
        self._ops.clear()
