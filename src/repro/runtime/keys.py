"""Namespaced cache-key builders.

A store key is ``"<namespace>/<fingerprint-hex>"``; the namespace maps
directly to a subdirectory of the on-disk cache, so ``repro cache
stats`` can break usage down by artifact kind and ``clear`` can drop
one kind selectively.  All builders delegate to
:mod:`repro.runtime.fingerprint`, so keys are pure functions of
content — never of object identity or process state.
"""

from __future__ import annotations

from .fingerprint import combine_fingerprints

__all__ = [
    "NAMESPACES",
    "embedding_key",
    "pretrain_key",
    "dataset_key",
    "result_key",
    "golden_key",
    "pipeline_key",
    "pipeline_catalog_key",
]

#: Known key namespaces (== disk subdirectories).
NAMESPACES = ("embedding", "pretrain", "dataset", "result", "golden", "pipeline")


def embedding_key(
    model_fingerprint: str,
    adapter_fingerprint: str,
    data_fingerprint: str,
    batch_size: int,
) -> str:
    """Key for a frozen-encoder embedding matrix.

    Keyed on (model weights, fitted adapter, input content, batch
    geometry): any pretraining step, adapter refit, data mutation or
    batching change produces a distinct key.
    """
    digest = combine_fingerprints(
        "embedding",
        model_fingerprint,
        adapter_fingerprint,
        data_fingerprint,
        str(int(batch_size)),
    )
    return f"embedding/{digest}"


def pretrain_key(model_name: str, seed: int, pretrain_steps: int) -> str:
    """Key for a pretrained runnable model's weight snapshot."""
    digest = combine_fingerprints(
        "pretrain", model_name, str(int(seed)), str(int(pretrain_steps))
    )
    return f"pretrain/{digest}"


def dataset_key(name: str, seed: int, scale: float, max_length: int | None) -> str:
    """Key for one generated surrogate dataset split."""
    digest = combine_fingerprints(
        "dataset", name, str(int(seed)), repr(float(scale)), repr(max_length)
    )
    return f"dataset/{digest}"


def result_key(
    config_fingerprint: str,
    dataset: str,
    model: str,
    adapter: str,
    adapter_kwargs: dict | None,
    strategy: str,
    seed: int,
    simulate_adapter_as: str | None = None,
) -> str:
    """Key for one :class:`ExperimentResult` (a full job outcome).

    ``simulate_adapter_as`` changes the simulated OK/TO/COM outcome, so
    it is part of the key when set; the ``None`` default keeps every
    key written by older callers unchanged.
    """
    kwargs_blob = repr(tuple(sorted((adapter_kwargs or {}).items())))
    parts = [
        config_fingerprint,
        dataset,
        model,
        adapter,
        kwargs_blob,
        strategy,
        str(int(seed)),
    ]
    if simulate_adapter_as is not None:
        parts.append(f"sim_as={simulate_adapter_as}")
    digest = combine_fingerprints("result", *parts)
    return f"result/{digest}"


def pipeline_key(name: str, version: int) -> str:
    """Key for one published fitted-pipeline snapshot.

    Keyed on the *deployment identity* (name, version) rather than on
    content: the registry owns version allocation, and a version is
    immutable once published — re-publishing a name allocates the next
    version instead of overwriting.  Integrity of the payload is
    enforced separately by the registry's content digest.
    """
    digest = combine_fingerprints("pipeline", name, str(int(version)))
    return f"pipeline/{digest}"


def pipeline_catalog_key() -> str:
    """Key of the registry catalog (name -> published versions index)."""
    digest = combine_fingerprints("pipeline", "__catalog__")
    return f"pipeline/{digest}"


def golden_key(scenario: str, dtype: str) -> str:
    """Key for one golden-regression metric snapshot.

    Keyed on (scenario name, compute dtype) only: the scenario name
    already pins the full recipe (dataset, adapter, seeds, epochs), so
    re-recording after an intentional scenario change reuses the key
    and overwrites in place — exactly what ``--update-golden`` wants.
    """
    digest = combine_fingerprints("golden", scenario, dtype)
    return f"golden/{digest}"
