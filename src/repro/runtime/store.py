"""Two-tier content-addressed artifact store.

The store maps namespaced content keys (see :mod:`repro.runtime.keys`)
to *artifacts*: a dict of numpy arrays plus a JSON-able metadata dict.
Two tiers:

* **memory** — a bounded LRU; hits return the stored objects directly
  (zero copy), eviction drops the least recently used entry;
* **disk** (optional) — one ``.npz`` file per entry under
  ``<cache_dir>/<namespace>/<digest>.npz``, written atomically,
  pickle-free (arrays + an embedded JSON blob), versioned.

Robustness contract: a corrupt, truncated, unreadable or
version-mismatched disk entry is a **miss, never a crash** — the entry
is recounted in ``stats.corrupt`` and recomputed by the caller.  Disk
writes are crash-safe (temp file + ``fsync`` + ``os.replace`` +
best-effort directory fsync) so a process killed at *any* instant —
including mid-write — leaves either the previous entry or no entry,
never a torn one.  :func:`atomic_write_bytes` exposes the same
write-temp/fsync/rename discipline for other persistent records (the
``repro.exec`` grid journal builds on it).
"""

from __future__ import annotations

import json
import os
import re
import tempfile
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

__all__ = [
    "STORE_VERSION",
    "CACHE_DIR_ENV",
    "Artifact",
    "StoreStats",
    "ArtifactStore",
    "resolve_cache_dir",
    "atomic_write_bytes",
]


def _fsync_dir(directory: Path) -> None:
    """Best-effort fsync of a directory so a rename survives power loss.

    Some filesystems (and all of Windows) refuse ``O_RDONLY`` opens of
    directories; durability of the *entry rename* is then left to the
    OS, which is the pre-hardening behaviour — never an error.
    """
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def atomic_write_bytes(path: str | Path, payload: bytes) -> None:
    """Durably replace ``path`` with ``payload``: temp + fsync + rename.

    The contract a crash-safe journal needs: a reader never observes a
    partial write — it sees the old content (or nothing) until the
    rename, and the new content after it.  The temp file lives in the
    destination directory so the rename stays within one filesystem.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(payload)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    _fsync_dir(path.parent)

#: Environment variable enabling the disk tier by default.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"


def resolve_cache_dir(explicit: str | Path | None = None) -> Path | None:
    """Resolve the disk-cache directory: explicit arg > env var > None.

    Empty strings (``--cache-dir ""`` or an empty env var) count as
    unset rather than silently meaning the current directory.
    """
    if explicit:
        return Path(explicit)
    from_env = os.environ.get(CACHE_DIR_ENV)
    return Path(from_env) if from_env else None

#: Bump to invalidate every on-disk entry written by older code.
STORE_VERSION = 1

_META_KEY = "__artifact_meta__"
_KEY_RE = re.compile(r"^[a-z0-9_]+/[0-9a-f]{8,}$")


@dataclass
class Artifact:
    """One stored value: named arrays + JSON-able metadata."""

    arrays: dict[str, np.ndarray] = field(default_factory=dict)
    meta: dict = field(default_factory=dict)

    @property
    def nbytes(self) -> int:
        return sum(int(a.nbytes) for a in self.arrays.values())


@dataclass
class StoreStats:
    """Hit/miss/eviction counters for one store instance."""

    hits: int = 0
    misses: int = 0
    puts: int = 0
    evictions: int = 0
    corrupt: int = 0

    def snapshot(self) -> dict[str, int]:
        """Plain-dict copy (for embedding into run summaries)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "puts": self.puts,
            "evictions": self.evictions,
            "corrupt": self.corrupt,
        }

    def reset(self) -> None:
        """Zero every counter."""
        self.hits = self.misses = self.puts = self.evictions = self.corrupt = 0


def _split_key(key: str) -> tuple[str, str]:
    if not _KEY_RE.match(key):
        raise ValueError(
            f"malformed store key {key!r}; expected '<namespace>/<hex-digest>'"
        )
    namespace, digest = key.split("/", 1)
    return namespace, digest


class ArtifactStore:
    """Bounded in-memory LRU over an optional on-disk ``.npz`` tier.

    Parameters
    ----------
    cache_dir:
        Directory for the persistent tier; ``None`` keeps the store
        memory-only (the default — exactly the old per-process
        behaviour, minus the identity-keying bugs).
    max_memory_entries:
        LRU capacity.  Disk entries are unbounded; ``clear()`` or
        ``repro cache clear`` reclaims them.
    """

    def __init__(self, cache_dir: str | Path | None = None, max_memory_entries: int = 256) -> None:
        if max_memory_entries <= 0:
            raise ValueError("max_memory_entries must be positive")
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        self.max_memory_entries = max_memory_entries
        self.stats = StoreStats()
        self._memory: OrderedDict[str, Artifact] = OrderedDict()

    # ------------------------------------------------------------------
    # Core API
    # ------------------------------------------------------------------
    def get(self, key: str) -> Artifact | None:
        """Fetch an artifact; ``None`` on miss (including corruption)."""
        _split_key(key)
        if key in self._memory:
            self._memory.move_to_end(key)
            self.stats.hits += 1
            return self._memory[key]
        artifact = self._read_disk(key)
        if artifact is None:
            self.stats.misses += 1
            return None
        self._remember(key, artifact)
        self.stats.hits += 1
        return artifact

    def put(
        self,
        key: str,
        arrays: dict[str, np.ndarray] | None = None,
        meta: dict | None = None,
    ) -> Artifact:
        """Store an artifact in memory and (if configured) on disk."""
        _split_key(key)
        arrays = {name: np.asarray(value) for name, value in (arrays or {}).items()}
        if _META_KEY in arrays:
            raise ValueError(f"array name collides with reserved key {_META_KEY!r}")
        artifact = Artifact(arrays=arrays, meta=dict(meta or {}))
        self._remember(key, artifact)
        self._write_disk(key, artifact)
        self.stats.puts += 1
        return artifact

    def contains(self, key: str) -> bool:
        """Availability probe that does not touch the hit/miss counters."""
        path = self._path_for(key)
        return key in self._memory or (path is not None and path.exists())

    def clear(self, namespace: str | None = None) -> int:
        """Drop entries (all, or one namespace); returns entries removed."""
        removed = 0
        for key in list(self._memory):
            if namespace is None or key.startswith(f"{namespace}/"):
                del self._memory[key]
                removed += 1
        for path in self._disk_paths(namespace):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def __len__(self) -> int:
        """Number of entries in the memory tier."""
        return len(self._memory)

    def __repr__(self) -> str:
        where = str(self.cache_dir) if self.cache_dir else "memory-only"
        return f"ArtifactStore({where}, entries={len(self)}, stats={self.stats.snapshot()})"

    # ------------------------------------------------------------------
    # Memory tier
    # ------------------------------------------------------------------
    def _remember(self, key: str, artifact: Artifact) -> None:
        self._memory[key] = artifact
        self._memory.move_to_end(key)
        while len(self._memory) > self.max_memory_entries:
            self._memory.popitem(last=False)
            self.stats.evictions += 1

    # ------------------------------------------------------------------
    # Disk tier
    # ------------------------------------------------------------------
    def _path_for(self, key: str) -> Path | None:
        if self.cache_dir is None:
            return None
        namespace, digest = _split_key(key)
        return self.cache_dir / namespace / f"{digest}.npz"

    def _write_disk(self, key: str, artifact: Artifact) -> None:
        path = self._path_for(key)
        if path is None:
            return
        path.parent.mkdir(parents=True, exist_ok=True)
        blob = json.dumps({"version": STORE_VERSION, "meta": artifact.meta})
        meta_array = np.frombuffer(blob.encode("utf-8"), dtype=np.uint8).copy()
        fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                np.savez(handle, **artifact.arrays, **{_META_KEY: meta_array})
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        _fsync_dir(path.parent)

    def _read_disk(self, key: str) -> Artifact | None:
        path = self._path_for(key)
        if path is None or not path.exists():
            return None
        try:
            with np.load(path) as archive:
                if _META_KEY not in archive.files:
                    raise ValueError("missing artifact metadata")
                blob = json.loads(archive[_META_KEY].tobytes().decode("utf-8"))
                if blob.get("version") != STORE_VERSION:
                    raise ValueError(f"store version mismatch: {blob.get('version')}")
                arrays = {
                    name: archive[name] for name in archive.files if name != _META_KEY
                }
                return Artifact(arrays=arrays, meta=blob.get("meta", {}))
        except Exception:
            # Corrupt / truncated / foreign file: a miss, never a crash.
            self.stats.corrupt += 1
            return None

    def _disk_paths(self, namespace: str | None = None):
        if self.cache_dir is None or not self.cache_dir.exists():
            return []
        pattern = f"{namespace}/*.npz" if namespace else "*/*.npz"
        return sorted(self.cache_dir.glob(pattern))

    # ------------------------------------------------------------------
    # Introspection (CLI `repro cache stats`)
    # ------------------------------------------------------------------
    def disk_summary(self) -> dict[str, dict[str, int]]:
        """Per-namespace entry counts and byte totals of the disk tier."""
        summary: dict[str, dict[str, int]] = {}
        for path in self._disk_paths():
            bucket = summary.setdefault(path.parent.name, {"entries": 0, "bytes": 0})
            bucket["entries"] += 1
            try:
                bucket["bytes"] += path.stat().st_size
            except OSError:
                pass
        return summary
