"""Online inference: pipeline registry + micro-batched serving.

The paper's fit-once adapters make frozen-encoder inference cheap; this
subsystem makes it *servable*.  Four parts:

* :mod:`repro.serve.registry` — named, versioned fitted-pipeline
  snapshots in the content-addressed :class:`repro.runtime`
  artifact store, with integrity-checked load and an LRU of hot
  deployments;
* :mod:`repro.serve.batching` — the bounded request queue and dynamic
  micro-batcher (max-batch / max-delay coalescing, load shedding,
  per-request deadlines);
* :mod:`repro.serve.workers` — the multi-process serving pool, built
  on the :mod:`repro.exec` spawn-worker protocol (graceful drain,
  crashed-worker respawn);
* :mod:`repro.serve.server` / :mod:`repro.serve.service` — the
  :class:`PipelineServer` front end and the module-level
  ``deploy(pipeline, name)`` / ``client(name)`` facade re-exported
  from the package root;
* :mod:`repro.serve.sessions` — per-session incremental streaming
  (``server.open_stream`` / ``client(name).stream``): each session's
  completed windows enter the same micro-batch queue as every other
  request, so concurrent streams share batches and inherit the pool's
  crashed-worker resubmission.

Responses are bit-identical to offline
:meth:`~repro.training.AdapterPipeline.predict_logits` because both
paths execute fixed-width zero-padded batches — see
``docs/serve.md``.
"""

from .batching import MicroBatcher, ServeConfig, ServeFuture
from .errors import (
    DeadlineExceededError,
    PipelineNotFoundError,
    QueueFullError,
    RegistryIntegrityError,
    ServeError,
    ServerClosedError,
)
from .registry import PipelineRecord, PipelineRegistry
from .server import PipelineServer
from .service import ServeClient, client, deploy, undeploy
from .sessions import StreamSession
from .workers import ServePool

__all__ = [
    "ServeError",
    "PipelineNotFoundError",
    "RegistryIntegrityError",
    "QueueFullError",
    "DeadlineExceededError",
    "ServerClosedError",
    "PipelineRecord",
    "PipelineRegistry",
    "ServeConfig",
    "ServeFuture",
    "MicroBatcher",
    "ServePool",
    "PipelineServer",
    "ServeClient",
    "StreamSession",
    "deploy",
    "client",
    "undeploy",
]
