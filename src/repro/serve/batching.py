"""Bounded request queue + dynamic micro-batcher.

Single-series predict requests enter a bounded queue; a collector
thread coalesces them into micro-batches under a **max-batch /
max-delay** policy — a batch is dispatched as soon as ``max_batch``
requests are waiting, or ``max_delay_s`` after its oldest request
arrived, whichever comes first.  Saturation behaviour is explicit:

* queue at capacity -> :class:`QueueFullError` at submit time (the
  request is never enqueued — shed load, don't buffer unboundedly);
* per-request deadline passed while queued -> the future fails with
  :class:`DeadlineExceededError` instead of occupying batch width;
* server draining -> :class:`ServerClosedError` for new submits, and
  for queued requests that drain cannot finish in time.

The batcher is transport-agnostic: a ``dispatch`` callable receives
each formed batch (a list of :class:`_Request`) and is responsible for
resolving the requests' futures — synchronously for in-process
serving, or by handing the batch to a worker pool.  Padding every
batch to one fixed width happens *downstream* (see
``AdapterPipeline._predict_chunk``), which is what makes responses
bit-identical regardless of how requests were coalesced.
"""

from __future__ import annotations

import threading
import time
from collections import Counter, deque
from dataclasses import dataclass, field

import numpy as np

from .errors import DeadlineExceededError, QueueFullError, ServeError, ServerClosedError

__all__ = ["ServeConfig", "ServeFuture", "MicroBatcher", "resolve_batch"]

#: Cap on retained per-request latency samples (p50/p99 estimation).
_MAX_LATENCY_SAMPLES = 100_000


@dataclass(frozen=True)
class ServeConfig:
    """Serving policy knobs.

    Parameters
    ----------
    max_batch:
        Micro-batch width cap — and the *fixed* execution width every
        batch is padded to, so it doubles as the offline
        ``batch_size`` that reproduces served logits bit-for-bit.
    max_delay_s:
        Longest a request may wait for co-batchees before its batch is
        dispatched anyway.  ``0`` disables coalescing delay (batches
        only form from genuinely concurrent arrivals).
    queue_depth:
        Bounded queue capacity; submits beyond it are rejected with
        :class:`QueueFullError`.
    default_deadline_s:
        Deadline applied to requests that do not pass their own
        (``None`` — the default — means no deadline).
    workers:
        Serving worker processes; ``0`` executes in-process on the
        batcher thread.
    compiled:
        Route encoder forwards through the compiled
        :class:`~repro.nn.graph.GraphCache` (bit-identical either way).
    drain_timeout_s:
        How long ``close(drain=True)`` waits for queued and in-flight
        work before giving up and failing the remainder.
    """

    max_batch: int = 16
    max_delay_s: float = 0.002
    queue_depth: int = 256
    default_deadline_s: float | None = None
    workers: int = 0
    compiled: bool = True
    drain_timeout_s: float = 10.0

    def __post_init__(self) -> None:
        if self.max_batch <= 0:
            raise ValueError("max_batch must be positive")
        if self.max_delay_s < 0:
            raise ValueError("max_delay_s must be non-negative")
        if self.queue_depth <= 0:
            raise ValueError("queue_depth must be positive")
        if self.workers < 0:
            raise ValueError("workers must be non-negative")
        if self.default_deadline_s is not None and self.default_deadline_s <= 0:
            raise ValueError("default_deadline_s must be positive")


class ServeFuture:
    """Handle to one in-flight request's logits row."""

    __slots__ = ("_event", "_value", "_error", "enqueued_at", "deadline", "finished_at")

    def __init__(self, deadline: float | None) -> None:
        self._event = threading.Event()
        self._value: np.ndarray | None = None
        self._error: BaseException | None = None
        self.enqueued_at = time.monotonic()
        self.deadline = deadline  # absolute monotonic instant, or None
        self.finished_at: float | None = None

    def done(self) -> bool:
        """True once the request finished (result, error, or rejection)."""
        return self._event.is_set()

    def result(self, timeout: float | None = None) -> np.ndarray:
        """Block for the logits row; raises the request's typed error.

        ``timeout`` bounds only this wait (independent of the request
        deadline); expiry raises :class:`DeadlineExceededError`.
        """
        if not self._event.wait(timeout):
            raise DeadlineExceededError(
                f"no result within the {timeout:g}s wait timeout"
            )
        if self._error is not None:
            raise self._error
        assert self._value is not None
        return self._value

    # Resolution (batcher / pool side) ---------------------------------
    def _finish(self, value: np.ndarray | None, error: BaseException | None) -> bool:
        if self._event.is_set():
            return False
        self._value = value
        self._error = error
        self.finished_at = time.monotonic()
        self._event.set()
        return True


@dataclass
class _Request:
    """One queued series plus its future (internal)."""

    x: np.ndarray  # (T, D) single series
    future: ServeFuture


@dataclass
class _BatcherStats:
    """Lock-protected counters; read via :meth:`MicroBatcher.snapshot`."""

    requests: int = 0
    batches: int = 0
    rejected_queue_full: int = 0
    rejected_deadline: int = 0
    rejected_closed: int = 0
    errors: int = 0
    queue_wait_total_s: float = 0.0
    queue_wait_max_s: float = 0.0
    width_hist: Counter = field(default_factory=Counter)
    latencies_s: list = field(default_factory=list)


class MicroBatcher:
    """Coalesces queued requests into dispatched micro-batches.

    Parameters
    ----------
    config:
        The :class:`ServeConfig` policy.
    dispatch:
        Called on the batcher thread with each formed batch (a
        non-empty list of requests, ``len <= max_batch``).  It must
        eventually finish every request's future — via
        :func:`resolve_batch` for synchronous execution, or by handing
        the batch to a pool whose collector resolves them.  An
        exception escaping ``dispatch`` fails the whole batch.
    """

    def __init__(self, config: ServeConfig, dispatch) -> None:
        self.config = config
        self._dispatch = dispatch
        self._queue: deque[_Request] = deque()
        self._cond = threading.Condition()
        self._closed = False
        self._stats = _BatcherStats()
        self._thread = threading.Thread(
            target=self._run, name="repro-serve-batcher", daemon=True
        )
        self._thread.start()

    # ------------------------------------------------------------------
    # Client side
    # ------------------------------------------------------------------
    def submit(self, x: np.ndarray, deadline_s: float | None = None) -> ServeFuture:
        """Enqueue one (T, D) series; returns its future.

        Raises :class:`QueueFullError` (never enqueued) when the queue
        is at capacity and :class:`ServerClosedError` after close.
        """
        if deadline_s is None:
            deadline_s = self.config.default_deadline_s
        deadline = time.monotonic() + deadline_s if deadline_s is not None else None
        future = ServeFuture(deadline)
        with self._cond:
            if self._closed:
                self._stats.rejected_closed += 1
                raise ServerClosedError("server is closed; request rejected")
            if len(self._queue) >= self.config.queue_depth:
                self._stats.rejected_queue_full += 1
                raise QueueFullError(
                    f"queue at capacity ({self.config.queue_depth}); retry later"
                )
            self._stats.requests += 1
            self._queue.append(_Request(x=x, future=future))
            self._cond.notify_all()
        return future

    def queue_depth(self) -> int:
        """Requests currently waiting to be batched."""
        with self._cond:
            return len(self._queue)

    # ------------------------------------------------------------------
    # Batcher thread
    # ------------------------------------------------------------------
    def _collect(self) -> list[_Request] | None:
        """Block until a batch is due; ``None`` means shut down."""
        with self._cond:
            while not self._queue:
                if self._closed:
                    return None
                self._cond.wait(0.1)
            # Coalesce: wait for max_batch co-batchees or max_delay
            # after the oldest queued request, whichever first.
            batch_due = self._queue[0].future.enqueued_at + self.config.max_delay_s
            while len(self._queue) < self.config.max_batch and not self._closed:
                remaining = batch_due - time.monotonic()
                if remaining <= 0:
                    break
                self._cond.wait(remaining)
            now = time.monotonic()
            batch: list[_Request] = []
            while self._queue and len(batch) < self.config.max_batch:
                request = self._queue.popleft()
                future = request.future
                if future.deadline is not None and now > future.deadline:
                    self._stats.rejected_deadline += 1
                    future._finish(
                        None,
                        DeadlineExceededError(
                            "deadline passed while the request was queued"
                        ),
                    )
                    continue
                wait = now - future.enqueued_at
                self._stats.queue_wait_total_s += wait
                self._stats.queue_wait_max_s = max(self._stats.queue_wait_max_s, wait)
                batch.append(request)
            if batch:
                self._stats.batches += 1
                self._stats.width_hist[len(batch)] += 1
            return batch

    def _run(self) -> None:
        while True:
            batch = self._collect()
            if batch is None:
                return
            if not batch:
                continue  # every collected request had expired
            try:
                self._dispatch(batch)
            except BaseException as exc:  # noqa: BLE001 — a batch failure is data
                with self._cond:
                    self._stats.errors += len(batch)
                error = exc if isinstance(exc, ServeError) else ServeError(
                    f"batch execution failed: {type(exc).__name__}: {exc}"
                )
                for request in batch:
                    request.future._finish(None, error)

    # ------------------------------------------------------------------
    # Bookkeeping / lifecycle
    # ------------------------------------------------------------------
    def record_latency(self, future: ServeFuture) -> None:
        """Record one finished request's end-to-end latency."""
        if future.finished_at is None:
            return
        with self._cond:
            samples = self._stats.latencies_s
            if len(samples) < _MAX_LATENCY_SAMPLES:
                samples.append(future.finished_at - future.enqueued_at)

    def snapshot(self) -> dict:
        """Counters + latency percentiles (JSON-able)."""
        with self._cond:
            stats = self._stats
            widths = dict(sorted(stats.width_hist.items()))
            completed = sum(stats.width_hist.values())
            total_width = sum(w * c for w, c in stats.width_hist.items())
            latencies = np.asarray(stats.latencies_s, dtype=np.float64)
            out = {
                "requests": stats.requests,
                "batches": stats.batches,
                "rejected_queue_full": stats.rejected_queue_full,
                "rejected_deadline": stats.rejected_deadline,
                "rejected_closed": stats.rejected_closed,
                "errors": stats.errors,
                "queued": len(self._queue),
                "batch_width": {
                    "mean": (total_width / completed) if completed else 0.0,
                    "max": max(widths) if widths else 0,
                    "hist": {str(w): c for w, c in widths.items()},
                },
                "queue_wait_s": {
                    "mean": (stats.queue_wait_total_s / total_width)
                    if total_width
                    else 0.0,
                    "max": stats.queue_wait_max_s,
                },
            }
        if latencies.size:
            out["latency_s"] = {
                "p50": float(np.percentile(latencies, 50)),
                "p99": float(np.percentile(latencies, 99)),
                "mean": float(latencies.mean()),
                "count": int(latencies.size),
            }
        else:
            out["latency_s"] = {"p50": 0.0, "p99": 0.0, "mean": 0.0, "count": 0}
        return out

    def close(self, drain: bool = True, timeout: float | None = None) -> None:
        """Stop accepting work; optionally drain what is queued.

        With ``drain=True`` the batcher keeps dispatching until the
        queue empties (bounded by ``timeout``, default the config's
        ``drain_timeout_s``); whatever remains — and everything, with
        ``drain=False`` — fails with :class:`ServerClosedError`.
        """
        timeout = timeout if timeout is not None else self.config.drain_timeout_s
        deadline = time.monotonic() + timeout
        if drain:
            with self._cond:
                while self._queue and time.monotonic() < deadline:
                    self._cond.wait(0.01)
        with self._cond:
            self._closed = True
            leftovers = list(self._queue)
            self._queue.clear()
            self._cond.notify_all()
        for request in leftovers:
            request.future._finish(
                None, ServerClosedError("server closed before the request ran")
            )
        self._thread.join(timeout=max(0.0, deadline - time.monotonic()) + 1.0)


def resolve_batch(batch: list[_Request], compute) -> None:
    """Run ``compute`` on the stacked batch and finish every future.

    ``compute`` maps the stacked ``(k, T, D)`` array to ``(k,
    n_classes)`` logits; each request gets its own row (a copy, so no
    future holds the whole batch alive).  Errors fail every request in
    the batch with a typed :class:`ServeError`.
    """
    stacked = np.stack([request.x for request in batch], axis=0)
    try:
        logits = compute(stacked)
    except BaseException as exc:  # noqa: BLE001 — surface as typed per-request errors
        error = exc if isinstance(exc, ServeError) else ServeError(
            f"batch execution failed: {type(exc).__name__}: {exc}"
        )
        for request in batch:
            request.future._finish(None, error)
        return
    for row, request in enumerate(batch):
        request.future._finish(np.array(logits[row], copy=True), None)
