"""Typed serving errors.

Every failure mode a caller can act on gets its own class, so clients
distinguish "back off" (:class:`QueueFullError`), "you waited too
long" (:class:`DeadlineExceededError`), "redeploy"
(:class:`PipelineNotFoundError` / :class:`RegistryIntegrityError`) and
"the server is gone" (:class:`ServerClosedError`) without string
matching.
"""

from __future__ import annotations

__all__ = [
    "ServeError",
    "PipelineNotFoundError",
    "RegistryIntegrityError",
    "QueueFullError",
    "DeadlineExceededError",
    "ServerClosedError",
]


class ServeError(RuntimeError):
    """Base class for every serving-layer error."""


class PipelineNotFoundError(ServeError):
    """No pipeline published under the requested name / version."""


class RegistryIntegrityError(ServeError):
    """A registry entry exists but its payload is missing or corrupt.

    Raised when the stored arrays fail the content-digest check (or the
    catalog references an entry the store can no longer produce) — the
    one corruption case that must *not* degrade to a silent cache miss,
    because serving stale or damaged weights is worse than refusing.
    """


class QueueFullError(ServeError):
    """Request rejected: the server queue is at capacity (shed load).

    The 429 of this stack — the request was never enqueued, so retrying
    after backoff is safe.
    """


class DeadlineExceededError(ServeError):
    """The request's deadline passed before a result was produced."""


class ServerClosedError(ServeError):
    """The server is draining or closed; no new work is accepted."""
