"""Named, versioned fitted-pipeline snapshots in the artifact store.

A *deployment* is a name; publishing a fitted
:class:`~repro.training.AdapterPipeline` under a name allocates the
next integer version and writes one store artifact holding the
flattened pipeline state (:func:`repro.training.pipeline_state`) plus
a content digest.  Loading verifies the digest before reconstructing —
the store's usual "corruption is a miss" contract is deliberately
upgraded to a hard :class:`RegistryIntegrityError` here, because a
server silently falling back to nothing (or to damaged weights) is
worse than refusing to start.

A small LRU keeps reconstructed *hot* pipelines in memory so a server
restart or a ``client()`` call does not rebuild the object graph per
request.
"""

from __future__ import annotations

import re
import threading
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path

from ..nn.serialization import state_dict_digest
from ..runtime import ArtifactStore, pipeline_catalog_key, pipeline_key
from ..training import AdapterPipeline
from ..training.persistence import pipeline_from_state, pipeline_state
from .errors import PipelineNotFoundError, RegistryIntegrityError

__all__ = ["PipelineRecord", "PipelineRegistry"]

_NAME_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")


@dataclass(frozen=True)
class PipelineRecord:
    """One published (name, version) entry and its provenance."""

    name: str
    version: int
    digest: str
    key: str
    manifest: dict

    @property
    def ref(self) -> str:
        return f"{self.name}@v{self.version}"


class PipelineRegistry:
    """Publish / resolve / load named pipeline versions.

    Parameters
    ----------
    store:
        An :class:`~repro.runtime.ArtifactStore`, or a cache-directory
        path (a disk-backed store is created over it).  A disk-backed
        store is what lets N serving workers share one registry.
    max_hot:
        LRU capacity of reconstructed pipelines held in memory.
    """

    def __init__(self, store: ArtifactStore | str | Path, max_hot: int = 4) -> None:
        if not isinstance(store, ArtifactStore):
            store = ArtifactStore(cache_dir=Path(store))
        if max_hot <= 0:
            raise ValueError("max_hot must be positive")
        self.store = store
        self.max_hot = max_hot
        self._hot: OrderedDict[tuple[str, int], AdapterPipeline] = OrderedDict()
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Catalog (name -> published versions)
    # ------------------------------------------------------------------
    def _catalog(self) -> dict[str, list[int]]:
        artifact = self.store.get(pipeline_catalog_key())
        if artifact is None:
            return {}
        names = artifact.meta.get("names", {})
        return {name: [int(v) for v in versions] for name, versions in names.items()}

    def _write_catalog(self, catalog: dict[str, list[int]]) -> None:
        self.store.put(pipeline_catalog_key(), meta={"names": catalog})

    def names(self) -> list[str]:
        """All deployment names, sorted."""
        return sorted(self._catalog())

    def versions(self, name: str) -> list[int]:
        """Published versions of ``name``, ascending (empty if none)."""
        return sorted(self._catalog().get(name, []))

    # ------------------------------------------------------------------
    # Publish / resolve / load
    # ------------------------------------------------------------------
    def publish(self, pipeline: AdapterPipeline, name: str) -> PipelineRecord:
        """Write a fitted pipeline as the next version of ``name``.

        Versions are immutable: re-publishing a name never overwrites,
        it allocates ``latest + 1``.  Returns the new record.
        """
        if not _NAME_RE.match(name):
            raise ValueError(
                f"invalid pipeline name {name!r}; use letters, digits, '.', '_', '-'"
            )
        arrays, manifest = pipeline_state(pipeline)
        digest = state_dict_digest(arrays)
        with self._lock:
            catalog = self._catalog()
            versions = catalog.get(name, [])
            version = (max(versions) + 1) if versions else 1
            key = pipeline_key(name, version)
            meta = {
                "name": name,
                "version": version,
                "digest": digest,
                "manifest": manifest,
            }
            self.store.put(key, arrays=arrays, meta=meta)
            catalog[name] = sorted([*versions, version])
            self._write_catalog(catalog)
        return PipelineRecord(
            name=name, version=version, digest=digest, key=key, manifest=manifest
        )

    def _resolve_version(self, name: str, version: int | None) -> int:
        versions = self.versions(name)
        if not versions:
            raise PipelineNotFoundError(f"no pipeline published under name {name!r}")
        if version is None:
            return versions[-1]
        if version not in versions:
            raise PipelineNotFoundError(
                f"pipeline {name!r} has no version {version} (published: {versions})"
            )
        return version

    def record(self, name: str, version: int | None = None) -> PipelineRecord:
        """The :class:`PipelineRecord` of ``name`` (latest by default)."""
        version = self._resolve_version(name, version)
        key = pipeline_key(name, version)
        artifact = self.store.get(key)
        if artifact is None:
            raise RegistryIntegrityError(
                f"registry catalog lists {name!r} v{version} but its payload "
                f"is missing or unreadable (key {key})"
            )
        return PipelineRecord(
            name=name,
            version=version,
            digest=str(artifact.meta.get("digest", "")),
            key=key,
            manifest=dict(artifact.meta.get("manifest", {})),
        )

    def load(self, name: str, version: int | None = None) -> AdapterPipeline:
        """Reconstruct ``name`` (latest version by default).

        Verifies the payload's content digest before rebuilding; a
        mismatch — truncated write, bit rot, foreign file — raises
        :class:`RegistryIntegrityError` rather than serving damaged
        weights.  Hot entries are returned from the LRU without
        touching the store again.
        """
        version = self._resolve_version(name, version)
        with self._lock:
            cached = self._hot.get((name, version))
            if cached is not None:
                self._hot.move_to_end((name, version))
                return cached
        key = pipeline_key(name, version)
        artifact = self.store.get(key)
        if artifact is None:
            raise RegistryIntegrityError(
                f"registry catalog lists {name!r} v{version} but its payload "
                f"is missing or unreadable (key {key})"
            )
        expected = str(artifact.meta.get("digest", ""))
        actual = state_dict_digest(artifact.arrays)
        if expected != actual:
            raise RegistryIntegrityError(
                f"pipeline {name!r} v{version} failed its integrity check "
                f"(stored digest {expected or '<missing>'}, payload digest {actual})"
            )
        pipeline = pipeline_from_state(artifact.arrays, artifact.meta["manifest"])
        with self._lock:
            self._hot[(name, version)] = pipeline
            self._hot.move_to_end((name, version))
            while len(self._hot) > self.max_hot:
                self._hot.popitem(last=False)
        return pipeline

    def __repr__(self) -> str:
        return f"PipelineRegistry(names={self.names()}, hot={len(self._hot)})"
