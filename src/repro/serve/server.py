"""The serving front end: registry-backed, micro-batched prediction.

A :class:`PipelineServer` binds one published deployment (name +
version) to a :class:`~repro.serve.batching.MicroBatcher` and either
an in-process executor (``workers=0``) or a
:class:`~repro.serve.workers.ServePool` fleet.  Every micro-batch runs
at the fixed width ``config.max_batch`` through
``AdapterPipeline._predict_chunk``, so a served logits row is
bit-identical to ``pipeline.predict_logits(x,
batch_size=config.max_batch)`` offline — regardless of which requests
happened to share the batch.

Observability: per-phase span seconds (adapter / encode / head) via
:class:`repro.runtime.Instrumentation`, plus the batcher's queue-wait,
batch-width and latency-percentile counters, in one JSON-able
:meth:`stats` snapshot (the CLI's ``/stats`` view).
"""

from __future__ import annotations

import threading

import numpy as np

from ..runtime import ArtifactStore, Instrumentation
from .batching import MicroBatcher, ServeConfig, ServeFuture, resolve_batch
from .errors import ServerClosedError
from .registry import PipelineRegistry
from .sessions import StreamSession
from .workers import ServePool

__all__ = ["PipelineServer"]


def _softmax(logits: np.ndarray) -> np.ndarray:
    shifted = logits - logits.max(axis=-1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=-1, keepdims=True)


class PipelineServer:
    """Serve one published pipeline with dynamic micro-batching.

    Parameters
    ----------
    store:
        A :class:`PipelineRegistry`, an
        :class:`~repro.runtime.ArtifactStore`, or a cache-directory
        path.
    name / version:
        Deployment to serve (latest version when ``None``).
    config:
        Batching/saturation policy (:class:`ServeConfig`).
    """

    def __init__(
        self,
        store: PipelineRegistry | ArtifactStore | str,
        name: str,
        version: int | None = None,
        config: ServeConfig | None = None,
    ) -> None:
        registry = store if isinstance(store, PipelineRegistry) else PipelineRegistry(store)
        self.registry = registry
        self.config = config if config is not None else ServeConfig()
        self.record = registry.record(name, version)
        self._inst = Instrumentation()
        self._closed = False
        self._close_lock = threading.Lock()
        self._pool: ServePool | None = None
        self._pipeline = None
        if self.config.workers > 0:
            cache_dir = registry.store.cache_dir
            if cache_dir is None:
                raise ValueError(
                    "multi-worker serving needs a disk-backed registry "
                    "(ArtifactStore with a cache_dir) so workers can load the pipeline"
                )
            self._pool = ServePool(
                str(cache_dir),
                self.record.name,
                self.record.version,
                width=self.config.max_batch,
                compiled=self.config.compiled,
                workers=self.config.workers,
            )
            dispatch = self._pool.dispatch
        else:
            self._pipeline = registry.load(self.record.name, self.record.version)
            dispatch = self._dispatch_inline
        self._batcher = MicroBatcher(self.config, dispatch)
        if self._pool is not None:
            self._pool.on_result = self._batcher.record_latency
        self._streams: dict[int, StreamSession] = {}
        self._stream_lock = threading.Lock()
        self._streams_opened = 0
        self._stream_windows = 0

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _dispatch_inline(self, batch) -> None:
        resolve_batch(batch, self._compute)
        for request in batch:
            self._batcher.record_latency(request.future)

    def _compute(self, stacked: np.ndarray) -> np.ndarray:
        return self._pipeline._predict_chunk(
            stacked,
            self.config.max_batch,
            compiled=self.config.compiled,
            inst=self._inst,
            use_store=False,
        )

    # ------------------------------------------------------------------
    # Request surface
    # ------------------------------------------------------------------
    def submit(self, x: np.ndarray, deadline_s: float | None = None) -> ServeFuture:
        """Enqueue one (T, D) series; returns its logits future.

        Raises :class:`QueueFullError` when saturated and
        :class:`ServerClosedError` after :meth:`close`.
        """
        if self._closed:
            raise ServerClosedError("server is closed")
        x = np.asarray(x)
        if x.ndim != 2:
            raise ValueError(
                f"submit takes one (T, D) series, got shape {x.shape}; "
                "use predict_logits for (N, T, D) arrays"
            )
        return self._batcher.submit(x, deadline_s=deadline_s)

    def predict_logits(
        self, x: np.ndarray, deadline_s: float | None = None
    ) -> np.ndarray:
        """Logits for one (T, D) series or an (N, T, D) array.

        The batched form submits every series as its own request, so
        it exercises — and benefits from — micro-batching exactly like
        N independent clients would.
        """
        x = np.asarray(x)
        if x.ndim == 2:
            return self.submit(x, deadline_s=deadline_s).result()
        if x.ndim != 3:
            raise ValueError(f"expected (T, D) or (N, T, D) input, got shape {x.shape}")
        futures = [self.submit(row, deadline_s=deadline_s) for row in x]
        return np.stack([future.result() for future in futures], axis=0)

    def predict(self, x: np.ndarray, deadline_s: float | None = None) -> np.ndarray:
        """Predicted label(s): scalar for (T, D), vector for (N, T, D)."""
        logits = self.predict_logits(x, deadline_s=deadline_s)
        return np.argmax(logits, axis=-1)

    # ------------------------------------------------------------------
    # Streaming sessions
    # ------------------------------------------------------------------
    def open_stream(
        self, window: int, stride: int, deadline_s: float | None = None
    ) -> StreamSession:
        """Open one incremental streaming session against this server.

        Each session keeps its own rolling buffer and submits completed
        windows as ordinary requests, so concurrent sessions share
        micro-batches and pool fault tolerance.  Raises
        :class:`~repro.stream.WindowGeometryError` for a bad geometry
        and :class:`ServerClosedError` after :meth:`close`.
        """
        if self._closed:
            raise ServerClosedError("server is closed")
        with self._stream_lock:
            session_id = self._streams_opened
            self._streams_opened += 1
            session = StreamSession(
                self, session_id, window, stride, deadline_s=deadline_s
            )
            self._streams[session_id] = session
        return session

    def _note_stream_windows(self, count: int) -> None:
        with self._stream_lock:
            self._stream_windows += count

    def _forget_stream(self, session_id: int) -> None:
        with self._stream_lock:
            self._streams.pop(session_id, None)

    def predict_proba(
        self, x: np.ndarray, deadline_s: float | None = None
    ) -> np.ndarray:
        """Class probabilities (softmax over :meth:`predict_logits`)."""
        return _softmax(self.predict_logits(x, deadline_s=deadline_s))

    # ------------------------------------------------------------------
    # Lifecycle / observability
    # ------------------------------------------------------------------
    @property
    def input_channels(self) -> int:
        """Raw channel count D this deployment expects per request."""
        return int(self.record.manifest.get("adapter", {}).get("input_channels") or 1)

    def warmup(self, length: int, channels: int | None = None) -> None:
        """Prime compiled graphs with zero batches of the serving shape.

        In-process mode runs one fixed-width batch directly; pool mode
        pushes one dummy batch per worker through the fleet.  Without
        warmup the first real requests pay eager capture cost.
        """
        if channels is None:
            channels = self.input_channels
        zeros = np.zeros((self.config.max_batch, int(length), int(channels)))
        if self._pool is None:
            self._compute(zeros)
            return
        futures = [
            self.submit(zeros[0], deadline_s=None) for _ in range(self.config.workers)
        ]
        for future in futures:
            future.result()

    def stats(self) -> dict:
        """JSON-able snapshot: the ``/stats`` view."""
        summary = self._inst.summary()
        return {
            "pipeline": {
                "name": self.record.name,
                "version": self.record.version,
                "digest": self.record.digest,
            },
            "config": {
                "max_batch": self.config.max_batch,
                "max_delay_s": self.config.max_delay_s,
                "queue_depth": self.config.queue_depth,
                "default_deadline_s": self.config.default_deadline_s,
                "workers": self.config.workers,
                "compiled": self.config.compiled,
            },
            "batcher": self._batcher.snapshot(),
            "phases_s": dict(summary.phase_seconds),
            "pool": self._pool.snapshot() if self._pool is not None else None,
            "streams": self._stream_snapshot(),
        }

    def _stream_snapshot(self) -> dict:
        with self._stream_lock:
            return {
                "open": len(self._streams),
                "opened": self._streams_opened,
                "windows_submitted": self._stream_windows,
            }

    def close(self, drain: bool = True) -> None:
        """Stop accepting requests; drain (by default) then shut down."""
        with self._close_lock:
            if self._closed:
                return
            self._closed = True
        if drain:
            with self._stream_lock:
                sessions = list(self._streams.values())
            for session in sessions:
                session.close(timeout=self.config.drain_timeout_s)
        self._batcher.close(drain=drain, timeout=self.config.drain_timeout_s)
        if self._pool is not None:
            self._pool.close(drain=drain, timeout=self.config.drain_timeout_s)

    def __enter__(self) -> "PipelineServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        mode = f"workers={self.config.workers}" if self._pool else "in-process"
        return f"PipelineServer({self.record.ref}, {mode}, max_batch={self.config.max_batch})"
