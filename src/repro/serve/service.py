"""Module-level deployment facade: ``deploy`` / ``client`` / ``undeploy``.

The 90% serving path in three lines::

    from repro import deploy, client

    deploy(pipeline, "heartbeat")
    label = client("heartbeat").predict(series)      # one (T, D) series

``deploy`` publishes the fitted pipeline into a registry (an
in-process one by default) and starts a :class:`PipelineServer` under
the name; ``client`` hands out a thin :class:`ServeClient` over the
running server.  Pass ``store=`` (an
:class:`~repro.runtime.ArtifactStore` or a cache directory) to make
the deployment persistent and shareable with worker processes and the
``repro serve`` / ``repro predict`` CLI.
"""

from __future__ import annotations

import threading

import numpy as np

from ..runtime import ArtifactStore
from .batching import ServeConfig
from .errors import PipelineNotFoundError
from .registry import PipelineRecord, PipelineRegistry
from .server import PipelineServer

__all__ = ["ServeClient", "deploy", "client", "undeploy"]

# One process-wide default registry backs store-less deployments, so a
# deploy in one module is visible to a client() in another.
_DEFAULT_STORE = ArtifactStore(max_memory_entries=64)
_DEPLOYMENTS: dict[str, PipelineServer] = {}
_LOCK = threading.Lock()


class ServeClient:
    """Caller-facing handle over one running deployment.

    Mirrors the offline :class:`~repro.training.AdapterPipeline`
    surface (``predict`` / ``predict_proba`` / ``predict_logits`` with
    ``batch_size`` / ``compiled`` kwargs) — but batching policy is
    pinned by the server, so passing a conflicting value is an error
    rather than a silent override.
    """

    def __init__(self, server: PipelineServer) -> None:
        self._server = server

    @property
    def server(self) -> PipelineServer:
        return self._server

    def _check_kwargs(self, batch_size: int | None, compiled: bool | None) -> None:
        config = self._server.config
        if batch_size is not None and batch_size != config.max_batch:
            raise ValueError(
                f"this deployment executes at batch_size={config.max_batch} "
                f"(its max_batch); got batch_size={batch_size}.  Reproduce its "
                f"outputs offline with predict_logits(x, batch_size={config.max_batch})"
            )
        if compiled is not None and compiled != config.compiled:
            raise ValueError(
                f"this deployment is pinned to compiled={config.compiled}; "
                "results are bit-identical either way, so there is nothing to switch"
            )

    def predict_logits(
        self,
        x: np.ndarray,
        batch_size: int | None = None,
        compiled: bool | None = None,
        deadline_s: float | None = None,
    ) -> np.ndarray:
        """Raw logits via the server (kwargs must match its pinned policy)."""
        self._check_kwargs(batch_size, compiled)
        return self._server.predict_logits(x, deadline_s=deadline_s)

    def predict(
        self,
        x: np.ndarray,
        batch_size: int | None = None,
        compiled: bool | None = None,
        deadline_s: float | None = None,
    ) -> np.ndarray:
        """Predicted label(s) via the server (kwargs must match its pinned policy)."""
        self._check_kwargs(batch_size, compiled)
        return self._server.predict(x, deadline_s=deadline_s)

    def predict_proba(
        self,
        x: np.ndarray,
        batch_size: int | None = None,
        compiled: bool | None = None,
        deadline_s: float | None = None,
    ) -> np.ndarray:
        """Class probabilities via the server (kwargs must match its pinned policy)."""
        self._check_kwargs(batch_size, compiled)
        return self._server.predict_proba(x, deadline_s=deadline_s)

    def stream(self, window: int, stride: int, deadline_s: float | None = None):
        """Open an incremental :class:`~repro.serve.sessions.StreamSession`.

        ::

            with client("heartbeat").stream(window=64, stride=16) as session:
                for chunk in live_feed:
                    session.push(chunk)
                predictions = session.results()
        """
        return self._server.open_stream(window, stride, deadline_s=deadline_s)

    def stats(self) -> dict:
        """The deployment's ``/stats`` snapshot."""
        return self._server.stats()

    def __repr__(self) -> str:
        return f"ServeClient({self._server.record.ref})"


def deploy(
    pipeline,
    name: str,
    *,
    store: ArtifactStore | str | None = None,
    config: ServeConfig | None = None,
) -> PipelineRecord:
    """Publish ``pipeline`` under ``name`` and start serving it.

    Re-deploying a name publishes the next version and swaps the
    running server to it (the old server drains and closes).  Returns
    the published :class:`PipelineRecord`.
    """
    registry = PipelineRegistry(store if store is not None else _DEFAULT_STORE)
    record = registry.publish(pipeline, name)
    server = PipelineServer(registry, name, version=record.version, config=config)
    with _LOCK:
        previous = _DEPLOYMENTS.pop(name, None)
        _DEPLOYMENTS[name] = server
    if previous is not None:
        previous.close(drain=True)
    return record


def client(name: str) -> ServeClient:
    """A :class:`ServeClient` over the running deployment ``name``."""
    with _LOCK:
        server = _DEPLOYMENTS.get(name)
    if server is None:
        raise PipelineNotFoundError(
            f"no running deployment named {name!r}; call deploy(pipeline, {name!r}) first"
        )
    return ServeClient(server)


def undeploy(name: str, drain: bool = True) -> bool:
    """Stop and remove deployment ``name``; True if one was running."""
    with _LOCK:
        server = _DEPLOYMENTS.pop(name, None)
    if server is None:
        return False
    server.close(drain=drain)
    return True
