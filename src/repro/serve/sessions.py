"""Per-session streaming over a running :class:`PipelineServer`.

A :class:`StreamSession` gives one client an incremental ``push``
surface against a deployment: the session keeps a rolling raw-sample
buffer, cuts completed windows with the same
:mod:`repro.stream.windows` geometry as the offline paths, and submits
each window as an ordinary ``server.submit()`` request.  That one
design decision buys everything the serving layer already guarantees:

* windows from *different* sessions coalesce into shared micro-batches
  (cross-session batching needs no new machinery);
* every window executes at the server's fixed ``max_batch`` width, so
  a streamed prediction is bit-identical to
  ``pipeline.predict_logits(window, batch_size=max_batch)`` offline
  and to a serial replay of the same stream;
* a worker killed mid-stream is handled by the pool's
  resubmit-and-respawn path — the session just sees its futures
  resolve a little later.

Sessions are *ordered*: ``results()`` resolves futures in submission
order, so ``predictions[i]`` is always window ``i`` of the stream
regardless of how the fleet interleaved the work.
"""

from __future__ import annotations

import threading
from collections import deque

import numpy as np

from ..stream.classifier import StreamPrediction
from ..stream.errors import ChannelMismatchError, StreamSessionClosedError
from ..stream.windows import validate_geometry

__all__ = ["StreamSession"]


class StreamSession:
    """One client's incremental stream against a served deployment.

    Created via :meth:`PipelineServer.open_stream` (or
    ``ServeClient.stream``), never directly.  A session is intended
    for a single client thread; the internal lock only protects the
    server-side registry handshake.
    """

    def __init__(
        self,
        server,
        session_id: int,
        window: int,
        stride: int,
        deadline_s: float | None = None,
    ) -> None:
        self.server = server
        self.session_id = int(session_id)
        self.window, self.stride = validate_geometry(window, stride)
        self.deadline_s = deadline_s
        self._buffer: np.ndarray | None = None
        self._buffer_start = 0
        self._total = 0
        self._next_start = 0
        self._channels: int | None = None
        #: (window_index, start, future) in submission order.
        self._pending: deque[tuple[int, int, object]] = deque()
        self._submitted = 0
        self.predictions: list[StreamPrediction] = []
        self._closed = False
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Push side
    # ------------------------------------------------------------------
    def push(self, samples: np.ndarray) -> int:
        """Append samples; submit every window that completes.

        ``samples`` is one ``(D,)`` sample or a ``(k, D)`` chunk.
        Returns how many windows this push submitted (they resolve
        asynchronously — collect them with :meth:`results`).  Raises
        :class:`~repro.stream.StreamSessionClosedError` after
        :meth:`close` and
        :class:`~repro.stream.ChannelMismatchError` when the chunk
        disagrees with the stream's channel count.
        """
        if self._closed:
            raise StreamSessionClosedError(
                f"stream session {self.session_id} is closed"
            )
        samples = np.asarray(samples)
        if samples.ndim == 1:
            samples = samples[None, :]
        if samples.ndim != 2:
            raise ValueError(
                f"push takes one (D,) sample or a (k, D) chunk, got shape {samples.shape}"
            )
        if self._channels is None:
            self._channels = int(samples.shape[1])
        elif samples.shape[1] != self._channels:
            raise ChannelMismatchError(
                f"session {self.session_id} carries D={self._channels} channels; "
                f"pushed chunk has D={samples.shape[1]}"
            )
        if self._buffer is None:
            self._buffer = np.array(samples, copy=True)
        else:
            self._buffer = np.concatenate([self._buffer, samples], axis=0)
        self._total += len(samples)

        submitted = 0
        while self._total >= self._next_start + self.window:
            offset = self._next_start - self._buffer_start
            raw = np.array(self._buffer[offset : offset + self.window], copy=True)
            future = self.server.submit(raw, deadline_s=self.deadline_s)
            self._pending.append((self._submitted, self._next_start, future))
            self._submitted += 1
            submitted += 1
            self._next_start += self.stride
        if submitted:
            self.server._note_stream_windows(submitted)
        drop = self._next_start - self._buffer_start
        if drop > 0 and self._buffer is not None:
            self._buffer = np.array(self._buffer[drop:], copy=True)
            self._buffer_start = self._next_start
        return submitted

    # ------------------------------------------------------------------
    # Result side
    # ------------------------------------------------------------------
    def results(self, timeout: float | None = None) -> list[StreamPrediction]:
        """Resolve every submitted window, in stream order.

        Blocks until all pending futures finish (``timeout`` bounds
        each individual wait) and returns the session's *complete*
        prediction list so far — ``predictions[i]`` is window ``i``.
        """
        while self._pending:
            index, start, future = self._pending[0]
            logits = future.result(timeout)  # raises the request's typed error
            self._pending.popleft()
            shifted = logits - logits.max()
            exp = np.exp(shifted)
            self.predictions.append(
                StreamPrediction(
                    window_index=index,
                    start=start,
                    end=start + self.window,
                    label=int(np.argmax(logits)),
                    logits=logits,
                    proba=exp / exp.sum(),
                )
            )
        return self.predictions

    @property
    def pending(self) -> int:
        """Windows submitted but not yet collected via :meth:`results`."""
        return len(self._pending)

    @property
    def windows_submitted(self) -> int:
        return self._submitted

    @property
    def samples_pushed(self) -> int:
        return self._total

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self, timeout: float | None = None) -> list[StreamPrediction]:
        """Drain pending windows, detach from the server, return all
        predictions.  Idempotent; further pushes raise
        :class:`~repro.stream.StreamSessionClosedError`."""
        with self._lock:
            if self._closed:
                return self.predictions
            self._closed = True
        try:
            return self.results(timeout)
        finally:
            self.server._forget_stream(self.session_id)

    def __enter__(self) -> "StreamSession":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def stats(self) -> dict:
        """JSON-able session counters."""
        return {
            "session_id": self.session_id,
            "window": self.window,
            "stride": self.stride,
            "samples": self._total,
            "windows_submitted": self._submitted,
            "pending": len(self._pending),
            "collected": len(self.predictions),
            "closed": self._closed,
        }

    def __repr__(self) -> str:
        return (
            f"StreamSession(id={self.session_id}, window={self.window}, "
            f"stride={self.stride}, submitted={self._submitted})"
        )
