"""Multi-process serving pool.

Reuses the :mod:`repro.exec` spawn-worker protocol
(:func:`repro.exec.executor._worker_main`: one task queue and one
result pipe per worker, ``ready`` handshake, errors as data) with a
serving-shaped parent: instead of mapping a finite payload list, a
management thread keeps a standing fleet of workers fed from an open
stream of micro-batches.

Each worker loads the deployed pipeline from the shared disk-backed
registry in its initializer, then answers ``(k, T, D)`` batch arrays
with ``(k, n_classes)`` logits.  Every batch runs at the pool's fixed
execution width (padded inside ``_predict_chunk``), so worker
responses are bit-identical to in-process and offline prediction.

Fault handling: a crashed worker's in-flight batch is *resubmitted*
(prediction is idempotent) and a replacement worker is spawned; only a
pool whose every worker fails initialisation becomes ``broken`` and
fails requests.
"""

from __future__ import annotations

import multiprocessing as mp
import threading
import time
from collections import deque
from multiprocessing import connection as mp_connection

import numpy as np

from ..exec.chaos import chaos_point
from ..exec.executor import _worker_main
from .batching import _Request
from .errors import ServeError, ServerClosedError

__all__ = ["ServePool"]

_POLL_S = 0.02

# ----------------------------------------------------------------------
# Worker-process side (module level: importable under spawn)
# ----------------------------------------------------------------------
_SERVE_PIPELINE = None
_SERVE_WIDTH = 0
_SERVE_COMPILED = True


def _serve_worker_init(
    cache_dir: str, name: str, version: int, width: int, compiled: bool
) -> None:
    global _SERVE_PIPELINE, _SERVE_WIDTH, _SERVE_COMPILED
    from .registry import PipelineRegistry

    _SERVE_PIPELINE = PipelineRegistry(cache_dir).load(name, version=version)
    _SERVE_WIDTH = int(width)
    _SERVE_COMPILED = bool(compiled)


def _serve_predict(batch: np.ndarray) -> np.ndarray:
    """Logits of one stacked (k, T, D) micro-batch."""
    # Instrumented for fault drills: a ChaosPlan(site="serve.predict")
    # carried in $REPRO_CHAOS (inherited by spawned workers) can kill
    # this worker at a chosen batch; the pool resubmits and respawns.
    chaos_point("serve.predict", rows=len(batch))
    return _SERVE_PIPELINE._predict_chunk(
        np.asarray(batch), _SERVE_WIDTH, compiled=_SERVE_COMPILED, use_store=False
    )


# ----------------------------------------------------------------------
# Parent side
# ----------------------------------------------------------------------
class _PoolWorker:
    __slots__ = ("process", "task_q", "conn", "ready", "batch")

    def __init__(self, process, task_q, conn) -> None:
        self.process = process
        self.task_q = task_q
        self.conn = conn
        self.ready = False
        self.batch: list[_Request] | None = None


class ServePool:
    """Standing worker fleet answering micro-batch predict requests.

    Parameters
    ----------
    cache_dir:
        The registry's disk cache directory (workers re-open it; a
        memory-only registry cannot back a pool).
    name / version:
        The deployment each worker loads at startup.
    width / compiled:
        Fixed execution width (== the server's ``max_batch``) and
        graph-replay flag, forwarded to every worker.
    workers:
        Fleet size (>= 1).
    """

    def __init__(
        self,
        cache_dir: str,
        name: str,
        version: int,
        *,
        width: int,
        compiled: bool = True,
        workers: int = 1,
    ) -> None:
        if workers < 1:
            raise ValueError("ServePool needs at least one worker")
        self._initargs = (str(cache_dir), name, int(version), int(width), bool(compiled))
        self.workers = int(workers)
        self._ctx = mp.get_context("spawn")
        self._lock = threading.Condition()
        self._fleet: dict[int, _PoolWorker] = {}
        self._pending: deque[list[_Request]] = deque()
        self._closed = False
        self._broken = False
        self._init_failures = 0
        self._respawns = 0
        self._next_id = 0
        #: Optional per-request hook fired after a successful resolve
        #: (the server wires latency recording through it).
        self.on_result = None
        for _ in range(self.workers):
            self._spawn_locked()
        self._thread = threading.Thread(
            target=self._manage, name="repro-serve-pool", daemon=True
        )
        self._thread.start()

    # ------------------------------------------------------------------
    def _spawn_locked(self) -> None:
        task_q = self._ctx.SimpleQueue()
        recv_conn, send_conn = self._ctx.Pipe(duplex=False)
        try:
            process = self._ctx.Process(
                target=_worker_main,
                args=(
                    self._next_id,
                    _serve_predict,
                    _serve_worker_init,
                    self._initargs,
                    task_q,
                    send_conn,
                ),
                daemon=True,
            )
            process.start()
        except OSError:
            recv_conn.close()
            self._broken = True
            return
        finally:
            send_conn.close()
        self._fleet[self._next_id] = _PoolWorker(process, task_q, recv_conn)
        self._next_id += 1

    # ------------------------------------------------------------------
    # Batcher-facing API
    # ------------------------------------------------------------------
    def dispatch(self, batch: list[_Request]) -> None:
        """Hand one micro-batch to the fleet (non-blocking).

        Called on the batcher thread; the management thread assigns it
        to the next idle worker and resolves the futures when the
        result lands.
        """
        with self._lock:
            if self._closed or self._broken:
                raise ServerClosedError(
                    "serving pool is broken" if self._broken else "serving pool closed"
                )
            self._pending.append(batch)
            self._lock.notify_all()

    def inflight(self) -> int:
        """Batches dispatched to workers plus batches still pending."""
        with self._lock:
            busy = sum(1 for w in self._fleet.values() if w.batch is not None)
            return busy + len(self._pending)

    def snapshot(self) -> dict:
        """JSON-able fleet state: sizes, busy/pending counts, respawns."""
        with self._lock:
            return {
                "workers": len(self._fleet),
                "busy": sum(1 for w in self._fleet.values() if w.batch is not None),
                "pending_batches": len(self._pending),
                "respawns": self._respawns,
                "init_failures": self._init_failures,
                "broken": self._broken,
            }

    # ------------------------------------------------------------------
    # Management thread
    # ------------------------------------------------------------------
    def _manage(self) -> None:
        while True:
            with self._lock:
                if self._closed and not self._pending and not any(
                    w.batch is not None for w in self._fleet.values()
                ):
                    return
                if self._broken:
                    self._fail_pending_locked()
                # Keep the fleet at strength (respawn crash losses).
                while not self._closed and len(self._fleet) < self.workers:
                    self._spawn_locked()
                # Assign pending batches to ready idle workers.
                for worker in self._fleet.values():
                    if not self._pending:
                        break
                    if not worker.ready or worker.batch is not None:
                        continue
                    batch = self._pending.popleft()
                    worker.batch = batch
                    try:
                        worker.task_q.put(
                            (0, np.stack([request.x for request in batch], axis=0))
                        )
                    except Exception:
                        worker.batch = None
                        self._pending.appendleft(batch)
                conns = [w.conn for w in self._fleet.values()]
            readable = mp_connection.wait(conns, timeout=_POLL_S) if conns else []
            if not conns:
                time.sleep(_POLL_S)
            with self._lock:
                for worker_id, worker in list(self._fleet.items()):
                    if worker.conn in readable:
                        self._drain_worker_locked(worker_id, worker)
                self._reap_locked()

    def _drain_worker_locked(self, worker_id: int, worker: _PoolWorker) -> None:
        while True:
            try:
                if not worker.conn.poll(0):
                    return
                message = worker.conn.recv()
            except (EOFError, OSError):
                return  # death is handled by the reaping pass
            _, _index, kind, value = message
            if kind == "ready":
                worker.ready = True
            elif kind == "init_error":
                self._init_failures += 1
                self._retire_locked(worker_id, worker, respawn=False)
                if self._init_failures >= self.workers:
                    self._broken = True
                    self._fail_pending_locked()
                return
            elif kind == "ok":
                batch, worker.batch = worker.batch, None
                if batch is not None:
                    for row, request in enumerate(batch):
                        request.future._finish(np.array(value[row], copy=True), None)
                        if self.on_result is not None:
                            self.on_result(request.future)
            else:  # "error" — the job raised; prediction errors are permanent
                batch, worker.batch = worker.batch, None
                error_text = value[0] if isinstance(value, tuple) else str(value)
                if batch is not None:
                    error = ServeError(f"worker predict failed: {error_text}")
                    for request in batch:
                        request.future._finish(None, error)

    def _reap_locked(self) -> None:
        for worker_id, worker in list(self._fleet.items()):
            if worker.process.is_alive():
                continue
            # Crash: resubmit the in-flight batch, respawn a successor.
            if not worker.ready and worker.batch is None:
                self._init_failures += 1
                if self._init_failures >= self.workers:
                    self._broken = True
                    self._fail_pending_locked()
            elif not self._closed:
                self._respawns += 1
            if worker.batch is not None:
                self._pending.appendleft(worker.batch)
                worker.batch = None
            self._retire_locked(worker_id, worker, respawn=not self._closed)

    def _retire_locked(self, worker_id: int, worker: _PoolWorker, respawn: bool) -> None:
        self._fleet.pop(worker_id, None)
        try:
            worker.conn.close()
        except OSError:
            pass
        if worker.process.is_alive():
            worker.process.terminate()
        if respawn and not self._broken:
            self._spawn_locked()

    def _fail_pending_locked(self) -> None:
        error = ServeError("serving pool broken: every worker failed to initialise")
        while self._pending:
            batch = self._pending.popleft()
            for request in batch:
                request.future._finish(None, error)

    # ------------------------------------------------------------------
    def close(self, drain: bool = True, timeout: float = 10.0) -> None:
        """Graceful drain then shutdown of the fleet."""
        deadline = time.monotonic() + timeout
        if drain:
            while self.inflight() and time.monotonic() < deadline:
                time.sleep(0.01)
        with self._lock:
            self._closed = True
            self._fail_closed_locked()
            self._lock.notify_all()
            fleet = list(self._fleet.values())
        for worker in fleet:
            try:
                worker.task_q.put(None)
            except Exception:
                pass
        self._thread.join(timeout=max(0.0, deadline - time.monotonic()) + 1.0)
        for worker in fleet:
            worker.process.join(timeout=max(0.0, deadline - time.monotonic()))
            if worker.process.is_alive():
                worker.process.terminate()
                worker.process.join(timeout=1.0)
            try:
                worker.conn.close()
            except OSError:
                pass

    def _fail_closed_locked(self) -> None:
        while self._pending:
            batch = self._pending.popleft()
            for request in batch:
                request.future._finish(
                    None, ServerClosedError("pool closed before the batch ran")
                )
