"""Streaming & long-context inference for adapter pipelines.

Two complementary surfaces over the same frozen-encoder execution
path:

* :func:`encode_long` — offline chunked sliding-window encoding of one
  arbitrarily long ``(T, D)`` series into a single pooled embedding,
  under a bounded peak-memory footprint predicted by
  :func:`repro.resources.cost_model.streaming_inference_memory_bytes`.
* :class:`StreamingClassifier` — incremental ``push(samples)``
  classification with a rolling sample buffer and a rolling
  content-fingerprinted window-embedding cache; bit-identical to the
  offline prediction path by a property-tested equivalence contract.

The serving layer (:mod:`repro.serve`) builds per-session streaming on
top of these pieces.
"""

from .cache import WindowEmbeddingCache
from .classifier import StreamingClassifier, StreamPrediction
from .encode import AGGREGATIONS, LongSeriesEncoding, encode_long
from .errors import (
    ChannelMismatchError,
    SeriesTooShortError,
    StreamError,
    StreamSessionClosedError,
    WindowGeometryError,
)
from .windows import num_windows, validate_geometry, window_batch, window_starts

__all__ = [
    "AGGREGATIONS",
    "ChannelMismatchError",
    "LongSeriesEncoding",
    "SeriesTooShortError",
    "StreamError",
    "StreamPrediction",
    "StreamSessionClosedError",
    "StreamingClassifier",
    "WindowEmbeddingCache",
    "WindowGeometryError",
    "encode_long",
    "num_windows",
    "validate_geometry",
    "window_batch",
    "window_starts",
]
