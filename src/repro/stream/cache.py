"""Rolling, content-addressed cache of per-window embeddings.

The streaming classifier's core economy: a live feed re-presents
overlapping history on every push, but a window whose *content* has
not changed must never be re-encoded.  Like
:class:`repro.training.EmbeddingCache` (whose keying scheme this
reuses — :func:`repro.runtime.embedding_key` over model weights,
fitted adapter, data content and batch geometry), entries are keyed
purely by content fingerprints, so

* pushing more samples never invalidates old windows (their content
  fingerprint is unchanged — hit);
* mutating a buffered array, refitting the adapter, or updating model
  weights *does* change the key — the cache can never serve an
  embedding for data that drifted (the PR 1 ``id(x)``-keying bug class
  is structurally impossible here, and a seeded drift test pins it).

The backing :class:`~repro.runtime.ArtifactStore` is memory-only with
a bounded LRU by default, making the cache *rolling*: windows that
scrolled out of the working set are evicted, keeping memory O(capacity)
rather than O(stream history).
"""

from __future__ import annotations

import numpy as np

from ..runtime import ArtifactStore, embedding_key, fingerprint_array
from ..training.embedding_cache import compute_embeddings

__all__ = ["WindowEmbeddingCache"]


class WindowEmbeddingCache:
    """Content-keyed embeddings of single ``(window, D)`` raw windows.

    Parameters
    ----------
    pipeline:
        A fitted :class:`~repro.training.AdapterPipeline`; windows run
        adapter -> normalise -> frozen encoder exactly like its
        offline prediction path.
    width:
        Fixed execution width: every window is zero-padded to a
        ``(width, window, D)`` batch before the adapter/encoder, so a
        cached embedding is bit-identical to the corresponding row of
        ``pipeline.predict_logits(windows, batch_size=width)`` — the
        equivalence contract's linchpin (BLAS row bits depend on batch
        width, not on row position; see ``AdapterPipeline._predict_chunk``).
    capacity:
        LRU bound of the default memory-only store (ignored when an
        explicit ``store`` is passed).
    store:
        Optional shared :class:`~repro.runtime.ArtifactStore` (e.g.
        disk-backed, to reuse window embeddings across processes).
    compiled:
        Route encoder passes through compiled graph replay.
    """

    def __init__(
        self,
        pipeline,
        width: int = 16,
        capacity: int = 512,
        store: ArtifactStore | None = None,
        compiled: bool = True,
    ) -> None:
        if width <= 0:
            raise ValueError(f"width must be positive, got {width}")
        self.pipeline = pipeline
        self.width = int(width)
        self.compiled = bool(compiled)
        self.store = (
            store if store is not None else ArtifactStore(max_memory_entries=capacity)
        )
        self.hits = 0
        self.misses = 0
        #: Total windows actually pushed through the encoder — the
        #: "re-encode work" counter the O(changed windows) benchmark
        #: asserts on.
        self.encoded_windows = 0
        self.refresh_fingerprints()

    # ------------------------------------------------------------------
    def refresh_fingerprints(self) -> None:
        """Re-read the model/adapter fingerprints into the key prefix.

        Must be called after any weight update upstream of the
        embeddings (e.g. a ``partial_fit`` that touched the adapter);
        the classifier does so automatically.  Head-only updates do not
        affect embeddings and need no refresh.
        """
        from ..runtime import fingerprint_adapter, fingerprint_model

        self._model_fp = fingerprint_model(self.pipeline.model)
        # "stream:" marks the padded single-window batch semantics so a
        # shared store never confuses these entries with full-dataset
        # EmbeddingCache matrices.
        self._adapter_fp = "stream:" + fingerprint_adapter(self.pipeline.adapter)

    def key_for(self, window: np.ndarray) -> str:
        """The store key this raw window's embedding lives under."""
        return embedding_key(
            self._model_fp, self._adapter_fp, fingerprint_array(window), self.width
        )

    # ------------------------------------------------------------------
    def embedding(self, window: np.ndarray) -> np.ndarray:
        """The ``(embed_dim,)`` embedding of one raw ``(window, D)`` window."""
        key = self.key_for(window)
        artifact = self.store.get(key)
        if artifact is not None:
            self.hits += 1
            return artifact.arrays["embedding"]
        self.misses += 1
        embedding = self._compute(window)
        self.store.put(key, arrays={"embedding": embedding})
        return embedding

    def _compute(self, window: np.ndarray) -> np.ndarray:
        """Encode one window at the fixed width (row 0 of a padded batch)."""
        pipeline = self.pipeline
        batch = np.zeros((self.width, *window.shape), dtype=window.dtype)
        batch[0] = window
        reduced = pipeline._normalize_array(pipeline.adapter.transform(batch))
        embeddings = compute_embeddings(
            pipeline.model, reduced, batch_size=self.width, compiled=self.compiled
        )
        self.encoded_windows += 1
        return embeddings[0].copy()

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """JSON-able counters."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "encoded_windows": self.encoded_windows,
            "entries": len(self.store),
        }

    def __len__(self) -> int:
        return len(self.store)
