"""Incremental streaming classification over a live sample feed.

:class:`StreamingClassifier` wraps a fitted
:class:`~repro.training.AdapterPipeline` with a rolling raw-sample
buffer and a rolling content-fingerprinted window-embedding cache
(:class:`~repro.stream.cache.WindowEmbeddingCache`).  ``push(samples)``
appends arriving samples and classifies every window that completes —
re-encoding **only** windows whose data is new, never history.

The equivalence contract (property-tested in
``tests/properties/test_stream_parity.py``): feeding a series through
``push`` — one sample at a time, in chunks of any size, or all at once
— produces logits **bit-identical** to the offline
``pipeline.predict_logits(windows, batch_size=width)`` on the same
windows, in both eager and compiled execution.  The mechanism is the
fixed-width padded execution invariant established by the serving
layer: every window runs in a zero-padded batch of exactly ``width``
samples, and BLAS row bits depend on the batch width, not on row
position or co-batch content (see ``AdapterPipeline._predict_chunk``).

``partial_fit`` closes the loop on labeled feedback: a cheap head-only
SGD step on the cached window embedding (embeddings stay valid), or a
joint head+adapter step for trainable adapters (which refreshes the
cache's adapter fingerprint, so stale embeddings can never be served).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import NamedTuple

import numpy as np

from .. import nn
from ..nn import functional as F
from ..runtime import ArtifactStore
from .cache import WindowEmbeddingCache
from .errors import ChannelMismatchError, StreamError
from .windows import validate_geometry

__all__ = ["StreamPrediction", "StreamingClassifier"]


class StreamPrediction(NamedTuple):
    """Classification of one completed stream window."""

    #: 0-based index of the window in the stream (emission order).
    window_index: int
    #: Absolute sample range the window covers: ``[start, end)``.
    start: int
    end: int
    #: argmax label, raw logits ``(C,)`` and softmax probabilities.
    label: int
    logits: np.ndarray
    proba: np.ndarray


class StreamingClassifier:
    """Rolling-buffer incremental classifier over a fitted pipeline.

    Parameters
    ----------
    pipeline:
        A fitted :class:`~repro.training.AdapterPipeline` (or the
        :class:`~repro.api.FittedPipeline` handle around one).
    window / stride:
        Window geometry (validated: positive, ``stride <= window``).
        Window ``w`` covers absolute samples ``[w*stride, w*stride +
        window)``.
    batch_size:
        Fixed execution width.  Streaming logits are bit-identical to
        ``pipeline.predict_logits(windows, batch_size=batch_size)``.
    compiled:
        Route encoder passes through compiled graph replay.
    cache_capacity / store:
        Rolling window-embedding cache bound, or an explicit shared
        :class:`~repro.runtime.ArtifactStore`.
    feedback_capacity:
        How many recent windows stay available for :meth:`partial_fit`
        (their embedding + raw data are retained, LRU-bounded).
    """

    def __init__(
        self,
        pipeline,
        window: int,
        stride: int,
        *,
        batch_size: int = 16,
        compiled: bool = True,
        cache_capacity: int = 512,
        store: ArtifactStore | None = None,
        feedback_capacity: int = 64,
    ) -> None:
        # Accept the FittedPipeline facade transparently.
        pipeline = getattr(pipeline, "pipeline", pipeline)
        if not getattr(pipeline, "fitted_", False):
            raise StreamError("StreamingClassifier needs a fitted pipeline")
        self.pipeline = pipeline
        self.window, self.stride = validate_geometry(window, stride)
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        self.batch_size = int(batch_size)
        self.compiled = bool(compiled)
        self.cache = WindowEmbeddingCache(
            pipeline,
            width=self.batch_size,
            capacity=cache_capacity,
            store=store,
            compiled=compiled,
        )
        self.feedback_capacity = int(feedback_capacity)
        self.emitted: list[StreamPrediction] = []
        #: window_index -> (embedding, raw window), for partial_fit.
        self._feedback: OrderedDict[int, tuple[np.ndarray, np.ndarray]] = OrderedDict()
        self._buffer: np.ndarray | None = None
        self._buffer_start = 0  # absolute index of _buffer[0]
        self._total = 0  # absolute samples pushed
        self._next_start = 0  # start of the next window to complete
        self._channels: int | None = None

    # ------------------------------------------------------------------
    # Stream surface
    # ------------------------------------------------------------------
    @property
    def samples_pushed(self) -> int:
        """Absolute number of samples pushed so far."""
        return self._total

    @property
    def windows_emitted(self) -> int:
        """Number of completed (classified) windows so far."""
        return len(self.emitted)

    def push(self, samples: np.ndarray) -> StreamPrediction | None:
        """Append arriving samples; classify every window that completes.

        ``samples`` is one ``(D,)`` sample or a ``(k, D)`` chunk.
        Returns the prediction of the most recent newly completed
        window (``None`` if none completed); every completed window's
        prediction is appended to :attr:`emitted` in stream order.
        Push granularity is irrelevant to the results — one sample at a
        time, chunks of any size and all-at-once emit identical bits.
        """
        samples = np.asarray(samples)
        if samples.ndim == 1:
            samples = samples[None, :]
        if samples.ndim != 2:
            raise ValueError(
                f"push takes one (D,) sample or a (k, D) chunk, got shape {samples.shape}"
            )
        if self._channels is None:
            self._channels = int(samples.shape[1])
        elif samples.shape[1] != self._channels:
            raise ChannelMismatchError(
                f"stream carries D={self._channels} channels; pushed chunk has "
                f"D={samples.shape[1]}"
            )
        if self._buffer is None:
            self._buffer = np.array(samples, copy=True)
        else:
            self._buffer = np.concatenate([self._buffer, samples], axis=0)
        self._total += len(samples)

        latest: StreamPrediction | None = None
        while self._total >= self._next_start + self.window:
            offset = self._next_start - self._buffer_start
            raw = np.array(
                self._buffer[offset : offset + self.window], copy=True
            )
            embedding = self.cache.embedding(raw)
            logits = self._head_logits(embedding)
            shifted = logits - logits.max()
            exp = np.exp(shifted)
            prediction = StreamPrediction(
                window_index=len(self.emitted),
                start=self._next_start,
                end=self._next_start + self.window,
                label=int(np.argmax(logits)),
                logits=logits,
                proba=exp / exp.sum(),
            )
            self.emitted.append(prediction)
            self._remember_feedback(prediction.window_index, embedding, raw)
            self._next_start += self.stride
            latest = prediction
        self._trim_buffer()
        return latest

    def _trim_buffer(self) -> None:
        """Drop buffered samples older than the next window start."""
        if self._buffer is None:
            return
        drop = self._next_start - self._buffer_start
        if drop > 0:
            self._buffer = np.array(self._buffer[drop:], copy=True)
            self._buffer_start = self._next_start

    def _head_logits(self, embedding: np.ndarray) -> np.ndarray:
        """Head logits of one embedding, at the fixed execution width."""
        padded = np.zeros(
            (self.batch_size, embedding.shape[0]), dtype=embedding.dtype
        )
        padded[0] = embedding
        with nn.no_grad():
            logits = self.pipeline.head(nn.Tensor(padded)).data
        return logits[0].copy()

    def _remember_feedback(
        self, index: int, embedding: np.ndarray, raw: np.ndarray
    ) -> None:
        self._feedback[index] = (embedding, raw)
        while len(self._feedback) > self.feedback_capacity:
            self._feedback.popitem(last=False)

    # ------------------------------------------------------------------
    # Labeled feedback
    # ------------------------------------------------------------------
    def partial_fit(
        self,
        label: int,
        window_index: int | None = None,
        lr: float = 0.05,
        include_adapter: bool = False,
    ) -> float:
        """One online update from labeled feedback on an emitted window.

        The default is a head-only SGD step on the window's cached
        embedding — O(embed_dim x classes), no encoder pass, and the
        window-embedding cache stays valid.  ``include_adapter=True``
        (trainable adapters only) runs a joint step with the frozen
        encoder in the graph, then refreshes the cache's adapter
        fingerprint so no stale embedding can ever be served.

        Returns the (pre-step) cross-entropy loss of the feedback
        window.
        """
        if window_index is None:
            if not self.emitted:
                raise StreamError("partial_fit before any window completed")
            window_index = self.emitted[-1].window_index
        entry = self._feedback.get(window_index)
        if entry is None:
            raise StreamError(
                f"window {window_index} is no longer buffered for feedback "
                f"(feedback_capacity={self.feedback_capacity})"
            )
        embedding, raw = entry
        pipeline = self.pipeline
        head = pipeline.head
        targets = np.array([int(label)])

        if include_adapter:
            adapter = pipeline.adapter
            module = getattr(adapter, "module", None)
            if not getattr(adapter, "trainable", False) or module is None:
                raise StreamError(
                    f"adapter {getattr(adapter, 'name', type(adapter).__name__)!r} "
                    "is fit-once; partial_fit(include_adapter=True) needs a "
                    "trainable adapter (e.g. lcomb)"
                )
            params = head.trainable_parameters() + module.trainable_parameters()
            optimizer = nn.optim.SGD(params, lr=lr)
            head.train()
            optimizer.zero_grad()
            reduced = pipeline._normalize_tensor(
                adapter.transform_tensor(nn.Tensor(raw[None]))
            )
            logits = head(pipeline.model.encode(reduced))
            loss = F.cross_entropy(logits, targets)
            loss.backward()
            optimizer.step()
            head.eval()
            # Adapter weights moved: every cached embedding upstream of
            # the head is now stale — the content keys rotate with the
            # new adapter fingerprint, and feedback embeddings are
            # dropped rather than reused.
            self.cache.refresh_fingerprints()
            self._feedback.clear()
            return float(loss.data)

        params = head.trainable_parameters()
        optimizer = nn.optim.SGD(params, lr=lr)
        head.train()
        optimizer.zero_grad()
        logits = head(nn.Tensor(embedding[None]))
        loss = F.cross_entropy(logits, targets)
        loss.backward()
        optimizer.step()
        head.eval()
        return float(loss.data)

    # ------------------------------------------------------------------
    # Bookkeeping
    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Forget stream state (buffer, emissions); keep the cache warm."""
        self.emitted = []
        self._feedback.clear()
        self._buffer = None
        self._buffer_start = 0
        self._total = 0
        self._next_start = 0

    def stats(self) -> dict:
        """JSON-able counters: stream progress + cache effectiveness."""
        return {
            "samples": self._total,
            "windows": len(self.emitted),
            "buffered_samples": 0 if self._buffer is None else len(self._buffer),
            "window": self.window,
            "stride": self.stride,
            "batch_size": self.batch_size,
            "cache": self.cache.stats(),
        }

    def __repr__(self) -> str:
        return (
            f"StreamingClassifier(window={self.window}, stride={self.stride}, "
            f"batch_size={self.batch_size}, windows={len(self.emitted)})"
        )
