"""Chunked sliding-window encoding of arbitrarily long series.

``encode_long`` turns one ``(T, D)`` series of any length into a
single pooled embedding by cutting it into fixed-geometry windows,
routing each window batch through the existing frozen-encoder path
(:func:`repro.training.compute_embeddings` — ``flatten_channels``
folding, compiled :class:`~repro.nn.graph.GraphCache` replay) and
aggregating the per-window embeddings.

Memory discipline is the point: only ``batch_windows`` windows are
ever materialised at once, every batch is padded to exactly
``batch_windows`` so the whole pass shares **one** compiled graph
bucket, and the ``mean`` / ``last`` aggregators fold embeddings into
constant-size accumulators instead of retaining the full
``num_windows x embed_dim`` matrix.  The resulting peak footprint is
predicted by
:func:`repro.resources.cost_model.streaming_inference_memory_bytes`
and pinned by a measured-vs-predicted test.
"""

from __future__ import annotations

from typing import Callable, NamedTuple

import numpy as np

from ..models.base import FoundationModel
from .windows import validate_geometry, window_batch, window_starts

__all__ = ["AGGREGATIONS", "LongSeriesEncoding", "encode_long"]

#: Supported window-embedding aggregations.  ``mean`` and ``attention``
#: are invariant to window order; ``last`` deliberately is not (it is
#: the "most recent state" readout a live stream wants).
AGGREGATIONS = ("mean", "last", "attention")


class LongSeriesEncoding(NamedTuple):
    """Result of :func:`encode_long` on one long series."""

    #: The aggregated ``(embed_dim,)`` embedding.
    pooled: np.ndarray
    #: Number of complete windows the series yielded.
    num_windows: int
    #: Window geometry and aggregation used.
    window: int
    stride: int
    agg: str
    #: Per-window ``(num_windows, embed_dim)`` embeddings — only
    #: retained when ``return_windows=True`` (or ``agg="attention"``,
    #: which needs them all); ``None`` otherwise.
    window_embeddings: np.ndarray | None = None


def _attention_pool(embeddings: np.ndarray) -> np.ndarray:
    """Parameter-free attention pooling: the mean embedding queries.

    ``softmax(E q / sqrt(d)) @ E`` with ``q`` the mean embedding —
    deterministic, trainable-weight-free, and invariant to window
    order (scores depend only on each window's own embedding).
    """
    scores = embeddings.astype(np.float64) @ embeddings.mean(
        axis=0, dtype=np.float64
    ) / np.sqrt(embeddings.shape[1])
    shifted = scores - scores.max()
    weights = np.exp(shifted)
    weights /= weights.sum()
    return (weights @ embeddings.astype(np.float64)).astype(embeddings.dtype)


def encode_long(
    model: FoundationModel,
    x: np.ndarray,
    window: int,
    stride: int,
    *,
    agg: str = "mean",
    batch_windows: int = 16,
    compiled: bool = True,
    transform: Callable[[np.ndarray], np.ndarray] | None = None,
    return_windows: bool = False,
) -> LongSeriesEncoding:
    """Encode one arbitrarily long ``(T, D)`` series to one embedding.

    Parameters
    ----------
    model:
        The (frozen) foundation encoder.
    x:
        The long series, shape ``(T, D)``.  Raises
        :class:`~repro.stream.SeriesTooShortError` when ``T < window``
        and :class:`~repro.stream.WindowGeometryError` for invalid
        ``(window, stride)`` (including ``stride > window``).
    window / stride:
        Window geometry; window ``w`` covers ``[w*stride, w*stride +
        window)``.
    agg:
        ``"mean"`` (order-invariant running mean), ``"last"`` (most
        recent window's embedding) or ``"attention"``
        (mean-embedding-queried attention pool, order-invariant).
    batch_windows:
        Windows per encoder pass — the peak-memory knob.  Every batch
        (including the final partial one) is zero-padded to exactly
        this many windows, so the whole series replays **one**
        compiled graph bucket and per-window embeddings do not depend
        on where batch boundaries fell.
    compiled:
        Route encoder passes through compiled graph replay
        (bit-identical to eager either way).
    transform:
        Optional per-batch preprocessing applied to each
        ``(b, window, D)`` window batch before encoding — the hook the
        pipeline surface uses to run its adapter + normalisation.
    return_windows:
        Also retain the full ``(num_windows, embed_dim)`` matrix.
    """
    from ..training.embedding_cache import compute_embeddings

    window, stride = validate_geometry(window, stride)
    if agg not in AGGREGATIONS:
        raise ValueError(f"unknown aggregation {agg!r}; expected one of {AGGREGATIONS}")
    if batch_windows <= 0:
        raise ValueError(f"batch_windows must be positive, got {batch_windows}")
    x = np.asarray(x)
    if x.ndim != 2:
        raise ValueError(f"expected one (T, D) series, got shape {x.shape}")
    starts = window_starts(len(x), window, stride)  # SeriesTooShortError if short

    keep_all = return_windows or agg == "attention"
    collected: list[np.ndarray] = []
    running_sum: np.ndarray | None = None
    last: np.ndarray | None = None
    count = 0
    for lo in range(0, len(starts), batch_windows):
        batch_starts = starts[lo : lo + batch_windows]
        wins = window_batch(x, batch_starts, window)  # (b, window, D)
        if transform is not None:
            wins = transform(wins)
        b = len(batch_starts)
        if b < batch_windows:
            pad = np.zeros((batch_windows - b, *wins.shape[1:]), dtype=wins.dtype)
            wins = np.concatenate([wins, pad], axis=0)
        embeddings = compute_embeddings(
            model, wins, batch_size=batch_windows, compiled=compiled
        )[:b]
        count += b
        last = embeddings[-1].copy()
        if keep_all:
            collected.append(embeddings)
        if agg == "mean":
            batch_sum = embeddings.sum(axis=0, dtype=np.float64)
            running_sum = batch_sum if running_sum is None else running_sum + batch_sum

    window_embeddings = np.concatenate(collected, axis=0) if keep_all else None
    if agg == "mean":
        assert running_sum is not None
        pooled = (running_sum / count).astype(model.dtype)
    elif agg == "last":
        assert last is not None
        pooled = last
    else:  # attention
        assert window_embeddings is not None
        pooled = _attention_pool(window_embeddings)
    return LongSeriesEncoding(
        pooled=pooled,
        num_windows=count,
        window=window,
        stride=stride,
        agg=agg,
        window_embeddings=window_embeddings if return_windows else None,
    )
