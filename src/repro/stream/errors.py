"""Typed streaming errors.

Mirrors the :mod:`repro.serve.errors` philosophy: every failure mode a
caller can act on gets its own class, so a bad window geometry, a
too-short series, a channel-count mismatch mid-stream and a closed
session are all distinguishable without string matching — and tests
can assert on them *by name*.
"""

from __future__ import annotations

__all__ = [
    "StreamError",
    "WindowGeometryError",
    "SeriesTooShortError",
    "ChannelMismatchError",
    "StreamSessionClosedError",
]


class StreamError(RuntimeError):
    """Base class for every streaming-layer error."""


class WindowGeometryError(StreamError, ValueError):
    """Invalid (window, stride) geometry.

    Raised for non-positive values and for ``stride > window`` — a
    stride larger than the window would silently *drop* samples
    between consecutive windows, which is never what a classification
    stream wants (use a larger window, or accept gaps explicitly by
    slicing upstream).
    """


class SeriesTooShortError(StreamError, ValueError):
    """The series is shorter than one window (``len(x) < window``).

    Offline :func:`~repro.stream.encode_long` refuses such inputs; the
    incremental :class:`~repro.stream.StreamingClassifier` simply keeps
    buffering until the first window fills.
    """


class ChannelMismatchError(StreamError, ValueError):
    """Pushed samples disagree with the stream's channel count D."""


class StreamSessionClosedError(StreamError):
    """The streaming session was closed; no further pushes accepted."""
