"""Sliding-window geometry over long series.

One source of truth for how an arbitrarily long ``(T, D)`` series maps
to fixed-geometry ``(window, D)`` classification windows: window
``w`` covers samples ``[w * stride, w * stride + window)``.  Both the
offline chunked encoder (:func:`repro.stream.encode_long`) and the
incremental :class:`repro.stream.StreamingClassifier` derive their
window boundaries from these helpers, which is what makes the
streaming-vs-offline equivalence contract testable at all: the two
paths cannot disagree about *which* windows exist.
"""

from __future__ import annotations

import numpy as np

from .errors import SeriesTooShortError, WindowGeometryError

__all__ = ["validate_geometry", "num_windows", "window_starts", "window_batch"]


def validate_geometry(window: int, stride: int) -> tuple[int, int]:
    """Check a (window, stride) pair; returns it as plain ints.

    Raises :class:`WindowGeometryError` for non-positive values and for
    ``stride > window`` (which would drop samples between windows).
    """
    window = int(window)
    stride = int(stride)
    if window <= 0:
        raise WindowGeometryError(f"window must be positive, got {window}")
    if stride <= 0:
        raise WindowGeometryError(f"stride must be positive, got {stride}")
    if stride > window:
        raise WindowGeometryError(
            f"stride ({stride}) > window ({window}) would drop "
            f"{stride - window} samples between consecutive windows; "
            "use stride <= window"
        )
    return window, stride


def num_windows(length: int, window: int, stride: int) -> int:
    """Complete windows a length-``length`` series yields (may be 0)."""
    window, stride = validate_geometry(window, stride)
    if length < window:
        return 0
    return (int(length) - window) // stride + 1


def window_starts(length: int, window: int, stride: int) -> np.ndarray:
    """Start indices of every complete window of a length-T series.

    Raises :class:`SeriesTooShortError` when not even one window fits
    (``length < window``) — the offline contract; the incremental
    classifier instead keeps buffering.
    """
    window, stride = validate_geometry(window, stride)
    if length < window:
        raise SeriesTooShortError(
            f"series of length {length} is shorter than one window "
            f"({window}); encode_long needs at least one complete window"
        )
    return np.arange(num_windows(length, window, stride), dtype=np.int64) * stride


def window_batch(
    x: np.ndarray, starts: np.ndarray, window: int
) -> np.ndarray:
    """Materialise the ``(len(starts), window, D)`` windows at ``starts``.

    Only the requested windows are copied out of ``x`` — callers batch
    over ``starts`` to keep peak memory at one batch of windows rather
    than the full ``num_windows x window x D`` expansion.
    """
    index = np.asarray(starts, dtype=np.int64)[:, None] + np.arange(window)[None, :]
    return x[index]
