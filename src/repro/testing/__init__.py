"""Property-based verification harness for the repro stack.

Five layers, all dependency-free (see ``docs/testing.md``):

* :mod:`repro.testing.strategies` — seeded value generators with
  shrinking and a Hypothesis-style :func:`given` decorator;
* :mod:`repro.testing.gradcheck` — a finite-difference engine plus the
  op-coverage sweep over the ``Tensor`` op registry;
* :mod:`repro.testing.replay` — the compiled-replay parity sweep:
  every registered op captured, compiled and replayed bit-identically
  against eager (see ``docs/graph.md``);
* :mod:`repro.testing.invariants` — metamorphic/differential checks
  for adapters and the fused `repro.nn` kernels;
* :mod:`repro.testing.golden` — end-to-end metric snapshots with drift
  detection, driven by ``repro selfcheck``.
"""

from .golden import (
    SCENARIOS,
    SMOKE_SCENARIOS,
    GoldenResult,
    GoldenScenario,
    check_goldens,
    compute_metrics,
    golden_store,
    resolve_golden_dir,
)
from .gradcheck import (
    OP_CHECKS,
    GradcheckFailure,
    GradcheckResult,
    OpCase,
    assert_full_coverage,
    gradcheck,
    missing_checks,
    run_op_sweep,
    unregistered_ops,
)
from .invariants import INVARIANTS, InvariantResult, invariant, run_invariants
from .replay import (
    ReplayParityFailure,
    ReplayResult,
    assert_replay_coverage,
    replay_coverage_problems,
    run_replay_sweep,
)
from .strategies import (
    Falsified,
    Strategy,
    arrays,
    broadcastable_pairs,
    floats,
    given,
    integers,
    job_specs,
    labeled_datasets,
    sampled_from,
    series_batches,
    shapes,
)

__all__ = [
    "Strategy",
    "Falsified",
    "given",
    "integers",
    "floats",
    "sampled_from",
    "shapes",
    "arrays",
    "broadcastable_pairs",
    "series_batches",
    "labeled_datasets",
    "job_specs",
    "GradcheckFailure",
    "GradcheckResult",
    "OpCase",
    "OP_CHECKS",
    "gradcheck",
    "run_op_sweep",
    "missing_checks",
    "unregistered_ops",
    "assert_full_coverage",
    "ReplayParityFailure",
    "ReplayResult",
    "replay_coverage_problems",
    "assert_replay_coverage",
    "run_replay_sweep",
    "INVARIANTS",
    "InvariantResult",
    "invariant",
    "run_invariants",
    "GoldenScenario",
    "GoldenResult",
    "SCENARIOS",
    "SMOKE_SCENARIOS",
    "check_goldens",
    "compute_metrics",
    "golden_store",
    "resolve_golden_dir",
]
