"""Golden regression store: snapshot end-to-end metrics, flag drift.

Each :class:`GoldenScenario` pins a tiny but complete pipeline run —
seeded synthetic data, a freshly-built runnable model, one adapter,
a few training epochs — and reduces its :class:`FitReport` to a flat
dict of scalar metrics.  Those metrics are recorded through the
content-addressed :class:`repro.runtime.ArtifactStore` (namespace
``golden``, committed under ``goldens/`` at the repo root) and every
later run is compared against the snapshot under per-dtype
tolerances.

Drift beyond tolerance means the numerics changed: an optimizer
rewrite, a kernel "optimisation", a dtype-policy slip.  Intentional
changes are re-recorded with ``repro selfcheck --update-golden``.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Iterable, Mapping

import numpy as np

from .. import nn
from ..adapters import make_adapter
from ..data import dataset_info, generate_split
from ..models import build_model
from ..runtime import ArtifactStore, golden_key
from ..training import AdapterPipeline, FineTuneStrategy, TrainConfig

__all__ = [
    "GoldenScenario",
    "GoldenResult",
    "SCENARIOS",
    "SMOKE_SCENARIOS",
    "GOLDEN_DIR_ENV",
    "resolve_golden_dir",
    "golden_store",
    "compute_metrics",
    "check_goldens",
]

#: Environment override for the snapshot directory.
GOLDEN_DIR_ENV = "REPRO_GOLDEN_DIR"

#: Relative drift tolerance per compute dtype.  float32 end-to-end
#: training accumulates rounding differences across BLAS builds, so
#: its band is wider; float64 should reproduce almost exactly.
_DRIFT_TOLERANCES = {
    "float64": (1e-6, 1e-9),  # (rtol, atol)
    "float32": (5e-3, 1e-4),
}


class GoldenScenario:
    """One pinned end-to-end run reduced to scalar metrics."""

    __slots__ = (
        "name", "dtype", "dataset", "model", "adapter", "strategy",
        "output_channels", "epochs", "seed", "scale", "max_length",
    )

    def __init__(
        self,
        name: str,
        dtype: str,
        dataset: str = "JapaneseVowels",
        model: str = "moment-tiny",
        adapter: str = "pca",
        strategy: FineTuneStrategy = FineTuneStrategy.ADAPTER_HEAD,
        output_channels: int = 5,
        epochs: int = 3,
        seed: int = 0,
        scale: float = 0.1,
        max_length: int = 24,
    ) -> None:
        self.name = name
        self.dtype = dtype
        self.dataset = dataset
        self.model = model
        self.adapter = adapter
        self.strategy = strategy
        self.output_channels = output_channels
        self.epochs = epochs
        self.seed = seed
        self.scale = scale
        self.max_length = max_length

    @property
    def key(self) -> str:
        return golden_key(self.name, self.dtype)

    def __repr__(self) -> str:
        return f"GoldenScenario({self.name} [{self.dtype}] {self.adapter}/{self.model})"


#: The committed scenario set.  Kept tiny: each runs a full
#: data -> adapter -> encoder -> head fit in a couple of seconds.
SCENARIOS: tuple[GoldenScenario, ...] = (
    GoldenScenario("pca_head_f32", "float32"),
    GoldenScenario("pca_head_f64", "float64"),
    GoldenScenario("lcomb_joint_f32", "float32", adapter="lcomb", epochs=2),
    GoldenScenario("vit_rand_proj_f32", "float32", model="vit-tiny", adapter="rand_proj"),
)

#: Names run by ``repro selfcheck --smoke`` (single fastest scenario
#: per dtype family).
SMOKE_SCENARIOS: tuple[str, ...] = ("pca_head_f32",)


class GoldenResult:
    """Comparison outcome for one scenario."""

    __slots__ = ("name", "dtype", "status", "detail", "metrics")

    def __init__(self, name, dtype, status, detail="", metrics=None):
        self.name = name
        self.dtype = dtype
        self.status = status  # "match" | "drift" | "missing" | "updated"
        self.detail = detail
        self.metrics = metrics or {}

    @property
    def passed(self) -> bool:
        return self.status in ("match", "updated")

    def __repr__(self) -> str:
        suffix = f" ({self.detail})" if self.detail else ""
        return f"GoldenResult({self.name} [{self.dtype}]: {self.status}{suffix})"


def resolve_golden_dir(explicit: str | Path | None = None) -> Path:
    """Snapshot directory: explicit > $REPRO_GOLDEN_DIR > ./goldens."""
    if explicit is not None:
        return Path(explicit)
    env = os.environ.get(GOLDEN_DIR_ENV)
    if env:
        return Path(env)
    return Path("goldens")


def golden_store(golden_dir: str | Path | None = None) -> ArtifactStore:
    """The artifact store backing the snapshots (tiny, disk-backed)."""
    return ArtifactStore(cache_dir=resolve_golden_dir(golden_dir), max_memory_entries=16)


def compute_metrics(scenario: GoldenScenario) -> dict[str, float]:
    """Run the scenario end to end and reduce it to scalar metrics."""
    with nn.default_dtype(scenario.dtype):
        x_train, y_train, x_test, y_test = generate_split(
            dataset_info(scenario.dataset),
            seed=scenario.seed,
            scale=scenario.scale,
            max_length=scenario.max_length,
        )
        model = build_model(scenario.model, seed=scenario.seed)
        adapter = make_adapter(
            scenario.adapter, output_channels=scenario.output_channels, seed=scenario.seed
        )
        pipeline = AdapterPipeline(
            model, adapter, num_classes=int(y_train.max()) + 1, seed=scenario.seed
        )
        config = TrainConfig(epochs=scenario.epochs, batch_size=16, seed=scenario.seed)
        report = pipeline.fit(x_train, y_train, strategy=scenario.strategy, config=config)
        losses = report.train_result.losses
        return {
            "first_loss": float(losses[0]),
            "final_loss": float(report.train_result.final_loss),
            "mean_loss": float(np.mean(losses)),
            "train_accuracy": float(pipeline.score(x_train, y_train)),
            "test_accuracy": float(pipeline.score(x_test, y_test)),
        }


def _compare(
    stored: Mapping[str, float], fresh: Mapping[str, float], dtype: str
) -> list[str]:
    """Per-metric drift report; empty means within tolerance."""
    rtol, atol = _DRIFT_TOLERANCES[dtype]
    problems = []
    for metric in sorted(set(stored) | set(fresh)):
        if metric not in stored:
            problems.append(f"{metric}: new metric with no snapshot")
            continue
        if metric not in fresh:
            problems.append(f"{metric}: snapshot metric no longer produced")
            continue
        expected, actual = stored[metric], fresh[metric]
        if not np.isclose(actual, expected, rtol=rtol, atol=atol):
            problems.append(
                f"{metric}: {actual:.8g} drifted from snapshot {expected:.8g} "
                f"(rtol={rtol}, atol={atol})"
            )
    return problems


def _select(names: Iterable[str] | None) -> list[GoldenScenario]:
    if names is None:
        return list(SCENARIOS)
    by_name = {scenario.name: scenario for scenario in SCENARIOS}
    unknown = sorted(set(names) - set(by_name))
    if unknown:
        raise KeyError(f"unknown golden scenarios {unknown}; known: {sorted(by_name)}")
    return [by_name[name] for name in names]


def check_goldens(
    golden_dir: str | Path | None = None,
    names: Iterable[str] | None = None,
    update: bool = False,
) -> list[GoldenResult]:
    """Compare (or with ``update=True`` re-record) golden snapshots.

    Never raises on drift — the caller (CLI / test) decides how to
    escalate from the returned statuses.
    """
    store = golden_store(golden_dir)
    results = []
    for scenario in _select(names):
        fresh = compute_metrics(scenario)
        if update:
            names_order = sorted(fresh)
            store.put(
                scenario.key,
                arrays={"values": np.array([fresh[k] for k in names_order], dtype=np.float64)},
                meta={
                    "scenario": scenario.name,
                    "dtype": scenario.dtype,
                    "metrics": names_order,
                },
            )
            results.append(GoldenResult(scenario.name, scenario.dtype, "updated", metrics=fresh))
            continue
        artifact = store.get(scenario.key)
        if artifact is None:
            results.append(
                GoldenResult(
                    scenario.name,
                    scenario.dtype,
                    "missing",
                    "no snapshot recorded; run `repro selfcheck --update-golden`",
                    metrics=fresh,
                )
            )
            continue
        stored = dict(
            zip(artifact.meta["metrics"], (float(v) for v in artifact.arrays["values"]))
        )
        problems = _compare(stored, fresh, scenario.dtype)
        if problems:
            results.append(
                GoldenResult(
                    scenario.name, scenario.dtype, "drift", "; ".join(problems), fresh
                )
            )
        else:
            results.append(GoldenResult(scenario.name, scenario.dtype, "match", metrics=fresh))
    return results
