"""Finite-difference gradient checking and the op-coverage sweep.

Two layers:

* :func:`gradcheck` — a generalized engine: build the op's inputs as
  ``requires_grad`` Tensors in a target dtype, scalarize the output
  with a fixed random weighting (so misrouted gradients cannot hide
  inside a plain ``sum()``), backprop, and compare every analytic
  gradient against central finite differences computed in float64.
* :data:`OP_CHECKS` + :func:`run_op_sweep` — a case table keyed by the
  names in :data:`repro.nn.tensor.OP_REGISTRY`, swept across float32
  and float64 and across broadcasting shapes.  The sweep is
  *closed-world*: a differentiable op registered without a case, or an
  op built through ``Tensor._make`` without being registered at all,
  fails the suite **by that op's name** (see :func:`missing_checks`
  and :func:`unregistered_ops`).
"""

from __future__ import annotations

import inspect
from typing import Any, Callable, Iterable, Mapping

import numpy as np

from ..nn import functional as F
from ..nn import tensor as tensor_module
from ..nn.tensor import OP_REGISTRY, Tensor, concatenate, stack, where

__all__ = [
    "GradcheckFailure",
    "GradcheckResult",
    "OpCase",
    "OP_CHECKS",
    "gradcheck",
    "run_op_sweep",
    "missing_checks",
    "unregistered_ops",
    "assert_full_coverage",
]

#: Per-dtype (rtol, atol) defaults for analytic-vs-FD comparison.  The
#: float32 band accounts for both the op running in single precision
#: and the float64 FD reference being "too exact".
_TOLERANCES = {
    "float64": (1e-5, 1e-7),
    "float32": (1e-2, 1e-3),
}

#: Central-difference step per *reference* dtype.
_DEFAULT_EPS = {"float64": 1e-6, "float32": 1e-2}


class GradcheckFailure(AssertionError):
    """An analytic gradient disagreed with its finite-difference reference."""


class GradcheckResult:
    """Outcome of one gradcheck: op/case identity, dtype, max error."""

    __slots__ = ("op", "case", "dtype", "passed", "max_abs_err", "max_rel_err", "detail")

    def __init__(self, op, case, dtype, passed, max_abs_err, max_rel_err, detail=""):
        self.op = op
        self.case = case
        self.dtype = dtype
        self.passed = passed
        self.max_abs_err = max_abs_err
        self.max_rel_err = max_rel_err
        self.detail = detail

    def __repr__(self) -> str:
        status = "ok" if self.passed else "FAIL"
        return (
            f"GradcheckResult({self.op}/{self.case} [{self.dtype}] {status} "
            f"abs={self.max_abs_err:.2e} rel={self.max_rel_err:.2e})"
        )


def _scalarize(output: Tensor) -> tuple[Tensor, np.ndarray]:
    """Reduce ``output`` to a scalar via a fixed random weighting.

    A deterministic non-uniform weighting catches gradients that land
    on the wrong output element — a plain ``.sum()`` would score those
    as correct whenever totals happen to match (e.g. permuted rows).
    """
    weights = np.random.default_rng(1234).normal(size=output.shape)
    return (output * Tensor(weights, dtype=output.data.dtype)).sum(), weights


def _weighted_eval(
    fn: Callable[[Mapping[str, Tensor]], Tensor],
    arrays: Mapping[str, np.ndarray],
    dtype: str,
) -> float:
    """Evaluate ``weights · fn(arrays)`` without gradients."""
    tensors = {name: Tensor(value.astype(dtype)) for name, value in arrays.items()}
    with tensor_module.no_grad():
        out = fn(tensors)
        scalar, _ = _scalarize(out)
    return float(scalar.data)


def gradcheck(
    fn: Callable[[Mapping[str, Tensor]], Tensor],
    arrays: Mapping[str, np.ndarray],
    dtype: str = "float64",
    *,
    eps: float | None = None,
    rtol: float | None = None,
    atol: float | None = None,
    fd_dtype: str | None = None,
    op: str = "?",
    case: str = "?",
) -> GradcheckResult:
    """Check analytic gradients of ``fn`` against central differences.

    ``fn`` maps a dict of named Tensors to a Tensor output; ``arrays``
    supplies the float64 base values for each input.  The analytic
    pass runs entirely in ``dtype``; the finite-difference reference
    runs in ``fd_dtype`` (float64 unless the op's output depends on
    the activation dtype itself, e.g. dropout's RNG draws).
    """
    fd_dtype = fd_dtype or "float64"
    eps = eps if eps is not None else _DEFAULT_EPS[fd_dtype]
    default_rtol, default_atol = _TOLERANCES[dtype]
    rtol = rtol if rtol is not None else default_rtol
    atol = atol if atol is not None else default_atol

    # Analytic pass in the target dtype.
    tensors = {
        name: Tensor(value.astype(dtype), requires_grad=True)
        for name, value in arrays.items()
    }
    output = fn(tensors)
    scalar, _ = _scalarize(output)
    scalar.backward()

    max_abs = 0.0
    max_rel = 0.0
    for name, base in arrays.items():
        analytic = tensors[name].grad
        if analytic is None:
            raise GradcheckFailure(
                f"op {op!r} case {case!r} [{dtype}]: input {name!r} received no gradient"
            )
        # Copy into C order: accumulated grads can be views with any
        # layout (e.g. a transpose backward), and the flat FD buffer
        # below must index identically to ``flat_base``.
        analytic = np.ascontiguousarray(analytic, dtype=np.float64)
        numeric_flat = np.empty(base.size, dtype=np.float64)
        flat_base = base.astype(np.float64).reshape(-1)
        for index in range(flat_base.size):
            bumped = dict(arrays)
            plus = flat_base.copy()
            plus[index] += eps
            bumped[name] = plus.reshape(base.shape)
            f_plus = _weighted_eval(fn, bumped, fd_dtype)
            minus = flat_base.copy()
            minus[index] -= eps
            bumped[name] = minus.reshape(base.shape)
            f_minus = _weighted_eval(fn, bumped, fd_dtype)
            numeric_flat[index] = (f_plus - f_minus) / (2.0 * eps)
        numeric = numeric_flat.reshape(base.shape)
        abs_err = np.abs(analytic - numeric)
        denom = np.maximum(np.abs(numeric), np.abs(analytic))
        rel_err = abs_err / np.maximum(denom, 1e-12)
        max_abs = max(max_abs, float(abs_err.max(initial=0.0)))
        max_rel = max(max_rel, float(rel_err.max(initial=0.0)))
        bad = abs_err > (atol + rtol * np.maximum(denom, 0.0))
        if np.any(bad):
            worst = np.unravel_index(int(np.argmax(abs_err)), analytic.shape)
            raise GradcheckFailure(
                f"op {op!r} case {case!r} [{dtype}]: gradient mismatch on input "
                f"{name!r} at {worst}: analytic={analytic[worst]:.6g} "
                f"numeric={numeric[worst]:.6g} "
                f"(max_abs={abs_err.max():.3g}, rtol={rtol}, atol={atol})"
            )
    return GradcheckResult(op, case, dtype, True, max_abs, max_rel)


# ----------------------------------------------------------------------
# Case table
# ----------------------------------------------------------------------
class OpCase:
    """One gradcheck scenario: named inputs + an op closure + knobs."""

    __slots__ = ("name", "fn", "arrays", "eps", "rtol", "atol", "fd_same_dtype")

    def __init__(self, name, fn, arrays, eps=None, rtol=None, atol=None,
                 fd_same_dtype=False):
        self.name = name
        self.fn = fn
        self.arrays = {key: np.asarray(val, dtype=np.float64) for key, val in arrays.items()}
        self.eps = eps
        self.rtol = rtol
        self.atol = atol
        self.fd_same_dtype = fd_same_dtype

    def run(self, dtype: str) -> GradcheckResult:
        """Gradcheck this case in ``dtype``; raises on mismatch."""
        return gradcheck(
            self.fn,
            self.arrays,
            dtype,
            eps=self.eps,
            rtol=self.rtol,
            atol=self.atol,
            fd_dtype=dtype if self.fd_same_dtype else None,
            case=self.name,
        )


def _grid(shape: tuple[int, ...], *, seed: int, low: float = -1.5, high: float = 1.5,
          min_gap: float = 0.05) -> np.ndarray:
    """Seeded values with all pairwise gaps ≥ ``min_gap``.

    Distinct, well-separated entries keep max/relu/abs/clip away from
    kinks and ties so central differences see a smooth function.
    """
    size = int(np.prod(shape, dtype=int)) if shape else 1
    levels = np.linspace(low, high, size)
    rng = np.random.default_rng(seed)
    jitter = rng.uniform(-min_gap / 4, min_gap / 4, size=size)
    values = rng.permutation(levels + jitter)
    # Keep everything clear of the relu/abs kink at zero.
    values = np.where(np.abs(values) < min_gap, np.sign(values + 1e-9) * min_gap, values)
    return values.reshape(shape)


def _positive(shape: tuple[int, ...], *, seed: int) -> np.ndarray:
    return np.abs(_grid(shape, seed=seed)) + 0.5


#: Broadcast shape pairs exercised by every binary elementwise op.
_BROADCAST_PAIRS = [
    ("same", (2, 3), (2, 3)),
    ("trailing", (2, 3), (3,)),
    ("outer", (2, 1), (1, 3)),
    ("scalar", (2, 3), ()),
]


def _binary_cases(op: Callable[[Tensor, Tensor], Tensor], *,
                  b_transform: Callable[[np.ndarray], np.ndarray] | None = None) -> list[OpCase]:
    cases = []
    for label, shape_a, shape_b in _BROADCAST_PAIRS:
        a = _grid(shape_a, seed=11)
        b = _grid(shape_b, seed=23)
        if b_transform is not None:
            b = b_transform(b)
        cases.append(OpCase(label, lambda t, _op=op: _op(t["a"], t["b"]), {"a": a, "b": b}))
    return cases


def _unary_case(name: str, op: Callable[[Tensor], Tensor],
                values: np.ndarray, **knobs: Any) -> OpCase:
    return OpCase(name, lambda t, _op=op: _op(t["x"]), {"x": values}, **knobs)


def _away_from(values: np.ndarray, points: Iterable[float], margin: float = 0.05) -> np.ndarray:
    """Nudge entries that sit within ``margin`` of any kink point."""
    out = values.copy()
    for point in points:
        close = np.abs(out - point) < margin
        out[close] = point + margin * np.where(out[close] >= point, 1.0, -1.0) * 2
    return out


def _build_op_checks() -> dict[str, list[OpCase]]:
    checks: dict[str, list[OpCase]] = {}

    # --- binary arithmetic over broadcast pairs ---
    checks["add"] = _binary_cases(lambda a, b: a + b)
    checks["sub"] = _binary_cases(lambda a, b: a - b)
    checks["mul"] = _binary_cases(lambda a, b: a * b)
    checks["truediv"] = _binary_cases(
        lambda a, b: a / b,
        b_transform=lambda b: np.sign(b) * (np.abs(b) + 0.5),
    )

    # --- unary elementwise ---
    base = _grid((2, 4), seed=7)
    checks["neg"] = [_unary_case("grid", lambda x: -x, base)]
    checks["exp"] = [_unary_case("grid", lambda x: x.exp(), base)]
    checks["tanh"] = [_unary_case("grid", lambda x: x.tanh(), base)]
    checks["log"] = [_unary_case("positive", lambda x: x.log(), _positive((2, 4), seed=7))]
    checks["sqrt"] = [_unary_case("positive", lambda x: x.sqrt(), _positive((2, 4), seed=9))]
    checks["abs"] = [_unary_case("off_kink", lambda x: x.abs(), base)]
    checks["pow"] = [
        _unary_case("cube", lambda x: x ** 3.0, base),
        _unary_case("sqrt_like", lambda x: x ** 0.5, _positive((2, 3), seed=13)),
        _unary_case("inverse", lambda x: x ** -1.0,
                    np.sign(base[:, :3]) * (np.abs(base[:, :3]) + 0.5)),
    ]
    checks["clip"] = [
        _unary_case("interior", lambda x: x.clip(-1.0, 1.0),
                    _away_from(_grid((3, 3), seed=17), (-1.0, 1.0))),
    ]

    # --- matmul variants ---
    checks["matmul"] = [
        OpCase("mat_mat", lambda t: t["a"] @ t["b"],
               {"a": _grid((2, 3), seed=3), "b": _grid((3, 4), seed=5)}),
        OpCase("vec_vec", lambda t: t["a"] @ t["b"],
               {"a": _grid((4,), seed=3), "b": _grid((4,), seed=5)}),
        OpCase("vec_mat", lambda t: t["a"] @ t["b"],
               {"a": _grid((3,), seed=3), "b": _grid((3, 2), seed=5)}),
        OpCase("mat_vec", lambda t: t["a"] @ t["b"],
               {"a": _grid((2, 3), seed=3), "b": _grid((3,), seed=5)}),
        OpCase("batched", lambda t: t["a"] @ t["b"],
               {"a": _grid((2, 2, 3), seed=3), "b": _grid((2, 3, 2), seed=5)}),
        OpCase("broadcast_batch", lambda t: t["a"] @ t["b"],
               {"a": _grid((2, 2, 3), seed=3), "b": _grid((3, 2), seed=5)}),
    ]

    # --- shape ops ---
    shaped = _grid((2, 3, 2), seed=19)
    checks["reshape"] = [
        _unary_case("flatten", lambda x: x.reshape(-1), shaped),
        _unary_case("regroup", lambda x: x.reshape(3, 4), shaped),
    ]
    checks["transpose"] = [
        _unary_case("default", lambda x: x.transpose(), _grid((3, 4), seed=19)),
        _unary_case("axes", lambda x: x.transpose(1, 0, 2), shaped),
    ]
    checks["swapaxes"] = [_unary_case("mid", lambda x: x.swapaxes(0, 2), shaped)]
    checks["getitem"] = [
        _unary_case("slice", lambda x: x[1:, ::2], _grid((3, 4), seed=21)),
        _unary_case("fancy_repeats", lambda x: x[np.array([0, 2, 0, 1])],
                    _grid((3, 4), seed=21)),
        _unary_case("scalar_index", lambda x: x[1, 2], _grid((3, 4), seed=21)),
    ]
    checks["astype"] = [
        # Round-trip through the *other* precision: gradients must pass
        # through the cast unchanged.  FD runs in the same chain, with a
        # large step so float32 quantization noise stays negligible.
        _unary_case("to_f32_chain", lambda x: x.astype("float32").astype("float64") * 2.0,
                    _grid((2, 3), seed=25), eps=1e-3, rtol=1e-2, atol=1e-3,
                    fd_same_dtype=True),
        _unary_case("to_f64", lambda x: x.astype("float64") * 2.0,
                    _grid((2, 3), seed=25)),
    ]

    # --- reductions ---
    reducible = _grid((2, 3, 2), seed=27)
    checks["sum"] = [
        _unary_case("all", lambda x: x.sum(), reducible),
        _unary_case("axis", lambda x: x.sum(axis=1), reducible),
        _unary_case("keepdims", lambda x: x.sum(axis=-1, keepdims=True), reducible),
    ]
    checks["mean"] = [
        _unary_case("all", lambda x: x.mean(), reducible),
        _unary_case("axis", lambda x: x.mean(axis=0), reducible),
    ]
    checks["var"] = [
        _unary_case("all", lambda x: x.var(), reducible),
        _unary_case("axis_keepdims", lambda x: x.var(axis=-1, keepdims=True), reducible),
    ]
    checks["max"] = [
        _unary_case("all", lambda x: x.max(), reducible),
        _unary_case("axis", lambda x: x.max(axis=1), reducible),
        _unary_case("keepdims", lambda x: x.max(axis=-1, keepdims=True), reducible),
    ]

    # --- module-level structural ops ---
    checks["concatenate"] = [
        OpCase("axis0", lambda t: concatenate([t["a"], t["b"]], axis=0),
               {"a": _grid((2, 3), seed=29), "b": _grid((1, 3), seed=31)}),
        OpCase("axis1", lambda t: concatenate([t["a"], t["b"]], axis=1),
               {"a": _grid((2, 2), seed=29), "b": _grid((2, 3), seed=31)}),
    ]
    checks["stack"] = [
        OpCase("axis0", lambda t: stack([t["a"], t["b"]], axis=0),
               {"a": _grid((2, 3), seed=33), "b": _grid((2, 3), seed=35)}),
        OpCase("axis_last", lambda t: stack([t["a"], t["b"]], axis=-1),
               {"a": _grid((2, 3), seed=33), "b": _grid((2, 3), seed=35)}),
    ]
    condition = np.array([[True, False, True], [False, True, False]])
    checks["where"] = [
        OpCase("bool_mask", lambda t: where(condition, t["a"], t["b"]),
               {"a": _grid((2, 3), seed=37), "b": _grid((2, 3), seed=39)}),
        OpCase("broadcast_b", lambda t: where(condition, t["a"], t["b"]),
               {"a": _grid((2, 3), seed=37), "b": _grid((3,), seed=39)}),
    ]

    # --- activations ---
    act = _grid((2, 5), seed=41)
    checks["relu"] = [_unary_case("off_kink", F.relu, act)]
    checks["gelu"] = [_unary_case("grid", F.gelu, act)]
    checks["sigmoid"] = [_unary_case("grid", F.sigmoid, act)]
    checks["softmax"] = [
        _unary_case("last_axis", lambda x: F.softmax(x, axis=-1), act),
        _unary_case("axis0", lambda x: F.softmax(x, axis=0), act),
    ]
    checks["log_softmax"] = [
        _unary_case("last_axis", lambda x: F.log_softmax(x, axis=-1), act),
    ]
    checks["dropout"] = [
        # The mask is drawn in the activation dtype, so float32 and
        # float64 runs see different masks: the FD reference must use
        # the same dtype as the analytic pass.
        _unary_case(
            "p03",
            lambda x: F.dropout(x, 0.3, training=True, rng=np.random.default_rng(7)),
            _grid((3, 4), seed=43), fd_same_dtype=True, eps=1e-2,
        ),
    ]

    # --- fused layer_norm ---
    checks["layer_norm"] = [
        OpCase(
            "3d",
            lambda t: F.layer_norm(t["x"], t["weight"], t["bias"]),
            {
                "x": _grid((2, 3, 4), seed=45),
                "weight": _positive((4,), seed=47),
                "bias": _grid((4,), seed=49),
            },
        ),
        OpCase(
            "2d",
            lambda t: F.layer_norm(t["x"], t["weight"], t["bias"]),
            {
                "x": _grid((3, 5), seed=45),
                "weight": _positive((5,), seed=47),
                "bias": _grid((5,), seed=49),
            },
        ),
    ]

    # --- losses (fixed targets / masks; only tensors get gradients) ---
    targets = np.array([0, 2, 1])
    checks["cross_entropy"] = [
        OpCase("3x4", lambda t: F.cross_entropy(t["logits"], targets),
               {"logits": _grid((3, 4), seed=51)}),
    ]
    # Targets/masks are constants by contract (mse_loss detaches its
    # target), so only the prediction is a checked input.
    mse_target = _grid((2, 4), seed=53)
    checks["mse_loss"] = [
        OpCase("pair", lambda t: F.mse_loss(t["pred"], mse_target),
               {"pred": _grid((2, 4), seed=55)}),
    ]
    mask = np.array([[1.0, 0.0, 1.0, 1.0], [0.0, 1.0, 0.0, 1.0]])
    checks["masked_mse_loss"] = [
        OpCase("half_masked",
               lambda t: F.masked_mse_loss(t["pred"], mse_target, mask),
               {"pred": _grid((2, 4), seed=57)}),
    ]
    checks["info_nce_loss"] = [
        OpCase("4x3", lambda t: F.info_nce_loss(t["q"], t["k"], temperature=0.5),
               {"q": _grid((4, 3), seed=59), "k": _grid((4, 3), seed=61)}),
    ]
    return checks


#: op name -> gradcheck cases.  Keys must cover every differentiable
#: entry of :data:`OP_REGISTRY`; :func:`missing_checks` enforces it.
OP_CHECKS: dict[str, list[OpCase]] = _build_op_checks()


# ----------------------------------------------------------------------
# Coverage enforcement
# ----------------------------------------------------------------------
def missing_checks() -> list[str]:
    """Differentiable registered ops with no entry in :data:`OP_CHECKS`."""
    return sorted(
        name
        for name, info in OP_REGISTRY.items()
        if info.differentiable and name not in OP_CHECKS
    )


def unregistered_ops() -> list[str]:
    """Graph-building callables that skipped ``@registered_op``.

    Scans the source of every public member of ``repro.nn.tensor`` and
    ``repro.nn.functional`` for the literal graph-node constructor call
    ``Tensor._make(`` — the one way an op enters the autodiff graph —
    and reports any such function missing from the registry.  This is
    the belt-and-braces half of coverage: a brand-new op cannot ship
    ungradchecked just by forgetting the decorator.
    """
    registered_qualnames = {info.qualname for info in OP_REGISTRY.values()}
    offenders = []
    for module in (tensor_module, F):
        members = dict(inspect.getmembers(module, inspect.isfunction))
        members.update(
            {
                f"Tensor.{name}": fn
                for name, fn in inspect.getmembers(Tensor, inspect.isfunction)
            }
        )
        for name, fn in members.items():
            if fn.__module__ != module.__name__:
                continue
            qualname = fn.__qualname__
            if qualname in registered_qualnames:
                continue
            # Internal plumbing (_make itself, backward helpers) is
            # allowed to reference the constructor.
            if qualname.split(".")[-1].startswith("_"):
                continue
            try:
                source = inspect.getsource(fn)
            except (OSError, TypeError):
                continue
            if "Tensor._make(" in source:
                offenders.append(qualname)
    return sorted(set(offenders))


def assert_full_coverage() -> None:
    """Raise naming every uncovered or unregistered op, if any."""
    problems = []
    missing = missing_checks()
    if missing:
        problems.append(
            "registered differentiable ops without a gradcheck case: "
            + ", ".join(missing)
        )
    rogue = unregistered_ops()
    if rogue:
        problems.append(
            "graph-building functions missing @registered_op: " + ", ".join(rogue)
        )
    stale = sorted(set(OP_CHECKS) - set(OP_REGISTRY))
    if stale:
        problems.append("gradcheck cases for unknown ops: " + ", ".join(stale))
    if problems:
        raise AssertionError("; ".join(problems))


def run_op_sweep(
    dtypes: Iterable[str] = ("float32", "float64"),
    ops: Iterable[str] | None = None,
) -> list[GradcheckResult]:
    """Gradcheck every covered op across ``dtypes``.

    Raises :class:`GradcheckFailure` (carrying the op's name) on the
    first mismatch; also fails if coverage has holes, so the sweep can
    never silently pass a partially-checked registry.
    """
    assert_full_coverage()
    selected = sorted(ops) if ops is not None else sorted(OP_CHECKS)
    results: list[GradcheckResult] = []
    for op_name in selected:
        for case in OP_CHECKS[op_name]:
            for dtype in dtypes:
                try:
                    result = case.run(dtype)
                except GradcheckFailure as failure:
                    raise GradcheckFailure(f"[op={op_name}] {failure}") from failure
                result.op = op_name
                results.append(result)
    return results
