"""Metamorphic and differential invariants for adapters and kernels.

Every check is a nullary function registered under a stable name via
:func:`invariant`; :func:`run_invariants` executes them all and
returns structured outcomes (the CLI's ``repro selfcheck`` renders
those).  Each check is deterministic — data comes from fixed-seed
generators — so a failure is reproducible by name:

>>> from repro.testing import invariants
>>> invariants.INVARIANTS["pca_orthonormality"]()

Three families:

* **adapter algebra** — PCA orthonormality + variance ordering,
  TruncatedSVD == PCA on centered data, random-projection norm
  preservation, lcomb_top_k row renormalization;
* **metamorphic** — channel-permutation equivariance of the fitted
  adapters;
* **differential** — each fused/hand-written `repro.nn` kernel
  (layer_norm, activations, in-place optimizers, clip_grad_norm,
  additive attention-mask bias) against a plain numpy reference.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from .. import nn
from ..adapters import make_adapter
from ..adapters.linear_combiner import LinearCombinerModule
from ..nn import functional as F
from ..nn.optim import SGD, Adam, AdamW, clip_grad_norm

__all__ = ["INVARIANTS", "InvariantResult", "invariant", "run_invariants"]

INVARIANTS: dict[str, Callable[[], None]] = {}


def invariant(name: str) -> Callable:
    """Register a nullary invariant check under ``name``."""

    def decorate(fn: Callable[[], None]) -> Callable[[], None]:
        if name in INVARIANTS:
            raise ValueError(f"invariant {name!r} registered twice")
        INVARIANTS[name] = fn
        return fn

    return decorate


class InvariantResult:
    """Outcome of one invariant: name, pass/fail, failure detail."""

    __slots__ = ("name", "passed", "detail")

    def __init__(self, name: str, passed: bool, detail: str = "") -> None:
        self.name = name
        self.passed = passed
        self.detail = detail

    def __repr__(self) -> str:
        status = "ok" if self.passed else f"FAIL ({self.detail})"
        return f"InvariantResult({self.name}: {status})"


def run_invariants(names: list[str] | None = None) -> list[InvariantResult]:
    """Run all (or the named) invariants; never raises, reports instead."""
    selected = sorted(INVARIANTS) if names is None else list(names)
    results = []
    for name in selected:
        try:
            INVARIANTS[name]()
        except AssertionError as failure:
            results.append(InvariantResult(name, False, str(failure)))
        except Exception as failure:  # noqa: BLE001 - a crash is a failure too
            results.append(InvariantResult(name, False, f"{type(failure).__name__}: {failure}"))
        else:
            results.append(InvariantResult(name, True))
    return results


def _series(seed: int, n: int = 5, t: int = 12, d: int = 8) -> np.ndarray:
    """A seeded (N, T, D) batch with per-channel scale differences."""
    rng = np.random.default_rng(seed)
    scales = rng.uniform(0.5, 3.0, size=d)
    return rng.normal(size=(n, t, d)) * scales


# ----------------------------------------------------------------------
# Adapter algebra
# ----------------------------------------------------------------------
@invariant("pca_orthonormality")
def _check_pca_orthonormality() -> None:
    x = _series(101)
    adapter = make_adapter("pca", output_channels=4).fit(x)
    gram = adapter.projection_ @ adapter.projection_.T
    assert np.allclose(gram, np.eye(4), atol=1e-8), (
        f"PCA components are not orthonormal: max |P P^T - I| = "
        f"{np.abs(gram - np.eye(4)).max():.3e}"
    )


@invariant("pca_variance_ordering")
def _check_pca_variance_ordering() -> None:
    x = _series(103)
    adapter = make_adapter("pca", output_channels=5).fit(x)
    ev = adapter.explained_variance_
    assert ev is not None and np.all(np.diff(ev) <= 1e-12), (
        f"explained variances are not non-increasing: {ev}"
    )
    # The stored spectrum must match the realized variance of the
    # projected (centered) training rows, in the same order.
    flat = x.reshape(-1, x.shape[-1])
    centered = flat - flat.mean(axis=0)
    realized = (centered @ adapter.projection_.T).var(axis=0)
    assert np.allclose(np.sort(realized)[::-1], realized, atol=1e-8), (
        f"projected variances are not ordered: {realized}"
    )


@invariant("svd_matches_pca_on_centered_data")
def _check_svd_matches_pca() -> None:
    x = _series(107)
    flat = x.reshape(-1, x.shape[-1])
    centered = (flat - flat.mean(axis=0)).reshape(x.shape)
    pca_out = make_adapter("pca", output_channels=4).fit_transform(centered)
    svd_out = make_adapter("svd", output_channels=4).fit_transform(centered)
    assert np.allclose(pca_out, svd_out, atol=1e-8), (
        "TruncatedSVD != PCA on centered data: max diff "
        f"{np.abs(pca_out - svd_out).max():.3e}"
    )


@invariant("rand_proj_norm_preservation")
def _check_rand_proj_norms() -> None:
    # JL property: with 1/sqrt(k) scaling the projection preserves
    # squared norms in expectation.  Average the ratio over several
    # independent matrices and many vectors; the bound is generous
    # because k is small, but a missing/incorrect scale factor (e.g.
    # forgetting 1/sqrt(k)) lands far outside it.
    rng = np.random.default_rng(109)
    d, k = 16, 6
    vectors = rng.normal(size=(300, d))
    input_sq = (vectors**2).sum(axis=1)
    ratios = []
    for seed in range(8):
        adapter = make_adapter("rand_proj", output_channels=k, seed=seed)
        adapter.fit(vectors[None, :, :])
        projected = vectors @ adapter.projection_.T
        ratios.append(float(((projected**2).sum(axis=1) / input_sq).mean()))
    mean_ratio = float(np.mean(ratios))
    assert 0.6 < mean_ratio < 1.5, (
        f"random projection does not preserve norms: mean squared-norm "
        f"ratio {mean_ratio:.3f} outside (0.6, 1.5)"
    )


@invariant("lcomb_top_k_row_renormalization")
def _check_lcomb_top_k_rows() -> None:
    rng = np.random.default_rng(113)
    module = LinearCombinerModule(in_channels=9, out_channels=4, top_k=3, rng=rng)
    matrix = module.mixing_matrix().numpy()
    assert np.all(matrix >= 0.0), "top-k mixing matrix has negative entries"
    row_sums = matrix.sum(axis=1)
    assert np.allclose(row_sums, 1.0, atol=1e-6), (
        f"top-k rows are not renormalized to 1: sums {row_sums}"
    )
    nonzeros = (matrix > 0.0).sum(axis=1)
    assert np.all(nonzeros <= 3), (
        f"rows keep more than top_k entries: counts {nonzeros}"
    )


# ----------------------------------------------------------------------
# Metamorphic: channel-permutation equivariance
# ----------------------------------------------------------------------
@invariant("adapter_permutation_equivariance")
def _check_permutation_equivariance() -> None:
    """Fitted linear adapters must not care about channel order.

    For pca/scaled_pca/svd the sign convention (largest-|coordinate|
    component entry made positive) makes the projected output exactly
    equal under any permutation of the input channels.
    """
    x = _series(127)
    perm = np.random.default_rng(131).permutation(x.shape[-1])
    for name in ("pca", "scaled_pca", "svd"):
        original = make_adapter(name, output_channels=4).fit_transform(x)
        permuted = make_adapter(name, output_channels=4).fit_transform(x[:, :, perm])
        assert np.allclose(original, permuted, atol=1e-7), (
            f"{name} output changed under channel permutation: max diff "
            f"{np.abs(original - permuted).max():.3e}"
        )


@invariant("var_selector_permutation_invariance")
def _check_var_permutation() -> None:
    """VAR keeps the same *set* of channels under permutation.

    Output column order follows original channel index, so the columns
    may be reordered — but they must be the same series.
    """
    x = _series(137)
    perm = np.random.default_rng(139).permutation(x.shape[-1])
    original = make_adapter("var", output_channels=3).fit_transform(x)
    permuted = make_adapter("var", output_channels=3).fit_transform(x[:, :, perm])
    flat_orig = original.reshape(-1, 3)
    flat_perm = permuted.reshape(-1, 3)
    order_a = np.lexsort(flat_orig)
    order_b = np.lexsort(flat_perm)
    assert np.allclose(flat_orig[:, order_a], flat_perm[:, order_b], atol=1e-10), (
        "VAR selected different channels under permutation"
    )


# ----------------------------------------------------------------------
# Differential: fused kernels vs numpy references
# ----------------------------------------------------------------------
def _reference_layer_norm(x: np.ndarray, w: np.ndarray, b: np.ndarray,
                          eps: float = 1e-5) -> np.ndarray:
    mean = x.mean(axis=-1, keepdims=True)
    var = x.var(axis=-1, keepdims=True)
    return (x - mean) / np.sqrt(var + eps) * w + b


@invariant("layer_norm_matches_reference")
def _check_layer_norm() -> None:
    rng = np.random.default_rng(149)
    x = rng.normal(size=(3, 5, 6))
    w = rng.uniform(0.5, 1.5, size=6)
    b = rng.normal(size=6)
    xt = nn.Tensor(x, requires_grad=True)
    wt = nn.Tensor(w, requires_grad=True)
    bt = nn.Tensor(b, requires_grad=True)
    fused = F.layer_norm(xt, wt, bt)
    assert np.allclose(fused.numpy(), _reference_layer_norm(x, w, b), atol=1e-10), (
        "fused layer_norm forward differs from the numpy reference"
    )
    # Backward: compare the fused hand-written gradient against the
    # gradient of the same function composed from primitive (already
    # gradchecked) tensor ops.
    weights = np.random.default_rng(151).normal(size=fused.shape)
    (fused * nn.Tensor(weights)).sum().backward()
    x2 = nn.Tensor(x, requires_grad=True)
    w2 = nn.Tensor(w, requires_grad=True)
    b2 = nn.Tensor(b, requires_grad=True)
    mean = x2.mean(axis=-1, keepdims=True)
    var = x2.var(axis=-1, keepdims=True)
    composite = (x2 - mean) / (var + 1e-5).sqrt() * w2 + b2
    (composite * nn.Tensor(weights)).sum().backward()
    for fused_t, ref_t, label in ((xt, x2, "x"), (wt, w2, "weight"), (bt, b2, "bias")):
        assert np.allclose(fused_t.grad, ref_t.grad, atol=1e-8), (
            f"fused layer_norm backward differs from composite reference on {label}"
        )


@invariant("activations_match_numpy")
def _check_activations() -> None:
    x = np.random.default_rng(157).normal(size=(4, 7))
    xt = nn.Tensor(x)
    checks = {
        "relu": (F.relu(xt).numpy(), np.maximum(x, 0.0)),
        "sigmoid": (F.sigmoid(xt).numpy(), 1.0 / (1.0 + np.exp(-x))),
        "gelu": (
            F.gelu(xt).numpy(),
            0.5 * x * (1.0 + np.tanh(np.sqrt(2.0 / np.pi) * (x + 0.044715 * x**3))),
        ),
        "softmax": (
            F.softmax(xt, axis=-1).numpy(),
            np.exp(x - x.max(axis=-1, keepdims=True))
            / np.exp(x - x.max(axis=-1, keepdims=True)).sum(axis=-1, keepdims=True),
        ),
    }
    checks["log_softmax"] = (
        F.log_softmax(xt, axis=-1).numpy(),
        np.log(checks["softmax"][1]),
    )
    for name, (actual, expected) in checks.items():
        assert np.allclose(actual, expected, atol=1e-8), (
            f"{name} differs from numpy reference: max diff "
            f"{np.abs(actual - expected).max():.3e}"
        )


def _fresh_params(seed: int, shapes=((3, 4), (5,))) -> tuple[list, list[np.ndarray]]:
    """Parameters with fixed grads, plus float64 copies for references."""
    rng = np.random.default_rng(seed)
    params, copies = [], []
    for shape in shapes:
        param = nn.Parameter(rng.normal(size=shape))
        param.grad = rng.normal(size=shape)
        params.append(param)
        copies.append((param.data.copy(), param.grad.copy()))
    return params, copies


@invariant("sgd_matches_reference")
def _check_sgd() -> None:
    momentum = 0.9
    params, copies = _fresh_params(163)
    optimizer = SGD(params, lr=0.1, momentum=momentum)
    reference = [(p.copy(), g.copy()) for p, g in copies]
    velocity = [np.zeros_like(p) for p, _ in reference]
    for _ in range(3):
        optimizer.step()
        for index, (p, g) in enumerate(reference):
            velocity[index] = momentum * velocity[index] + g
            reference[index] = (p - 0.1 * velocity[index], g)
    for param, (expected, _) in zip(params, reference):
        assert np.allclose(param.data, expected, atol=1e-12), (
            "in-place SGD diverged from the textbook update"
        )


@invariant("adam_matches_reference")
def _check_adam() -> None:
    lr, beta1, beta2, eps, wd = 1e-2, 0.9, 0.999, 1e-8, 0.01
    params, copies = _fresh_params(167)
    optimizer = Adam(params, lr=lr, betas=(beta1, beta2), eps=eps, weight_decay=wd)
    reference = [p.copy() for p, _ in copies]
    m = [np.zeros_like(p) for p in reference]
    v = [np.zeros_like(p) for p in reference]
    for step in range(1, 4):
        optimizer.step()
        for index, (_, g) in enumerate(copies):
            grad = g + wd * reference[index]
            m[index] = beta1 * m[index] + (1 - beta1) * grad
            v[index] = beta2 * v[index] + (1 - beta2) * grad**2
            m_hat = m[index] / (1 - beta1**step)
            v_hat = v[index] / (1 - beta2**step)
            reference[index] = reference[index] - lr * m_hat / (np.sqrt(v_hat) + eps)
    for param, expected in zip(params, reference):
        assert np.allclose(param.data, expected, atol=1e-12), (
            "in-place Adam diverged from the textbook update"
        )


@invariant("adamw_matches_reference")
def _check_adamw() -> None:
    lr, beta1, beta2, eps, wd = 1e-2, 0.9, 0.999, 1e-8, 0.05
    params, copies = _fresh_params(173)
    optimizer = AdamW(params, lr=lr, betas=(beta1, beta2), eps=eps, weight_decay=wd)
    reference = [p.copy() for p, _ in copies]
    m = [np.zeros_like(p) for p in reference]
    v = [np.zeros_like(p) for p in reference]
    for step in range(1, 4):
        optimizer.step()
        for index, (_, g) in enumerate(copies):
            reference[index] = reference[index] * (1 - lr * wd)
            m[index] = beta1 * m[index] + (1 - beta1) * g
            v[index] = beta2 * v[index] + (1 - beta2) * g**2
            m_hat = m[index] / (1 - beta1**step)
            v_hat = v[index] / (1 - beta2**step)
            reference[index] = reference[index] - lr * m_hat / (np.sqrt(v_hat) + eps)
    for param, expected in zip(params, reference):
        assert np.allclose(param.data, expected, atol=1e-12), (
            "in-place AdamW diverged from decoupled-decay reference"
        )


@invariant("clip_grad_norm_matches_reference")
def _check_clip_grad_norm() -> None:
    params, copies = _fresh_params(179)
    expected_norm = float(np.sqrt(sum((g**2).sum() for _, g in copies)))
    max_norm = expected_norm / 2.0
    returned = clip_grad_norm(params, max_norm)
    assert np.isclose(returned, expected_norm, rtol=1e-12), (
        f"clip_grad_norm returned {returned}, reference norm {expected_norm}"
    )
    scale = max_norm / expected_norm
    for param, (_, g) in zip(params, copies):
        assert np.allclose(param.grad, g * scale, atol=1e-12), (
            "clipped gradients differ from uniformly rescaled reference"
        )
    clipped_norm = float(np.sqrt(sum((p.grad**2).sum() for p in params)))
    assert np.isclose(clipped_norm, max_norm, rtol=1e-9), (
        f"post-clip norm {clipped_norm} != max_norm {max_norm}"
    )


@invariant("attention_mask_bias_matches_reference")
def _check_attention_mask_bias() -> None:
    """The additive -1e9 bias must reproduce hard masking of scores."""
    rng = np.random.default_rng(181)
    scores = rng.normal(size=(2, 2, 4, 4))
    mask = rng.random((4, 4)) < 0.6
    np.fill_diagonal(mask, True)  # keep every row attendable
    bias = np.where(mask[None, None], 0.0, -1e9)
    fused = F.softmax(nn.Tensor(scores) + nn.Tensor(bias), axis=-1).numpy()
    # Reference: renormalise explicitly over the unmasked entries only.
    exp = np.exp(scores - scores.max(axis=-1, keepdims=True))
    exp = exp * mask[None, None]
    reference = exp / exp.sum(axis=-1, keepdims=True)
    assert np.allclose(fused, reference, atol=1e-8), (
        "additive attention-mask bias differs from hard-masked softmax"
    )
    assert fused[..., ~mask].max(initial=0.0) < 1e-8, (
        "masked positions received attention weight"
    )
