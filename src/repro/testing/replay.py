"""Replay-parity sweep: compiled replay must be bit-identical to eager.

The compiled engine (:mod:`repro.nn.graph`) promises that replaying a
captured graph produces the *same bits* as the eager tensor path — not
merely close values.  This module enforces that promise op by op,
reusing the :data:`repro.testing.gradcheck.OP_CHECKS` case table so
every registered op is exercised through capture → compile → replay
and compared exactly against its eager output.

Coverage is closed-world, mirroring :func:`gradcheck.assert_full_coverage`:
an op registered in ``OP_REGISTRY`` without a replay kernel (and not
declared in :data:`repro.nn.graph.EAGER_ONLY_OPS`), or a kernel for an
op that no longer exists, fails the sweep **by that op's name**.
Eager-only ops are instead asserted to *refuse* capture, so a
nondeterministic op can never silently enter a compiled graph.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from ..nn import graph
from ..nn import tensor as tensor_module
from ..nn.tensor import OP_REGISTRY, Tensor
from .gradcheck import OP_CHECKS, OpCase

__all__ = [
    "ReplayParityFailure",
    "ReplayResult",
    "replay_coverage_problems",
    "assert_replay_coverage",
    "run_replay_sweep",
]


class ReplayParityFailure(AssertionError):
    """A compiled replay did not reproduce the eager bits."""


class ReplayResult:
    """Outcome of one parity check: op/case/dtype plus graph shape."""

    __slots__ = ("op", "case", "dtype", "steps", "arena_bytes", "eager_only")

    def __init__(self, op, case, dtype, steps=0, arena_bytes=0, eager_only=False):
        self.op = op
        self.case = case
        self.dtype = dtype
        self.steps = steps
        self.arena_bytes = arena_bytes
        self.eager_only = eager_only

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "eager-only" if self.eager_only else f"{self.steps} steps"
        return f"ReplayResult({self.op}/{self.case} [{self.dtype}] {kind})"


# ----------------------------------------------------------------------
# Coverage enforcement
# ----------------------------------------------------------------------
def replay_coverage_problems() -> list[str]:
    """Human-readable coverage holes, each naming the offending ops."""
    problems = []
    missing = graph.missing_replay_kernels()
    if missing:
        problems.append(
            "registered ops with neither a replay kernel nor an "
            "EAGER_ONLY_OPS entry: " + ", ".join(missing)
        )
    stale = graph.stale_replay_kernels()
    if stale:
        problems.append("replay kernels for unknown ops: " + ", ".join(stale))
    uncased = sorted(
        name
        for name in OP_REGISTRY
        if name not in OP_CHECKS and name not in graph.EAGER_ONLY_OPS
    )
    if uncased:
        problems.append("replayable ops without a parity case: " + ", ".join(uncased))
    return problems


def assert_replay_coverage() -> None:
    """Raise naming every op missing from the replay contract, if any."""
    problems = replay_coverage_problems()
    if problems:
        raise AssertionError("; ".join(problems))


# ----------------------------------------------------------------------
# The sweep
# ----------------------------------------------------------------------
def _check_case(op_name: str, case: OpCase, dtype: str) -> ReplayResult:
    names = sorted(case.arrays)
    arrays = [np.ascontiguousarray(case.arrays[n].astype(dtype)) for n in names]

    def positional(*tensors: Tensor) -> Tensor:
        return case.fn(dict(zip(names, tensors)))

    with tensor_module.no_grad():
        eager = positional(*[Tensor(a) for a in arrays]).data
    try:
        trace = graph.capture(positional, arrays)
    except graph.TraceError as err:
        raise ReplayParityFailure(
            f"[op={op_name}] case {case.name!r} [{dtype}] refused capture: {err}"
        ) from err
    compiled = graph.compile_trace(trace)
    replayed = compiled.run(arrays)
    if replayed.shape != eager.shape or replayed.dtype != eager.dtype:
        raise ReplayParityFailure(
            f"[op={op_name}] case {case.name!r} [{dtype}]: replay produced "
            f"{replayed.shape} {replayed.dtype}, eager {eager.shape} {eager.dtype}"
        )
    if not np.array_equal(replayed, eager, equal_nan=True):
        diff = np.max(np.abs(np.asarray(replayed, dtype=np.float64) - eager))
        raise ReplayParityFailure(
            f"[op={op_name}] case {case.name!r} [{dtype}]: replay is not "
            f"bit-identical to eager (max abs diff {diff:.3e})"
        )
    return ReplayResult(
        op_name, case.name, dtype,
        steps=len(compiled.steps), arena_bytes=compiled.arena_bytes,
    )


def _check_eager_only(op_name: str, case: OpCase, dtype: str) -> ReplayResult:
    """An eager-only op must refuse capture, never replay wrongly."""
    names = sorted(case.arrays)
    arrays = [np.ascontiguousarray(case.arrays[n].astype(dtype)) for n in names]

    def positional(*tensors: Tensor) -> Tensor:
        return case.fn(dict(zip(names, tensors)))

    try:
        trace = graph.capture(positional, arrays)
    except graph.TraceError:
        return ReplayResult(op_name, case.name, dtype, eager_only=True)
    raise ReplayParityFailure(
        f"[op={op_name}] case {case.name!r} [{dtype}] is declared eager-only "
        f"but was captured as {len(trace.steps)} steps"
    )


def run_replay_sweep(
    dtypes: Iterable[str] = ("float32", "float64"),
    ops: Iterable[str] | None = None,
) -> list[ReplayResult]:
    """Capture/compile/replay every covered op; compare bits with eager.

    Raises :class:`ReplayParityFailure` (carrying the op's name) on the
    first mismatch, and :class:`AssertionError` if the replay contract
    has coverage holes — so the sweep can never pass a registry whose
    ops could silently fall back or, worse, replay wrong values.
    """
    assert_replay_coverage()
    selected = sorted(ops) if ops is not None else sorted(OP_CHECKS)
    results: list[ReplayResult] = []
    for op_name in selected:
        checker = (
            _check_eager_only if op_name in graph.EAGER_ONLY_OPS else _check_case
        )
        for case in OP_CHECKS[op_name]:
            for dtype in dtypes:
                results.append(checker(op_name, case, dtype))
    return results
