"""Seeded value generators with shrinking, and a ``@given`` decorator.

A tiny, dependency-free property-based testing core in the spirit of
Hypothesis: a :class:`Strategy` draws a random value from a seeded
``numpy.random.Generator`` and knows how to propose *simpler*
candidates for a failing value (shrinking).  The :func:`given`
decorator runs a test body over many drawn examples, and on failure
shrinks the counterexample before reporting it — so a red property
test shows a small, reproducible input instead of a 4-D noise blob.

Everything is deterministic: the example stream is derived from the
test function's qualified name (or an explicit ``seed=``), so reruns
fail on the same example.
"""

from __future__ import annotations

import functools
import inspect
import zlib
from typing import Any, Callable, Iterable, Iterator, Sequence

import numpy as np

__all__ = [
    "Strategy",
    "Falsified",
    "given",
    "integers",
    "floats",
    "sampled_from",
    "shapes",
    "arrays",
    "broadcastable_pairs",
    "series_batches",
    "labeled_datasets",
    "job_specs",
]


class Falsified(AssertionError):
    """A property failed; carries the (shrunk) counterexample."""


def _describe(value: Any) -> str:
    """Compact, reproduction-friendly rendering of a drawn value."""
    if isinstance(value, np.ndarray):
        if value.size <= 12:
            return f"array({np.array2string(value, precision=4, separator=', ')})"
        return f"ndarray(shape={value.shape}, dtype={value.dtype})"
    if isinstance(value, tuple) and any(isinstance(v, np.ndarray) for v in value):
        return "(" + ", ".join(_describe(v) for v in value) + ")"
    return repr(value)


class Strategy:
    """A seeded value generator with optional shrinking.

    Parameters
    ----------
    draw:
        ``draw(rng) -> value``; must be a pure function of the
        generator state so examples are reproducible.
    shrink:
        ``shrink(value) -> iterable of simpler candidates`` (may be
        empty).  Candidates are tried in order; the first one that
        still fails the property becomes the new counterexample.
    label:
        Human-readable name used in failure reports.
    """

    def __init__(
        self,
        draw: Callable[[np.random.Generator], Any],
        shrink: Callable[[Any], Iterable[Any]] | None = None,
        label: str = "strategy",
    ) -> None:
        self._draw = draw
        self._shrink = shrink
        self.label = label

    def example(self, rng: np.random.Generator) -> Any:
        """Draw one value."""
        return self._draw(rng)

    def shrink_candidates(self, value: Any) -> Iterator[Any]:
        """Yield strictly simpler candidates for ``value`` (maybe none)."""
        if self._shrink is None:
            return
        yield from self._shrink(value)

    def map(self, fn: Callable[[Any], Any], label: str | None = None) -> "Strategy":
        """A strategy drawing ``fn(value)``; shrinks through ``fn``."""

        def draw(rng: np.random.Generator) -> Any:
            return fn(self._draw(rng))

        def shrink(value: Any) -> Iterator[Any]:
            # The pre-image is unknown, so mapped strategies cannot
            # shrink: the contract stays sound (no candidates) rather
            # than guessing.
            return iter(())

        return Strategy(draw, shrink, label or f"{self.label}.map({fn!r})")

    def __repr__(self) -> str:
        return f"Strategy({self.label})"


# ----------------------------------------------------------------------
# Scalar strategies
# ----------------------------------------------------------------------
def integers(low: int, high: int) -> Strategy:
    """Uniform integers in ``[low, high]``; shrinks toward ``low``."""
    if low > high:
        raise ValueError(f"empty range [{low}, {high}]")

    def draw(rng: np.random.Generator) -> int:
        return int(rng.integers(low, high + 1))

    def shrink(value: int) -> Iterator[int]:
        seen = {value}
        for candidate in (low, (low + value) // 2, value - 1):
            if low <= candidate <= high and candidate not in seen:
                seen.add(candidate)
                yield candidate

    return Strategy(draw, shrink, f"integers({low}, {high})")


def floats(low: float, high: float) -> Strategy:
    """Uniform floats in ``[low, high]``; shrinks toward 0 / ``low``."""
    if low > high:
        raise ValueError(f"empty range [{low}, {high}]")
    anchor = 0.0 if low <= 0.0 <= high else low

    def draw(rng: np.random.Generator) -> float:
        return float(rng.uniform(low, high))

    def shrink(value: float) -> Iterator[float]:
        seen = {value}
        for candidate in (anchor, (anchor + value) / 2.0, round(value, 1)):
            if low <= candidate <= high and candidate not in seen:
                seen.add(candidate)
                yield candidate

    return Strategy(draw, shrink, f"floats({low}, {high})")


def sampled_from(options: Sequence[Any]) -> Strategy:
    """Uniform choice from ``options``; shrinks toward the first one."""
    options = list(options)
    if not options:
        raise ValueError("sampled_from needs at least one option")

    def draw(rng: np.random.Generator) -> Any:
        return options[int(rng.integers(len(options)))]

    def shrink(value: Any) -> Iterator[Any]:
        try:
            index = options.index(value)
        except ValueError:
            return
        if index > 0:
            yield options[0]

    return Strategy(draw, shrink, f"sampled_from({len(options)} options)")


# ----------------------------------------------------------------------
# Shape / array strategies
# ----------------------------------------------------------------------
def shapes(
    min_dims: int = 1, max_dims: int = 3, min_side: int = 1, max_side: int = 5
) -> Strategy:
    """Random array shapes; shrinks by dropping dims and halving sides."""
    if not 0 <= min_dims <= max_dims:
        raise ValueError(f"bad dims range [{min_dims}, {max_dims}]")

    def draw(rng: np.random.Generator) -> tuple[int, ...]:
        ndim = int(rng.integers(min_dims, max_dims + 1))
        return tuple(int(rng.integers(min_side, max_side + 1)) for _ in range(ndim))

    def shrink(value: tuple[int, ...]) -> Iterator[tuple[int, ...]]:
        if len(value) > min_dims:
            yield value[1:]
        halved = tuple(max(min_side, side // 2) for side in value)
        if halved != value:
            yield halved
        floor = tuple(min_side for _ in value)
        if floor != value and floor != halved:
            yield floor

    return Strategy(draw, shrink, f"shapes(dims {min_dims}-{max_dims})")


def _shrink_array(value: np.ndarray) -> Iterator[np.ndarray]:
    """Smaller / simpler versions of an array counterexample."""
    # Halve the leading axis.
    if value.ndim and value.shape[0] > 1:
        yield np.ascontiguousarray(value[: max(1, value.shape[0] // 2)])
    # Halve the trailing axis.
    if value.ndim > 1 and value.shape[-1] > 1:
        yield np.ascontiguousarray(value[..., : max(1, value.shape[-1] // 2)])
    # Simplify the entries without changing the shape.
    rounded = np.round(value, 1)
    if not np.array_equal(rounded, value):
        yield rounded
    if np.any(value != 0):
        yield np.zeros_like(value)


def arrays(
    shape: tuple[int, ...] | Strategy | None = None,
    dtype: Any = np.float64,
    scale: float = 1.0,
) -> Strategy:
    """Gaussian arrays of the given (or drawn) shape.

    ``shape`` may be a concrete tuple, a strategy producing tuples, or
    ``None`` for :func:`shapes`' default.  Shrinking halves axes,
    rounds entries and finally zeroes the array.
    """
    shape_strategy: Strategy | None
    if shape is None:
        shape_strategy = shapes()
        fixed_shape = None
    elif isinstance(shape, Strategy):
        shape_strategy = shape
        fixed_shape = None
    else:
        shape_strategy = None
        fixed_shape = tuple(shape)

    def draw(rng: np.random.Generator) -> np.ndarray:
        drawn = fixed_shape if fixed_shape is not None else shape_strategy.example(rng)
        return (scale * rng.normal(size=drawn)).astype(dtype)

    return Strategy(draw, _shrink_array, f"arrays(dtype={np.dtype(dtype).name})")


def broadcastable_pairs(
    max_dims: int = 3, max_side: int = 4, dtype: Any = np.float64
) -> Strategy:
    """Pairs ``(a, b)`` of arrays whose shapes numpy-broadcast together.

    ``b``'s shape is derived from ``a``'s by dropping leading axes and
    squashing random axes to one — the exact cases
    :func:`repro.nn.tensor._unbroadcast` has to invert.
    """
    base = shapes(min_dims=1, max_dims=max_dims, min_side=2, max_side=max_side)

    def draw(rng: np.random.Generator) -> tuple[np.ndarray, np.ndarray]:
        shape_a = base.example(rng)
        keep_from = int(rng.integers(0, len(shape_a) + 1))
        shape_b = tuple(
            side if rng.random() < 0.5 else 1 for side in shape_a[keep_from:]
        )
        a = rng.normal(size=shape_a).astype(dtype)
        b = rng.normal(size=shape_b).astype(dtype)
        return a, b

    def shrink(value: tuple[np.ndarray, np.ndarray]) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        a, b = value
        if np.any(a != 0):
            yield np.zeros_like(a), b
        if np.any(b != 0):
            yield a, np.zeros_like(b)
        if b.ndim:
            yield a, np.ascontiguousarray(b[(0,) * b.ndim].reshape(()))

    return Strategy(draw, shrink, "broadcastable_pairs")


# ----------------------------------------------------------------------
# Domain strategies
# ----------------------------------------------------------------------
def series_batches(
    max_n: int = 6, max_t: int = 16, max_d: int = 8, min_d: int = 1
) -> Strategy:
    """Multivariate series batches ``(N, T, D)`` (the adapter input)."""

    def draw(rng: np.random.Generator) -> np.ndarray:
        n = int(rng.integers(2, max_n + 1))
        t = int(rng.integers(4, max_t + 1))
        d = int(rng.integers(min_d, max_d + 1))
        return rng.normal(size=(n, t, d))

    return Strategy(draw, _shrink_array, "series_batches")


def labeled_datasets(
    max_classes: int = 3, max_per_class: int = 6, max_t: int = 16, max_d: int = 6
) -> Strategy:
    """Class-separable synthetic ``(x, y)`` pairs.

    Each class is a distinct multi-channel sinusoid plus Gaussian
    noise — enough structure that reasonable classifiers and adapters
    have a signal to find, with geometry small enough for property
    sweeps.
    """

    def draw(rng: np.random.Generator) -> tuple[np.ndarray, np.ndarray]:
        classes = int(rng.integers(2, max_classes + 1))
        per_class = int(rng.integers(3, max_per_class + 1))
        t = int(rng.integers(8, max_t + 1))
        d = int(rng.integers(2, max_d + 1))
        time = np.linspace(0.0, 1.0, t)
        frequencies = rng.uniform(1.0, 5.0, size=classes)
        mixing = rng.normal(size=(classes, d))
        xs, ys = [], []
        for label in range(classes):
            wave = np.sin(2 * np.pi * frequencies[label] * time)  # (T,)
            clean = wave[:, None] * mixing[label][None, :]  # (T, D)
            noise = 0.2 * rng.normal(size=(per_class, t, d))
            xs.append(clean[None, :, :] + noise)
            ys.append(np.full(per_class, label, dtype=np.int64))
        x = np.concatenate(xs, axis=0)
        y = np.concatenate(ys, axis=0)
        order = rng.permutation(len(y))
        return x[order], y[order]

    def shrink(value: tuple[np.ndarray, np.ndarray]) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        x, y = value
        if x.shape[1] > 4:
            yield x[:, : x.shape[1] // 2, :], y
        if x.shape[2] > 1:
            yield x[:, :, : max(1, x.shape[2] // 2)], y

    return Strategy(draw, shrink, "labeled_datasets")


def job_specs(
    datasets: Sequence[str] | None = None,
    models: Sequence[str] = ("MOMENT", "ViT"),
    adapters: Sequence[str] = ("none", "pca", "svd", "rand_proj", "var"),
    max_seed: int = 3,
) -> Strategy:
    """Random :class:`repro.exec.JobSpec` instances over the real axes."""
    from ..data import dataset_names
    from ..exec import JobSpec
    from ..training import FineTuneStrategy

    dataset_pool = list(datasets) if datasets is not None else list(dataset_names())
    strategy_pool = list(FineTuneStrategy)

    def draw(rng: np.random.Generator) -> Any:
        return JobSpec(
            dataset=dataset_pool[int(rng.integers(len(dataset_pool)))],
            model=models[int(rng.integers(len(models)))],
            adapter=adapters[int(rng.integers(len(adapters)))],
            strategy=strategy_pool[int(rng.integers(len(strategy_pool)))],
            seed=int(rng.integers(0, max_seed + 1)),
        )

    def shrink(value: Any) -> Iterator[Any]:
        if value.seed != 0:
            yield value.replace(seed=0)
        if value.adapter != adapters[0]:
            yield value.replace(adapter=adapters[0], adapter_kwargs=())
        if value.dataset != dataset_pool[0]:
            yield value.replace(dataset=dataset_pool[0])

    return Strategy(draw, shrink, "job_specs")


# ----------------------------------------------------------------------
# The @given decorator
# ----------------------------------------------------------------------
def _shrink_failure(
    run: Callable[[dict[str, Any]], BaseException | None],
    strategies: dict[str, Strategy],
    failing: dict[str, Any],
    budget: int = 200,
) -> tuple[dict[str, Any], BaseException]:
    """Greedy per-argument shrink of a failing example.

    Repeatedly tries each argument's shrink candidates (other
    arguments held fixed); adopts the first candidate that still
    fails, restarting the scan, until a full pass produces no
    progress or the attempt budget runs out.
    """
    error = run(failing)
    assert error is not None, "shrink called on a passing example"
    attempts = 0
    progress = True
    while progress and attempts < budget:
        progress = False
        for name, strategy in strategies.items():
            for candidate in strategy.shrink_candidates(failing[name]):
                attempts += 1
                if attempts > budget:
                    break
                trial = dict(failing)
                trial[name] = candidate
                trial_error = run(trial)
                if trial_error is not None:
                    failing, error = trial, trial_error
                    progress = True
                    break
            if progress:
                break
    return failing, error


def given(
    max_examples: int = 25,
    seed: int | None = None,
    **strategy_kwargs: Strategy,
) -> Callable:
    """Decorator: run the test over ``max_examples`` drawn examples.

    Each keyword names a test parameter and supplies its
    :class:`Strategy`.  The remaining parameters (pytest fixtures,
    ``self``) pass through untouched.  On failure the counterexample
    is shrunk and re-raised as :class:`Falsified`, chaining the
    original assertion and embedding the example index + values so the
    failure reproduces exactly.
    """
    if isinstance(seed, Strategy):
        raise TypeError(
            "'seed' is given()'s base-seed parameter, not a test argument; "
            "name the drawn parameter differently (e.g. 'perm_seed')"
        )
    if not strategy_kwargs:
        raise TypeError("given() needs at least one named strategy")
    for name, strategy in strategy_kwargs.items():
        if not isinstance(strategy, Strategy):
            raise TypeError(f"argument {name!r} is not a Strategy: {strategy!r}")

    def decorate(test_fn: Callable) -> Callable:
        base_seed = (
            seed if seed is not None else zlib.crc32(test_fn.__qualname__.encode("utf-8"))
        )

        @functools.wraps(test_fn)
        def wrapper(*args: Any, **kwargs: Any) -> None:
            for example_index in range(max_examples):
                rng = np.random.default_rng((base_seed, example_index))
                drawn = {
                    name: strategy.example(rng)
                    for name, strategy in strategy_kwargs.items()
                }

                def run(example: dict[str, Any]) -> BaseException | None:
                    try:
                        test_fn(*args, **kwargs, **example)
                    except AssertionError as failure:
                        return failure
                    return None

                first_error = run(drawn)
                if first_error is None:
                    continue
                shrunk, error = _shrink_failure(run, strategy_kwargs, drawn)
                rendered = "\n".join(
                    f"    {name}={_describe(value)}" for name, value in shrunk.items()
                )
                raise Falsified(
                    f"{test_fn.__qualname__} falsified on example "
                    f"{example_index} (seed={base_seed}):\n{rendered}\n"
                    f"  underlying failure: {error}"
                ) from error

        # Hide the strategy-driven parameters from pytest's fixture
        # resolution: the wrapper's visible signature keeps only the
        # pass-through parameters (self, fixtures).
        original = inspect.signature(test_fn)
        remaining = [
            parameter
            for name, parameter in original.parameters.items()
            if name not in strategy_kwargs
        ]
        wrapper.__signature__ = original.replace(parameters=remaining)
        return wrapper

    return decorate
