"""Fine-tuning engine: strategies, pipeline, trainer, embedding cache."""

from .embedding_cache import EmbeddingCache, compute_embeddings
from .persistence import (
    load_pipeline,
    pipeline_from_state,
    pipeline_state,
    save_pipeline,
)
from .pipeline import AdapterPipeline, FitReport
from .strategies import FineTuneStrategy
from .trainer import TrainConfig, TrainResult, train_classifier_on_arrays

__all__ = [
    "FineTuneStrategy",
    "AdapterPipeline",
    "FitReport",
    "save_pipeline",
    "load_pipeline",
    "pipeline_state",
    "pipeline_from_state",
    "TrainConfig",
    "TrainResult",
    "train_classifier_on_arrays",
    "EmbeddingCache",
    "compute_embeddings",
]
