"""Frozen-encoder embedding cache.

When the adapter is fit-once and the encoder is frozen, the encoder's
pooled embeddings are a pure function of the input — so they can be
computed in a single inference pass and reused for every head-training
epoch.  This is where the paper's ~10x fine-tuning speedup comes from:
the expensive foundation model runs once instead of epochs x steps
times.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..models.base import FoundationModel

__all__ = ["compute_embeddings", "EmbeddingCache"]


def compute_embeddings(
    model: FoundationModel,
    x: np.ndarray,
    batch_size: int = 64,
    channel_batch: int = 4096,
) -> np.ndarray:
    """Encode (N, T, D) data to (N, embed_dim) without building a graph.

    Batches over samples and chunks the flattened channel dimension so
    peak memory stays bounded even for very wide inputs.
    """
    x = np.asarray(x)
    if x.ndim != 3:
        raise ValueError(f"expected (N, T, D) input, got shape {x.shape}")
    was_training = model.training
    model.eval()
    outputs = []
    with nn.no_grad():
        for start in range(0, len(x), batch_size):
            chunk = x[start : start + batch_size]
            outputs.append(model.encode(chunk, channel_batch=channel_batch).data)
    if was_training:
        model.train()
    return np.concatenate(outputs, axis=0)


class EmbeddingCache:
    """Cache of frozen-encoder embeddings keyed by array identity.

    A tiny utility for sweeps that revisit the same split with several
    heads (e.g. multi-seed head training): embeddings are computed on
    first request and reused afterwards.
    """

    def __init__(self, model: FoundationModel, batch_size: int = 64) -> None:
        self.model = model
        self.batch_size = batch_size
        self._store: dict[int, np.ndarray] = {}

    def get(self, x: np.ndarray) -> np.ndarray:
        """Return (computing once) the embeddings of this exact array."""
        key = id(x)
        if key not in self._store:
            self._store[key] = compute_embeddings(self.model, x, batch_size=self.batch_size)
        return self._store[key]

    def clear(self) -> None:
        """Drop every cached embedding matrix."""
        self._store.clear()

    def __len__(self) -> int:
        return len(self._store)
