"""Frozen-encoder embedding cache (content-addressed).

When the adapter is fit-once and the encoder is frozen, the encoder's
pooled embeddings are a pure function of the input — so they can be
computed in a single inference pass and reused for every head-training
epoch.  This is where the paper's ~10x fine-tuning speedup comes from:
the expensive foundation model runs once instead of epochs x steps
times.

Since the ``repro.runtime`` refactor the cache is a thin facade over
:class:`repro.runtime.ArtifactStore`, keyed by **content**
(model-weight fingerprint, adapter fingerprint, data fingerprint,
batch geometry) rather than ``id(array)``.  That fixes two latent
bugs of the identity-keyed version: a garbage-collected array's ``id``
could be recycled by a brand-new array (silently returning stale
embeddings), and in-place mutation of a cached array was invisible.
With content keys both cases simply produce a different key.  Sharing
a disk-backed store makes the reuse survive process restarts.
"""

from __future__ import annotations

import contextlib

import numpy as np

from .. import nn
from ..models.base import FoundationModel
from ..runtime import ArtifactStore, embedding_key, fingerprint_array, fingerprint_model

__all__ = ["compute_embeddings", "EmbeddingCache"]


def compute_embeddings(
    model: FoundationModel,
    x: np.ndarray,
    batch_size: int = 64,
    channel_batch: int = 4096,
    compiled: bool = True,
) -> np.ndarray:
    """Encode (N, T, D) data to (N, embed_dim) without building a graph.

    Batches over samples and chunks the flattened channel dimension so
    peak memory stays bounded even for very wide inputs.  An empty
    batch (N == 0) returns a well-shaped ``(0, embed_dim)`` array.

    Since every batch repeats the same (shape, dtype) encoder pass,
    this is the prime consumer of :mod:`repro.nn.graph`: the first
    batch of each shape bucket captures and compiles the frozen
    encoder, every later batch replays it with arena-allocated
    intermediates.  ``compiled=False`` forces the eager tensor path
    (benchmark baselines, parity checks); results are bit-identical
    either way.
    """
    x = np.asarray(x)
    if x.ndim != 3:
        raise ValueError(f"expected (N, T, D) input, got shape {x.shape}")
    if len(x) == 0:
        return np.zeros((0, model.embed_dim), dtype=model.dtype)
    was_training = model.training
    model.eval()
    outputs = []
    with contextlib.ExitStack() as stack:
        stack.enter_context(nn.no_grad())
        if not compiled:
            stack.enter_context(nn.graph.compile_disabled())
        for start in range(0, len(x), batch_size):
            chunk = x[start : start + batch_size]
            outputs.append(model.encode(chunk, channel_batch=channel_batch).data)
    if was_training:
        model.train()
    return np.concatenate(outputs, axis=0)


class EmbeddingCache:
    """Content-addressed cache of frozen-encoder embeddings.

    Parameters
    ----------
    model:
        The (frozen) encoder.  Its weight fingerprint is part of every
        key, so a model pretrained differently — or mutated between
        ``get`` calls — never serves another model's embeddings.
    batch_size:
        Inference batch size; part of the key (batch geometry).
    store:
        Optional shared :class:`ArtifactStore`; a private memory-only
        store is created when omitted.  Pass a disk-backed store to
        reuse embeddings across processes.
    adapter_fingerprint:
        Fingerprint of the fitted adapter whose output is being
        encoded ("" when the cache sits after no adapter); keeps two
        adapters fitted on the same data from colliding.
    """

    def __init__(
        self,
        model: FoundationModel,
        batch_size: int = 64,
        store: ArtifactStore | None = None,
        adapter_fingerprint: str = "",
    ) -> None:
        self.model = model
        self.batch_size = batch_size
        self.store = store if store is not None else ArtifactStore()
        self.adapter_fingerprint = adapter_fingerprint

    def key_for(self, x: np.ndarray) -> str:
        """The store key this array's embeddings live under."""
        return embedding_key(
            fingerprint_model(self.model),
            self.adapter_fingerprint,
            fingerprint_array(x),
            self.batch_size,
        )

    def get(self, x: np.ndarray, compiled: bool = True) -> np.ndarray:
        """Return (computing once) the embeddings of this array content.

        A store miss runs :func:`compute_embeddings`, which replays the
        compiled frozen-encoder graph per shape bucket — so even the
        first fit on a dataset pays eager capture cost once per bucket,
        not once per batch.  ``compiled`` is not part of the key: the
        compiled and eager paths produce bit-identical embeddings.
        """
        key = self.key_for(x)
        artifact = self.store.get(key)
        if artifact is not None:
            return artifact.arrays["embeddings"]
        embeddings = compute_embeddings(
            self.model, x, batch_size=self.batch_size, compiled=compiled
        )
        self.store.put(key, arrays={"embeddings": embeddings})
        return embeddings

    def clear(self) -> None:
        """Drop every cached embedding matrix in the backing store."""
        self.store.clear(namespace="embedding")

    def __len__(self) -> int:
        return len(self.store)
