"""Serialise / reconstruct fine-tuned pipelines.

A fitted :class:`AdapterPipeline` has three stateful pieces: the
(possibly fine-tuned) foundation model, the classification head, and
the adapter (a fitted projection matrix, or lcomb's trainable module).
This module flattens all three into one ``(arrays, manifest)`` pair —
deliberately pickle-free (numpy arrays + a JSON-able manifest), so
snapshots are portable and auditable.

Two consumers share the flattened form:

* :meth:`AdapterPipeline.save` / :class:`repro.serve.PipelineRegistry`
  publish it as a named, versioned artifact in the content-addressed
  :class:`repro.runtime.ArtifactStore` — the blessed deployment path;
* the legacy directory format (``save_pipeline`` / ``load_pipeline``,
  one ``model.npz`` + ``head.npz`` + ``adapter.npz`` + JSON manifest
  per directory) remains as a :class:`DeprecationWarning` shim.
"""

from __future__ import annotations

import json
import warnings
from pathlib import Path

import numpy as np

from .. import nn
from ..adapters import make_adapter
from ..adapters.base import Adapter, FittedAdapter
from ..adapters.linear_combiner import LinearCombinerAdapter
from ..adapters.pca import PatchPCAAdapter
from ..models import build_model
from .pipeline import AdapterPipeline

__all__ = [
    "pipeline_state",
    "pipeline_from_state",
    "save_pipeline",
    "load_pipeline",
]

_MANIFEST = "pipeline.json"

#: Adapter classes -> registry names (inverse of make_adapter).
_ADAPTER_REGISTRY_NAMES = {
    "IdentityAdapter": "none",
    "PCAAdapter": "pca",
    "ScaledPCAAdapter": "scaled_pca",
    "PatchPCAAdapter": "patch_pca",
    "TruncatedSVDAdapter": "svd",
    "RandomProjectionAdapter": "rand_proj",
    "VarianceSelectorAdapter": "var",
    "LDAAdapter": "lda",
    "ClusterAverageAdapter": "cluster_avg",
    "LinearCombinerAdapter": "lcomb",
}


def _adapter_state(adapter: Adapter) -> dict[str, np.ndarray]:
    """Collect the numpy arrays an adapter needs to be reconstructed."""
    state: dict[str, np.ndarray] = {}
    if isinstance(adapter, LinearCombinerAdapter):
        if adapter.module is None:
            raise ValueError("cannot save an unfitted lcomb adapter")
        state["lcomb_weight"] = adapter.module.weight.data.copy()
        return state
    if isinstance(adapter, FittedAdapter):
        if adapter.projection_ is None:
            raise ValueError(f"cannot save unfitted adapter {adapter.name}")
        state["projection"] = adapter.projection_.copy()
        for attr in ("mean_", "scale_", "selected_channels_", "channel_variances_"):
            value = getattr(adapter, attr, None)
            if value is not None:
                state[attr] = np.asarray(value)
    return state


def _restore_adapter_state(adapter: Adapter, state: dict[str, np.ndarray]) -> None:
    if isinstance(adapter, LinearCombinerAdapter):
        adapter.module.weight.data = state["lcomb_weight"].copy()
        return
    if isinstance(adapter, FittedAdapter):
        adapter.projection_ = state["projection"].copy()
        for attr in ("mean_", "scale_", "selected_channels_", "channel_variances_"):
            if attr in state:
                setattr(adapter, attr, state[attr].copy())


def _adapter_kwargs(adapter: Adapter) -> dict:
    if isinstance(adapter, PatchPCAAdapter):
        return {"patch_window_size": adapter.patch_window_size}
    if isinstance(adapter, LinearCombinerAdapter) and adapter.top_k is not None:
        return {"top_k": adapter.top_k}
    return {}


def _manifest_for(pipeline: AdapterPipeline) -> dict:
    """The JSON-able reconstruction recipe of a fitted pipeline."""
    adapter = pipeline.adapter
    type_name = type(adapter).__name__
    if type_name not in _ADAPTER_REGISTRY_NAMES:
        raise ValueError(
            f"adapter type {type_name} is not registered for persistence"
        )
    registry_name = _ADAPTER_REGISTRY_NAMES[type_name]
    if isinstance(adapter, LinearCombinerAdapter) and adapter.top_k is not None:
        registry_name = "lcomb_top_k"
    return {
        "model_config": pipeline.model.config.name,
        "num_classes": pipeline.num_classes,
        "seed": pipeline.seed,
        "normalize_reduced": pipeline.normalize_reduced,
        "adapter": {
            "registry_name": registry_name,
            "output_channels": adapter.output_channels,
            "input_channels": adapter.input_channels,
            "kwargs": _adapter_kwargs(adapter),
        },
    }


def _build_adapter(spec: dict, seed: int) -> Adapter:
    """Re-instantiate an adapter from its manifest spec (unfitted)."""
    adapter = make_adapter(
        spec["registry_name"],
        spec["output_channels"] if spec["registry_name"] != "none" else 1,
        seed=seed,
        **spec["kwargs"],
    )
    adapter.input_channels = spec["input_channels"]
    adapter.output_channels = spec["output_channels"]
    if isinstance(adapter, LinearCombinerAdapter):
        # Instantiate the module with the recorded geometry before
        # loading its trained weight.
        from ..adapters.linear_combiner import LinearCombinerModule

        adapter.module = LinearCombinerModule(
            in_channels=spec["input_channels"],
            out_channels=spec["output_channels"],
            top_k=spec["kwargs"].get("top_k"),
            rng=np.random.default_rng(seed),
        )
    return adapter


# ----------------------------------------------------------------------
# Flattened (arrays, manifest) form — the registry payload
# ----------------------------------------------------------------------
def pipeline_state(pipeline: AdapterPipeline) -> tuple[dict[str, np.ndarray], dict]:
    """Flatten a fitted pipeline to ``(arrays, manifest)``.

    Array names are prefixed by component (``model/``, ``head/``,
    ``adapter/``) so one flat dict can ride in a single store
    artifact.  The manifest carries everything needed to rebuild the
    object graph before the arrays are loaded into it.
    """
    if not pipeline.fitted_:
        raise ValueError("pipeline must be fitted before saving")
    manifest = _manifest_for(pipeline)
    arrays: dict[str, np.ndarray] = {}
    for name, value in pipeline.model.state_dict().items():
        arrays[f"model/{name}"] = value
    for name, value in pipeline.head.state_dict().items():
        arrays[f"head/{name}"] = value
    for name, value in _adapter_state(pipeline.adapter).items():
        arrays[f"adapter/{name}"] = value
    return arrays, manifest


def pipeline_from_state(
    arrays: dict[str, np.ndarray], manifest: dict
) -> AdapterPipeline:
    """Reconstruct a fitted pipeline from :func:`pipeline_state` output."""
    seed = manifest["seed"]
    model = build_model(manifest["model_config"], seed=seed)
    model_state = {
        name.split("/", 1)[1]: value
        for name, value in arrays.items()
        if name.startswith("model/")
    }
    model.load_state_dict(model_state, preserve_dtype=True)
    model.eval()

    adapter = _build_adapter(manifest["adapter"], seed)
    adapter_state = {
        name.split("/", 1)[1]: value
        for name, value in arrays.items()
        if name.startswith("adapter/")
    }
    _restore_adapter_state(adapter, adapter_state)

    pipeline = AdapterPipeline(
        model,
        adapter,
        manifest["num_classes"],
        seed=seed,
        normalize_reduced=manifest.get("normalize_reduced", True),
    )
    head_state = {
        name.split("/", 1)[1]: value
        for name, value in arrays.items()
        if name.startswith("head/")
    }
    pipeline.head.load_state_dict(head_state, preserve_dtype=True)
    pipeline.head.eval()
    pipeline.fitted_ = True
    return pipeline


# ----------------------------------------------------------------------
# Legacy directory format (DeprecationWarning shims)
# ----------------------------------------------------------------------
def _save_pipeline_dir(pipeline: AdapterPipeline, directory: str | Path) -> Path:
    if not pipeline.fitted_:
        raise ValueError("pipeline must be fitted before saving")
    manifest = _manifest_for(pipeline)
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    nn.save_checkpoint(pipeline.model, directory / "model.npz")
    nn.save_checkpoint(pipeline.head, directory / "head.npz")
    np.savez(directory / "adapter.npz", **_adapter_state(pipeline.adapter))
    (directory / _MANIFEST).write_text(json.dumps(manifest, indent=2))
    return directory


def _load_pipeline_dir(directory: str | Path) -> AdapterPipeline:
    directory = Path(directory)
    manifest = json.loads((directory / _MANIFEST).read_text())

    model = build_model(manifest["model_config"], seed=manifest["seed"])
    nn.load_checkpoint(model, directory / "model.npz")
    model.eval()

    adapter = _build_adapter(manifest["adapter"], manifest["seed"])
    with np.load(directory / "adapter.npz") as archive:
        state = {key: archive[key] for key in archive.files}
    _restore_adapter_state(adapter, state)

    pipeline = AdapterPipeline(
        model,
        adapter,
        manifest["num_classes"],
        seed=manifest["seed"],
        normalize_reduced=manifest.get("normalize_reduced", True),
    )
    nn.load_checkpoint(pipeline.head, directory / "head.npz")
    pipeline.head.eval()
    pipeline.fitted_ = True
    return pipeline


def save_pipeline(pipeline: AdapterPipeline, directory: str | Path) -> Path:
    """Deprecated: persist a fitted pipeline to a directory.

    Use ``pipeline.save(store, name)`` (backed by
    :class:`repro.serve.PipelineRegistry`) for the versioned,
    integrity-checked deployment path.
    """
    warnings.warn(
        "save_pipeline(pipeline, directory) is deprecated; use "
        "pipeline.save(store, name) to publish into a pipeline registry",
        DeprecationWarning,
        stacklevel=2,
    )
    return _save_pipeline_dir(pipeline, directory)


def load_pipeline(directory: str | Path) -> AdapterPipeline:
    """Deprecated: reconstruct a pipeline saved by :func:`save_pipeline`.

    Use ``AdapterPipeline.load(store, name)`` for registry entries.
    """
    warnings.warn(
        "load_pipeline(directory) is deprecated; use "
        "AdapterPipeline.load(store, name) to load from a pipeline registry",
        DeprecationWarning,
        stacklevel=2,
    )
    return _load_pipeline_dir(directory)
