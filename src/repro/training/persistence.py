"""Save / load fine-tuned pipelines.

A fitted :class:`AdapterPipeline` has three stateful pieces: the
(possibly fine-tuned) foundation model, the classification head, and
the adapter (a fitted projection matrix, or lcomb's trainable module).
This module persists all three to one directory so a fine-tuned
classifier can be shipped and reloaded without retraining —
deliberately pickle-free (numpy archives + a JSON manifest), so
checkpoints are portable and auditable.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from .. import nn
from ..adapters import make_adapter
from ..adapters.base import Adapter, FittedAdapter, IdentityAdapter
from ..adapters.linear_combiner import LinearCombinerAdapter
from ..adapters.pca import PatchPCAAdapter, PCAAdapter, ScaledPCAAdapter
from ..adapters.variance import VarianceSelectorAdapter
from ..models import build_model
from .pipeline import AdapterPipeline

__all__ = ["save_pipeline", "load_pipeline"]

_MANIFEST = "pipeline.json"

#: Adapter classes -> registry names (inverse of make_adapter).
_ADAPTER_REGISTRY_NAMES = {
    "IdentityAdapter": "none",
    "PCAAdapter": "pca",
    "ScaledPCAAdapter": "scaled_pca",
    "PatchPCAAdapter": "patch_pca",
    "TruncatedSVDAdapter": "svd",
    "RandomProjectionAdapter": "rand_proj",
    "VarianceSelectorAdapter": "var",
    "LDAAdapter": "lda",
    "ClusterAverageAdapter": "cluster_avg",
    "LinearCombinerAdapter": "lcomb",
}


def _adapter_state(adapter: Adapter) -> dict[str, np.ndarray]:
    """Collect the numpy arrays an adapter needs to be reconstructed."""
    state: dict[str, np.ndarray] = {}
    if isinstance(adapter, LinearCombinerAdapter):
        if adapter.module is None:
            raise ValueError("cannot save an unfitted lcomb adapter")
        state["lcomb_weight"] = adapter.module.weight.data.copy()
        return state
    if isinstance(adapter, FittedAdapter):
        if adapter.projection_ is None:
            raise ValueError(f"cannot save unfitted adapter {adapter.name}")
        state["projection"] = adapter.projection_.copy()
        for attr in ("mean_", "scale_", "selected_channels_", "channel_variances_"):
            value = getattr(adapter, attr, None)
            if value is not None:
                state[attr] = np.asarray(value)
    return state


def _restore_adapter_state(adapter: Adapter, state: dict[str, np.ndarray]) -> None:
    if isinstance(adapter, LinearCombinerAdapter):
        adapter.module.weight.data = state["lcomb_weight"].copy()
        return
    if isinstance(adapter, FittedAdapter):
        adapter.projection_ = state["projection"].copy()
        for attr in ("mean_", "scale_", "selected_channels_", "channel_variances_"):
            if attr in state:
                setattr(adapter, attr, state[attr].copy())


def save_pipeline(pipeline: AdapterPipeline, directory: str | Path) -> Path:
    """Persist a fitted pipeline to ``directory``; returns the path."""
    if not pipeline.fitted_:
        raise ValueError("pipeline must be fitted before saving")
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)

    nn.save_checkpoint(pipeline.model, directory / "model.npz")
    nn.save_checkpoint(pipeline.head, directory / "head.npz")

    adapter = pipeline.adapter
    type_name = type(adapter).__name__
    if type_name not in _ADAPTER_REGISTRY_NAMES:
        raise ValueError(
            f"adapter type {type_name} is not registered for persistence"
        )
    adapter_state = _adapter_state(adapter)
    np.savez(directory / "adapter.npz", **adapter_state)

    registry_name = _ADAPTER_REGISTRY_NAMES[type_name]
    if isinstance(adapter, LinearCombinerAdapter) and adapter.top_k is not None:
        registry_name = "lcomb_top_k"
    manifest = {
        "model_config": pipeline.model.config.name,
        "num_classes": pipeline.num_classes,
        "seed": pipeline.seed,
        "normalize_reduced": pipeline.normalize_reduced,
        "adapter": {
            "registry_name": registry_name,
            "output_channels": adapter.output_channels,
            "input_channels": adapter.input_channels,
            "kwargs": _adapter_kwargs(adapter),
        },
    }
    (directory / _MANIFEST).write_text(json.dumps(manifest, indent=2))
    return directory


def _adapter_kwargs(adapter: Adapter) -> dict:
    if isinstance(adapter, PatchPCAAdapter):
        return {"patch_window_size": adapter.patch_window_size}
    if isinstance(adapter, LinearCombinerAdapter) and adapter.top_k is not None:
        return {"top_k": adapter.top_k}
    return {}


def load_pipeline(directory: str | Path) -> AdapterPipeline:
    """Reconstruct a pipeline saved by :func:`save_pipeline`."""
    directory = Path(directory)
    manifest = json.loads((directory / _MANIFEST).read_text())

    model = build_model(manifest["model_config"], seed=manifest["seed"])
    nn.load_checkpoint(model, directory / "model.npz")
    model.eval()

    spec = manifest["adapter"]
    adapter = make_adapter(
        spec["registry_name"],
        spec["output_channels"] if spec["registry_name"] != "none" else 1,
        seed=manifest["seed"],
        **spec["kwargs"],
    )
    adapter.input_channels = spec["input_channels"]
    adapter.output_channels = spec["output_channels"]
    if isinstance(adapter, LinearCombinerAdapter):
        # Instantiate the module with the recorded geometry before
        # loading its trained weight.
        from ..adapters.linear_combiner import LinearCombinerModule

        adapter.module = LinearCombinerModule(
            in_channels=spec["input_channels"],
            out_channels=spec["output_channels"],
            top_k=spec["kwargs"].get("top_k"),
            rng=np.random.default_rng(manifest["seed"]),
        )
    with np.load(directory / "adapter.npz") as archive:
        state = {key: archive[key] for key in archive.files}
    _restore_adapter_state(adapter, state)

    pipeline = AdapterPipeline(
        model,
        adapter,
        manifest["num_classes"],
        seed=manifest["seed"],
        normalize_reduced=manifest.get("normalize_reduced", True),
    )
    nn.load_checkpoint(pipeline.head, directory / "head.npz")
    pipeline.head.eval()
    pipeline.fitted_ = True
    return pipeline
