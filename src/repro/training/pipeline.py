"""The adapter -> foundation model -> head fine-tuning pipeline.

This is the library's central object: it wires an
:class:`repro.adapters.Adapter` in front of a frozen or trainable
:class:`repro.models.FoundationModel` and a linear classification
head, and implements the paper's three fine-tuning regimes with the
correct fast paths (embedding caching for fit-once adapters).

When constructed with a shared :class:`repro.runtime.ArtifactStore`,
the frozen-encoder fast path becomes content-addressed: embeddings
computed for one fit are reused by any later fit or prediction with
the same (model weights, fitted adapter, data) — in this process or,
with a disk-backed store, in a fresh one.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass

import numpy as np

from .. import nn
from ..nn import profiler as nn_profiler
from ..adapters.base import Adapter
from ..models.base import FoundationModel
from ..models.heads import ClassificationHead
from ..runtime import ArtifactStore, Instrumentation, RunSummary, fingerprint_adapter
from .embedding_cache import EmbeddingCache, compute_embeddings
from .strategies import FineTuneStrategy
from .trainer import TrainConfig, TrainResult, train_classifier_on_arrays

__all__ = ["AdapterPipeline", "FitReport"]


@dataclass
class FitReport:
    """Timing breakdown and training history of one pipeline fit.

    The phase timings mirror the quantities the paper's Figure 1
    compares: fit-once adapters pay ``adapter_fit_s`` + one
    ``embedding_s`` pass and then train only the head, while trainable
    adapters pay the joint ``train_s`` with the encoder in the loop.
    ``summary`` is the structured runtime view of the same fit: phase
    seconds plus cache hit/miss counters from the artifact store.
    """

    strategy: FineTuneStrategy
    adapter_name: str
    adapter_fit_s: float = 0.0
    embedding_s: float = 0.0
    train_s: float = 0.0
    total_s: float = 0.0
    used_embedding_cache: bool = False
    train_result: TrainResult | None = None
    summary: RunSummary | None = None


class AdapterPipeline:
    """adapter + foundation model + classification head.

    Parameters
    ----------
    model:
        A (typically pretrained) foundation model.  The pipeline
        manages its frozen/trainable state according to the strategy.
    adapter:
        Any adapter from :mod:`repro.adapters` (or ``IdentityAdapter``
        for the no-adapter regimes).
    num_classes:
        Output classes of the head.
    seed:
        Seed for head initialisation and training shuffles.
    normalize_reduced:
        Apply per-instance channel z-normalisation to the adapter
        output before encoding (default True; the TSFM input
        convention).
    store:
        Optional shared artifact store for frozen-encoder embeddings.
        ``None`` (default) computes embeddings per call, exactly the
        pre-runtime behaviour.
    """

    def __init__(
        self,
        model: FoundationModel,
        adapter: Adapter,
        num_classes: int,
        seed: int = 0,
        normalize_reduced: bool = True,
        store: ArtifactStore | None = None,
    ) -> None:
        self.model = model
        self.adapter = adapter
        self.num_classes = num_classes
        self.seed = seed
        #: RevIN-style instance normalisation of the adapter output
        #: before the encoder.  Adapters change the scale of every
        #: virtual channel (PCA components carry sqrt(eigenvalue)
        #: amplitudes), so the encoder input is re-normalised per
        #: (sample, channel) — exactly what TSFM pipelines do to their
        #: raw inputs.
        self.normalize_reduced = normalize_reduced
        self.store = store
        self.head = ClassificationHead(
            model.embed_dim, num_classes, rng=np.random.default_rng(seed)
        )
        self.fitted_ = False
        #: Set by ``fit``; when False (the A2 cache ablation) every
        #: path — including prediction — bypasses the store entirely.
        self.use_embedding_cache_ = True

    # ------------------------------------------------------------------
    def _normalize_array(self, reduced: np.ndarray) -> np.ndarray:
        if not self.normalize_reduced:
            return reduced
        mean = reduced.mean(axis=1, keepdims=True)
        std = reduced.std(axis=1, keepdims=True)
        return (reduced - mean) / (std + 1e-8)

    def _normalize_tensor(self, reduced: nn.Tensor) -> nn.Tensor:
        if not self.normalize_reduced:
            return reduced
        mean = reduced.mean(axis=1, keepdims=True)
        centered = reduced - mean
        std = ((centered * centered).mean(axis=1, keepdims=True) + 1e-8).sqrt()
        return centered / std

    def _encode_reduced(self, reduced: np.ndarray, batch_size: int) -> np.ndarray:
        """Frozen-encoder embeddings of reduced input, via the store.

        Falls back to a direct inference pass when no store is wired
        or the last fit disabled caching (the A2 ablation).
        """
        if self.store is None or not self.use_embedding_cache_:
            return compute_embeddings(self.model, reduced, batch_size=batch_size)
        cache = EmbeddingCache(
            self.model,
            batch_size=batch_size,
            store=self.store,
            adapter_fingerprint=fingerprint_adapter(self.adapter),
        )
        return cache.get(reduced)

    # ------------------------------------------------------------------
    def fit(
        self,
        x_train: np.ndarray,
        y_train: np.ndarray,
        strategy: FineTuneStrategy = FineTuneStrategy.ADAPTER_HEAD,
        config: TrainConfig | None = None,
        use_embedding_cache: bool = True,
    ) -> FitReport:
        """Fine-tune according to ``strategy``; returns a timing report.

        ``use_embedding_cache=False`` forces the encoder into the
        training loop even when the adapter is fit-once and the encoder
        frozen — an ablation switch that quantifies how much of the
        paper's speedup comes from caching (all of it) rather than from
        the channel reduction alone.  It also bypasses the artifact
        store entirely, so the ablation measures true uncached cost.
        """
        config = config if config is not None else TrainConfig(seed=self.seed)
        report = FitReport(strategy=strategy, adapter_name=self.adapter.name)
        self.use_embedding_cache_ = use_embedding_cache
        inst = Instrumentation()
        stats_before = self.store.stats.snapshot() if self.store is not None else None

        with inst.span("total"):
            with inst.span("adapter_fit"):
                self.adapter.fit(x_train, y_train)

            # The encoder must run every step only if something upstream
            # of it changes during training: a trainable adapter that the
            # strategy actually trains, or the encoder itself (FULL).  A
            # frozen lcomb under HEAD is as cacheable as PCA.
            adapter_updates = self.adapter.trainable and strategy.adapter_trainable
            encoder_in_loop = (
                adapter_updates
                or strategy is FineTuneStrategy.FULL
                or not use_embedding_cache
            )
            if strategy.encoder_trainable:
                self.model.unfreeze()
            else:
                self.model.freeze()

            # When profiling, open the profiler here (the trainer's own
            # profile() nests and reuses it) so the frozen-encoder
            # embedding phase — including compiled-graph replays — is
            # part of the recorded op profile, not just the train loop.
            with contextlib.ExitStack() as profile_scope:
                if config.profile:
                    profile_scope.enter_context(nn_profiler.profile())
                if encoder_in_loop:
                    with inst.span("train"):
                        report.train_result = self._fit_joint(x_train, y_train, strategy, config)
                else:
                    report.used_embedding_cache = True
                    reduced = self._normalize_array(self.adapter.transform(x_train))
                    with inst.span("embedding"):
                        embeddings = self._encode_reduced(reduced, config.batch_size)
                    with inst.span("train"):
                        report.train_result = self._fit_head(embeddings, y_train, config)

        if stats_before is not None:
            after = self.store.stats.snapshot()
            inst.count("cache_hits", after["hits"] - stats_before["hits"])
            inst.count("cache_misses", after["misses"] - stats_before["misses"])
        if report.train_result is not None and report.train_result.op_profile:
            inst.attach_ops(report.train_result.op_profile)
        report.summary = inst.summary()
        report.adapter_fit_s = inst.seconds("adapter_fit")
        report.embedding_s = inst.seconds("embedding")
        report.train_s = inst.seconds("train")
        report.total_s = inst.seconds("total")
        self.fitted_ = True
        return report

    def _fit_head(
        self, embeddings: np.ndarray, y: np.ndarray, config: TrainConfig
    ) -> TrainResult:
        """Head-only training on cached embeddings (the fast path)."""

        def forward(batch: np.ndarray) -> nn.Tensor:
            return self.head(nn.Tensor(batch))

        self.head.train()
        result = train_classifier_on_arrays(
            forward, self.head.trainable_parameters(), embeddings, y, config
        )
        self.head.eval()
        return result

    def _fit_joint(
        self,
        x: np.ndarray,
        y: np.ndarray,
        strategy: FineTuneStrategy,
        config: TrainConfig,
    ) -> TrainResult:
        """Encoder-in-the-loop training (trainable adapter and/or FULL)."""
        parameters = list(self.head.trainable_parameters())
        adapter_module = getattr(self.adapter, "module", None)
        if self.adapter.trainable and strategy.adapter_trainable:
            if adapter_module is None:
                raise RuntimeError(
                    f"trainable adapter {self.adapter.name} has no module after fit()"
                )
            parameters += adapter_module.trainable_parameters()
        if strategy.encoder_trainable:
            parameters += self.model.trainable_parameters()

        def forward(batch: np.ndarray) -> nn.Tensor:
            tensor = nn.Tensor(batch)
            if self.adapter.trainable:
                reduced = self._normalize_tensor(self.adapter.transform_tensor(tensor))
            else:
                reduced = nn.Tensor(self._normalize_array(self.adapter.transform(batch)))
            embeddings = self.model.encode(reduced)
            return self.head(embeddings)

        self.head.train()
        self.model.train()
        result = train_classifier_on_arrays(forward, parameters, x, y, config)
        self.head.eval()
        self.model.eval()
        return result

    # ------------------------------------------------------------------
    def predict_logits(self, x: np.ndarray, batch_size: int = 64) -> np.ndarray:
        """Class logits for (N, T, D) inputs (inference mode)."""
        if not self.fitted_:
            raise RuntimeError("pipeline used before fit()")
        reduced = self._normalize_array(self.adapter.transform(np.asarray(x)))
        embeddings = self._encode_reduced(reduced, batch_size)
        with nn.no_grad():
            return self.head(nn.Tensor(embeddings)).data

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Predicted class labels."""
        return self.predict_logits(x).argmax(axis=1)

    def score(self, x: np.ndarray, y: np.ndarray) -> float:
        """Classification accuracy on ``(x, y)``."""
        y = np.asarray(y)
        return float((self.predict(x) == y).mean())
