"""The adapter -> foundation model -> head fine-tuning pipeline.

This is the library's central object: it wires an
:class:`repro.adapters.Adapter` in front of a frozen or trainable
:class:`repro.models.FoundationModel` and a linear classification
head, and implements the paper's three fine-tuning regimes with the
correct fast paths (embedding caching for fit-once adapters).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from .. import nn
from ..adapters.base import Adapter
from ..models.base import FoundationModel
from ..models.heads import ClassificationHead
from .embedding_cache import compute_embeddings
from .strategies import FineTuneStrategy
from .trainer import TrainConfig, TrainResult, train_classifier_on_arrays

__all__ = ["AdapterPipeline", "FitReport"]


@dataclass
class FitReport:
    """Timing breakdown and training history of one pipeline fit.

    The phase timings mirror the quantities the paper's Figure 1
    compares: fit-once adapters pay ``adapter_fit_s`` + one
    ``embedding_s`` pass and then train only the head, while trainable
    adapters pay ``joint_train_s`` with the encoder in the loop.
    """

    strategy: FineTuneStrategy
    adapter_name: str
    adapter_fit_s: float = 0.0
    embedding_s: float = 0.0
    train_s: float = 0.0
    total_s: float = 0.0
    used_embedding_cache: bool = False
    train_result: TrainResult | None = None


class AdapterPipeline:
    """adapter + foundation model + classification head.

    Parameters
    ----------
    model:
        A (typically pretrained) foundation model.  The pipeline
        manages its frozen/trainable state according to the strategy.
    adapter:
        Any adapter from :mod:`repro.adapters` (or ``IdentityAdapter``
        for the no-adapter regimes).
    num_classes:
        Output classes of the head.
    seed:
        Seed for head initialisation and training shuffles.
    normalize_reduced:
        Apply per-instance channel z-normalisation to the adapter
        output before encoding (default True; the TSFM input
        convention).
    """

    def __init__(
        self,
        model: FoundationModel,
        adapter: Adapter,
        num_classes: int,
        seed: int = 0,
        normalize_reduced: bool = True,
    ) -> None:
        self.model = model
        self.adapter = adapter
        self.num_classes = num_classes
        self.seed = seed
        #: RevIN-style instance normalisation of the adapter output
        #: before the encoder.  Adapters change the scale of every
        #: virtual channel (PCA components carry sqrt(eigenvalue)
        #: amplitudes), so the encoder input is re-normalised per
        #: (sample, channel) — exactly what TSFM pipelines do to their
        #: raw inputs.
        self.normalize_reduced = normalize_reduced
        self.head = ClassificationHead(
            model.embed_dim, num_classes, rng=np.random.default_rng(seed)
        )
        self.fitted_ = False

    # ------------------------------------------------------------------
    def _normalize_array(self, reduced: np.ndarray) -> np.ndarray:
        if not self.normalize_reduced:
            return reduced
        mean = reduced.mean(axis=1, keepdims=True)
        std = reduced.std(axis=1, keepdims=True)
        return (reduced - mean) / (std + 1e-8)

    def _normalize_tensor(self, reduced: nn.Tensor) -> nn.Tensor:
        if not self.normalize_reduced:
            return reduced
        mean = reduced.mean(axis=1, keepdims=True)
        centered = reduced - mean
        std = ((centered * centered).mean(axis=1, keepdims=True) + 1e-8).sqrt()
        return centered / std

    # ------------------------------------------------------------------
    def fit(
        self,
        x_train: np.ndarray,
        y_train: np.ndarray,
        strategy: FineTuneStrategy = FineTuneStrategy.ADAPTER_HEAD,
        config: TrainConfig | None = None,
        use_embedding_cache: bool = True,
    ) -> FitReport:
        """Fine-tune according to ``strategy``; returns a timing report.

        ``use_embedding_cache=False`` forces the encoder into the
        training loop even when the adapter is fit-once and the encoder
        frozen — an ablation switch that quantifies how much of the
        paper's speedup comes from caching (all of it) rather than from
        the channel reduction alone.
        """
        config = config if config is not None else TrainConfig(seed=self.seed)
        report = FitReport(strategy=strategy, adapter_name=self.adapter.name)
        total_start = time.perf_counter()

        fit_start = time.perf_counter()
        self.adapter.fit(x_train, y_train)
        report.adapter_fit_s = time.perf_counter() - fit_start

        # The encoder must run every step only if something upstream of
        # it changes during training: a trainable adapter that the
        # strategy actually trains, or the encoder itself (FULL).  A
        # frozen lcomb under HEAD is as cacheable as PCA.
        adapter_updates = self.adapter.trainable and strategy.adapter_trainable
        encoder_in_loop = (
            adapter_updates
            or strategy is FineTuneStrategy.FULL
            or not use_embedding_cache
        )
        if strategy.encoder_trainable:
            self.model.unfreeze()
        else:
            self.model.freeze()

        if encoder_in_loop:
            report.train_result = self._fit_joint(x_train, y_train, strategy, config)
            report.train_s = report.train_result.seconds
        else:
            report.used_embedding_cache = True
            reduced = self._normalize_array(self.adapter.transform(x_train))
            embed_start = time.perf_counter()
            embeddings = compute_embeddings(self.model, reduced, batch_size=config.batch_size)
            report.embedding_s = time.perf_counter() - embed_start
            report.train_result = self._fit_head(embeddings, y_train, config)
            report.train_s = report.train_result.seconds

        report.total_s = time.perf_counter() - total_start
        self.fitted_ = True
        return report

    def _fit_head(
        self, embeddings: np.ndarray, y: np.ndarray, config: TrainConfig
    ) -> TrainResult:
        """Head-only training on cached embeddings (the fast path)."""

        def forward(batch: np.ndarray) -> nn.Tensor:
            return self.head(nn.Tensor(batch))

        self.head.train()
        result = train_classifier_on_arrays(
            forward, self.head.trainable_parameters(), embeddings, y, config
        )
        self.head.eval()
        return result

    def _fit_joint(
        self,
        x: np.ndarray,
        y: np.ndarray,
        strategy: FineTuneStrategy,
        config: TrainConfig,
    ) -> TrainResult:
        """Encoder-in-the-loop training (trainable adapter and/or FULL)."""
        parameters = list(self.head.trainable_parameters())
        adapter_module = getattr(self.adapter, "module", None)
        if self.adapter.trainable and strategy.adapter_trainable:
            if adapter_module is None:
                raise RuntimeError(
                    f"trainable adapter {self.adapter.name} has no module after fit()"
                )
            parameters += adapter_module.trainable_parameters()
        if strategy.encoder_trainable:
            parameters += self.model.trainable_parameters()

        def forward(batch: np.ndarray) -> nn.Tensor:
            tensor = nn.Tensor(batch)
            if self.adapter.trainable:
                reduced = self._normalize_tensor(self.adapter.transform_tensor(tensor))
            else:
                reduced = nn.Tensor(self._normalize_array(self.adapter.transform(batch)))
            embeddings = self.model.encode(reduced)
            return self.head(embeddings)

        self.head.train()
        self.model.train()
        result = train_classifier_on_arrays(forward, parameters, x, y, config)
        self.head.eval()
        self.model.eval()
        return result

    # ------------------------------------------------------------------
    def predict_logits(self, x: np.ndarray, batch_size: int = 64) -> np.ndarray:
        """Class logits for (N, T, D) inputs (inference mode)."""
        if not self.fitted_:
            raise RuntimeError("pipeline used before fit()")
        reduced = self._normalize_array(self.adapter.transform(np.asarray(x)))
        embeddings = compute_embeddings(self.model, reduced, batch_size=batch_size)
        with nn.no_grad():
            return self.head(nn.Tensor(embeddings)).data

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Predicted class labels."""
        return self.predict_logits(x).argmax(axis=1)

    def score(self, x: np.ndarray, y: np.ndarray) -> float:
        """Classification accuracy on ``(x, y)``."""
        y = np.asarray(y)
        return float((self.predict(x) == y).mean())
