"""The adapter -> foundation model -> head fine-tuning pipeline.

This is the library's central object: it wires an
:class:`repro.adapters.Adapter` in front of a frozen or trainable
:class:`repro.models.FoundationModel` and a linear classification
head, and implements the paper's three fine-tuning regimes with the
correct fast paths (embedding caching for fit-once adapters).

When constructed with a shared :class:`repro.runtime.ArtifactStore`,
the frozen-encoder fast path becomes content-addressed: embeddings
computed for one fit are reused by any later fit or prediction with
the same (model weights, fitted adapter, data) — in this process or,
with a disk-backed store, in a fresh one.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass

import numpy as np

from .. import nn
from ..nn import profiler as nn_profiler
from ..adapters.base import Adapter
from ..models.base import FoundationModel
from ..models.heads import ClassificationHead
from ..runtime import ArtifactStore, Instrumentation, RunSummary, fingerprint_adapter
from .embedding_cache import EmbeddingCache, compute_embeddings
from .strategies import FineTuneStrategy
from .trainer import TrainConfig, TrainResult, train_classifier_on_arrays

__all__ = ["AdapterPipeline", "FitReport"]


@dataclass
class FitReport:
    """Timing breakdown and training history of one pipeline fit.

    The phase timings mirror the quantities the paper's Figure 1
    compares: fit-once adapters pay ``adapter_fit_s`` + one
    ``embedding_s`` pass and then train only the head, while trainable
    adapters pay the joint ``train_s`` with the encoder in the loop.
    ``summary`` is the structured runtime view of the same fit: phase
    seconds plus cache hit/miss counters from the artifact store.
    """

    strategy: FineTuneStrategy
    adapter_name: str
    adapter_fit_s: float = 0.0
    embedding_s: float = 0.0
    train_s: float = 0.0
    total_s: float = 0.0
    used_embedding_cache: bool = False
    train_result: TrainResult | None = None
    summary: RunSummary | None = None


class AdapterPipeline:
    """adapter + foundation model + classification head.

    Parameters
    ----------
    model:
        A (typically pretrained) foundation model.  The pipeline
        manages its frozen/trainable state according to the strategy.
    adapter:
        Any adapter from :mod:`repro.adapters` (or ``IdentityAdapter``
        for the no-adapter regimes).
    num_classes:
        Output classes of the head.
    seed:
        Seed for head initialisation and training shuffles.
    normalize_reduced:
        Apply per-instance channel z-normalisation to the adapter
        output before encoding (default True; the TSFM input
        convention).
    store:
        Optional shared artifact store for frozen-encoder embeddings.
        ``None`` (default) computes embeddings per call, exactly the
        pre-runtime behaviour.
    """

    def __init__(
        self,
        model: FoundationModel,
        adapter: Adapter,
        num_classes: int,
        seed: int = 0,
        normalize_reduced: bool = True,
        store: ArtifactStore | None = None,
    ) -> None:
        self.model = model
        self.adapter = adapter
        self.num_classes = num_classes
        self.seed = seed
        #: RevIN-style instance normalisation of the adapter output
        #: before the encoder.  Adapters change the scale of every
        #: virtual channel (PCA components carry sqrt(eigenvalue)
        #: amplitudes), so the encoder input is re-normalised per
        #: (sample, channel) — exactly what TSFM pipelines do to their
        #: raw inputs.
        self.normalize_reduced = normalize_reduced
        self.store = store
        self.head = ClassificationHead(
            model.embed_dim, num_classes, rng=np.random.default_rng(seed)
        )
        self.fitted_ = False
        #: Set by ``fit``; when False (the A2 cache ablation) every
        #: path — including prediction — bypasses the store entirely.
        self.use_embedding_cache_ = True
        #: The :class:`FitReport` of the most recent ``fit`` call.
        self.last_fit_report_: FitReport | None = None

    # ------------------------------------------------------------------
    def _normalize_array(self, reduced: np.ndarray) -> np.ndarray:
        if not self.normalize_reduced:
            return reduced
        mean = reduced.mean(axis=1, keepdims=True)
        std = reduced.std(axis=1, keepdims=True)
        return (reduced - mean) / (std + 1e-8)

    def _normalize_tensor(self, reduced: nn.Tensor) -> nn.Tensor:
        if not self.normalize_reduced:
            return reduced
        mean = reduced.mean(axis=1, keepdims=True)
        centered = reduced - mean
        std = ((centered * centered).mean(axis=1, keepdims=True) + 1e-8).sqrt()
        return centered / std

    def _encode_reduced(
        self, reduced: np.ndarray, batch_size: int, compiled: bool = True
    ) -> np.ndarray:
        """Frozen-encoder embeddings of reduced input, via the store.

        Falls back to a direct inference pass when no store is wired
        or the last fit disabled caching (the A2 ablation).
        """
        if self.store is None or not self.use_embedding_cache_:
            return compute_embeddings(
                self.model, reduced, batch_size=batch_size, compiled=compiled
            )
        cache = EmbeddingCache(
            self.model,
            batch_size=batch_size,
            store=self.store,
            adapter_fingerprint=fingerprint_adapter(self.adapter),
        )
        return cache.get(reduced, compiled=compiled)

    # ------------------------------------------------------------------
    def fit(
        self,
        x_train: np.ndarray,
        y_train: np.ndarray,
        strategy: FineTuneStrategy = FineTuneStrategy.ADAPTER_HEAD,
        config: TrainConfig | None = None,
        use_embedding_cache: bool = True,
    ) -> FitReport:
        """Fine-tune according to ``strategy``; returns a timing report.

        ``use_embedding_cache=False`` forces the encoder into the
        training loop even when the adapter is fit-once and the encoder
        frozen — an ablation switch that quantifies how much of the
        paper's speedup comes from caching (all of it) rather than from
        the channel reduction alone.  It also bypasses the artifact
        store entirely, so the ablation measures true uncached cost.
        """
        config = config if config is not None else TrainConfig(seed=self.seed)
        report = FitReport(strategy=strategy, adapter_name=self.adapter.name)
        self.use_embedding_cache_ = use_embedding_cache
        inst = Instrumentation()
        stats_before = self.store.stats.snapshot() if self.store is not None else None

        with inst.span("total"):
            with inst.span("adapter_fit"):
                self.adapter.fit(x_train, y_train)

            # The encoder must run every step only if something upstream
            # of it changes during training: a trainable adapter that the
            # strategy actually trains, or the encoder itself (FULL).  A
            # frozen lcomb under HEAD is as cacheable as PCA.
            adapter_updates = self.adapter.trainable and strategy.adapter_trainable
            encoder_in_loop = (
                adapter_updates
                or strategy is FineTuneStrategy.FULL
                or not use_embedding_cache
            )
            if strategy.encoder_trainable:
                self.model.unfreeze()
            else:
                self.model.freeze()

            # When profiling, open the profiler here (the trainer's own
            # profile() nests and reuses it) so the frozen-encoder
            # embedding phase — including compiled-graph replays — is
            # part of the recorded op profile, not just the train loop.
            with contextlib.ExitStack() as profile_scope:
                if config.profile:
                    profile_scope.enter_context(nn_profiler.profile())
                if encoder_in_loop:
                    with inst.span("train"):
                        report.train_result = self._fit_joint(x_train, y_train, strategy, config)
                else:
                    report.used_embedding_cache = True
                    reduced = self._normalize_array(self.adapter.transform(x_train))
                    with inst.span("embedding"):
                        embeddings = self._encode_reduced(reduced, config.batch_size)
                    with inst.span("train"):
                        report.train_result = self._fit_head(embeddings, y_train, config)

        if stats_before is not None:
            after = self.store.stats.snapshot()
            inst.count("cache_hits", after["hits"] - stats_before["hits"])
            inst.count("cache_misses", after["misses"] - stats_before["misses"])
        if report.train_result is not None and report.train_result.op_profile:
            inst.attach_ops(report.train_result.op_profile)
        report.summary = inst.summary()
        report.adapter_fit_s = inst.seconds("adapter_fit")
        report.embedding_s = inst.seconds("embedding")
        report.train_s = inst.seconds("train")
        report.total_s = inst.seconds("total")
        self.fitted_ = True
        self.last_fit_report_ = report
        return report

    def _fit_head(
        self, embeddings: np.ndarray, y: np.ndarray, config: TrainConfig
    ) -> TrainResult:
        """Head-only training on cached embeddings (the fast path)."""

        def forward(batch: np.ndarray) -> nn.Tensor:
            return self.head(nn.Tensor(batch))

        self.head.train()
        result = train_classifier_on_arrays(
            forward, self.head.trainable_parameters(), embeddings, y, config
        )
        self.head.eval()
        return result

    def _fit_joint(
        self,
        x: np.ndarray,
        y: np.ndarray,
        strategy: FineTuneStrategy,
        config: TrainConfig,
    ) -> TrainResult:
        """Encoder-in-the-loop training (trainable adapter and/or FULL)."""
        parameters = list(self.head.trainable_parameters())
        adapter_module = getattr(self.adapter, "module", None)
        if self.adapter.trainable and strategy.adapter_trainable:
            if adapter_module is None:
                raise RuntimeError(
                    f"trainable adapter {self.adapter.name} has no module after fit()"
                )
            parameters += adapter_module.trainable_parameters()
        if strategy.encoder_trainable:
            parameters += self.model.trainable_parameters()

        def forward(batch: np.ndarray) -> nn.Tensor:
            tensor = nn.Tensor(batch)
            if self.adapter.trainable:
                reduced = self._normalize_tensor(self.adapter.transform_tensor(tensor))
            else:
                reduced = nn.Tensor(self._normalize_array(self.adapter.transform(batch)))
            embeddings = self.model.encode(reduced)
            return self.head(embeddings)

        self.head.train()
        self.model.train()
        result = train_classifier_on_arrays(forward, parameters, x, y, config)
        self.head.eval()
        self.model.eval()
        return result

    # ------------------------------------------------------------------
    # Prediction surface (fixed-width padded execution)
    # ------------------------------------------------------------------
    def _predict_chunk(
        self,
        chunk: np.ndarray,
        width: int,
        compiled: bool = True,
        inst: Instrumentation | None = None,
        use_store: bool = True,
    ) -> np.ndarray:
        """Logits of one ``len(chunk) <= width`` chunk, run at ``width``.

        The chunk is zero-padded to exactly ``width`` samples before the
        adapter -> encoder -> head pass and the padding rows sliced off
        the result.  BLAS GEMM rounding depends on the batch dimension M
        (an M=1 and an M=64 product round differently) but — at fixed M
        — each output row is independent of the other rows' contents, so
        padding cannot perturb real rows.  Running *every* chunk at one
        fixed width therefore makes logits a pure per-sample function,
        bit-identical across arbitrary batch compositions: offline
        prediction, the serve micro-batcher (whatever mix of requests it
        coalesces) and single-sample calls all agree exactly.  It also
        pins the compiled-graph shape to a single bucket.
        """
        k = len(chunk)
        if k < width:
            pad = np.zeros((width - k, *chunk.shape[1:]), dtype=chunk.dtype)
            chunk = np.concatenate([chunk, pad], axis=0)
        span = inst.span if inst is not None else (lambda name: contextlib.nullcontext())
        with span("adapter"):
            reduced = self._normalize_array(self.adapter.transform(chunk))
        with span("encode"):
            if use_store:
                embeddings = self._encode_reduced(reduced, width, compiled=compiled)
            else:
                embeddings = compute_embeddings(
                    self.model, reduced, batch_size=width, compiled=compiled
                )
        with span("head"):
            with nn.no_grad():
                logits = self.head(nn.Tensor(embeddings)).data
        return logits[:k]

    def predict_logits(
        self, x: np.ndarray, batch_size: int = 64, compiled: bool = True
    ) -> np.ndarray:
        """Class logits for (N, T, D) inputs (inference mode).

        Inputs are processed in fixed-width chunks of exactly
        ``batch_size`` samples (the last chunk zero-padded), so the
        logits of a given sample do not depend on how many other
        samples share the call — see :meth:`_predict_chunk`.
        ``compiled=False`` forces the eager tensor path (results are
        bit-identical either way).
        """
        if not self.fitted_:
            raise RuntimeError("pipeline used before fit()")
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        x = np.asarray(x)
        if x.ndim != 3:
            raise ValueError(f"expected (N, T, D) input, got shape {x.shape}")
        if len(x) == 0:
            return np.zeros((0, self.num_classes), dtype=self.model.dtype)
        outputs = [
            self._predict_chunk(x[start : start + batch_size], batch_size, compiled)
            for start in range(0, len(x), batch_size)
        ]
        return np.concatenate(outputs, axis=0)

    def predict(
        self, x: np.ndarray, batch_size: int = 64, compiled: bool = True
    ) -> np.ndarray:
        """Predicted class labels."""
        return self.predict_logits(x, batch_size=batch_size, compiled=compiled).argmax(
            axis=1
        )

    def predict_proba(
        self, x: np.ndarray, batch_size: int = 64, compiled: bool = True
    ) -> np.ndarray:
        """Class probabilities (softmax over :meth:`predict_logits`)."""
        logits = self.predict_logits(x, batch_size=batch_size, compiled=compiled)
        shifted = logits - logits.max(axis=1, keepdims=True)
        exp = np.exp(shifted)
        return exp / exp.sum(axis=1, keepdims=True)

    def score(self, x: np.ndarray, y: np.ndarray) -> float:
        """Classification accuracy on ``(x, y)``."""
        y = np.asarray(y)
        return float((self.predict(x) == y).mean())

    # ------------------------------------------------------------------
    # Registry round-trip
    # ------------------------------------------------------------------
    def save(self, store, name: str):
        """Publish this fitted pipeline into a registry under ``name``.

        ``store`` is an :class:`~repro.runtime.ArtifactStore` (or a
        cache directory path); returns the published
        :class:`~repro.serve.PipelineRecord` carrying the allocated
        version and content digest.
        """
        from ..serve import PipelineRegistry

        return PipelineRegistry(store).publish(self, name)

    @classmethod
    def load(cls, store, name: str, version: int | None = None) -> "AdapterPipeline":
        """Load ``name`` (latest version by default) from a registry."""
        from ..serve import PipelineRegistry

        return PipelineRegistry(store).load(name, version=version)
