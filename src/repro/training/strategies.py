"""Fine-tuning strategies (the paper's three regimes)."""

from __future__ import annotations

import enum

__all__ = ["FineTuneStrategy"]


class FineTuneStrategy(enum.Enum):
    """Which parts of (adapter, encoder, head) are optimised.

    * ``HEAD`` — only the linear classification head is trained; the
      encoder is frozen (and with a fit-once adapter, its embeddings
      are cached so the encoder runs exactly once).
    * ``ADAPTER_HEAD`` — the adapter (if trainable) and the head are
      trained; the encoder stays frozen.  For fit-once adapters this
      coincides with ``HEAD`` after the adapter fit.
    * ``FULL`` — adapter, encoder and head are all trained (Table 1 /
      Figure 6).
    """

    HEAD = "head"
    ADAPTER_HEAD = "adapter_head"
    FULL = "full"

    @property
    def encoder_trainable(self) -> bool:
        return self is FineTuneStrategy.FULL

    @property
    def adapter_trainable(self) -> bool:
        return self in (FineTuneStrategy.ADAPTER_HEAD, FineTuneStrategy.FULL)
