"""Training loops and configuration."""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, field

import numpy as np

from .. import nn
from ..nn import functional as F
from ..nn import profiler as nn_profiler
from ..runtime import Stopwatch

__all__ = ["TrainConfig", "TrainResult", "train_classifier_on_arrays"]


@dataclass(frozen=True)
class TrainConfig:
    """Hyperparameters shared by all fine-tuning loops.

    ``max_time_s`` is a real wall-clock cap mirroring the paper's
    2-hour rule at experiment scale; loops stop cleanly when exceeded.
    """

    epochs: int = 30
    batch_size: int = 32
    learning_rate: float = 1e-3
    weight_decay: float = 0.0
    grad_clip: float = 1.0
    seed: int = 0
    patience: int | None = None  # early stop on train-loss plateau
    max_time_s: float | None = None
    profile: bool = False  # capture an op-level profile into TrainResult

    def __post_init__(self) -> None:
        if self.epochs <= 0:
            raise ValueError("epochs must be positive")
        if self.batch_size <= 0:
            raise ValueError("batch_size must be positive")


@dataclass
class TrainResult:
    """Outcome of one training loop."""

    losses: list[float] = field(default_factory=list)
    epochs_run: int = 0
    seconds: float = 0.0
    timed_out: bool = False
    #: op name -> stats dict (see nn.profiler.OpStats.to_dict); empty
    #: unless the run was configured with ``TrainConfig.profile``.
    op_profile: dict[str, dict] = field(default_factory=dict)
    #: Compiled-graph replay stats observed while the profile was
    #: active (``{"ops": {...}, "runs": n, "bytes_saved": n}``, see
    #: nn.profiler.OpProfiler.replay_summary).  Non-empty only when a
    #: frozen-encoder phase replayed graphs inside the profiled region.
    replay_profile: dict = field(default_factory=dict)

    @property
    def final_loss(self) -> float:
        if not self.losses:
            raise ValueError("training produced no loss values")
        return self.losses[-1]

    def sparkline(self, width: int = 60) -> str:
        """Unicode sparkline of the per-epoch loss curve."""
        from ..evaluation.reporting import render_sparkline

        return render_sparkline(self.losses, width=width)


def train_classifier_on_arrays(
    forward,
    parameters: list[nn.Parameter],
    x: np.ndarray,
    y: np.ndarray,
    config: TrainConfig,
) -> TrainResult:
    """Generic mini-batch cross-entropy training loop.

    Parameters
    ----------
    forward:
        Callable mapping a raw input batch (numpy) to logits
        (:class:`nn.Tensor`).  The caller decides what is inside —
        head-only on embeddings, adapter+encoder+head, etc.
    parameters:
        Trainable parameters to optimise (must already have
        ``requires_grad=True``; frozen modules simply contribute none).
    x, y:
        Training inputs and integer labels.
    """
    if len(x) != len(y):
        raise ValueError(f"x and y lengths differ: {len(x)} vs {len(y)}")
    if not parameters:
        raise ValueError("no trainable parameters supplied")
    rng = np.random.default_rng(config.seed)
    optimizer = nn.AdamW(
        parameters, lr=config.learning_rate, weight_decay=config.weight_decay
    )
    result = TrainResult()
    watch = Stopwatch()
    best_loss = np.inf
    stale_epochs = 0

    with contextlib.ExitStack() as stack:
        prof = stack.enter_context(nn_profiler.profile()) if config.profile else None
        for epoch in range(config.epochs):
            order = rng.permutation(len(x))
            epoch_losses = []
            for batch_start in range(0, len(x), config.batch_size):
                index = order[batch_start : batch_start + config.batch_size]
                if prof is not None:
                    # Exclude batch assembly / optimizer time from the
                    # gap-attributed forward cost of the first op.
                    prof.mark()
                logits = forward(x[index])
                loss = F.cross_entropy(logits, y[index])
                optimizer.zero_grad()
                loss.backward()
                if config.grad_clip:
                    nn.clip_grad_norm(parameters, config.grad_clip)
                optimizer.step()
                epoch_losses.append(float(loss.data))
                if config.max_time_s is not None and watch.elapsed() > config.max_time_s:
                    result.timed_out = True
                    break
            result.losses.append(float(np.mean(epoch_losses)))
            result.epochs_run = epoch + 1
            if result.timed_out:
                break
            if config.patience is not None:
                if result.losses[-1] < best_loss - 1e-4:
                    best_loss = result.losses[-1]
                    stale_epochs = 0
                else:
                    stale_epochs += 1
                    if stale_epochs >= config.patience:
                        break
        if prof is not None:
            result.op_profile = prof.summary()
            replay = prof.replay_summary()
            if replay["runs"]:
                result.replay_profile = replay

    result.seconds = watch.elapsed()
    return result
