"""Property-based tests on adapter invariants."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adapters import make_adapter

FITTED_ADAPTERS = ["pca", "scaled_pca", "svd", "rand_proj", "var"]


@st.composite
def series_and_channels(draw):
    n = draw(st.integers(3, 8))
    t = draw(st.integers(4, 16))
    d = draw(st.integers(3, 12))
    d_out = draw(st.integers(1, d))
    seed = draw(st.integers(0, 10_000))
    x = np.random.default_rng(seed).normal(size=(n, t, d))
    return x, d_out


@settings(max_examples=20, deadline=None)
@given(series_and_channels(), st.sampled_from(FITTED_ADAPTERS))
def test_output_shape_invariant(data, name):
    x, d_out = data
    out = make_adapter(name, d_out, seed=0).fit(x).transform(x)
    assert out.shape == (x.shape[0], x.shape[1], d_out)


@settings(max_examples=20, deadline=None)
@given(series_and_channels(), st.sampled_from(FITTED_ADAPTERS))
def test_transform_is_deterministic(data, name):
    x, d_out = data
    adapter = make_adapter(name, d_out, seed=0).fit(x)
    np.testing.assert_array_equal(adapter.transform(x), adapter.transform(x))


@settings(max_examples=20, deadline=None)
@given(series_and_channels(), st.sampled_from(["svd", "rand_proj", "var"]))
def test_uncentered_adapters_are_linear(data, name):
    """T(a*x + b*y) == a*T(x) + b*T(y) for linear (uncentered) adapters."""
    x, d_out = data
    adapter = make_adapter(name, d_out, seed=0).fit(x)
    y = np.random.default_rng(1).normal(size=x.shape)
    combined = adapter.transform(2.0 * x + 3.0 * y)
    separate = 2.0 * adapter.transform(x) + 3.0 * adapter.transform(y)
    np.testing.assert_allclose(combined, separate, atol=1e-8)


@settings(max_examples=20, deadline=None)
@given(series_and_channels())
def test_pca_transform_affine(data):
    """PCA is affine: differences transform linearly (mean cancels)."""
    x, d_out = data
    adapter = make_adapter("pca", d_out, seed=0).fit(x)
    y = np.random.default_rng(2).normal(size=x.shape)
    diff = adapter.transform(x) - adapter.transform(y)
    lin = (x - y).reshape(-1, x.shape[-1]) @ adapter.projection_.T
    np.testing.assert_allclose(diff.reshape(-1, d_out), lin, atol=1e-8)


@settings(max_examples=20, deadline=None)
@given(series_and_channels(), st.sampled_from(FITTED_ADAPTERS))
def test_transform_finite(data, name):
    x, d_out = data
    out = make_adapter(name, d_out, seed=0).fit(x).transform(x)
    assert np.isfinite(out).all()


@settings(max_examples=15, deadline=None)
@given(series_and_channels())
def test_full_rank_pca_preserves_distances(data):
    """With D' == D, PCA is a rotation: pairwise distances preserved."""
    x, _ = data
    d = x.shape[-1]
    adapter = make_adapter("pca", d, seed=0).fit(x)
    out = adapter.transform(x)
    a = x.reshape(-1, d)
    b = out.reshape(-1, d)
    dist_in = np.linalg.norm(a[0] - a[-1])
    dist_out = np.linalg.norm(b[0] - b[-1])
    assert dist_out == pytest.approx(dist_in, rel=1e-6, abs=1e-8)
