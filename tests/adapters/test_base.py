"""Tests for the Adapter base classes."""

from __future__ import annotations

import numpy as np
import pytest

from repro.adapters.base import Adapter, FittedAdapter


class ConstantProjection(FittedAdapter):
    """Minimal FittedAdapter: keeps the first D' channels."""

    def _fit_projection(self, flat: np.ndarray, y) -> np.ndarray:
        projection = np.zeros((self.output_channels, flat.shape[1]))
        projection[np.arange(self.output_channels), np.arange(self.output_channels)] = 1.0
        return projection


class BrokenProjection(FittedAdapter):
    """Returns the wrong shape to exercise the internal check."""

    def _fit_projection(self, flat: np.ndarray, y) -> np.ndarray:
        return np.zeros((1, 1))


class TestAdapterValidation:
    def test_rejects_nonpositive_channels(self):
        with pytest.raises(ValueError):
            ConstantProjection(0)

    def test_rejects_more_outputs_than_inputs(self, small_series):
        adapter = ConstantProjection(small_series.shape[-1] + 1)
        with pytest.raises(ValueError):
            adapter.fit(small_series)

    def test_transform_before_fit(self, small_series):
        with pytest.raises(RuntimeError):
            ConstantProjection(2).transform(small_series)

    def test_transform_channel_mismatch(self, small_series):
        adapter = ConstantProjection(2).fit(small_series)
        with pytest.raises(ValueError):
            adapter.transform(small_series[:, :, :4])

    def test_projection_shape_assertion(self, small_series):
        with pytest.raises(AssertionError):
            BrokenProjection(2).fit(small_series)

    def test_fit_transform_equivalent(self, small_series):
        a = ConstantProjection(3).fit(small_series).transform(small_series)
        b = ConstantProjection(3).fit_transform(small_series)
        np.testing.assert_array_equal(a, b)

    def test_name_defaults_to_class(self):
        assert ConstantProjection(2).name == "ConstantProjection"

    def test_subclass_transform_semantics(self, small_series):
        out = ConstantProjection(3).fit(small_series).transform(small_series)
        np.testing.assert_array_equal(out, small_series[:, :, :3])

    def test_abstract_base_not_instantiable(self):
        with pytest.raises(TypeError):
            Adapter(3)
