"""Tests for the lcomb / lcomb_top_k trainable adapter."""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.adapters import LinearCombinerAdapter, LinearCombinerModule
from repro.nn import functional as F

from .test_pca import low_rank_series


class TestModule:
    def test_forward_shape(self, rng):
        module = LinearCombinerModule(10, 4, rng=rng)
        out = module(nn.Tensor(rng.normal(size=(3, 7, 10))))
        assert out.shape == (3, 7, 4)

    def test_rejects_expansion(self):
        with pytest.raises(ValueError):
            LinearCombinerModule(4, 10)

    def test_rejects_bad_top_k(self):
        with pytest.raises(ValueError):
            LinearCombinerModule(10, 4, top_k=0)
        with pytest.raises(ValueError):
            LinearCombinerModule(10, 4, top_k=11)

    def test_channel_mismatch(self, rng):
        module = LinearCombinerModule(10, 4, rng=rng)
        with pytest.raises(ValueError):
            module(nn.Tensor(rng.normal(size=(3, 7, 8))))

    def test_plain_mixing_is_weight(self, rng):
        module = LinearCombinerModule(6, 3, rng=rng)
        np.testing.assert_array_equal(module.mixing_matrix().data, module.weight.data)

    def test_top_k_rows_sparse_and_normalised(self, rng):
        module = LinearCombinerModule(10, 4, top_k=3, rng=rng)
        mix = module.mixing_matrix().data
        nonzero_per_row = (mix > 0).sum(axis=1)
        assert (nonzero_per_row <= 3).all()
        # float32 mixing weights: row sums are exact to one ulp, not 1e-9.
        np.testing.assert_allclose(mix.sum(axis=1), np.ones(4), atol=1e-6)

    def test_top_k_weights_nonnegative(self, rng):
        module = LinearCombinerModule(8, 2, top_k=4, rng=rng)
        assert (module.mixing_matrix().data >= 0).all()

    def test_gradients_flow_plain(self, rng):
        module = LinearCombinerModule(6, 2, rng=rng)
        x = nn.Tensor(rng.normal(size=(4, 5, 6)))
        (module(x) ** 2).sum().backward()
        assert module.weight.grad is not None
        assert np.abs(module.weight.grad).sum() > 0

    def test_gradients_flow_top_k(self, rng):
        module = LinearCombinerModule(6, 2, top_k=3, rng=rng)
        x = nn.Tensor(rng.normal(size=(4, 5, 6)))
        (module(x) ** 2).sum().backward()
        assert module.weight.grad is not None
        assert np.abs(module.weight.grad).sum() > 0


class TestAdapter:
    def test_fit_instantiates_module(self, rng):
        adapter = LinearCombinerAdapter(3, seed=0)
        assert adapter.module is None
        adapter.fit(low_rank_series(rng))
        assert adapter.module is not None
        assert adapter.module.in_channels == 10

    def test_trainable_flag(self):
        assert LinearCombinerAdapter(3).trainable

    def test_names(self):
        assert LinearCombinerAdapter(3).name == "lcomb"
        assert LinearCombinerAdapter(3, top_k=7).name == "lcomb_top_k"

    def test_transform_matches_module(self, rng):
        x = low_rank_series(rng)
        adapter = LinearCombinerAdapter(3, seed=0).fit(x)
        expected = adapter.module(nn.Tensor(x)).data
        np.testing.assert_allclose(adapter.transform(x), expected)

    def test_transform_before_fit_raises(self, rng):
        with pytest.raises(RuntimeError):
            LinearCombinerAdapter(3).transform(low_rank_series(rng))

    def test_deterministic_by_seed(self, rng):
        x = low_rank_series(rng)
        a = LinearCombinerAdapter(3, seed=9).fit(x).transform(x)
        b = LinearCombinerAdapter(3, seed=9).fit(x).transform(x)
        np.testing.assert_array_equal(a, b)

    def test_supervised_training_reduces_loss(self, rng):
        """The point of lcomb: its weights are learnable by gradient descent."""
        x = low_rank_series(rng, n=30, t=10, d=8, k=2, noise=0.01)
        y = (x.mean(axis=(1, 2)) > np.median(x.mean(axis=(1, 2)))).astype(np.int64)
        adapter = LinearCombinerAdapter(2, seed=0).fit(x)
        head = nn.Linear(2, 2, rng=np.random.default_rng(0))
        params = adapter.module.trainable_parameters() + head.trainable_parameters()
        opt = nn.Adam(params, lr=5e-2)
        losses = []
        for _ in range(30):
            reduced = adapter.transform_tensor(nn.Tensor(x))
            logits = head(reduced.mean(axis=1))
            loss = F.cross_entropy(logits, y)
            opt.zero_grad()
            loss.backward()
            opt.step()
            losses.append(float(loss.data))
        assert losses[-1] < losses[0]
