"""Tests for SVD, random projection and variance-selection adapters."""

from __future__ import annotations

import numpy as np
import pytest

from repro.adapters import (
    RandomProjectionAdapter,
    TruncatedSVDAdapter,
    VarianceSelectorAdapter,
)

from .test_pca import low_rank_series


class TestTruncatedSVD:
    def test_shape(self, rng):
        x = low_rank_series(rng)
        out = TruncatedSVDAdapter(4).fit(x).transform(x)
        assert out.shape == (20, 30, 4)

    def test_no_centering(self, rng):
        """SVD on mean-shifted data puts the mean direction first —
        unlike PCA, which removes it."""
        x = low_rank_series(rng, noise=0.01) + 50.0
        adapter = TruncatedSVDAdapter(1).fit(x)
        # top right-singular vector of an offset-dominated matrix is
        # nearly the constant direction
        direction = adapter.projection_[0]
        uniform = np.ones_like(direction) / np.sqrt(len(direction))
        assert abs(direction @ uniform) > 0.99

    def test_singular_values_descending_nonnegative(self, rng):
        adapter = TruncatedSVDAdapter(4).fit(low_rank_series(rng))
        sv = adapter.singular_values_
        assert (sv >= 0).all()
        assert all(a >= b - 1e-9 for a, b in zip(sv, sv[1:]))

    def test_matches_numpy_svd(self, rng):
        x = low_rank_series(rng)
        flat = x.reshape(-1, x.shape[-1])
        _, s, vt = np.linalg.svd(flat, full_matrices=False)
        adapter = TruncatedSVDAdapter(3).fit(x)
        np.testing.assert_allclose(adapter.singular_values_, s[:3], rtol=1e-6)
        for row, expected in zip(adapter.projection_, vt[:3]):
            assert abs(row @ expected) == pytest.approx(1.0, abs=1e-6)


class TestRandomProjection:
    def test_shape(self, rng):
        x = low_rank_series(rng)
        out = RandomProjectionAdapter(4, seed=0).fit(x).transform(x)
        assert out.shape == (20, 30, 4)

    def test_deterministic_by_seed(self, rng):
        x = low_rank_series(rng)
        a = RandomProjectionAdapter(4, seed=7).fit(x).transform(x)
        b = RandomProjectionAdapter(4, seed=7).fit(x).transform(x)
        np.testing.assert_array_equal(a, b)
        c = RandomProjectionAdapter(4, seed=8).fit(x).transform(x)
        assert not np.array_equal(a, c)

    def test_data_independent(self, rng):
        """The projection must not depend on the data (only its width)."""
        a = RandomProjectionAdapter(4, seed=1).fit(low_rank_series(rng, n=5))
        b = RandomProjectionAdapter(4, seed=1).fit(low_rank_series(rng, n=50))
        np.testing.assert_array_equal(a.projection_, b.projection_)

    def test_norm_preservation_in_expectation(self):
        """JL property: squared norms preserved on average."""
        rng = np.random.default_rng(42)
        x = rng.normal(size=(50, 10, 200))
        adapter = RandomProjectionAdapter(64, seed=0).fit(x)
        out = adapter.transform(x)
        in_norms = (x.reshape(-1, 200) ** 2).sum(axis=1)
        out_norms = (out.reshape(-1, 64) ** 2).sum(axis=1)
        ratio = out_norms.mean() / in_norms.mean()
        assert ratio == pytest.approx(1.0, abs=0.1)

    def test_sparse_variant_density(self, rng):
        adapter = RandomProjectionAdapter(50, seed=0, sparse=True).fit(
            low_rank_series(rng, d=200)
        )
        density = (adapter.projection_ != 0).mean()
        assert density == pytest.approx(1 / 3, abs=0.05)


class TestVarianceSelector:
    def test_selects_known_high_variance_channels(self, rng):
        x = rng.normal(size=(10, 20, 6))
        x[:, :, 2] *= 10.0
        x[:, :, 5] *= 5.0
        adapter = VarianceSelectorAdapter(2).fit(x)
        np.testing.assert_array_equal(adapter.selected_channels_, [2, 5])

    def test_transform_is_channel_subset(self, rng):
        x = rng.normal(size=(4, 8, 6))
        x[:, :, 1] *= 3.0
        adapter = VarianceSelectorAdapter(1).fit(x)
        out = adapter.transform(x)
        np.testing.assert_array_equal(out[:, :, 0], x[:, :, 1])

    def test_projection_is_selection_matrix(self, rng):
        adapter = VarianceSelectorAdapter(3).fit(low_rank_series(rng))
        proj = adapter.projection_
        assert ((proj == 0) | (proj == 1)).all()
        np.testing.assert_array_equal(proj.sum(axis=1), np.ones(3))

    def test_deterministic_tie_break(self):
        x = np.ones((3, 5, 4))  # all zero variance: ties
        adapter = VarianceSelectorAdapter(2).fit(x)
        np.testing.assert_array_equal(adapter.selected_channels_, [0, 1])

    def test_unfitted_raises(self, rng):
        with pytest.raises(RuntimeError):
            VarianceSelectorAdapter(2).transform(low_rank_series(rng))
