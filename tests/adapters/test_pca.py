"""Tests for PCA, Scaled PCA and Patch-PCA adapters."""

from __future__ import annotations

import numpy as np
import pytest

from repro.adapters import (
    PatchPCAAdapter,
    PCAAdapter,
    ScaledPCAAdapter,
    pca_reconstruction_error,
)


def low_rank_series(rng, n=20, t=30, d=10, k=3, noise=0.05):
    """(N, T, D) data whose channels live near a rank-k subspace."""
    latent = rng.normal(size=(n, t, k))
    mixing = rng.normal(size=(d, k))
    return latent @ mixing.T + noise * rng.normal(size=(n, t, d))


class TestPCA:
    def test_output_shape(self, rng):
        x = low_rank_series(rng)
        out = PCAAdapter(4).fit(x).transform(x)
        assert out.shape == (20, 30, 4)

    def test_components_orthonormal(self, rng):
        adapter = PCAAdapter(4).fit(low_rank_series(rng))
        gram = adapter.projection_ @ adapter.projection_.T
        np.testing.assert_allclose(gram, np.eye(4), atol=1e-10)

    def test_variance_sorted_descending(self, rng):
        adapter = PCAAdapter(5).fit(low_rank_series(rng))
        ev = adapter.explained_variance_
        assert all(a >= b - 1e-12 for a, b in zip(ev, ev[1:]))

    def test_captures_low_rank_structure(self, rng):
        """With k=3 latent dims, 3 components explain almost everything."""
        x = low_rank_series(rng, k=3, noise=0.01)
        adapter = PCAAdapter(3).fit(x)
        assert adapter.explained_variance_ratio().sum() > 0.95

    def test_reconstruction_error_decreases_with_k(self, rng):
        x = low_rank_series(rng, k=5, noise=0.1)
        errors = [
            pca_reconstruction_error(PCAAdapter(k).fit(x), x) for k in (1, 3, 5)
        ]
        assert errors[0] > errors[1] > errors[2]

    def test_transform_centers_with_train_mean(self, rng):
        x = low_rank_series(rng) + 100.0  # large offset
        adapter = PCAAdapter(3).fit(x)
        out = adapter.transform(x)
        # centered projection: output mean near zero despite offset
        assert abs(out.mean()) < 1.0

    def test_components_match_covariance_eigvecs(self, rng):
        x = low_rank_series(rng)
        flat = x.reshape(-1, x.shape[-1])
        flat = flat - flat.mean(axis=0)
        cov = flat.T @ flat / (len(flat) - 1)
        eigvals = np.linalg.eigvalsh(cov)[::-1]
        adapter = PCAAdapter(4).fit(x)
        np.testing.assert_allclose(adapter.explained_variance_, eigvals[:4], rtol=1e-8)

    def test_unfitted_raises(self, rng):
        with pytest.raises(RuntimeError):
            PCAAdapter(3).transform(low_rank_series(rng))

    def test_too_many_components_raises(self, rng):
        with pytest.raises(ValueError):
            PCAAdapter(11).fit(low_rank_series(rng, d=10))

    def test_channel_mismatch_at_transform(self, rng):
        adapter = PCAAdapter(3).fit(low_rank_series(rng, d=10))
        with pytest.raises(ValueError):
            adapter.transform(low_rank_series(rng, d=8))

    def test_rejects_non_3d(self):
        with pytest.raises(ValueError):
            PCAAdapter(2).fit(np.zeros((4, 5)))

    def test_rejects_nan(self, rng):
        x = low_rank_series(rng)
        x[0, 0, 0] = np.nan
        with pytest.raises(ValueError):
            PCAAdapter(2).fit(x)

    def test_deterministic(self, rng):
        x = low_rank_series(rng)
        a = PCAAdapter(3).fit(x).transform(x)
        b = PCAAdapter(3).fit(x).transform(x)
        np.testing.assert_array_equal(a, b)


class TestScaledPCA:
    def test_scale_invariance(self, rng):
        """Scaling a channel must not change scaled-PCA projections (up to sign)."""
        x = low_rank_series(rng)
        scaled = x.copy()
        scaled[:, :, 0] *= 1000.0
        out_a = ScaledPCAAdapter(3).fit(x).transform(x)
        out_b = ScaledPCAAdapter(3).fit(scaled).transform(scaled)
        np.testing.assert_allclose(np.abs(out_a), np.abs(out_b), atol=1e-6)

    def test_plain_pca_not_scale_invariant(self, rng):
        x = low_rank_series(rng)
        scaled = x.copy()
        scaled[:, :, 0] *= 1000.0
        out_a = PCAAdapter(3).fit(x).transform(x)
        out_b = PCAAdapter(3).fit(scaled).transform(scaled)
        assert not np.allclose(np.abs(out_a), np.abs(out_b), atol=1e-3)

    def test_name(self):
        assert ScaledPCAAdapter(3).name == "Scaled_PCA"


class TestPatchPCA:
    def test_pws_one_equals_pca(self, rng):
        x = low_rank_series(rng)
        pca_out = PCAAdapter(3).fit(x).transform(x)
        patch_out = PatchPCAAdapter(3, patch_window_size=1).fit(x).transform(x)
        np.testing.assert_allclose(np.abs(pca_out), np.abs(patch_out), atol=1e-8)

    def test_output_shape_with_ragged_tail(self, rng):
        x = low_rank_series(rng, t=30)
        out = PatchPCAAdapter(2, patch_window_size=8).fit(x).transform(x)
        # 30 // 8 = 3 patches -> 24 steps retained
        assert out.shape == (20, 24, 2)

    def test_rejects_window_longer_than_series(self, rng):
        x = low_rank_series(rng, t=6)
        with pytest.raises(ValueError):
            PatchPCAAdapter(2, patch_window_size=8).fit(x)

    def test_rejects_bad_window(self):
        with pytest.raises(ValueError):
            PatchPCAAdapter(2, patch_window_size=0)

    def test_rejects_too_many_components(self, rng):
        # pws*D' = 4*4 = 16 > pws*D = 4*3 = 12
        x = low_rank_series(rng, d=3)
        with pytest.raises(ValueError):
            PatchPCAAdapter(4, patch_window_size=4).fit(x)

    def test_name_includes_window(self):
        assert "8" in PatchPCAAdapter(2, patch_window_size=8).name


class TestPatchPCARankLimit:
    def test_pads_zero_components_when_rank_deficient(self, rng):
        """Fewer patch rows than pws*D': rank-limited components are
        kept and the projection is padded, so output geometry holds."""
        x = low_rank_series(rng, n=4, t=16, d=10)  # 4 rows of 16//8=2 patches = 8 rows
        adapter = PatchPCAAdapter(5, patch_window_size=8).fit(x)
        assert adapter.projection_.shape == (40, 80)
        # the padded rows are exactly zero
        row_norms = np.linalg.norm(adapter.projection_, axis=1)
        assert (row_norms[:8] > 0).all()
        assert np.allclose(row_norms[8:], 0.0)
        out = adapter.transform(x)
        assert out.shape == (4, 16, 5)
        assert np.isfinite(out).all()
