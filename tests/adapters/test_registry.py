"""Tests for the adapter registry and the Identity adapter."""

from __future__ import annotations

import numpy as np
import pytest

from repro.adapters import (
    ADAPTER_NAMES,
    IdentityAdapter,
    LinearCombinerAdapter,
    PatchPCAAdapter,
    PCAAdapter,
    make_adapter,
)

from .test_pca import low_rank_series


class TestRegistry:
    @pytest.mark.parametrize(
        "name", ["none", "pca", "scaled_pca", "patch_pca", "svd", "rand_proj", "var", "lcomb", "lcomb_top_k"]
    )
    def test_all_names_constructible(self, name, rng):
        adapter = make_adapter(name, 3, seed=0)
        x = low_rank_series(rng)
        out = adapter.fit(x).transform(x)
        assert out.ndim == 3

    def test_table2_names_cover_paper_columns(self):
        assert ADAPTER_NAMES == ("pca", "svd", "rand_proj", "var", "lcomb", "lcomb_top_k")

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            make_adapter("umap")

    def test_case_insensitive(self):
        assert isinstance(make_adapter("PCA", 3), PCAAdapter)

    def test_default_output_channels_is_paper_value(self):
        assert make_adapter("pca").output_channels == 5

    def test_kwargs_forwarded(self):
        adapter = make_adapter("patch_pca", 3, patch_window_size=16)
        assert isinstance(adapter, PatchPCAAdapter)
        assert adapter.patch_window_size == 16

    def test_top_k_default_is_seven(self):
        adapter = make_adapter("lcomb_top_k", 3)
        assert isinstance(adapter, LinearCombinerAdapter)
        assert adapter.top_k == 7

    def test_invalid_output_channels(self):
        with pytest.raises(ValueError):
            make_adapter("pca", 0)


class TestIdentityAdapter:
    def test_passthrough(self, rng):
        x = low_rank_series(rng)
        adapter = IdentityAdapter().fit(x)
        np.testing.assert_array_equal(adapter.transform(x), x)

    def test_output_channels_resolved_at_fit(self, rng):
        adapter = IdentityAdapter().fit(low_rank_series(rng, d=7))
        assert adapter.output_channels == 7

    def test_name(self):
        assert IdentityAdapter().name == "no_adapter"

    def test_not_trainable(self):
        assert not IdentityAdapter().trainable
