"""Tests for the extension adapters (LDA, cluster averaging)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.adapters import ClusterAverageAdapter, LDAAdapter, make_adapter


@pytest.fixture
def labelled_series(rng):
    """Series whose class signal lives along a known channel direction."""
    n, t, d = 60, 15, 10
    y = (np.arange(n) % 3).astype(np.int64)
    direction = np.zeros(d)
    direction[:3] = [1.0, -1.0, 0.5]
    x = rng.normal(size=(n, t, d)) * 0.3
    x += y[:, None, None] * direction[None, None, :]
    return x, y


class TestLDA:
    def test_requires_labels(self, labelled_series):
        x, _ = labelled_series
        with pytest.raises(ValueError):
            LDAAdapter(3).fit(x)

    def test_output_shape(self, labelled_series):
        x, y = labelled_series
        out = LDAAdapter(3).fit(x, y).transform(x)
        assert out.shape == (60, 15, 3)

    def test_discriminant_count_capped_by_classes(self, labelled_series):
        x, y = labelled_series  # 3 classes -> at most 2 discriminants
        adapter = LDAAdapter(5).fit(x, y)
        assert adapter.discriminant_dims_ == 2
        assert adapter.projection_.shape == (5, 10)

    def test_first_direction_separates_classes(self, labelled_series):
        """Projecting onto the top discriminant must order class means."""
        x, y = labelled_series
        adapter = LDAAdapter(2).fit(x, y)
        projected = adapter.transform(x)[:, :, 0].mean(axis=1)
        means = [projected[y == c].mean() for c in range(3)]
        spread = np.ptp(means)
        within = np.mean([projected[y == c].std() for c in range(3)])
        assert spread > 2 * within

    def test_labels_shape_validated(self, labelled_series):
        x, y = labelled_series
        with pytest.raises(ValueError):
            LDAAdapter(2).fit(x, y[:-1])

    def test_single_class_rejected(self, labelled_series):
        x, _ = labelled_series
        with pytest.raises(ValueError):
            LDAAdapter(2).fit(x, np.zeros(len(x), dtype=int))

    def test_shrinkage_validated(self):
        with pytest.raises(ValueError):
            LDAAdapter(2, shrinkage=0.0)

    def test_rows_unit_norm_for_discriminants(self, labelled_series):
        x, y = labelled_series
        adapter = LDAAdapter(2).fit(x, y)
        norms = np.linalg.norm(adapter.projection_, axis=1)
        np.testing.assert_allclose(norms, 1.0, atol=1e-8)

    def test_registry(self):
        assert isinstance(make_adapter("lda", 3), LDAAdapter)


class TestClusterAverage:
    def test_output_shape(self, rng):
        x = rng.normal(size=(10, 20, 8))
        out = ClusterAverageAdapter(3).fit(x).transform(x)
        assert out.shape == (10, 20, 3)

    def test_groups_correlated_channels(self, rng):
        """Two blocks of perfectly correlated channels -> 2 clusters."""
        base = rng.normal(size=(20, 30, 2))
        x = np.concatenate(
            [base[:, :, :1]] * 3 + [base[:, :, 1:]] * 3, axis=2
        ) + 0.01 * rng.normal(size=(20, 30, 6))
        adapter = ClusterAverageAdapter(2).fit(x)
        groups = [set(g.tolist()) for g in adapter.cluster_members_]
        assert sorted(groups, key=min) == [{0, 1, 2}, {3, 4, 5}]

    def test_projection_rows_average(self, rng):
        x = rng.normal(size=(10, 20, 6))
        adapter = ClusterAverageAdapter(3).fit(x)
        for row, members in zip(adapter.projection_, adapter.cluster_members_):
            np.testing.assert_allclose(row[members], 1.0 / len(members))
            assert row.sum() == pytest.approx(1.0)

    def test_full_width_is_identity(self, rng):
        x = rng.normal(size=(5, 10, 4))
        adapter = ClusterAverageAdapter(4).fit(x)
        np.testing.assert_array_equal(adapter.projection_, np.eye(4))

    def test_anticorrelated_channels_cluster_together(self, rng):
        """Distance uses |corr|, so c and -c belong to one cluster."""
        base = rng.normal(size=(20, 50, 1))
        x = np.concatenate([base, -base, rng.normal(size=(20, 50, 1))], axis=2)
        adapter = ClusterAverageAdapter(2).fit(x)
        groups = [set(g.tolist()) for g in adapter.cluster_members_]
        assert {0, 1} in groups

    def test_registry(self):
        assert isinstance(make_adapter("cluster_avg", 3), ClusterAverageAdapter)
