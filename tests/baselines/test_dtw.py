"""Tests for DTW distance and the 1-NN DTW classifier."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import DTW1NNClassifier, dtw_distance


class TestDistance:
    def test_identity_is_zero(self, rng):
        a = rng.normal(size=(15, 3))
        assert dtw_distance(a, a) == 0.0

    def test_symmetry(self, rng):
        a = rng.normal(size=(12, 2))
        b = rng.normal(size=(17, 2))
        assert dtw_distance(a, b) == pytest.approx(dtw_distance(b, a))

    def test_nonnegative(self, rng):
        a, b = rng.normal(size=(10, 1)), rng.normal(size=(10, 1))
        assert dtw_distance(a, b) >= 0.0

    def test_handles_univariate_1d_input(self, rng):
        a, b = rng.normal(size=10), rng.normal(size=12)
        assert dtw_distance(a, b) >= 0.0

    def test_warping_beats_euclidean_on_shifted_series(self):
        """DTW must align a time-shifted copy almost perfectly."""
        t = np.linspace(0, 1, 50)
        a = np.sin(2 * np.pi * 3 * t)[:, None]
        b = np.sin(2 * np.pi * 3 * (t - 0.08))[:, None]
        euclidean = float(np.sqrt(((a - b) ** 2).sum()))
        assert dtw_distance(a, b) < 0.5 * euclidean

    def test_band_constrains_path(self):
        """A very narrow band approaches the Euclidean distance."""
        rng = np.random.default_rng(0)
        a, b = rng.normal(size=(20, 1)), rng.normal(size=(20, 1))
        unconstrained = dtw_distance(a, b)
        banded = dtw_distance(a, b, band=0)
        euclidean = float(np.sqrt(((a - b) ** 2).sum()))
        assert banded == pytest.approx(euclidean)
        assert unconstrained <= banded + 1e-12

    def test_different_lengths(self, rng):
        a, b = rng.normal(size=(10, 2)), rng.normal(size=(25, 2))
        assert np.isfinite(dtw_distance(a, b, band=3))

    def test_channel_mismatch_raises(self, rng):
        with pytest.raises(ValueError):
            dtw_distance(rng.normal(size=(5, 2)), rng.normal(size=(5, 3)))

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            dtw_distance(np.zeros((0, 1)), np.zeros((5, 1)))


class TestClassifier:
    def test_classifies_distinct_shapes(self, rng):
        t = np.linspace(0, 1, 30)
        n = 40
        y = (np.arange(n) % 2).astype(np.int64)
        x = np.empty((n, 30, 1))
        for i in range(n):
            freq = 2.0 if y[i] == 0 else 6.0
            x[i, :, 0] = np.sin(2 * np.pi * freq * t + rng.uniform(0, 1)) + 0.1 * rng.normal(size=30)
        clf = DTW1NNClassifier(band=4).fit(x[:24], y[:24])
        assert clf.score(x[24:], y[24:]) > 0.8

    def test_memorises_training_set(self, rng):
        x = rng.normal(size=(10, 12, 2))
        y = np.arange(10) % 3
        clf = DTW1NNClassifier().fit(x, y)
        np.testing.assert_array_equal(clf.predict(x), y)

    def test_unfitted_raises(self, rng):
        with pytest.raises(RuntimeError):
            DTW1NNClassifier().predict(rng.normal(size=(2, 5, 1)))

    def test_misaligned_fit_raises(self, rng):
        with pytest.raises(ValueError):
            DTW1NNClassifier().fit(rng.normal(size=(4, 5, 1)), np.zeros(3))
