"""Cross-baseline sanity and permutation properties.

Complements the per-baseline unit tests with the two properties every
classical baseline must satisfy on seeded synthetic data: it solves a
perfectly separable problem, and (where the algorithm is channel- or
feature-symmetric) its predictions ignore input permutation.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import DTW1NNClassifier, RidgeClassifier, RocketClassifier, dtw_distance
from repro.testing import labeled_datasets


def _separable_batch(seed: int = 0):
    """A clearly class-separable (x, y) batch from the harness strategy."""
    rng = np.random.default_rng(seed)
    x, y = labeled_datasets(max_classes=3, max_per_class=6).example(rng)
    return x, y


class TestRidge:
    def test_perfect_separation_accuracy(self):
        x, y = _separable_batch(7)
        flat = x.reshape(len(x), -1)
        model = RidgeClassifier(alpha=1e-3).fit(flat, y)
        assert model.score(flat, y) == 1.0

    def test_feature_permutation_invariance(self):
        """Ridge is feature-symmetric: permuting columns permutes the
        coefficients but leaves every decision value unchanged."""
        x, y = _separable_batch(11)
        flat = x.reshape(len(x), -1)
        perm = np.random.default_rng(13).permutation(flat.shape[1])
        base = RidgeClassifier(alpha=1.0).fit(flat, y)
        permuted = RidgeClassifier(alpha=1.0).fit(flat[:, perm], y)
        np.testing.assert_allclose(
            base.decision_function(flat),
            permuted.decision_function(flat[:, perm]),
            atol=1e-8,
        )
        np.testing.assert_array_equal(base.predict(flat), permuted.predict(flat[:, perm]))


class TestRocket:
    def test_seeded_accuracy_sanity(self):
        x, y = _separable_batch(17)
        model = RocketClassifier(num_kernels=200, seed=0).fit(x, y)
        assert model.score(x, y) >= 0.9

    def test_seed_reproducibility(self):
        """Same seed -> identical kernels -> identical predictions.
        (ROCKET assigns kernels to random channels, so it is NOT
        permutation-invariant; determinism is its contract instead.)"""
        x, y = _separable_batch(19)
        a = RocketClassifier(num_kernels=100, seed=3).fit(x, y)
        b = RocketClassifier(num_kernels=100, seed=3).fit(x, y)
        np.testing.assert_array_equal(a.predict(x), b.predict(x))


class TestDTW:
    def test_distance_channel_permutation_invariance(self):
        """Dependent multivariate DTW uses the Euclidean local cost
        over channels, which is permutation-invariant exactly."""
        rng = np.random.default_rng(23)
        a = rng.normal(size=(14, 5))
        b = rng.normal(size=(11, 5))
        perm = rng.permutation(5)
        assert dtw_distance(a, b) == pytest.approx(
            dtw_distance(a[:, perm], b[:, perm]), abs=1e-12
        )

    def test_classifier_perfect_separation(self):
        x, y = _separable_batch(29)
        model = DTW1NNClassifier(band=5).fit(x, y)
        test_x = x + 0.01 * np.random.default_rng(31).normal(size=x.shape)
        assert model.score(test_x, y) >= 0.9

    def test_classifier_prediction_permutation_invariance(self):
        x, y = _separable_batch(37)
        perm = np.random.default_rng(41).permutation(x.shape[-1])
        base = DTW1NNClassifier(band=5).fit(x, y)
        permuted = DTW1NNClassifier(band=5).fit(x[:, :, perm], y)
        np.testing.assert_array_equal(base.predict(x), permuted.predict(x[:, :, perm]))