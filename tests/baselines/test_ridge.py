"""Tests for the closed-form ridge classifier."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import RidgeClassifier


@pytest.fixture
def separable(rng):
    x = rng.normal(size=(100, 8))
    w = rng.normal(size=(8, 3))
    y = (x @ w).argmax(axis=1)
    return x, y


class TestFit:
    def test_learns_separable_problem(self, separable):
        x, y = separable
        clf = RidgeClassifier(alpha=1.0).fit(x, y)
        assert clf.score(x, y) > 0.9

    def test_alpha_selection(self, separable):
        x, y = separable
        clf = RidgeClassifier(alpha=[0.01, 1.0, 100.0]).fit(x, y)
        assert clf.alpha_ in (0.01, 1.0, 100.0)

    def test_rejects_nonpositive_alpha(self):
        with pytest.raises(ValueError):
            RidgeClassifier(alpha=0.0)

    def test_rejects_bad_shapes(self, rng):
        with pytest.raises(ValueError):
            RidgeClassifier().fit(rng.normal(size=(10, 3)), np.zeros(9))

    def test_predict_before_fit(self, rng):
        with pytest.raises(RuntimeError):
            RidgeClassifier().predict(rng.normal(size=(3, 4)))


class TestDualPrimalEquivalence:
    def test_wide_and_tall_solutions_agree(self, rng):
        """Dual (features > samples) and primal solutions must match."""
        x = rng.normal(size=(30, 10))
        y = (np.arange(30) % 2)
        clf_primal = RidgeClassifier(alpha=1.0).fit(x, y)
        # Pad features to force the dual path; the extra features are
        # constant (zero after standardisation), so predictions on the
        # informative block persist.
        x_wide = np.concatenate([x, np.zeros((30, 50))], axis=1)
        clf_dual = RidgeClassifier(alpha=1.0).fit(x_wide, y)
        agreement = (clf_primal.predict(x) == clf_dual.predict(x_wide)).mean()
        assert agreement > 0.9

    def test_decision_function_shape(self, separable):
        x, y = separable
        clf = RidgeClassifier().fit(x, y)
        assert clf.decision_function(x).shape == (100, 3)


class TestRegularisation:
    def test_large_alpha_shrinks_coefficients(self, separable):
        x, y = separable
        small = RidgeClassifier(alpha=0.001).fit(x, y)
        large = RidgeClassifier(alpha=1000.0).fit(x, y)
        assert np.abs(large.coef_).sum() < np.abs(small.coef_).sum()
