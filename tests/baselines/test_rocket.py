"""Tests for the ROCKET baseline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import RocketClassifier, RocketTransform


def frequency_task(rng, n=60, t=50, d=2):
    """Two classes distinguished by oscillation frequency."""
    grid = np.linspace(0, 1, t)
    y = (np.arange(n) % 2).astype(np.int64)
    freqs = np.where(y == 0, 3.0, 10.0)
    x = np.sin(2 * np.pi * freqs[:, None] * grid[None, :] + rng.uniform(0, 6.28, (n, 1)))
    x = np.stack([x] * d, axis=2) + 0.1 * rng.normal(size=(n, t, d))
    return x, y


class TestTransform:
    def test_feature_shape(self, rng):
        x, _ = frequency_task(rng)
        features = RocketTransform(num_kernels=50, seed=0).fit_transform(x)
        assert features.shape == (60, 100)  # 2 features per kernel

    def test_ppv_in_unit_interval(self, rng):
        x, _ = frequency_task(rng)
        features = RocketTransform(num_kernels=50, seed=0).fit_transform(x)
        ppv = features[:, 0::2]
        assert ((ppv >= 0) & (ppv <= 1)).all()

    def test_deterministic_by_seed(self, rng):
        x, _ = frequency_task(rng)
        a = RocketTransform(num_kernels=20, seed=5).fit_transform(x)
        b = RocketTransform(num_kernels=20, seed=5).fit_transform(x)
        np.testing.assert_array_equal(a, b)

    def test_channel_count_validated(self, rng):
        x, _ = frequency_task(rng, d=3)
        transform = RocketTransform(num_kernels=10, seed=0).fit(x)
        with pytest.raises(ValueError):
            transform.transform(x[:, :, :2])

    def test_unfitted_raises(self, rng):
        x, _ = frequency_task(rng)
        with pytest.raises(RuntimeError):
            RocketTransform(num_kernels=10).transform(x)

    def test_rejects_zero_kernels(self):
        with pytest.raises(ValueError):
            RocketTransform(num_kernels=0)

    def test_short_series_handled(self, rng):
        """Series shorter than a dilated kernel fall back gracefully."""
        x = rng.normal(size=(4, 5, 1))
        features = RocketTransform(num_kernels=30, seed=0).fit_transform(x)
        assert np.isfinite(features).all()


class TestClassifier:
    def test_solves_frequency_task(self, rng):
        x, y = frequency_task(rng)
        clf = RocketClassifier(num_kernels=200, seed=0).fit(x[:40], y[:40])
        assert clf.score(x[40:], y[40:]) > 0.8

    def test_multivariate_channels_used(self, rng):
        """Signal placed in channel 1 only must still be found."""
        n, t = 60, 40
        y = (np.arange(n) % 2).astype(np.int64)
        grid = np.linspace(0, 1, t)
        freqs = np.where(y == 0, 3.0, 9.0)
        signal = np.sin(2 * np.pi * freqs[:, None] * grid[None, :])
        x = np.stack([rng.normal(size=(n, t)), signal], axis=2)
        clf = RocketClassifier(num_kernels=300, seed=0).fit(x[:40], y[:40])
        assert clf.score(x[40:], y[40:]) > 0.75
