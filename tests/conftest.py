"""Shared fixtures for the test suite."""

from __future__ import annotations

import zlib

import numpy as np
import pytest


@pytest.fixture(autouse=True)
def _seed_global_numpy_rng(request) -> None:
    """Seed numpy's legacy global RNG per test, from the test's node id.

    Code under test that falls back to ``np.random.*`` (e.g. a module
    constructed without an explicit generator) becomes deterministic
    and independent of test execution order: every test starts from
    the same, test-specific state on every run, so no individual test
    needs an ad-hoc ``np.random.seed`` call.
    """
    np.random.seed(zlib.crc32(request.node.nodeid.encode("utf-8")) % 2**32)


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic generator for test randomness."""
    return np.random.default_rng(12345)


@pytest.fixture
def small_series(rng) -> np.ndarray:
    """A small (N, T, D) multivariate batch."""
    return rng.normal(size=(6, 20, 8))


def finite_difference(fn, array: np.ndarray, index: tuple, eps: float = 1e-6) -> float:
    """Central finite difference of scalar ``fn`` wrt ``array[index]``."""
    original = array[index]
    array[index] = original + eps
    plus = fn()
    array[index] = original - eps
    minus = fn()
    array[index] = original
    return (plus - minus) / (2 * eps)
