"""Property-based tests on the surrogate generator."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import dataset_names, dataset_info
from repro.data.generators import LatentFactorGenerator, generate_split

SMALL_DATASETS = [
    name
    for name in dataset_names()
    if dataset_info(name).num_channels <= 64 and dataset_info(name).sequence_length <= 500
]


@settings(max_examples=15, deadline=None)
@given(st.sampled_from(SMALL_DATASETS), st.integers(0, 50))
def test_sample_geometry_matches_registry(name, seed):
    info = dataset_info(name)
    generator = LatentFactorGenerator(info, seed=seed)
    x, y = generator.sample(12, np.random.default_rng(seed), length=20)
    assert x.shape == (12, 20, info.num_channels)
    assert y.max() < info.num_classes
    assert np.isfinite(x).all()


@settings(max_examples=10, deadline=None)
@given(st.sampled_from(SMALL_DATASETS), st.integers(0, 20))
def test_generation_is_deterministic(name, seed):
    info = dataset_info(name)
    a = generate_split(info, seed=seed, scale=0.05, max_length=16)
    b = generate_split(info, seed=seed, scale=0.05, max_length=16)
    for left, right in zip(a, b):
        np.testing.assert_array_equal(left, right)


@settings(max_examples=10, deadline=None)
@given(st.integers(0, 20), st.integers(21, 40))
def test_different_seeds_give_different_data(seed_a, seed_b):
    info = dataset_info("NATOPS")
    x_a, _, _, _ = generate_split(info, seed=seed_a, scale=0.05, max_length=16)
    x_b, _, _, _ = generate_split(info, seed=seed_b, scale=0.05, max_length=16)
    assert not np.array_equal(x_a, x_b)


@settings(max_examples=10, deadline=None)
@given(st.sampled_from(SMALL_DATASETS), st.integers(0, 20))
def test_every_class_present_in_train(name, seed):
    info = dataset_info(name)
    _, y_train, _, _ = generate_split(info, seed=seed, scale=0.02, max_length=16)
    assert len(np.unique(y_train)) == info.num_classes


@settings(max_examples=10, deadline=None)
@given(st.integers(0, 30))
def test_train_and_test_share_class_structure(seed):
    """Class centroids of the train and test splits must correlate —
    otherwise the test split measures nothing."""
    info = dataset_info("JapaneseVowels")
    x_train, y_train, x_test, y_test = generate_split(
        info, seed=seed, scale=0.3, max_length=29
    )
    correlations = []
    for cls in range(info.num_classes):
        a = x_train[y_train == cls].mean(axis=0).reshape(-1)
        b = x_test[y_test == cls].mean(axis=0).reshape(-1)
        correlations.append(np.corrcoef(a, b)[0, 1])
    assert np.mean(correlations) > 0.5
