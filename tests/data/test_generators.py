"""Tests for the latent-factor surrogate generator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import dataset_info
from repro.data.generators import GeneratorConfig, LatentFactorGenerator, generate_split


@pytest.fixture
def info():
    return dataset_info("NATOPS")  # D=24, T=51, 6 classes


class TestSampling:
    def test_shapes_and_dtypes(self, info):
        gen = LatentFactorGenerator(info, seed=0)
        x, y = gen.sample(30, np.random.default_rng(0))
        assert x.shape == (30, 51, 24)
        assert y.shape == (30,)
        assert x.dtype == np.float64
        assert y.dtype == np.int64

    def test_labels_balanced(self, info):
        gen = LatentFactorGenerator(info, seed=0)
        _, y = gen.sample(60, np.random.default_rng(0))
        counts = np.bincount(y, minlength=6)
        assert counts.min() >= 9  # 60/6 = 10, round robin

    def test_custom_length(self, info):
        gen = LatentFactorGenerator(info, seed=0)
        x, _ = gen.sample(4, np.random.default_rng(0), length=20)
        assert x.shape[1] == 20

    def test_rejects_nonpositive(self, info):
        gen = LatentFactorGenerator(info, seed=0)
        with pytest.raises(ValueError):
            gen.sample(0, np.random.default_rng(0))

    def test_finite(self, info):
        gen = LatentFactorGenerator(info, seed=0)
        x, _ = gen.sample(10, np.random.default_rng(0))
        assert np.isfinite(x).all()


class TestStructure:
    def test_decoy_channels_have_high_variance(self, info):
        """Decoys must sit in the top variance quartile (they are there
        to trap variance-based channel selection)."""
        gen = LatentFactorGenerator(info, seed=0)
        x, _ = gen.sample(100, np.random.default_rng(0))
        variances = x.reshape(-1, 24).var(axis=0)
        threshold = np.quantile(variances, 0.75)
        assert (variances[gen._decoy_channels] >= threshold).all()

    def test_decoys_carry_no_signal(self, info):
        gen = LatentFactorGenerator(info, seed=0)
        assert np.abs(gen._mixing[gen._decoy_channels]).sum() == 0.0

    def test_classes_are_separable(self, info):
        """A nearest-centroid classifier on channel-mean features must
        beat chance by a wide margin — otherwise downstream accuracy
        comparisons are meaningless."""
        gen = LatentFactorGenerator(info, seed=0)
        x_train, y_train = gen.sample(120, np.random.default_rng(1))
        x_test, y_test = gen.sample(120, np.random.default_rng(2))

        def features(x):
            return x.reshape(len(x), -1)

        centroids = np.stack(
            [features(x_train)[y_train == c].mean(axis=0) for c in range(6)]
        )
        distances = ((features(x_test)[:, None, :] - centroids[None]) ** 2).sum(axis=2)
        accuracy = (distances.argmin(axis=1) == y_test).mean()
        assert accuracy > 0.5  # chance = 1/6

    def test_same_seed_same_class_structure(self, info):
        a = LatentFactorGenerator(info, seed=3)
        b = LatentFactorGenerator(info, seed=3)
        np.testing.assert_array_equal(a._mixing, b._mixing)
        np.testing.assert_array_equal(a._frequencies, b._frequencies)

    def test_different_seeds_differ(self, info):
        a = LatentFactorGenerator(info, seed=3)
        b = LatentFactorGenerator(info, seed=4)
        assert not np.array_equal(a._mixing, b._mixing)


class TestGenerateSplit:
    def test_deterministic(self, info):
        a = generate_split(info, seed=0, scale=0.5)
        b = generate_split(info, seed=0, scale=0.5)
        for x, y in zip(a, b):
            np.testing.assert_array_equal(x, y)

    def test_scale_reduces_sizes(self, info):
        x_train, _, x_test, _ = generate_split(info, seed=0, scale=0.5)
        assert len(x_train) == 90  # 180 * 0.5
        assert len(x_test) == 90

    def test_floor_keeps_classes_covered(self):
        info = dataset_info("PhonemeSpectra")  # 39 classes
        _, y_train, _, _ = generate_split(info, seed=0, scale=0.01)
        assert len(np.unique(y_train)) == 39

    def test_never_exceeds_paper_sizes(self):
        info = dataset_info("DuckDuckGeese")  # train 60, 5 classes
        x_train, _, x_test, _ = generate_split(info, seed=0, scale=1.0)
        assert len(x_train) == 60
        assert len(x_test) == 40

    def test_max_length_caps(self, info):
        x_train, _, _, _ = generate_split(info, seed=0, scale=0.5, max_length=16)
        assert x_train.shape[1] == 16

    def test_invalid_scale(self, info):
        with pytest.raises(ValueError):
            generate_split(info, seed=0, scale=0.0)
        with pytest.raises(ValueError):
            generate_split(info, seed=0, scale=1.5)

    def test_custom_config(self, info):
        config = GeneratorConfig(latent_dim=2, num_decoy_channels=0)
        x_train, _, _, _ = generate_split(info, seed=0, scale=0.2, config=config)
        assert x_train.shape[-1] == 24
