"""Tests for dataset import/export."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import load_dataset, load_dataset_file, save_dataset


@pytest.fixture(scope="module")
def dataset():
    return load_dataset("NATOPS", seed=3, scale=0.1, max_length=24)


class TestRoundTrip:
    def test_arrays_identical(self, tmp_path, dataset):
        path = save_dataset(dataset, tmp_path / "natops")
        back = load_dataset_file(path)
        np.testing.assert_array_equal(dataset.x_train, back.x_train)
        np.testing.assert_array_equal(dataset.y_train, back.y_train)
        np.testing.assert_array_equal(dataset.x_test, back.x_test)
        np.testing.assert_array_equal(dataset.y_test, back.y_test)

    def test_metadata_restored(self, tmp_path, dataset):
        path = save_dataset(dataset, tmp_path / "d")
        back = load_dataset_file(path)
        assert back.info.name == "NATOPS"
        assert back.seed == 3
        assert back.scale == 0.1

    def test_suffix_enforced(self, tmp_path, dataset):
        path = save_dataset(dataset, tmp_path / "noext")
        assert path.suffix == ".npz"

    def test_load_without_suffix(self, tmp_path, dataset):
        save_dataset(dataset, tmp_path / "d")
        back = load_dataset_file(tmp_path / "d")
        assert back.info.name == "NATOPS"

    def test_creates_parent_dirs(self, tmp_path, dataset):
        path = save_dataset(dataset, tmp_path / "a" / "b" / "d.npz")
        assert path.exists()


class TestValidation:
    def test_rejects_non_dataset_archive(self, tmp_path):
        bogus = tmp_path / "bogus.npz"
        np.savez(bogus, stuff=np.zeros(3))
        with pytest.raises(ValueError):
            load_dataset_file(bogus)

    def test_rejects_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_dataset_file(tmp_path / "missing.npz")

    def test_labels_coerced_to_int(self, tmp_path, dataset):
        path = save_dataset(dataset, tmp_path / "d")
        back = load_dataset_file(path)
        assert back.y_train.dtype == np.int64
