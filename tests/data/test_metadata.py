"""Tests for the Table-3 dataset registry."""

from __future__ import annotations

import pytest

from repro.data import DATASETS, dataset_info, dataset_names

#: Verbatim Table 3 of the paper.
PAPER_TABLE3 = {
    "DuckDuckGeese": (60, 40, 1345, 270, 5),
    "FaceDetection": (5890, 3524, 144, 62, 2),
    "FingerMovements": (316, 100, 28, 50, 2),
    "HandMovementDirection": (320, 147, 10, 400, 4),
    "Heartbeat": (204, 205, 61, 405, 2),
    "InsectWingbeat": (1000, 1000, 200, 78, 10),
    "JapaneseVowels": (270, 370, 12, 29, 9),
    "MotorImagery": (278, 100, 64, 3000, 2),
    "NATOPS": (180, 180, 24, 51, 6),
    "PEMS-SF": (267, 173, 963, 144, 7),
    "PhonemeSpectra": (3315, 3353, 11, 217, 39),
    "SpokenArabicDigits": (6599, 2199, 13, 93, 10),
}


class TestRegistry:
    def test_contains_exactly_twelve(self):
        assert len(DATASETS) == 12

    @pytest.mark.parametrize("name,expected", PAPER_TABLE3.items())
    def test_matches_paper_table3(self, name, expected):
        info = dataset_info(name)
        assert (
            info.train_size,
            info.test_size,
            info.num_channels,
            info.sequence_length,
            info.num_classes,
        ) == expected

    def test_all_have_at_least_ten_channels(self):
        """Paper selection criterion: >= 10 channels."""
        assert all(info.num_channels >= 10 for info in DATASETS.values())

    def test_names_in_table_order(self):
        assert dataset_names()[0] == "DuckDuckGeese"
        assert dataset_names()[-1] == "SpokenArabicDigits"


class TestLookup:
    def test_by_short_name(self):
        assert dataset_info("Duck").name == "DuckDuckGeese"
        assert dataset_info("SpokeA").name == "SpokenArabicDigits"

    def test_case_insensitive(self):
        assert dataset_info("heartbeat").name == "Heartbeat"
        assert dataset_info("pems").name == "PEMS-SF"

    def test_unknown_raises(self):
        with pytest.raises(KeyError):
            dataset_info("MNIST")

    def test_total_size(self):
        assert dataset_info("NATOPS").total_size == 360


class TestTokensPerSample:
    def test_channel_linear_scaling(self):
        info = dataset_info("Heartbeat")  # D=61, T=405
        # patch 8, stride 8: (405-8)//8+1 = 50 patches per channel
        assert info.tokens_per_sample(8) == 61 * 50

    def test_overlapping_stride(self):
        info = dataset_info("JapaneseVowels")  # D=12, T=29
        assert info.tokens_per_sample(16, patch_stride=4) == 12 * ((29 - 16) // 4 + 1)

    def test_short_series_floor(self):
        info = dataset_info("JapaneseVowels")  # T=29 < patch 32
        assert info.tokens_per_sample(32) == 12 * 1
