"""Tests for preprocessing utilities."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import (
    Standardizer,
    pad_or_truncate,
    subsample,
    validate_series,
    zscore_per_channel,
)


class TestValidate:
    def test_passes_valid(self, small_series):
        out = validate_series(small_series)
        assert out.dtype == np.float64

    def test_rejects_wrong_ndim(self):
        with pytest.raises(ValueError):
            validate_series(np.zeros((3, 4)))

    def test_rejects_nan_and_inf(self, small_series):
        bad = small_series.copy()
        bad[0, 0, 0] = np.nan
        with pytest.raises(ValueError):
            validate_series(bad)
        bad[0, 0, 0] = np.inf
        with pytest.raises(ValueError):
            validate_series(bad)


class TestZScore:
    def test_per_instance_channel_stats(self, rng):
        x = rng.normal(5.0, 3.0, size=(4, 50, 3))
        out = zscore_per_channel(x)
        np.testing.assert_allclose(out.mean(axis=1), 0.0, atol=1e-10)
        np.testing.assert_allclose(out.std(axis=1), 1.0, atol=1e-6)

    def test_constant_channel_safe(self):
        x = np.ones((2, 10, 2))
        out = zscore_per_channel(x)
        assert np.isfinite(out).all()


class TestStandardizer:
    def test_train_stats_applied_to_test(self, rng):
        train = rng.normal(2.0, 4.0, size=(20, 30, 3))
        std = Standardizer().fit(train)
        out = std.transform(train)
        flat = out.reshape(-1, 3)
        np.testing.assert_allclose(flat.mean(axis=0), 0.0, atol=1e-10)
        np.testing.assert_allclose(flat.std(axis=0), 1.0, atol=1e-6)

    def test_transform_before_fit_raises(self, small_series):
        with pytest.raises(RuntimeError):
            Standardizer().transform(small_series)

    def test_fit_transform(self, small_series):
        out = Standardizer().fit_transform(small_series)
        assert out.shape == small_series.shape


class TestPadOrTruncate:
    def test_pad(self, rng):
        x = rng.normal(size=(2, 10, 3))
        out = pad_or_truncate(x, 15)
        assert out.shape == (2, 15, 3)
        np.testing.assert_array_equal(out[:, 10:, :], 0.0)
        np.testing.assert_array_equal(out[:, :10, :], x)

    def test_truncate(self, rng):
        x = rng.normal(size=(2, 10, 3))
        out = pad_or_truncate(x, 6)
        np.testing.assert_array_equal(out, x[:, :6, :])

    def test_noop(self, rng):
        x = rng.normal(size=(2, 10, 3))
        np.testing.assert_array_equal(pad_or_truncate(x, 10), x)

    def test_custom_pad_value(self, rng):
        out = pad_or_truncate(rng.normal(size=(1, 4, 1)), 6, pad_value=-1.0)
        np.testing.assert_array_equal(out[0, 4:, 0], [-1.0, -1.0])

    def test_invalid_length(self, small_series):
        with pytest.raises(ValueError):
            pad_or_truncate(small_series, 0)


class TestSubsample:
    def test_returns_requested_count(self, rng):
        x = rng.normal(size=(100, 5, 2))
        y = np.arange(100) % 4
        xs, ys = subsample(x, y, 40, rng)
        assert len(xs) == 40
        assert len(ys) == 40

    def test_stratified(self, rng):
        x = rng.normal(size=(100, 5, 2))
        y = np.arange(100) % 4
        _, ys = subsample(x, y, 40, rng)
        counts = np.bincount(ys, minlength=4)
        assert counts.min() >= 10

    def test_noop_when_enough(self, rng):
        x = rng.normal(size=(10, 5, 2))
        y = np.zeros(10, dtype=int)
        xs, ys = subsample(x, y, 20, rng)
        assert len(xs) == 10

    def test_alignment_preserved(self, rng):
        x = np.arange(50, dtype=float).reshape(50, 1, 1)
        y = (np.arange(50) % 2).astype(int)
        xs, ys = subsample(x, y, 20, rng)
        for value, label in zip(xs[:, 0, 0], ys):
            assert int(value) % 2 == label

    def test_mismatched_lengths(self, rng):
        with pytest.raises(ValueError):
            subsample(np.zeros((5, 2, 2)), np.zeros(4), 2, rng)

    def test_imbalanced_classes_filled(self, rng):
        """A class with fewer members than its quota is topped up elsewhere."""
        x = rng.normal(size=(30, 4, 1))
        y = np.array([0] * 28 + [1] * 2)
        xs, ys = subsample(x, y, 20, rng)
        assert len(xs) == 20
        assert set(np.unique(ys)) == {0, 1}


class TestLoadDataset:
    def test_fields(self):
        from repro.data import load_dataset

        ds = load_dataset("NATOPS", seed=0, scale=0.3)
        assert ds.name == "NATOPS"
        assert ds.num_channels == 24
        assert ds.num_classes == 6
        assert "NATOPS" in ds.describe()

    def test_normalize_flag(self):
        from repro.data import load_dataset

        normed = load_dataset("NATOPS", seed=0, scale=0.3, normalize=True)
        raw = load_dataset("NATOPS", seed=0, scale=0.3, normalize=False)
        np.testing.assert_allclose(normed.x_train.mean(axis=1), 0.0, atol=1e-8)
        assert np.abs(raw.x_train.mean(axis=1)).max() > 1e-4

    def test_load_all(self):
        from repro.data import load_all_datasets

        data = load_all_datasets(seed=0, scale=0.02, max_length=16)
        assert len(data) == 12
