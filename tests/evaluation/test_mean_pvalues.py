"""Tests for the per-dataset-averaged p-value matrix (Figure 5 procedure)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.evaluation import mean_pairwise_pvalues, welch_ttest


def make_samples(rng, datasets=5, methods=("a", "b", "c"), shift=0.0):
    out = []
    for _ in range(datasets):
        base = rng.normal(0.6, 0.05)
        entry = {}
        for index, method in enumerate(methods):
            entry[method] = base + rng.normal(0, 0.02, size=3) + shift * index
        out.append(entry)
    return out


class TestStructure:
    def test_shape_symmetry_diagonal(self, rng):
        matrix = mean_pairwise_pvalues(make_samples(rng), ["a", "b", "c"])
        assert matrix.shape == (3, 3)
        np.testing.assert_array_equal(np.diag(matrix), np.ones(3))
        np.testing.assert_allclose(matrix, matrix.T)

    def test_values_in_unit_interval(self, rng):
        matrix = mean_pairwise_pvalues(make_samples(rng), ["a", "b", "c"])
        assert ((matrix >= 0) & (matrix <= 1)).all()

    def test_needs_two_methods(self, rng):
        with pytest.raises(ValueError):
            mean_pairwise_pvalues(make_samples(rng), ["a"])


class TestSemantics:
    def test_equivalent_methods_high_p(self, rng):
        matrix = mean_pairwise_pvalues(make_samples(rng, shift=0.0), ["a", "b", "c"])
        off = matrix[~np.eye(3, dtype=bool)]
        assert off.min() > 0.1

    def test_separated_methods_low_p(self, rng):
        matrix = mean_pairwise_pvalues(make_samples(rng, shift=0.5), ["a", "b", "c"])
        assert matrix[0, 2] < 0.05  # a vs c differ by 1.0

    def test_matches_manual_average(self, rng):
        samples = make_samples(rng, datasets=4, methods=("a", "b"))
        matrix = mean_pairwise_pvalues(samples, ["a", "b"])
        manual = np.mean([welch_ttest(s["a"], s["b"])[1] for s in samples])
        assert matrix[0, 1] == pytest.approx(manual)

    def test_skips_datasets_with_missing_runs(self, rng):
        samples = make_samples(rng, datasets=3, methods=("a", "b"))
        samples[1]["b"] = np.array([0.5])  # only one completed seed: skip
        matrix = mean_pairwise_pvalues(samples, ["a", "b"])
        manual = np.mean(
            [welch_ttest(s["a"], s["b"])[1] for s in (samples[0], samples[2])]
        )
        assert matrix[0, 1] == pytest.approx(manual)

    def test_all_missing_defaults_to_one(self, rng):
        samples = [{"a": np.array([0.1, 0.2])}]  # b never completed
        matrix = mean_pairwise_pvalues(samples, ["a", "b"])
        assert matrix[0, 1] == 1.0


@settings(max_examples=25, deadline=None)
@given(st.integers(0, 10_000))
def test_property_matrix_valid_for_random_inputs(seed):
    rng = np.random.default_rng(seed)
    samples = make_samples(rng, datasets=rng.integers(1, 6))
    matrix = mean_pairwise_pvalues(samples, ["a", "b", "c"])
    assert ((matrix >= 0) & (matrix <= 1)).all()
    np.testing.assert_allclose(matrix, matrix.T)
