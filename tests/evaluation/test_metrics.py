"""Tests for classification metrics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.evaluation import accuracy, confusion_matrix, macro_f1


class TestAccuracy:
    def test_perfect(self):
        assert accuracy(np.array([0, 1, 2]), np.array([0, 1, 2])) == 1.0

    def test_partial(self):
        assert accuracy(np.array([0, 1, 2, 2]), np.array([0, 1, 0, 0])) == 0.5

    def test_rejects_misaligned(self):
        with pytest.raises(ValueError):
            accuracy(np.array([0, 1]), np.array([0]))

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            accuracy(np.array([]), np.array([]))

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            accuracy(np.zeros((2, 2)), np.zeros((2, 2)))


class TestConfusionMatrix:
    def test_values(self):
        y_true = np.array([0, 0, 1, 1, 2])
        y_pred = np.array([0, 1, 1, 1, 0])
        matrix = confusion_matrix(y_true, y_pred)
        expected = np.array([[1, 1, 0], [0, 2, 0], [1, 0, 0]])
        np.testing.assert_array_equal(matrix, expected)

    def test_explicit_num_classes(self):
        matrix = confusion_matrix(np.array([0]), np.array([0]), num_classes=4)
        assert matrix.shape == (4, 4)

    def test_row_sums_are_class_counts(self):
        y_true = np.array([0, 0, 1, 2, 2, 2])
        y_pred = np.array([1, 2, 0, 0, 1, 2])
        matrix = confusion_matrix(y_true, y_pred)
        np.testing.assert_array_equal(matrix.sum(axis=1), [2, 1, 3])


class TestMacroF1:
    def test_perfect(self):
        y = np.array([0, 1, 2, 0, 1, 2])
        assert macro_f1(y, y) == pytest.approx(1.0)

    def test_binary_manual(self):
        y_true = np.array([0, 0, 1, 1])
        y_pred = np.array([0, 1, 1, 1])
        # class 0: P=1, R=0.5, F1=2/3; class 1: P=2/3, R=1, F1=0.8
        assert macro_f1(y_true, y_pred) == pytest.approx((2 / 3 + 0.8) / 2)

    def test_absent_predicted_class_scores_zero(self):
        y_true = np.array([0, 1])
        y_pred = np.array([0, 0])
        # class 1 never predicted: F1 = 0; class 0: P=0.5, R=1 -> 2/3
        assert macro_f1(y_true, y_pred) == pytest.approx((2 / 3 + 0.0) / 2)
