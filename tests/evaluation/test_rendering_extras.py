"""Tests for sparkline and LaTeX rendering."""

from __future__ import annotations

import numpy as np
import pytest

from repro.evaluation import render_latex_table, render_sparkline


class TestSparkline:
    def test_monotone_descent(self):
        line = render_sparkline([5.0, 4.0, 3.0, 2.0, 1.0])
        assert line[0] == "█"
        assert line[-1] == "▁"
        assert len(line) == 5

    def test_resampled_to_width(self):
        line = render_sparkline(list(range(200)), width=40)
        assert len(line) == 40

    def test_constant_series(self):
        line = render_sparkline([2.0, 2.0, 2.0])
        assert line == "▁▁▁"

    def test_nan_renders_as_space(self):
        line = render_sparkline([1.0, float("nan"), 2.0])
        assert line[1] == " "

    def test_all_nan(self):
        assert render_sparkline([float("nan")] * 3).strip() == ""

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            render_sparkline([])


class TestLatexTable:
    def test_structure(self):
        text = render_latex_table(["a", "b"], [["1", "2"]])
        for token in ("\\begin{tabular}{ll}", "\\toprule", "\\midrule", "\\bottomrule"):
            assert token in text
        assert "a & b \\\\" in text
        assert "1 & 2 \\\\" in text

    def test_caption_and_label(self):
        text = render_latex_table(["x"], [["1"]], caption="My caption", label="tab:x")
        assert "\\caption{My caption}" in text
        assert "\\label{tab:x}" in text

    def test_escaping(self):
        text = render_latex_table(["m_1"], [["50% & more"]])
        assert "m\\_1" in text
        assert "50\\% \\& more" in text

    def test_plus_minus_converted(self):
        text = render_latex_table(["acc"], [["0.593±0.032"]])
        assert "$\\pm$" in text

    def test_ragged_rows_rejected(self):
        with pytest.raises(ValueError):
            render_latex_table(["a", "b"], [["only one"]])

    def test_empty_headers_rejected(self):
        with pytest.raises(ValueError):
            render_latex_table([], [])
