"""Tests for aggregation and report rendering."""

from __future__ import annotations

import numpy as np
import pytest

from repro.evaluation import (
    MeanStd,
    aggregate_seeds,
    format_csv,
    render_bar_chart,
    render_table,
    write_csv,
)


class TestAggregate:
    def test_mean_std(self):
        agg = aggregate_seeds([0.5, 0.6, 0.7])
        assert agg.mean == pytest.approx(0.6)
        assert agg.std == pytest.approx(np.std([0.5, 0.6, 0.7]))
        assert agg.count == 3

    def test_paper_format(self):
        assert aggregate_seeds([0.593, 0.593, 0.593]).paper_format() == "0.593±0.000"

    def test_str_format(self):
        assert str(MeanStd(0.5, 0.1, 3)) == "0.500 ± 0.100"

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            aggregate_seeds([])

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            aggregate_seeds([0.5, float("nan")])


class TestRenderTable:
    def test_alignment_and_content(self):
        text = render_table(["a", "bb"], [["1", "2"], ["333", "4"]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) for line in lines)
        assert "333" in text

    def test_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [["1"]])

    def test_rejects_empty_headers(self):
        with pytest.raises(ValueError):
            render_table([], [])

    def test_non_string_cells_coerced(self):
        text = render_table(["x"], [[1.5], [None]])
        assert "1.5" in text
        assert "None" in text


class TestBarChart:
    def test_renders_bars_proportionally(self):
        text = render_bar_chart(["long", "short"], [100.0, 50.0], width=10)
        lines = text.splitlines()
        assert lines[0].count("█") == 10
        assert lines[1].count("█") == 5

    def test_unit_suffix(self):
        assert "10s" in render_bar_chart(["a"], [10.0], unit="s")

    def test_rejects_misaligned(self):
        with pytest.raises(ValueError):
            render_bar_chart(["a"], [1.0, 2.0])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            render_bar_chart([], [])

    def test_zero_values_no_bars(self):
        text = render_bar_chart(["a"], [0.0])
        assert "█" not in text


class TestCsv:
    def test_write_and_read_back(self, tmp_path):
        path = write_csv(tmp_path / "out" / "results.csv", ["x", "y"], [[1, 2], [3, 4]])
        content = path.read_text().strip().splitlines()
        assert content[0] == "x,y"
        assert content[1] == "1,2"

    def test_format_csv(self):
        text = format_csv(["a"], [["v"]])
        assert text.splitlines()[0] == "a"
        assert text.splitlines()[1] == "v"
