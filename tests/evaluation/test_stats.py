"""Tests for the statistical analyses (Welch t-test, ranks, p-value matrix)."""

from __future__ import annotations

import numpy as np
import pytest
from scipy import stats as scipy_stats

from repro.evaluation import average_ranks, pairwise_pvalue_matrix, rank_scores, welch_ttest


class TestWelch:
    def test_matches_scipy(self, rng):
        a = rng.normal(0.0, 1.0, size=10)
        b = rng.normal(0.5, 2.0, size=14)
        t_ours, p_ours = welch_ttest(a, b)
        result = scipy_stats.ttest_ind(a, b, equal_var=False)
        assert t_ours == pytest.approx(result.statistic)
        assert p_ours == pytest.approx(result.pvalue)

    def test_identical_samples_p_near_one(self, rng):
        a = rng.normal(size=30)
        _, p = welch_ttest(a, a + rng.normal(0, 1e-9, size=30))
        assert p > 0.9

    def test_separated_samples_p_near_zero(self, rng):
        _, p = welch_ttest(rng.normal(0, 0.1, 20), rng.normal(10, 0.1, 20))
        assert p < 1e-6

    def test_constant_equal_samples(self):
        t, p = welch_ttest(np.ones(3), np.ones(3))
        assert (t, p) == (0.0, 1.0)

    def test_constant_different_samples(self):
        _, p = welch_ttest(np.ones(3), np.zeros(3))
        assert p == 0.0

    def test_requires_two_observations(self):
        with pytest.raises(ValueError):
            welch_ttest(np.array([1.0]), np.array([1.0, 2.0]))

    def test_symmetric_in_arguments(self, rng):
        a, b = rng.normal(size=8), rng.normal(1, 1, size=8)
        _, p_ab = welch_ttest(a, b)
        _, p_ba = welch_ttest(b, a)
        assert p_ab == pytest.approx(p_ba)


class TestPairwiseMatrix:
    def test_shape_diagonal_symmetry(self, rng):
        samples = {name: rng.normal(size=6) for name in "abcd"}
        names, matrix = pairwise_pvalue_matrix(samples)
        assert names == list("abcd")
        assert matrix.shape == (4, 4)
        np.testing.assert_array_equal(np.diag(matrix), np.ones(4))
        np.testing.assert_allclose(matrix, matrix.T)

    def test_values_in_unit_interval(self, rng):
        samples = {name: rng.normal(size=6) for name in "abc"}
        _, matrix = pairwise_pvalue_matrix(samples)
        assert ((matrix >= 0) & (matrix <= 1)).all()

    def test_needs_two_methods(self, rng):
        with pytest.raises(ValueError):
            pairwise_pvalue_matrix({"only": rng.normal(size=5)})

    def test_paper_scenario_no_significant_difference(self, rng):
        """Methods drawing from the same distribution: min p stays large,
        mirroring the paper's Figure-5 conclusion."""
        base = rng.normal(0.7, 0.05, size=(5, 36))
        samples = {f"m{i}": base[i] + rng.normal(0, 0.01, 36) for i in range(5)}
        _, matrix = pairwise_pvalue_matrix(samples)
        off_diag = matrix[~np.eye(5, dtype=bool)]
        assert off_diag.min() > 0.01


class TestRanks:
    def test_rank_scores_descending(self):
        np.testing.assert_array_equal(rank_scores(np.array([0.9, 0.5, 0.7])), [1, 3, 2])

    def test_ties_averaged(self):
        np.testing.assert_array_equal(rank_scores(np.array([0.5, 0.5, 0.1])), [1.5, 1.5, 3])

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            rank_scores(np.zeros((2, 2)))

    def test_average_ranks(self):
        table = np.array([[0.9, 0.5, 0.7], [0.8, 0.6, 0.4]])
        ranks = average_ranks(table, ["a", "b", "c"])
        assert ranks["a"] == 1.0
        assert ranks["b"] == pytest.approx(2.5)
        assert ranks["c"] == pytest.approx(2.5)

    def test_nan_ranks_last(self):
        table = np.array([[0.9, np.nan, 0.7]])
        ranks = average_ranks(table, ["a", "b", "c"])
        assert ranks["b"] == 3.0

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            average_ranks(np.zeros((2, 3)), ["a", "b"])

    def test_best_method_has_lowest_rank(self, rng):
        """Figure-4 semantics: consistently best -> rank 1."""
        scores = rng.uniform(0.3, 0.6, size=(10, 4))
        scores[:, 2] = 0.95  # method c always wins
        ranks = average_ranks(scores, list("abcd"))
        assert ranks["c"] == 1.0
        assert all(ranks["c"] < ranks[m] for m in "abd")
